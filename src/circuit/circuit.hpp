/**
 * @file
 * Parameterized quantum circuit IR.
 *
 * A Circuit is an ordered gate list over numQubits qubits with
 * numParams free rotation parameters. Ansatz generators produce
 * parameterized circuits; the VQE engine binds a parameter vector per
 * iteration and hands the result to a simulator.
 */

#ifndef QISMET_CIRCUIT_CIRCUIT_HPP
#define QISMET_CIRCUIT_CIRCUIT_HPP

#include <string>
#include <vector>

#include "circuit/gate.hpp"

namespace qismet {

/** Ordered list of gates over a fixed qubit register. */
class Circuit
{
  public:
    /** Empty circuit over num_qubits qubits with num_params parameters. */
    explicit Circuit(int num_qubits, int num_params = 0);

    int numQubits() const { return numQubits_; }
    int numParams() const { return numParams_; }
    const std::vector<Gate> &gates() const { return gates_; }
    std::size_t size() const { return gates_.size(); }

    /** @name Fixed gates
     *  Each appends one gate and returns *this for chaining.
     *  @{
     */
    Circuit &h(int q);
    Circuit &x(int q);
    Circuit &y(int q);
    Circuit &z(int q);
    Circuit &s(int q);
    Circuit &sdg(int q);
    Circuit &t(int q);
    Circuit &tdg(int q);
    Circuit &sx(int q);
    Circuit &rx(int q, double angle);
    Circuit &ry(int q, double angle);
    Circuit &rz(int q, double angle);
    Circuit &cx(int control, int target);
    Circuit &cz(int a, int b);
    Circuit &swap(int a, int b);
    /** @} */

    /** @name Parameterized rotations
     *  Angle resolves to scale * theta[param_index] + offset at bind time.
     *  @{
     */
    Circuit &rxParam(int q, int param_index, double scale = 1.0,
                     double offset = 0.0);
    Circuit &ryParam(int q, int param_index, double scale = 1.0,
                     double offset = 0.0);
    Circuit &rzParam(int q, int param_index, double scale = 1.0,
                     double offset = 0.0);
    /** @} */

    /** Append a raw gate (validated). */
    Circuit &append(Gate gate);

    /**
     * Append all gates of another circuit over the same register width.
     * Parameter indices of `other` are shifted by param_offset.
     */
    Circuit &compose(const Circuit &other, int param_offset = 0);

    /**
     * Bind a parameter vector, producing an equivalent circuit whose
     * gates all carry constant angles.
     * @throws std::invalid_argument on size mismatch.
     */
    Circuit bind(const std::vector<double> &params) const;

    /**
     * Inverse circuit (gates reversed, each inverted). Only defined for
     * fully bound circuits.
     * @throws std::logic_error when the circuit still has free parameters.
     */
    Circuit inverse() const;

    /** Human-readable one-gate-per-line listing. */
    std::string toString() const;

  private:
    void checkQubit(int q) const;

    int numQubits_;
    int numParams_;
    std::vector<Gate> gates_;
};

} // namespace qismet

#endif // QISMET_CIRCUIT_CIRCUIT_HPP
