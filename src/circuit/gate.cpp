#include "circuit/gate.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace qismet {

bool
isRotation(GateType type)
{
    return type == GateType::RX || type == GateType::RY ||
           type == GateType::RZ;
}

int
gateArity(GateType type)
{
    switch (type) {
      case GateType::CX:
      case GateType::CZ:
      case GateType::SWAP:
        return 2;
      default:
        return 1;
    }
}

std::string
gateName(GateType type)
{
    switch (type) {
      case GateType::I: return "id";
      case GateType::H: return "h";
      case GateType::X: return "x";
      case GateType::Y: return "y";
      case GateType::Z: return "z";
      case GateType::S: return "s";
      case GateType::Sdg: return "sdg";
      case GateType::T: return "t";
      case GateType::Tdg: return "tdg";
      case GateType::SX: return "sx";
      case GateType::RX: return "rx";
      case GateType::RY: return "ry";
      case GateType::RZ: return "rz";
      case GateType::CX: return "cx";
      case GateType::CZ: return "cz";
      case GateType::SWAP: return "swap";
    }
    return "?";
}

double
Gate::resolvedAngle(const std::vector<double> &params) const
{
    if (!isParameterized())
        return angle;
    if (paramIndex < 0 || static_cast<std::size_t>(paramIndex) >=
            params.size()) {
        throw std::out_of_range("Gate::resolvedAngle: parameter index " +
                                std::to_string(paramIndex) +
                                " out of range");
    }
    return paramScale * params[static_cast<std::size_t>(paramIndex)] + angle;
}

Matrix
Gate::matrix(const std::vector<double> &params) const
{
    const Complex i(0.0, 1.0);
    const double inv_sqrt2 = 1.0 / std::sqrt(2.0);

    switch (type) {
      case GateType::I:
        return Matrix::identity(2);
      case GateType::H:
        return Matrix::fromRows({{inv_sqrt2, inv_sqrt2},
                                 {inv_sqrt2, -inv_sqrt2}});
      case GateType::X:
        return Matrix::fromRows({{0, 1}, {1, 0}});
      case GateType::Y:
        return Matrix::fromRows({{0, -i}, {i, 0}});
      case GateType::Z:
        return Matrix::fromRows({{1, 0}, {0, -1}});
      case GateType::S:
        return Matrix::fromRows({{1, 0}, {0, i}});
      case GateType::Sdg:
        return Matrix::fromRows({{1, 0}, {0, -i}});
      case GateType::T:
        return Matrix::fromRows(
            {{1, 0}, {0, std::exp(i * (M_PI / 4.0))}});
      case GateType::Tdg:
        return Matrix::fromRows(
            {{1, 0}, {0, std::exp(-i * (M_PI / 4.0))}});
      case GateType::SX:
        return Matrix::fromRows({{Complex(0.5, 0.5), Complex(0.5, -0.5)},
                                 {Complex(0.5, -0.5), Complex(0.5, 0.5)}});
      case GateType::RX: {
        const double a = resolvedAngle(params) / 2.0;
        return Matrix::fromRows({{std::cos(a), -i * std::sin(a)},
                                 {-i * std::sin(a), std::cos(a)}});
      }
      case GateType::RY: {
        const double a = resolvedAngle(params) / 2.0;
        return Matrix::fromRows({{std::cos(a), -std::sin(a)},
                                 {std::sin(a), std::cos(a)}});
      }
      case GateType::RZ: {
        const double a = resolvedAngle(params) / 2.0;
        return Matrix::fromRows({{std::exp(-i * a), 0},
                                 {0, std::exp(i * a)}});
      }
      case GateType::CX:
        return Matrix::fromRows({{1, 0, 0, 0},
                                 {0, 1, 0, 0},
                                 {0, 0, 0, 1},
                                 {0, 0, 1, 0}});
      case GateType::CZ:
        return Matrix::fromRows({{1, 0, 0, 0},
                                 {0, 1, 0, 0},
                                 {0, 0, 1, 0},
                                 {0, 0, 0, -1}});
      case GateType::SWAP:
        return Matrix::fromRows({{1, 0, 0, 0},
                                 {0, 0, 1, 0},
                                 {0, 1, 0, 0},
                                 {0, 0, 0, 1}});
    }
    throw std::logic_error("Gate::matrix: unknown gate type");
}

} // namespace qismet
