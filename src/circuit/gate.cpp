#include "circuit/gate.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace qismet {

bool
isRotation(GateType type)
{
    return type == GateType::RX || type == GateType::RY ||
           type == GateType::RZ;
}

bool
isDiagonal(GateType type)
{
    switch (type) {
      case GateType::I:
      case GateType::Z:
      case GateType::S:
      case GateType::Sdg:
      case GateType::T:
      case GateType::Tdg:
      case GateType::RZ:
      case GateType::CZ:
        return true;
      default:
        return false;
    }
}

int
gateArity(GateType type)
{
    switch (type) {
      case GateType::CX:
      case GateType::CZ:
      case GateType::SWAP:
        return 2;
      default:
        return 1;
    }
}

std::string
gateName(GateType type)
{
    switch (type) {
      case GateType::I: return "id";
      case GateType::H: return "h";
      case GateType::X: return "x";
      case GateType::Y: return "y";
      case GateType::Z: return "z";
      case GateType::S: return "s";
      case GateType::Sdg: return "sdg";
      case GateType::T: return "t";
      case GateType::Tdg: return "tdg";
      case GateType::SX: return "sx";
      case GateType::RX: return "rx";
      case GateType::RY: return "ry";
      case GateType::RZ: return "rz";
      case GateType::CX: return "cx";
      case GateType::CZ: return "cz";
      case GateType::SWAP: return "swap";
    }
    return "?";
}

double
Gate::resolvedAngle(const std::vector<double> &params) const
{
    if (!isParameterized())
        return angle;
    if (paramIndex < 0 || static_cast<std::size_t>(paramIndex) >=
            params.size()) {
        throw std::out_of_range("Gate::resolvedAngle: parameter index " +
                                std::to_string(paramIndex) +
                                " out of range");
    }
    return paramScale * params[static_cast<std::size_t>(paramIndex)] + angle;
}

Matrix
Gate::matrix(const std::vector<double> &params) const
{
    const std::size_t n = gateArity(type) == 1 ? 2 : 4;
    Matrix m(n, n);
    matrixInto(&m(0, 0), params);
    return m;
}

void
Gate::matrixInto(Complex *out, const std::vector<double> &params) const
{
    const Complex i(0.0, 1.0);
    const Complex zero(0.0, 0.0);
    const Complex one(1.0, 0.0);
    const double inv_sqrt2 = 1.0 / std::sqrt(2.0);

    auto fill1q = [out](Complex a, Complex b, Complex c, Complex d) {
        out[0] = a;
        out[1] = b;
        out[2] = c;
        out[3] = d;
    };

    switch (type) {
      case GateType::I:
        fill1q(one, zero, zero, one);
        return;
      case GateType::H:
        fill1q(inv_sqrt2, inv_sqrt2, inv_sqrt2, -inv_sqrt2);
        return;
      case GateType::X:
        fill1q(zero, one, one, zero);
        return;
      case GateType::Y:
        fill1q(zero, -i, i, zero);
        return;
      case GateType::Z:
        fill1q(one, zero, zero, -one);
        return;
      case GateType::S:
        fill1q(one, zero, zero, i);
        return;
      case GateType::Sdg:
        fill1q(one, zero, zero, -i);
        return;
      case GateType::T:
        fill1q(one, zero, zero, std::exp(i * (M_PI / 4.0)));
        return;
      case GateType::Tdg:
        fill1q(one, zero, zero, std::exp(-i * (M_PI / 4.0)));
        return;
      case GateType::SX:
        fill1q(Complex(0.5, 0.5), Complex(0.5, -0.5), Complex(0.5, -0.5),
               Complex(0.5, 0.5));
        return;
      case GateType::RX: {
        const double a = resolvedAngle(params) / 2.0;
        fill1q(std::cos(a), -i * std::sin(a), -i * std::sin(a),
               std::cos(a));
        return;
      }
      case GateType::RY: {
        const double a = resolvedAngle(params) / 2.0;
        fill1q(std::cos(a), -std::sin(a), std::sin(a), std::cos(a));
        return;
      }
      case GateType::RZ: {
        const double a = resolvedAngle(params) / 2.0;
        fill1q(std::exp(-i * a), zero, zero, std::exp(i * a));
        return;
      }
      case GateType::CX:
      case GateType::CZ:
      case GateType::SWAP: {
        for (int k = 0; k < 16; ++k)
            out[k] = zero;
        if (type == GateType::CX) {
            out[0] = out[5] = one;
            out[2 * 4 + 3] = out[3 * 4 + 2] = one;
        } else if (type == GateType::CZ) {
            out[0] = out[5] = out[10] = one;
            out[15] = -one;
        } else {
            out[0] = out[15] = one;
            out[1 * 4 + 2] = out[2 * 4 + 1] = one;
        }
        return;
      }
    }
    throw std::logic_error("Gate::matrixInto: unknown gate type");
}

void
Gate::diagonalInto(Complex *out, const std::vector<double> &params) const
{
    if (!isDiagonal(type) || gateArity(type) != 1)
        throw std::logic_error(
            "Gate::diagonalInto: gate is not a 1-qubit diagonal");
    Complex m[4];
    matrixInto(m, params);
    out[0] = m[0];
    out[1] = m[3];
}

} // namespace qismet
