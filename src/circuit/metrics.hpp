/**
 * @file
 * Structural circuit metrics.
 *
 * The paper's Section 3.2 ties transient impact to circuit width, depth
 * and CX count; these metrics feed the noise model's fidelity estimate
 * and the Fig. 4 study.
 */

#ifndef QISMET_CIRCUIT_METRICS_HPP
#define QISMET_CIRCUIT_METRICS_HPP

#include "circuit/circuit.hpp"

namespace qismet {

/** Summary of a circuit's structure. */
struct CircuitMetrics
{
    int numQubits = 0;
    int totalGates = 0;
    int oneQubitGates = 0;
    int twoQubitGates = 0;
    /** ASAP-schedule depth counting all gates. */
    int depth = 0;
    /** Depth counting only two-qubit gates (the paper's "CX depth"). */
    int cxDepth = 0;
};

/** Compute structural metrics for a circuit. */
CircuitMetrics computeMetrics(const Circuit &circuit);

/**
 * Estimated wall-clock duration of the circuit in nanoseconds, given
 * typical 1q / 2q gate times. Used by the decoherence part of the noise
 * model (probability of decay scales with duration / T1).
 */
double estimateDurationNs(const Circuit &circuit, double t_1q_ns = 35.0,
                          double t_2q_ns = 300.0);

} // namespace qismet

#endif // QISMET_CIRCUIT_METRICS_HPP
