#include "circuit/circuit.hpp"

#include <sstream>
#include <stdexcept>

namespace qismet {

Circuit::Circuit(int num_qubits, int num_params)
    : numQubits_(num_qubits), numParams_(num_params)
{
    if (num_qubits <= 0)
        throw std::invalid_argument("Circuit: num_qubits must be positive");
    if (num_params < 0)
        throw std::invalid_argument("Circuit: num_params must be >= 0");
}

void
Circuit::checkQubit(int q) const
{
    if (q < 0 || q >= numQubits_) {
        throw std::out_of_range("Circuit: qubit " + std::to_string(q) +
                                " out of range [0, " +
                                std::to_string(numQubits_) + ")");
    }
}

namespace {

Gate
makeGate1(GateType type, int q, double angle = 0.0)
{
    Gate g;
    g.type = type;
    g.qubits = {q, 0};
    g.angle = angle;
    return g;
}

Gate
makeGate2(GateType type, int a, int b)
{
    Gate g;
    g.type = type;
    g.qubits = {a, b};
    return g;
}

} // namespace

Circuit &Circuit::h(int q) { return append(makeGate1(GateType::H, q)); }
Circuit &Circuit::x(int q) { return append(makeGate1(GateType::X, q)); }
Circuit &Circuit::y(int q) { return append(makeGate1(GateType::Y, q)); }
Circuit &Circuit::z(int q) { return append(makeGate1(GateType::Z, q)); }
Circuit &Circuit::s(int q) { return append(makeGate1(GateType::S, q)); }
Circuit &Circuit::sdg(int q) { return append(makeGate1(GateType::Sdg, q)); }
Circuit &Circuit::t(int q) { return append(makeGate1(GateType::T, q)); }
Circuit &Circuit::tdg(int q) { return append(makeGate1(GateType::Tdg, q)); }
Circuit &Circuit::sx(int q) { return append(makeGate1(GateType::SX, q)); }

Circuit &
Circuit::rx(int q, double angle)
{
    return append(makeGate1(GateType::RX, q, angle));
}

Circuit &
Circuit::ry(int q, double angle)
{
    return append(makeGate1(GateType::RY, q, angle));
}

Circuit &
Circuit::rz(int q, double angle)
{
    return append(makeGate1(GateType::RZ, q, angle));
}

Circuit &
Circuit::cx(int control, int target)
{
    if (control == target)
        throw std::invalid_argument("Circuit::cx: control == target");
    return append(makeGate2(GateType::CX, control, target));
}

Circuit &
Circuit::cz(int a, int b)
{
    if (a == b)
        throw std::invalid_argument("Circuit::cz: identical qubits");
    return append(makeGate2(GateType::CZ, a, b));
}

Circuit &
Circuit::swap(int a, int b)
{
    if (a == b)
        throw std::invalid_argument("Circuit::swap: identical qubits");
    return append(makeGate2(GateType::SWAP, a, b));
}

namespace {

Gate
makeParamGate(GateType type, int q, int param_index, double scale,
              double offset)
{
    Gate g;
    g.type = type;
    g.qubits = {q, 0};
    g.paramIndex = param_index;
    g.paramScale = scale;
    g.angle = offset;
    return g;
}

} // namespace

Circuit &
Circuit::rxParam(int q, int param_index, double scale, double offset)
{
    return append(makeParamGate(GateType::RX, q, param_index, scale, offset));
}

Circuit &
Circuit::ryParam(int q, int param_index, double scale, double offset)
{
    return append(makeParamGate(GateType::RY, q, param_index, scale, offset));
}

Circuit &
Circuit::rzParam(int q, int param_index, double scale, double offset)
{
    return append(makeParamGate(GateType::RZ, q, param_index, scale, offset));
}

Circuit &
Circuit::append(Gate gate)
{
    checkQubit(gate.qubits[0]);
    if (gateArity(gate.type) == 2)
        checkQubit(gate.qubits[1]);
    if (gate.isParameterized()) {
        if (!isRotation(gate.type)) {
            throw std::invalid_argument(
                "Circuit::append: only rotations can be parameterized");
        }
        if (gate.paramIndex >= numParams_) {
            throw std::out_of_range(
                "Circuit::append: parameter index " +
                std::to_string(gate.paramIndex) + " out of range [0, " +
                std::to_string(numParams_) + ")");
        }
    }
    gates_.push_back(gate);
    return *this;
}

Circuit &
Circuit::compose(const Circuit &other, int param_offset)
{
    if (other.numQubits_ != numQubits_)
        throw std::invalid_argument("Circuit::compose: width mismatch");
    for (Gate g : other.gates_) {
        if (g.isParameterized()) {
            g.paramIndex += param_offset;
        }
        append(g);
    }
    return *this;
}

Circuit
Circuit::bind(const std::vector<double> &params) const
{
    if (static_cast<int>(params.size()) != numParams_)
        throw std::invalid_argument("Circuit::bind: parameter count " +
                                    std::to_string(params.size()) +
                                    " != " + std::to_string(numParams_));
    Circuit bound(numQubits_, 0);
    for (Gate g : gates_) {
        if (g.isParameterized()) {
            g.angle = g.resolvedAngle(params);
            g.paramIndex = Gate::kBound;
            g.paramScale = 1.0;
        }
        bound.gates_.push_back(g);
    }
    return bound;
}

Circuit
Circuit::inverse() const
{
    if (numParams_ != 0)
        throw std::logic_error("Circuit::inverse: circuit has free params");
    Circuit inv(numQubits_, 0);
    for (auto it = gates_.rbegin(); it != gates_.rend(); ++it) {
        Gate g = *it;
        switch (g.type) {
          case GateType::S: g.type = GateType::Sdg; break;
          case GateType::Sdg: g.type = GateType::S; break;
          case GateType::T: g.type = GateType::Tdg; break;
          case GateType::Tdg: g.type = GateType::T; break;
          case GateType::SX:
            // SX^-1 = SX^3; express as RX(-pi/2) up to global phase.
            g.type = GateType::RX;
            g.angle = -M_PI / 2.0;
            break;
          case GateType::RX:
          case GateType::RY:
          case GateType::RZ:
            g.angle = -g.angle;
            break;
          default:
            break; // self-inverse (H, X, Y, Z, CX, CZ, SWAP, I)
        }
        inv.gates_.push_back(g);
    }
    return inv;
}

std::string
Circuit::toString() const
{
    std::ostringstream os;
    os << "circuit(" << numQubits_ << " qubits, " << numParams_
       << " params)\n";
    for (const Gate &g : gates_) {
        os << "  " << gateName(g.type) << " q" << g.qubits[0];
        if (gateArity(g.type) == 2)
            os << ", q" << g.qubits[1];
        if (isRotation(g.type)) {
            if (g.isParameterized()) {
                os << "  angle = " << g.paramScale << " * theta["
                   << g.paramIndex << "] + " << g.angle;
            } else {
                os << "  angle = " << g.angle;
            }
        }
        os << "\n";
    }
    return os.str();
}

} // namespace qismet
