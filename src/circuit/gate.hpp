/**
 * @file
 * Gate set of the circuit IR.
 *
 * The set covers everything the QISMET reproduction needs: the standard
 * one-qubit Cliffords, parameterized rotations (the ansatz building
 * blocks), CX/CZ entanglers, and measurement-basis changes.
 */

#ifndef QISMET_CIRCUIT_GATE_HPP
#define QISMET_CIRCUIT_GATE_HPP

#include <array>
#include <string>

#include "common/matrix.hpp"

namespace qismet {

/** All gate kinds understood by the simulators. */
enum class GateType
{
    I,      ///< Identity (placeholder / scheduling)
    H,      ///< Hadamard
    X,      ///< Pauli-X
    Y,      ///< Pauli-Y
    Z,      ///< Pauli-Z
    S,      ///< sqrt(Z)
    Sdg,    ///< S-dagger
    T,      ///< fourth root of Z
    Tdg,    ///< T-dagger
    SX,     ///< sqrt(X)
    RX,     ///< exp(-i X angle / 2)
    RY,     ///< exp(-i Y angle / 2)
    RZ,     ///< exp(-i Z angle / 2)
    CX,     ///< controlled-X (control = qubits[0])
    CZ,     ///< controlled-Z
    SWAP,   ///< swap two qubits
};

/** True for RX / RY / RZ. */
bool isRotation(GateType type);

/**
 * True when the gate's unitary is diagonal in the computational basis
 * (I, Z, S, Sdg, T, Tdg, RZ, CZ). Diagonal gates all commute with one
 * another, which is what lets the circuit compiler merge whole runs of
 * them into a single pass over the amplitudes.
 */
bool isDiagonal(GateType type);

/** Number of qubits the gate type acts on (1 or 2). */
int gateArity(GateType type);

/** Lower-case mnemonic, e.g. "cx". */
std::string gateName(GateType type);

/**
 * One gate instance in a circuit.
 *
 * Rotation gates either carry a bound angle (paramIndex == kBound) or
 * refer to circuit parameter paramIndex; in the latter case the effective
 * angle at bind time is paramScale * theta[paramIndex] + angle.
 */
struct Gate
{
    /** Sentinel paramIndex value for bound (constant-angle) gates. */
    static constexpr int kBound = -1;

    GateType type = GateType::I;
    /** Acted-on qubits; qubits[1] unused for 1-qubit gates. */
    std::array<int, 2> qubits = {0, 0};
    /** Bound angle, or additive offset for parameterized gates. */
    double angle = 0.0;
    /** Circuit parameter index, or kBound. */
    int paramIndex = kBound;
    /** Multiplier applied to the referenced parameter. */
    double paramScale = 1.0;

    /** True when the gate's angle depends on a circuit parameter. */
    bool isParameterized() const { return paramIndex != kBound; }

    /**
     * Effective rotation angle once parameters are known.
     * @param params Circuit parameter vector (unused for bound gates).
     */
    double resolvedAngle(const std::vector<double> &params) const;

    /**
     * Dense unitary of the gate (2x2 or 4x4 in the qubit ordering
     * [qubits[0], qubits[1]], i.e. qubits[0] is the most significant bit
     * of the local index).
     * @param params Needed for parameterized rotations.
     */
    Matrix matrix(const std::vector<double> &params = {}) const;

    /**
     * Allocation-free variant of matrix(): writes the dense unitary
     * row-major into `out` (4 entries for 1-qubit gates, 16 for 2-qubit
     * gates). Hot paths — the circuit compiler's bind step — use this to
     * avoid a heap-allocated Matrix per gate application.
     * @param out Caller-owned storage of at least 4 (1q) / 16 (2q) entries.
     * @param params Needed for parameterized rotations.
     */
    void matrixInto(Complex *out, const std::vector<double> &params = {}) const;

    /**
     * Diagonal of the gate's unitary, for diagonal 1-qubit gates only
     * (isDiagonal(type) && arity 1): writes {u00, u11} into `out`.
     * @throws std::logic_error for non-diagonal or 2-qubit gates.
     */
    void diagonalInto(Complex *out,
                      const std::vector<double> &params = {}) const;
};

} // namespace qismet

#endif // QISMET_CIRCUIT_GATE_HPP
