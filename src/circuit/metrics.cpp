#include "circuit/metrics.hpp"

#include <algorithm>
#include <vector>

namespace qismet {

CircuitMetrics
computeMetrics(const Circuit &circuit)
{
    CircuitMetrics m;
    m.numQubits = circuit.numQubits();
    m.totalGates = static_cast<int>(circuit.size());

    // ASAP levels per qubit for both depth variants.
    std::vector<int> level(circuit.numQubits(), 0);
    std::vector<int> cx_level(circuit.numQubits(), 0);

    for (const Gate &g : circuit.gates()) {
        if (gateArity(g.type) == 2) {
            ++m.twoQubitGates;
            const int a = g.qubits[0];
            const int b = g.qubits[1];
            const int lv = std::max(level[a], level[b]) + 1;
            level[a] = level[b] = lv;
            const int clv = std::max(cx_level[a], cx_level[b]) + 1;
            cx_level[a] = cx_level[b] = clv;
        } else {
            ++m.oneQubitGates;
            ++level[g.qubits[0]];
        }
    }

    m.depth = *std::max_element(level.begin(), level.end());
    m.cxDepth = *std::max_element(cx_level.begin(), cx_level.end());
    return m;
}

double
estimateDurationNs(const Circuit &circuit, double t_1q_ns, double t_2q_ns)
{
    // Schedule ASAP: each qubit tracks its busy-until time; a gate starts
    // when all its operands are free.
    std::vector<double> busy(circuit.numQubits(), 0.0);
    double makespan = 0.0;
    for (const Gate &g : circuit.gates()) {
        if (gateArity(g.type) == 2) {
            const int a = g.qubits[0];
            const int b = g.qubits[1];
            const double start = std::max(busy[a], busy[b]);
            busy[a] = busy[b] = start + t_2q_ns;
            makespan = std::max(makespan, busy[a]);
        } else {
            const int q = g.qubits[0];
            busy[q] += t_1q_ns;
            makespan = std::max(makespan, busy[q]);
        }
    }
    return makespan;
}

} // namespace qismet
