#include "sim/statevector.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "common/amp_span.hpp"
#include "sim/kernels.hpp"

namespace qismet {

Statevector::Statevector(int num_qubits) : numQubits_(num_qubits)
{
    if (num_qubits <= 0 || num_qubits > 28)
        throw std::invalid_argument("Statevector: unsupported qubit count");
    amps_.assign(std::size_t{1} << num_qubits, Complex(0.0, 0.0));
    amps_[0] = Complex(1.0, 0.0);
}

Statevector::Statevector(std::vector<Complex> amplitudes)
    : amps_(std::move(amplitudes))
{
    if (amps_.empty() || (amps_.size() & (amps_.size() - 1)) != 0)
        throw std::invalid_argument(
            "Statevector: amplitude count must be a power of two");
    numQubits_ = static_cast<int>(std::bit_width(amps_.size())) - 1;
}

void
Statevector::reset()
{
    std::fill(amps_.begin(), amps_.end(), Complex(0.0, 0.0));
    amps_[0] = Complex(1.0, 0.0);
    invalidateCache();
}

void
Statevector::checkQubit(int q) const
{
    if (q < 0 || q >= numQubits_)
        throw std::out_of_range("Statevector: qubit out of range");
}

void
Statevector::apply1q(int q, const Matrix &u)
{
    checkQubit(q);
    if (u.rows() != 2 || u.cols() != 2)
        throw std::invalid_argument("Statevector::apply1q: matrix not 2x2");
    invalidateCache();

    const std::uint64_t stride = std::uint64_t{1} << q;
    const Complex u00 = u(0, 0), u01 = u(0, 1), u10 = u(1, 0), u11 = u(1, 1);

    for (std::uint64_t base = 0; base < amps_.size(); base += 2 * stride) {
        for (std::uint64_t offset = 0; offset < stride; ++offset) {
            const std::uint64_t i0 = base + offset;
            const std::uint64_t i1 = i0 + stride;
            const Complex a0 = amps_[i0];
            const Complex a1 = amps_[i1];
            amps_[i0] = u00 * a0 + u01 * a1;
            amps_[i1] = u10 * a0 + u11 * a1;
        }
    }
}

void
Statevector::apply2q(int q1, int q0, const Matrix &u)
{
    checkQubit(q1);
    checkQubit(q0);
    if (q1 == q0)
        throw std::invalid_argument("Statevector::apply2q: equal qubits");
    if (u.rows() != 4 || u.cols() != 4)
        throw std::invalid_argument("Statevector::apply2q: matrix not 4x4");
    invalidateCache();

    const std::uint64_t b1 = std::uint64_t{1} << q1;
    const std::uint64_t b0 = std::uint64_t{1} << q0;

    for (std::uint64_t i = 0; i < amps_.size(); ++i) {
        if (i & (b1 | b0))
            continue; // visit each 4-tuple once, from its 00 member
        // Local index: bit1 = qubit q1 state, bit0 = qubit q0 state.
        const std::uint64_t idx[4] = {i, i | b0, i | b1, i | b1 | b0};
        Complex in[4];
        for (int k = 0; k < 4; ++k)
            in[k] = amps_[idx[k]];
        for (int r = 0; r < 4; ++r) {
            Complex acc(0.0, 0.0);
            for (int c = 0; c < 4; ++c)
                acc += u(r, c) * in[c];
            amps_[idx[r]] = acc;
        }
    }
}

void
Statevector::applyGate(const Gate &gate, const std::vector<double> &params)
{
    invalidateCache();
    // Fast paths for the common entanglers; everything else goes through
    // the dense matrix.
    switch (gate.type) {
      case GateType::I:
        return;
      case GateType::CX: {
        const std::uint64_t cbit = std::uint64_t{1} << gate.qubits[0];
        const std::uint64_t tbit = std::uint64_t{1} << gate.qubits[1];
        for (std::uint64_t i = 0; i < amps_.size(); ++i) {
            if ((i & cbit) && !(i & tbit))
                std::swap(amps_[i], amps_[i | tbit]);
        }
        return;
      }
      case GateType::CZ: {
        const std::uint64_t mask =
            (std::uint64_t{1} << gate.qubits[0]) |
            (std::uint64_t{1} << gate.qubits[1]);
        for (std::uint64_t i = 0; i < amps_.size(); ++i) {
            if ((i & mask) == mask)
                amps_[i] = -amps_[i];
        }
        return;
      }
      case GateType::SWAP: {
        const std::uint64_t a = std::uint64_t{1} << gate.qubits[0];
        const std::uint64_t b = std::uint64_t{1} << gate.qubits[1];
        for (std::uint64_t i = 0; i < amps_.size(); ++i) {
            if ((i & a) && !(i & b))
                std::swap(amps_[i], amps_[(i ^ a) | b]);
        }
        return;
      }
      default:
        break;
    }

    if (gateArity(gate.type) == 1) {
        apply1q(gate.qubits[0], gate.matrix(params));
    } else {
        apply2q(gate.qubits[0], gate.qubits[1], gate.matrix(params));
    }
}

void
Statevector::run(const Circuit &circuit, const std::vector<double> &params)
{
    if (circuit.numQubits() != numQubits_)
        throw std::invalid_argument("Statevector::run: width mismatch");
    // One-shot compile only pays for itself once the per-gate sweep
    // touches enough amplitudes; below that the legacy loop wins.
    // Callers that rerun a circuit should hold a CompiledCircuit (the
    // energy estimator does), which always uses the fused kernels.
    if (fusionEnabled() && amps_.size() >= kAutoCompileAmplitudes) {
        run(CompiledCircuit(circuit), params);
        return;
    }
    for (const Gate &g : circuit.gates())
        applyGate(g, params);
}

void
Statevector::run(const CompiledCircuit &circuit,
                 const std::vector<double> &params)
{
    if (circuit.numQubits() != numQubits_)
        throw std::invalid_argument("Statevector::run: width mismatch");
    invalidateCache();
    if (circuit.parameterized())
        circuit.bind(params, bindPool_);
    for (const CompiledOp &op : circuit.ops()) {
        const Complex *m = circuit.matrixFor(op, bindPool_);
        switch (op.kind) {
          case CompiledOpKind::Dense1:
            applyDense1(op.q0, m);
            break;
          case CompiledOpKind::Dense2:
            applyDense2(op.q0, op.q1, m);
            break;
          case CompiledOpKind::Diag:
            applyDiag(op.mask, m);
            break;
          case CompiledOpKind::PermX:
            applyPermX(op.q0);
            break;
          case CompiledOpKind::PermCX:
            applyPermCX(op.q0, op.q1);
            break;
          case CompiledOpKind::PermSwap:
            applyPermSwap(op.q0, op.q1);
            break;
        }
    }
}

// The fused kernels forward to the shared kernel layer (sim/kernels.hpp)
// which adds the SIMD dispatch and the fixed-block parallel partition.
// The pre-kernel scalar loops live on, verbatim, as the scalar path in
// kernels_scalar.cpp — results are bit-identical (the equivalence suite
// pins this against the legacy gate-by-gate path above).

AmpSpan
Statevector::span()
{
    return AmpSpan::interleaved(amps_.data(), amps_.size());
}

void
Statevector::applyDense1(int q, const Complex *m)
{
    kern::applyDense1(span(), q, m);
}

void
Statevector::applyDense2(int qm, int ql, const Complex *m)
{
    kern::applyDense2(span(), qm, ql, m);
}

void
Statevector::applyDiag(std::uint64_t mask, const Complex *table)
{
    kern::applyDiag(span(), mask, table);
}

void
Statevector::applyPermX(int q)
{
    kern::applyPermX(span(), q);
}

void
Statevector::applyPermCX(int qc, int qt)
{
    kern::applyPermCX(span(), qc, qt);
}

void
Statevector::applyPermSwap(int qa, int qb)
{
    kern::applyPermSwap(span(), qa, qb);
}

double
Statevector::probability(std::uint64_t basis_state) const
{
    if (basis_state >= amps_.size())
        throw std::out_of_range("Statevector::probability: state index");
    return std::norm(amps_[basis_state]);
}

std::vector<double>
Statevector::probabilities() const
{
    std::vector<double> p(amps_.size());
    for (std::size_t i = 0; i < amps_.size(); ++i)
        p[i] = std::norm(amps_[i]);
    return p;
}

AmpSpan
Statevector::cspan() const
{
    // The reduction kernels only load through the span; AmpSpan is a
    // mutable view so the shared kernels serve both sides.
    return AmpSpan::interleaved(const_cast<Complex *>(amps_.data()),
                                amps_.size());
}

Complex
Statevector::innerProduct(const Statevector &other) const
{
    if (other.numQubits_ != numQubits_)
        throw std::invalid_argument("Statevector::innerProduct: width");
    return kern::innerProduct(cspan(), other.cspan());
}

double
Statevector::fidelity(const Statevector &other) const
{
    return std::norm(innerProduct(other));
}

double
Statevector::norm() const
{
    return std::sqrt(kern::norm2(cspan()));
}

void
Statevector::normalize()
{
    const double n = norm();
    if (n <= 0.0)
        throw std::runtime_error("Statevector::normalize: zero state");
    invalidateCache();
    for (auto &a : amps_)
        a /= n;
}

const std::vector<double> &
Statevector::cumulativeProbabilities() const
{
    if (!cdfValid_) {
        cdf_.resize(amps_.size());
        double acc = 0.0;
        for (std::size_t i = 0; i < amps_.size(); ++i) {
            acc += std::norm(amps_[i]);
            cdf_[i] = acc;
        }
        cdfValid_ = true;
    }
    return cdf_;
}

std::vector<std::uint64_t>
Statevector::sample(Rng &rng, std::size_t shots) const
{
    // Inverse-CDF sampling over the cumulative distribution; for the
    // small dims here a binary search per shot is fast enough. The CDF
    // itself is cached across calls until the state mutates.
    const std::vector<double> &cdf = cumulativeProbabilities();
    const double acc = cdf.back();
    std::vector<std::uint64_t> out;
    out.reserve(shots);
    for (std::size_t s = 0; s < shots; ++s) {
        const double u = rng.uniform() * acc;
        const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
        out.push_back(static_cast<std::uint64_t>(it - cdf.begin()));
    }
    return out;
}

double
Statevector::expectationZMask(std::uint64_t mask) const
{
    return kern::expectationZMask(cspan(), mask);
}

} // namespace qismet
