#include "sim/compiled_circuit.hpp"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <stdexcept>

namespace qismet {

namespace {

/** Local bit position of qubit `q` inside the gathered `mask` index. */
int
localBit(std::uint64_t mask, int q)
{
    return std::popcount(mask & ((std::uint64_t{1} << q) - 1));
}

/** acc = f * acc, 2x2 row-major. */
void
mulLeft2x2(const Complex *f, Complex *acc)
{
    const Complex a0 = acc[0], a1 = acc[1], a2 = acc[2], a3 = acc[3];
    acc[0] = f[0] * a0 + f[1] * a2;
    acc[1] = f[0] * a1 + f[1] * a3;
    acc[2] = f[2] * a0 + f[3] * a2;
    acc[3] = f[2] * a1 + f[3] * a3;
}

/** acc = f * acc, 4x4 row-major. */
void
mulLeft4x4(const Complex *f, Complex *acc)
{
    Complex out[16];
    for (int r = 0; r < 4; ++r) {
        for (int c = 0; c < 4; ++c) {
            Complex sum(0.0, 0.0);
            for (int k = 0; k < 4; ++k)
                sum += f[r * 4 + k] * acc[k * 4 + c];
            out[r * 4 + c] = sum;
        }
    }
    for (int k = 0; k < 16; ++k)
        acc[k] = out[k];
}

/**
 * Expand a 1q matrix to the 4x4 acting on one half of a 2q op.
 * sub == 0: f acts on the op's most-significant qubit (F = f (x) I);
 * sub == 1: on the least-significant one (F = I (x) f).
 */
void
expand1qTo4x4(const Complex *f, int sub, Complex *out)
{
    for (int k = 0; k < 16; ++k)
        out[k] = Complex(0.0, 0.0);
    if (sub == 0) {
        for (int a = 0; a < 2; ++a)
            for (int b = 0; b < 2; ++b)
                for (int x = 0; x < 2; ++x)
                    out[((a << 1) | x) * 4 + ((b << 1) | x)] = f[a * 2 + b];
    } else {
        for (int x = 0; x < 2; ++x)
            for (int a = 0; a < 2; ++a)
                for (int b = 0; b < 2; ++b)
                    out[((x << 1) | a) * 4 + ((x << 1) | b)] = f[a * 2 + b];
    }
}

/** Matrix entries an op of this kind occupies in its pool. */
std::size_t
matrixSize(CompiledOpKind kind, std::uint64_t mask)
{
    switch (kind) {
      case CompiledOpKind::Dense1:
      case CompiledOpKind::PermX:
        return 4;
      case CompiledOpKind::Diag:
        return std::size_t{1} << std::popcount(mask);
      case CompiledOpKind::Dense2:
      case CompiledOpKind::PermCX:
      case CompiledOpKind::PermSwap:
        return 16;
    }
    return 0;
}

} // namespace

CompiledCircuit::CompiledCircuit(const Circuit &circuit,
                                 CompileOptions options)
    : numQubits_(circuit.numQubits()), numParams_(circuit.numParams())
{
    const bool absorb2q =
        options.absorb2q == CompileOptions::Absorb2q::Always ||
        (options.absorb2q == CompileOptions::Absorb2q::Auto &&
         numQubits_ >= options.absorb2qAutoWidth);
    const bool fuse = options.fuse;

    /** Fusion work-in-progress node; becomes one CompiledOp unless erased. */
    struct BNode
    {
        CompiledOpKind kind = CompiledOpKind::Dense1;
        int q0 = 0;
        int q1 = 0;
        std::uint64_t mask = 0;
        std::vector<ParamFactor> factors;
        bool erased = false;
    };
    std::vector<BNode> nodes;

    // Index of the last live node touching each qubit. kNone = untouched;
    // kBarrier = the last toucher was cancelled away, so its *predecessor*
    // (which we no longer know) bounds fusion — treat as unfusable.
    constexpr int kNone = -1;
    constexpr int kBarrier = -2;
    std::vector<int> lastTouch(static_cast<std::size_t>(numQubits_), kNone);
    int lastDiag = kNone;

    auto live = [&nodes](int idx) {
        return idx >= 0 && !nodes[static_cast<std::size_t>(idx)].erased;
    };
    auto node = [&nodes](int idx) -> BNode & {
        return nodes[static_cast<std::size_t>(idx)];
    };
    // A diagonal gate on `q` may hoist into the diag run at lastDiag iff
    // nothing after that node touches q.
    auto hoistOk = [&](int q) {
        const int t = lastTouch[static_cast<std::size_t>(q)];
        return t == kNone || (t >= 0 && t <= lastDiag);
    };
    auto touch = [&lastTouch](int q, int idx) {
        lastTouch[static_cast<std::size_t>(q)] = idx;
    };
    auto newNode = [&nodes](CompiledOpKind kind, int q0, int q1,
                            std::uint64_t mask, const Gate &g,
                            int sub) -> int {
        BNode n;
        n.kind = kind;
        n.q0 = q0;
        n.q1 = q1;
        n.mask = mask;
        n.factors.push_back(ParamFactor{g, sub});
        nodes.push_back(std::move(n));
        return static_cast<int>(nodes.size()) - 1;
    };
    // Sub-position of qubit q inside 2q node n (0 = q0/MSB, 1 = q1/LSB).
    auto subOf = [](const BNode &n, int q) { return q == n.q0 ? 0 : 1; };

    for (const Gate &g : circuit.gates()) {
        if (g.type == GateType::I)
            continue;
        ++stats_.inputGates;

        if (gateArity(g.type) == 1) {
            const int q = g.qubits[0];
            const int t = lastTouch[static_cast<std::size_t>(q)];
            const bool diag = isDiagonal(g.type);

            // Multiply into the last dense node touching q, whatever the
            // gate (dense and diagonal 1q gates alike).
            if (fuse && live(t) &&
                (node(t).kind == CompiledOpKind::Dense1 ||
                 node(t).kind == CompiledOpKind::Dense2)) {
                BNode &n = node(t);
                const int sub =
                    n.kind == CompiledOpKind::Dense1 ? -1 : subOf(n, q);
                n.factors.push_back(ParamFactor{g, sub});
                continue;
            }
            // X·X on the same qubit cancels outright.
            if (fuse && g.type == GateType::X && live(t) &&
                node(t).kind == CompiledOpKind::PermX &&
                node(t).factors.size() == 1) {
                node(t).erased = true;
                stats_.cancelled += 2;
                touch(q, kBarrier);
                continue;
            }
            // Promote a pending X into a dense 1q product.
            if (fuse && live(t) && node(t).kind == CompiledOpKind::PermX) {
                BNode &n = node(t);
                n.kind = CompiledOpKind::Dense1;
                n.factors.push_back(ParamFactor{g, -1});
                continue;
            }
            // Absorb into a neighbouring CX/SWAP as a dense 4x4 (gated:
            // only profitable once states outgrow cache).
            if (fuse && absorb2q && live(t) &&
                (node(t).kind == CompiledOpKind::PermCX ||
                 node(t).kind == CompiledOpKind::PermSwap)) {
                BNode &n = node(t);
                n.kind = CompiledOpKind::Dense2;
                n.factors.push_back(ParamFactor{g, subOf(n, q)});
                continue;
            }
            if (diag) {
                // Hoist into the open run of commuting diagonals.
                if (fuse && live(lastDiag) && hoistOk(q)) {
                    BNode &n = node(lastDiag);
                    const std::uint64_t bit = std::uint64_t{1} << q;
                    const int width = std::popcount(n.mask | bit);
                    if (width <= options.maxDiagQubits) {
                        n.mask |= bit;
                        n.factors.push_back(ParamFactor{g, -1});
                        touch(q, lastDiag);
                        continue;
                    }
                }
                lastDiag = newNode(CompiledOpKind::Diag, q, q,
                                   std::uint64_t{1} << q, g, -1);
                touch(q, lastDiag);
                continue;
            }
            const CompiledOpKind kind = g.type == GateType::X
                                            ? CompiledOpKind::PermX
                                            : CompiledOpKind::Dense1;
            touch(q, newNode(kind, q, q, 0, g, -1));
            continue;
        }

        // Two-qubit gates.
        const int a = g.qubits[0];
        const int b = g.qubits[1];
        const int ta = lastTouch[static_cast<std::size_t>(a)];
        const int tb = lastTouch[static_cast<std::size_t>(b)];

        // Multiply into an open dense 4x4 on the same pair.
        if (fuse && ta == tb && live(ta) &&
            node(ta).kind == CompiledOpKind::Dense2) {
            node(ta).factors.push_back(ParamFactor{g, -1});
            continue;
        }

        if (g.type == GateType::CZ) {
            if (fuse && live(lastDiag) && hoistOk(a) && hoistOk(b)) {
                BNode &n = node(lastDiag);
                const std::uint64_t bits =
                    (std::uint64_t{1} << a) | (std::uint64_t{1} << b);
                const int width = std::popcount(n.mask | bits);
                if (width <= options.maxDiagQubits) {
                    n.mask |= bits;
                    n.factors.push_back(ParamFactor{g, -1});
                    touch(a, lastDiag);
                    touch(b, lastDiag);
                    continue;
                }
            }
            lastDiag = newNode(CompiledOpKind::Diag, a, b,
                               (std::uint64_t{1} << a) |
                                   (std::uint64_t{1} << b),
                               g, -1);
            touch(a, lastDiag);
            touch(b, lastDiag);
            continue;
        }

        // CX·CX (same orientation) / SWAP·SWAP cancel.
        const CompiledOpKind permKind = g.type == GateType::CX
                                            ? CompiledOpKind::PermCX
                                            : CompiledOpKind::PermSwap;
        if (fuse && ta == tb && live(ta) && node(ta).kind == permKind &&
            node(ta).factors.size() == 1 &&
            (permKind == CompiledOpKind::PermSwap ||
             (node(ta).q0 == a && node(ta).q1 == b))) {
            node(ta).erased = true;
            stats_.cancelled += 2;
            touch(a, kBarrier);
            touch(b, kBarrier);
            continue;
        }

        // Pull pending dense 1q work on either leg into a dense 4x4
        // together with this entangler (gated like absorb2q above).
        const bool pullA =
            fuse && absorb2q && live(ta) &&
            node(ta).kind == CompiledOpKind::Dense1;
        const bool pullB =
            fuse && absorb2q && live(tb) &&
            node(tb).kind == CompiledOpKind::Dense1;
        if (pullA || pullB) {
            BNode n;
            n.kind = CompiledOpKind::Dense2;
            n.q0 = a;
            n.q1 = b;
            if (pullA) {
                for (const ParamFactor &f : node(ta).factors)
                    n.factors.push_back(ParamFactor{f.gate, 0});
                node(ta).erased = true;
            }
            if (pullB) {
                for (const ParamFactor &f : node(tb).factors)
                    n.factors.push_back(ParamFactor{f.gate, 1});
                node(tb).erased = true;
            }
            n.factors.push_back(ParamFactor{g, -1});
            nodes.push_back(std::move(n));
            const int idx = static_cast<int>(nodes.size()) - 1;
            touch(a, idx);
            touch(b, idx);
            continue;
        }

        const int idx = newNode(permKind, a, b, 0, g, -1);
        touch(a, idx);
        touch(b, idx);
    }

    // Emit the op stream: constant nodes evaluate into the const pool
    // now; parameterized nodes become bind-time slots.
    for (const BNode &n : nodes) {
        if (n.erased)
            continue;
        bool parameterized = false;
        for (const ParamFactor &f : n.factors)
            parameterized = parameterized || f.gate.isParameterized();

        const std::size_t size = matrixSize(n.kind, n.mask);
        CompiledOp op;
        op.kind = n.kind;
        op.parameterized = parameterized;
        op.q0 = n.q0;
        op.q1 = n.q1;
        op.mask = n.mask;

        ParamSlot slot;
        slot.kind = n.kind;
        slot.mask = n.mask;
        slot.q0 = n.q0;
        slot.q1 = n.q1;
        slot.factors = n.factors;

        if (parameterized) {
            op.offset = static_cast<std::uint32_t>(bindPoolSize_);
            slot.offset = op.offset;
            bindPoolSize_ += size;
            slots_.push_back(std::move(slot));
        } else {
            op.offset = static_cast<std::uint32_t>(constPool_.size());
            slot.offset = op.offset;
            constPool_.resize(constPool_.size() + size);
            evalSlot(slot, {}, constPool_.data() + op.offset);
        }
        ops_.push_back(op);

        ++stats_.ops;
        switch (n.kind) {
          case CompiledOpKind::Dense1:
            ++stats_.dense1;
            break;
          case CompiledOpKind::Dense2:
            ++stats_.dense2;
            break;
          case CompiledOpKind::Diag:
            ++stats_.diag;
            break;
          case CompiledOpKind::PermX:
          case CompiledOpKind::PermCX:
          case CompiledOpKind::PermSwap:
            ++stats_.perm;
            break;
        }
    }
}

void
CompiledCircuit::evalSlot(const ParamSlot &slot,
                          const std::vector<double> &params,
                          Complex *out) const
{
    switch (slot.kind) {
      case CompiledOpKind::Dense1:
      case CompiledOpKind::PermX: {
        out[0] = out[3] = Complex(1.0, 0.0);
        out[1] = out[2] = Complex(0.0, 0.0);
        Complex f[4];
        for (const ParamFactor &factor : slot.factors) {
            factor.gate.matrixInto(f, params);
            mulLeft2x2(f, out);
        }
        return;
      }
      case CompiledOpKind::Dense2:
      case CompiledOpKind::PermCX:
      case CompiledOpKind::PermSwap: {
        for (int k = 0; k < 16; ++k)
            out[k] = Complex(0.0, 0.0);
        out[0] = out[5] = out[10] = out[15] = Complex(1.0, 0.0);
        Complex f[16];
        Complex expanded[16];
        for (const ParamFactor &factor : slot.factors) {
            const Gate &g = factor.gate;
            if (factor.sub >= 0) {
                Complex f1[4];
                g.matrixInto(f1, params);
                expand1qTo4x4(f1, factor.sub, expanded);
                mulLeft4x4(expanded, out);
                continue;
            }
            g.matrixInto(f, params);
            if (g.qubits[0] == slot.q1 && g.qubits[1] == slot.q0) {
                // The factor's qubit order is reversed relative to the
                // op: permute local indices by swapping their two bits.
                auto p = [](int x) { return ((x & 1) << 1) | (x >> 1); };
                for (int r = 0; r < 4; ++r)
                    for (int c = 0; c < 4; ++c)
                        expanded[p(r) * 4 + p(c)] = f[r * 4 + c];
                mulLeft4x4(expanded, out);
            } else {
                mulLeft4x4(f, out);
            }
        }
        return;
      }
      case CompiledOpKind::Diag: {
        const std::size_t size = matrixSize(slot.kind, slot.mask);
        for (std::size_t k = 0; k < size; ++k)
            out[k] = Complex(1.0, 0.0);
        for (const ParamFactor &factor : slot.factors) {
            const Gate &g = factor.gate;
            if (gateArity(g.type) == 1) {
                Complex d[2];
                g.diagonalInto(d, params);
                const int bi = localBit(slot.mask, g.qubits[0]);
                for (std::size_t li = 0; li < size; ++li)
                    out[li] *= d[(li >> bi) & 1];
            } else {
                // CZ: phase -1 where both acted-on bits are set.
                const std::size_t b0 = static_cast<std::size_t>(
                    localBit(slot.mask, g.qubits[0]));
                const std::size_t b1 = static_cast<std::size_t>(
                    localBit(slot.mask, g.qubits[1]));
                const std::size_t both =
                    (std::size_t{1} << b0) | (std::size_t{1} << b1);
                for (std::size_t li = 0; li < size; ++li)
                    if ((li & both) == both)
                        out[li] = -out[li];
            }
        }
        return;
      }
    }
    throw std::logic_error("CompiledCircuit::evalSlot: unknown op kind");
}

void
CompiledCircuit::bind(const std::vector<double> &params,
                      std::vector<Complex> &pool) const
{
    if (params.size() != static_cast<std::size_t>(numParams_)) {
        throw std::invalid_argument(
            "CompiledCircuit::bind: expected " +
            std::to_string(numParams_) + " parameters, got " +
            std::to_string(params.size()));
    }
    pool.resize(bindPoolSize_);
    for (const ParamSlot &slot : slots_)
        evalSlot(slot, params, pool.data() + slot.offset);
}

namespace {

std::atomic<int> g_fusionOverride{-1};

} // namespace

bool
fusionEnabled()
{
    const int override_ = g_fusionOverride.load(std::memory_order_relaxed);
    if (override_ >= 0)
        return override_ != 0;
    static const bool envDisabled =
        std::getenv("QISMET_NO_FUSION") != nullptr;
    return !envDisabled;
}

void
setFusionEnabled(bool on)
{
    g_fusionOverride.store(on ? 1 : 0, std::memory_order_relaxed);
}

} // namespace qismet
