#include "sim/shot_sampler.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "common/thread_pool.hpp"

namespace qismet {

void
ReadoutError::check() const
{
    if (p10 < 0.0 || p10 > 1.0 || p01 < 0.0 || p01 > 1.0)
        throw std::invalid_argument("ReadoutError: probability outside [0,1]");
}

ShotSampler::ShotSampler(std::vector<ReadoutError> readout)
    : readout_(std::move(readout))
{
    for (const auto &r : readout_)
        r.check();
}

std::uint64_t
ShotSampler::applyReadout(std::uint64_t bits, int num_qubits, Rng &rng) const
{
    if (readout_.empty())
        return bits;
    if (static_cast<int>(readout_.size()) < num_qubits)
        throw std::invalid_argument(
            "ShotSampler: readout entries fewer than qubits");
    for (int q = 0; q < num_qubits; ++q) {
        const std::uint64_t bit = std::uint64_t{1} << q;
        const bool is_one = bits & bit;
        const double flip_p = is_one ? readout_[q].p01 : readout_[q].p10;
        if (flip_p > 0.0 && rng.bernoulli(flip_p))
            bits ^= bit;
    }
    return bits;
}

Counts
ShotSampler::sample(const std::vector<double> &probs, int num_qubits,
                    std::size_t shots, Rng &rng) const
{
    if (probs.size() != (std::size_t{1} << num_qubits))
        throw std::invalid_argument("ShotSampler::sample: size mismatch");

    // Build CDF once.
    std::vector<double> cdf(probs.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < probs.size(); ++i) {
        if (probs[i] < -1e-12)
            throw std::invalid_argument("ShotSampler: negative probability");
        acc += std::max(0.0, probs[i]);
        cdf[i] = acc;
    }
    return sampleFromCdf(cdf, num_qubits, shots, rng);
}

Counts
ShotSampler::sampleFromCdf(const std::vector<double> &cdf, int num_qubits,
                           std::size_t shots, Rng &rng) const
{
    const double acc = cdf.back();
    if (acc <= 0.0)
        throw std::invalid_argument("ShotSampler: all-zero distribution");

    Counts counts;
    for (std::size_t s = 0; s < shots; ++s) {
        const double u = rng.uniform() * acc;
        const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
        auto outcome = static_cast<std::uint64_t>(it - cdf.begin());
        outcome = applyReadout(outcome, num_qubits, rng);
        ++counts[outcome];
    }
    return counts;
}

Counts
ShotSampler::sample(const Statevector &state, std::size_t shots,
                    Rng &rng) const
{
    return sampleFromCdf(state.cumulativeProbabilities(), state.numQubits(),
                         shots, rng);
}

std::vector<Counts>
ShotSampler::sampleBatch(
    const std::vector<std::vector<double>> &distributions, int num_qubits,
    std::size_t shots, Rng &rng) const
{
    // Split the sub-streams serially, before any fan-out, so the
    // randomness each distribution sees is independent of scheduling.
    std::vector<Rng> subRngs;
    subRngs.reserve(distributions.size());
    for (std::size_t i = 0; i < distributions.size(); ++i)
        subRngs.push_back(rng.split());

    std::vector<Counts> out(distributions.size());
    ParallelExecutor::global().parallelFor(
        distributions.size(), [&](std::size_t i) {
            out[i] = sample(distributions[i], num_qubits, shots, subRngs[i]);
        });
    return out;
}

std::uint64_t
totalShots(const Counts &counts)
{
    std::uint64_t total = 0;
    for (const auto &[bits, n] : counts)
        total += n;
    return total;
}

std::vector<double>
countsToProbabilities(const Counts &counts, int num_qubits)
{
    std::vector<double> p(std::size_t{1} << num_qubits, 0.0);
    const auto total = static_cast<double>(totalShots(counts));
    if (total == 0.0)
        return p;
    for (const auto &[bits, n] : counts) {
        if (bits >= p.size())
            throw std::out_of_range("countsToProbabilities: outcome too wide");
        p[bits] = static_cast<double>(n) / total;
    }
    return p;
}

double
countsExpectationZMask(const Counts &counts, std::uint64_t mask)
{
    const auto total = static_cast<double>(totalShots(counts));
    if (total == 0.0)
        return 0.0;
    double e = 0.0;
    for (const auto &[bits, n] : counts) {
        const int parity = std::popcount(bits & mask) & 1;
        e += (parity ? -1.0 : 1.0) * static_cast<double>(n);
    }
    return e / total;
}

} // namespace qismet
