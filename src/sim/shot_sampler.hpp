/**
 * @file
 * Finite-shot sampling with readout (SPAM) errors.
 *
 * Bridges the exact simulators and the noisy "machine" view: sampled
 * bitstrings pass through an asymmetric per-qubit readout-error channel,
 * producing the counts dictionaries measurement-error mitigation and the
 * VQE energy estimator consume.
 */

#ifndef QISMET_SIM_SHOT_SAMPLER_HPP
#define QISMET_SIM_SHOT_SAMPLER_HPP

#include <cstdint>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "sim/statevector.hpp"

namespace qismet {

/** Measurement outcome histogram: basis-state index -> count. */
using Counts = std::map<std::uint64_t, std::uint64_t>;

/**
 * Per-qubit asymmetric readout error.
 *
 * p10 = P(read 1 | prepared 0), p01 = P(read 0 | prepared 1). Real
 * devices have p01 > p10 (relaxation during readout biases toward 0).
 */
struct ReadoutError
{
    double p10 = 0.0;
    double p01 = 0.0;

    /** Validate the probabilities. */
    void check() const;
};

/** Samples counts from ideal distributions through readout errors. */
class ShotSampler
{
  public:
    /**
     * @param readout One entry per qubit; empty means error-free readout.
     */
    explicit ShotSampler(std::vector<ReadoutError> readout = {});

    /**
     * Sample `shots` outcomes from an ideal probability vector,
     * applying the readout channel to every sampled bitstring.
     * @param probs Ideal outcome distribution (size = 2^n).
     * @param num_qubits Register width (for readout flips).
     */
    Counts sample(const std::vector<double> &probs, int num_qubits,
                  std::size_t shots, Rng &rng) const;

    /**
     * Convenience overload sampling directly from a statevector.
     * Reuses the state's cached CDF (Statevector::
     * cumulativeProbabilities), so repeated sampling of an unchanged
     * state skips both the probability copy and the CDF rebuild.
     */
    Counts sample(const Statevector &state, std::size_t shots,
                  Rng &rng) const;

    /**
     * Sample a batch of independent distributions, fanning the work out
     * over the global ParallelExecutor.
     *
     * Each distribution receives its own RNG sub-stream split from
     * `rng` before dispatch (`rng` advances once per distribution, as
     * if split() were called in index order), so the result is a pure
     * function of the inputs and the rng state — bit-identical for
     * every thread count.
     */
    std::vector<Counts>
    sampleBatch(const std::vector<std::vector<double>> &distributions,
                int num_qubits, std::size_t shots, Rng &rng) const;

    const std::vector<ReadoutError> &readout() const { return readout_; }

  private:
    std::uint64_t applyReadout(std::uint64_t bits, int num_qubits,
                               Rng &rng) const;
    Counts sampleFromCdf(const std::vector<double> &cdf, int num_qubits,
                         std::size_t shots, Rng &rng) const;

    std::vector<ReadoutError> readout_;
};

/** Total number of shots recorded in a counts histogram. */
std::uint64_t totalShots(const Counts &counts);

/** Normalize counts to an empirical probability vector of size 2^n. */
std::vector<double> countsToProbabilities(const Counts &counts,
                                          int num_qubits);

/**
 * <Z_mask> estimated from counts: average parity of the masked bits
 * (+1 for even, -1 for odd).
 */
double countsExpectationZMask(const Counts &counts, std::uint64_t mask);

} // namespace qismet

#endif // QISMET_SIM_SHOT_SAMPLER_HPP
