/**
 * @file
 * Vectorized + block-parallel simulation kernels.
 *
 * These are the hot inner loops of the compiled-circuit engine
 * (DESIGN.md "SIMD + intra-state parallelism"): dense 2x2/4x4 gate
 * application, merged diagonal tables, amplitude permutations, and the
 * ordered reductions (norms, inner products, Z-mask expectations). The
 * `apply*` entry points split the state across the global
 * ParallelExecutor in fixed blocks (common/block_partition.hpp) and
 * dispatch each block's inner loop to either the AVX2 or the portable
 * scalar implementation (common/simd.hpp).
 *
 * ## Rounding contract
 *
 * FP contraction is **off** on every path. Both implementations execute
 * the same IEEE-754 operations in the same order:
 *
 *   - complex multiply is the naive form `(xr*yr - xi*yi,
 *     xr*yi + xi*yr)` — two multiplies, one add/sub per component, each
 *     rounded individually, exactly what the pre-SIMD std::complex code
 *     produced for finite values (operand order inside a product or a
 *     commutative add may differ between lanes and scalar code; IEEE
 *     multiply and add are commutative bit-for-bit, so this is still
 *     identical);
 *   - real-matrix 2x2 fast path: `r00*a0 + r01*a1` componentwise, as
 *     before;
 *   - 4x4 rows accumulate from an explicit zero in column order, as
 *     before;
 *   - diagonal entries equal to exactly 1+0i are skipped, not
 *     multiplied, as before (multiplying by one can flip a -0.0).
 *
 * Consequently SIMD-on, SIMD-off, split-complex and every thread count
 * produce bit-identical amplitudes, and all of them match the legacy
 * gate-by-gate path bit-for-bit on finite data — pinned by
 * tests/sim/test_kernel_equivalence.cpp and the golden replays.
 *
 * The contiguous-run micro-kernels (`dense1Run`, `dense2Run`, ...) are
 * shared with the density-matrix sweeps, whose row/column structure
 * reduces to the same dual/quad-stream inner loops.
 */

#ifndef QISMET_SIM_KERNELS_HPP
#define QISMET_SIM_KERNELS_HPP

#include <cstddef>
#include <cstdint>

#include "common/amp_span.hpp"
#include "common/matrix.hpp"
#include "common/simd.hpp"

namespace qismet {
namespace kern {

/** @name Whole-state kernels (blocked/parallel + SIMD dispatch) @{ */

/** Apply a dense 2x2 (row-major m[4]) to qubit q. */
void applyDense1(const AmpSpan &amps, int q, const Complex *m);

/** Apply a dense 4x4 (row-major m[16]) to (qm, ql), qm most significant. */
void applyDense2(const AmpSpan &amps, int qm, int ql, const Complex *m);

/**
 * Apply a diagonal phase table over the qubits in `mask` (table entry
 * index = gathered mask bits, ascending qubit order).
 */
void applyDiag(const AmpSpan &amps, std::uint64_t mask, const Complex *table);

/** Pauli-X on qubit q (amplitude pair swap). */
void applyPermX(const AmpSpan &amps, int q);

/** CX with control qc, target qt (conditional pair swap). */
void applyPermCX(const AmpSpan &amps, int qc, int qt);

/** SWAP of qubits qa, qb (cross-qubit amplitude exchange). */
void applyPermSwap(const AmpSpan &amps, int qa, int qb);

/** @} */

/** @name Ordered reductions (scalar arithmetic, fixed-block fold) @{ */

/** Sum of |a_i|^2. */
double norm2(const AmpSpan &amps);

/** <a|b> = sum conj(a_i) b_i; spans must have equal size. */
Complex innerProduct(const AmpSpan &a, const AmpSpan &b);

/** <Z_mask>: parity-signed probability sum. */
double expectationZMask(const AmpSpan &amps, std::uint64_t mask);

/** @} */

/**
 * @name Grouped Pauli-sum expectation sweep
 *
 * One Hamiltonian term lowered for the batched single-sweep evaluator
 * (pauli/expectation_plan.hpp): terms sharing an xmask are swept
 * together so the `conj(a[i^xmask])·a[i]` amplitude loads are paid once
 * per group instead of once per term. The per-basis-state phase of a
 * term is ±i^nY — a constant selected by the parity of
 * popcount(i & zmask) — so it is pre-folded into two Complex constants
 * at plan-compile time (computed through the exact op sequence the
 * legacy pauliPhase() used, keeping the products bit-identical).
 * @{
 */
struct PauliTermSpec
{
    std::uint64_t zmask = 0;
    /** Phase for even parity of popcount(i & zmask): i^nY. */
    Complex phasePlus{1.0, 0.0};
    /** Phase for odd parity: -(i^nY). */
    Complex phaseMinus{-1.0, 0.0};
};

/**
 * Most terms the AVX2 group core takes per call (it builds per-term
 * phase-select tables on the stack). The dispatch wrapper slabs larger
 * groups along the term axis — harmless for determinism, since each
 * term owns an independent accumulator.
 */
inline constexpr std::size_t kPauliGroupSlab = 32;

/**
 * Accumulate, for every term t of one xmask group,
 *
 *   acc[t] += Σ_{i in [u0,u1)} Re( conj(a[i^xmask]) · phase_t(i) · a[i] )
 *
 * with phase_t(i) = terms[t].phasePlus/Minus by parity of
 * popcount(i & zmask). Each contribution is formed with the legacy
 * std::complex operation order (two naive complex multiplies, real
 * component kept), and per-term accumulation runs in ascending i, so
 * the result is bit-identical to the term-by-term path. `simd` is the
 * dispatch decision (pass simdEnabled()); the AVX2 core requires the
 * interleaved layout and falls back to scalar otherwise. Only the real
 * parts are accumulated — the legacy path discards the imaginary
 * accumulator after the sweep, so dropping it cannot change bits.
 */
void pauliGroupSums(const AmpSpan &amps, std::uint64_t xmask,
                    const PauliTermSpec *terms, std::size_t num_terms,
                    bool simd, std::size_t u0, std::size_t u1, double *acc);

/** @} */

/**
 * @name Contiguous-run micro-kernels (interleaved layout)
 *
 * Serial building blocks reused by the density-matrix sweeps. `simd`
 * is the dispatch decision, resolved once per sweep by the caller
 * (pass `simdEnabled()`).
 * @{
 */

/**
 * 2x2 across two contiguous runs: (p0[i], p1[i]) <- m * (p0[i], p1[i])
 * for i in [0, count).
 */
void dense1Run(Complex *p0, Complex *p1, std::size_t count, const Complex *m,
               bool simd);

/** 4x4 across four contiguous runs, local order (p0,p1,p2,p3). */
void dense2Run(Complex *p0, Complex *p1, Complex *p2, Complex *p3,
               std::size_t count, const Complex *m, bool simd);

/** run[i] *= d for i in [0, count). */
void scaleRun(Complex *run, Complex d, std::size_t count, bool simd);

/** row[i] *= rowPhase * conj(phases[i]) — diagonal conjugation row. */
void conjPhaseRow(Complex *row, const Complex *phases, Complex rowPhase,
                  std::size_t count, bool simd);

/** Exchange two contiguous runs of count amplitudes. */
void swapRuns(Complex *a, Complex *b, std::size_t count, bool simd);

/** @} */

/**
 * @name Unit-range cores (interleaved layout)
 *
 * One "unit" is an independent work item: an amplitude pair (dense1 /
 * permX), a 4-tuple (dense2 / permCX / permSwap), or one amplitude
 * (diag). Each core handles an arbitrary [k0, k1) sub-range so the
 * blocked partition can hand out pieces; the density-matrix sweeps call
 * them serially per row with transposed matrices.
 * @{
 */

/** Dense 2x2 over pair range; `real` selects the real-matrix fast path. */
void dense1Units(Complex *a, int q, const Complex *m, bool real, bool simd,
                 std::size_t k0, std::size_t k1);

/** Dense 4x4 over 4-tuple range (qm most significant local bit). */
void dense2Units(Complex *a, int qm, int ql, const Complex *m, bool simd,
                 std::size_t k0, std::size_t k1);

/** Diagonal table over amplitude range [u0, u1) of a dim-sized state. */
void diagUnits(Complex *a, std::size_t dim, std::uint64_t mask,
               const Complex *table, bool simd, std::size_t u0,
               std::size_t u1);

/** X pair-swap over pair range. */
void permXUnits(Complex *a, int q, bool simd, std::size_t k0, std::size_t k1);

/** CX conditional swap over 4-tuple range. */
void permCXUnits(Complex *a, int qc, int qt, bool simd, std::size_t k0,
                 std::size_t k1);

/** SWAP exchange over 4-tuple range. */
void permSwapUnits(Complex *a, int qa, int qb, bool simd, std::size_t k0,
                   std::size_t k1);

/** @} */

namespace detail {

/**
 * AVX2 cores, compiled with per-function target("avx2,fma") attributes
 * when QISMET_SIMD_X86; call only when simdAvailable(). Each processes
 * the longest prefix it can vectorize and returns the number of units
 * completed — the portable wrappers finish the tail with the scalar
 * code, so no scalar FP ever executes inside an AVX2-target function
 * (where the compiler would be free to contract it).
 */
std::size_t dense1RunAvx2(Complex *p0, Complex *p1, std::size_t count,
                          const Complex *m);
std::size_t dense1RunRealAvx2(Complex *p0, Complex *p1, std::size_t count,
                              const Complex *m);
std::size_t dense1PairsAvx2(Complex *p, std::size_t count, const Complex *m);
std::size_t dense1PairsRealAvx2(Complex *p, std::size_t count,
                                const Complex *m);
std::size_t dense2RunAvx2(Complex *p0, Complex *p1, Complex *p2, Complex *p3,
                          std::size_t count, const Complex *m);
std::size_t scaleRunAvx2(Complex *run, Complex d, std::size_t count);
std::size_t conjPhaseRowAvx2(Complex *row, const Complex *phases,
                             Complex rowPhase, std::size_t count);
std::size_t swapRunsAvx2(Complex *a, Complex *b, std::size_t count);
std::size_t swapAdjacentPairsAvx2(Complex *p, std::size_t count);
std::size_t pauliGroupSumsAvx2(const Complex *a, std::uint64_t xmask,
                               const PauliTermSpec *terms,
                               std::size_t num_terms, std::size_t u0,
                               std::size_t u1, double *acc);

} // namespace detail

} // namespace kern
} // namespace qismet

#endif // QISMET_SIM_KERNELS_HPP
