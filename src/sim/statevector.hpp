/**
 * @file
 * Dense statevector simulator.
 *
 * Qubit ordering is little-endian (Qiskit convention): qubit q maps to
 * bit q of the basis-state index. Circuits here are at most ~20 qubits
 * (the paper's applications are 6-qubit), so a flat dense amplitude
 * array is the right representation.
 */

#ifndef QISMET_SIM_STATEVECTOR_HPP
#define QISMET_SIM_STATEVECTOR_HPP

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/amp_span.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "sim/compiled_circuit.hpp"

namespace qismet {

/** Pure-state simulator over a fixed qubit register. */
class Statevector
{
  public:
    /** Initialize to |0...0> over num_qubits qubits. */
    explicit Statevector(int num_qubits);

    /** Initialize from raw amplitudes (size must be a power of two). */
    explicit Statevector(std::vector<Complex> amplitudes);

    int numQubits() const { return numQubits_; }
    std::size_t dim() const { return amps_.size(); }
    const std::vector<Complex> &amplitudes() const { return amps_; }

    /** Reset to |0...0>. */
    void reset();

    /** Apply one gate (params needed if the gate is parameterized). */
    void applyGate(const Gate &gate, const std::vector<double> &params = {});

    /** Apply an arbitrary 2x2 unitary to qubit q. */
    void apply1q(int q, const Matrix &u);

    /**
     * Apply an arbitrary 4x4 unitary to (q1, q0) where q1 indexes the
     * most-significant bit of the 4x4 local space (matching
     * Gate::matrix's [qubits[0], qubits[1]] ordering with q1 = qubits[0]).
     */
    void apply2q(int q1, int q0, const Matrix &u);

    /**
     * Run a whole circuit. With fusion enabled (the default, see
     * fusionEnabled()) the circuit is compiled and executed through the
     * fused kernels; otherwise the original gate-by-gate path runs
     * bit-for-bit.
     */
    void run(const Circuit &circuit, const std::vector<double> &params = {});

    /**
     * Run a pre-compiled circuit. This is the hot path: callers that
     * execute the same circuit many times (the VQE estimator) compile
     * once and reuse. Parameter-dependent matrices are bound into this
     * statevector's own scratch pool, so distinct Statevector instances
     * may run the same CompiledCircuit concurrently.
     */
    void run(const CompiledCircuit &circuit,
             const std::vector<double> &params = {});

    /** Probability of the basis state with the given index. */
    double probability(std::uint64_t basis_state) const;

    /** Full probability vector (|amplitude|^2). */
    std::vector<double> probabilities() const;

    /** <this|other>; states must have equal width. */
    Complex innerProduct(const Statevector &other) const;

    /** State fidelity |<this|other>|^2. */
    double fidelity(const Statevector &other) const;

    /** 2-norm of the amplitude vector (should stay 1 under unitaries). */
    double norm() const;

    /** Renormalize to unit norm (guards numeric drift in long runs). */
    void normalize();

    /**
     * Sample shot basis-state indices from the current distribution.
     * Reuses the cached CDF (see cumulativeProbabilities()), so
     * repeated sampling of an unchanged state pays the CDF build once.
     * @param rng Source of randomness.
     * @param shots Number of samples.
     */
    std::vector<std::uint64_t> sample(Rng &rng, std::size_t shots) const;

    /**
     * Cumulative probability vector (prefix sums of |amplitude|^2),
     * built lazily and cached until the next state mutation. Shared
     * with ShotSampler so neither rebuilds the CDF per call.
     *
     * The cache makes concurrent first calls on the *same* object a
     * data race; concurrent samplers each run their own copy of the
     * state (as the energy estimator already does).
     */
    const std::vector<double> &cumulativeProbabilities() const;

    /** <Z_mask> where mask selects the qubits whose parities multiply. */
    double expectationZMask(std::uint64_t mask) const;

  private:
    void checkQubit(int q) const;
    /** Drop caches that depend on the amplitudes (the sampling CDF). */
    void invalidateCache() { cdfValid_ = false; }

    /** Mutable view of the amplitudes for the kernel layer. */
    AmpSpan span();
    /** Read-only-use view for the reduction kernels (const methods). */
    AmpSpan cspan() const;

    // Fused kernels for the compiled op stream. Matrices are row-major
    // raw pointers into a compiled circuit's const/bind pool. These
    // forward to sim/kernels.hpp (SIMD dispatch + blocked parallelism).
    void applyDense1(int q, const Complex *m);
    void applyDense2(int qm, int ql, const Complex *m);
    void applyDiag(std::uint64_t mask, const Complex *table);
    void applyPermX(int q);
    void applyPermCX(int qc, int qt);
    void applyPermSwap(int qa, int qb);

    int numQubits_;
    std::vector<Complex> amps_;
    /** Scratch for CompiledCircuit::bind (reused across runs). */
    std::vector<Complex> bindPool_;
    /** Lazily built sampling CDF; valid only while cdfValid_. */
    mutable std::vector<double> cdf_;
    mutable bool cdfValid_ = false;
};

} // namespace qismet

#endif // QISMET_SIM_STATEVECTOR_HPP
