#include "sim/density_matrix.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

#include "common/block_partition.hpp"
#include "sim/kernels.hpp"

namespace qismet {

namespace {

/** out = m† for a row-major w x w matrix. */
void
adjointInto(const Complex *m, int w, Complex *out)
{
    for (int r = 0; r < w; ++r)
        for (int c = 0; c < w; ++c)
            out[c * w + r] = std::conj(m[r * w + c]);
}

/** k-th index with bit `b` clear, counting upward (bit-deposit). */
std::size_t
depositOne(std::size_t k, std::size_t b)
{
    return (k & (b - 1)) | ((k << 1) & ~((b << 1) - 1));
}

/** k-th index with bits b1|b0 clear, counting upward. */
std::size_t
depositTwo(std::size_t k, std::size_t b1, std::size_t b0)
{
    const std::size_t lo = b1 < b0 ? b1 : b0;
    const std::size_t hi = b1 < b0 ? b0 : b1;
    const std::size_t mLow = lo - 1;
    const std::size_t mMid = (hi - 1) & ~((lo << 1) - 1);
    const std::size_t mHigh = ~((hi << 1) - 1);
    return (k & mLow) | ((k << 1) & mMid) | ((k << 2) & mHigh);
}

} // namespace

DensityMatrix::DensityMatrix(int num_qubits) : numQubits_(num_qubits)
{
    if (num_qubits <= 0 || num_qubits > 12)
        throw std::invalid_argument("DensityMatrix: unsupported qubit count");
    dim_ = std::size_t{1} << num_qubits;
    rho_.assign(dim_ * dim_, Complex(0.0, 0.0));
    rho_[0] = Complex(1.0, 0.0);
}

DensityMatrix::DensityMatrix(const Statevector &state)
    : numQubits_(state.numQubits()), dim_(state.dim())
{
    rho_.assign(dim_ * dim_, Complex(0.0, 0.0));
    const auto &amps = state.amplitudes();
    for (std::size_t r = 0; r < dim_; ++r)
        for (std::size_t c = 0; c < dim_; ++c)
            rho_[r * dim_ + c] = amps[r] * std::conj(amps[c]);
}

void
DensityMatrix::reset()
{
    std::fill(rho_.begin(), rho_.end(), Complex(0.0, 0.0));
    rho_[0] = Complex(1.0, 0.0);
}

void
DensityMatrix::checkQubit(int q) const
{
    if (q < 0 || q >= numQubits_)
        throw std::out_of_range("DensityMatrix: qubit out of range");
}

// The ρ sweeps reduce to the same contiguous-run kernels the
// statevector uses: a left-multiply transforms whole row pairs/quads (a
// row is one contiguous run), a right-multiply applies the transposed
// matrix along each row's columns. Rows are the parallel unit — every
// unit touches a disjoint set of rows, so the fixed-block partition
// (common/block_partition.hpp) applies unchanged. Unlike the
// statevector path there is no real-matrix fast path here: the legacy
// loops always ran the complex formula, and bit-compatibility wins over
// the micro-optimization.

void
DensityMatrix::applyLeft1q(int q, const Complex *m,
                           std::vector<Complex> &rho) const
{
    const std::size_t stride = std::size_t{1} << q;
    Complex *base = rho.data();
    const bool simd = simdEnabled();
    forEachUnitBlocked(
        dim_ >> 1, dim_ * dim_, [&](std::size_t k0, std::size_t k1) {
            for (std::size_t k = k0; k < k1; ++k) {
                const std::size_t r0 = depositOne(k, stride);
                kern::dense1Run(base + r0 * dim_,
                                base + (r0 + stride) * dim_, dim_, m, simd);
            }
        });
}

void
DensityMatrix::applyRight1q(int q, const Complex *m,
                            std::vector<Complex> &rho) const
{
    // ρM pairs columns (c, c + stride) within each row: apply Mᵀ in
    // dense1 form along the row. Same products, same sums as the
    // column-outer legacy loop — complex add and multiply are
    // element-order-insensitive here, so the traversal swap is exact.
    const Complex mt[4] = {m[0], m[2], m[1], m[3]};
    Complex *base = rho.data();
    const bool simd = simdEnabled();
    forEachUnitBlocked(
        dim_, dim_ * dim_, [&](std::size_t r0, std::size_t r1) {
            for (std::size_t r = r0; r < r1; ++r)
                kern::dense1Units(base + r * dim_, q, mt, /*real=*/false,
                                  simd, 0, dim_ >> 1);
        });
}

void
DensityMatrix::applyLeft2q(int q1, int q0, const Complex *m,
                           std::vector<Complex> &rho) const
{
    const std::size_t b1 = std::size_t{1} << q1;
    const std::size_t b0 = std::size_t{1} << q0;
    Complex *base = rho.data();
    const bool simd = simdEnabled();
    forEachUnitBlocked(
        dim_ >> 2, dim_ * dim_, [&](std::size_t k0, std::size_t k1) {
            for (std::size_t k = k0; k < k1; ++k) {
                const std::size_t rb = depositTwo(k, b1, b0);
                kern::dense2Run(base + rb * dim_, base + (rb | b0) * dim_,
                                base + (rb | b1) * dim_,
                                base + (rb | b1 | b0) * dim_, dim_, m,
                                simd);
            }
        });
}

void
DensityMatrix::applyRight2q(int q1, int q0, const Complex *m,
                            std::vector<Complex> &rho) const
{
    Complex mt[16];
    for (int r = 0; r < 4; ++r)
        for (int c = 0; c < 4; ++c)
            mt[c * 4 + r] = m[r * 4 + c];
    Complex *base = rho.data();
    const bool simd = simdEnabled();
    forEachUnitBlocked(
        dim_, dim_ * dim_, [&](std::size_t r0, std::size_t r1) {
            for (std::size_t r = r0; r < r1; ++r)
                kern::dense2Units(base + r * dim_, q1, q0, mt, simd, 0,
                                  dim_ >> 2);
        });
}

void
DensityMatrix::applyGate(const Gate &gate, const std::vector<double> &params)
{
    // Stack storage for the unitary and its adjoint: no per-gate heap
    // allocation on the conjugation path.
    Complex u[16];
    Complex udag[16];
    if (gateArity(gate.type) == 1) {
        checkQubit(gate.qubits[0]);
        gate.matrixInto(u, params);
        adjointInto(u, 2, udag);
        applyLeft1q(gate.qubits[0], u, rho_);
        applyRight1q(gate.qubits[0], udag, rho_);
    } else {
        checkQubit(gate.qubits[0]);
        checkQubit(gate.qubits[1]);
        gate.matrixInto(u, params);
        adjointInto(u, 4, udag);
        applyLeft2q(gate.qubits[0], gate.qubits[1], u, rho_);
        applyRight2q(gate.qubits[0], gate.qubits[1], udag, rho_);
    }
}

void
DensityMatrix::lowerKrausOperators(const KrausChannel &channel, int w)
{
    const auto &ops = channel.operators();
    if (sparseOps_.size() < ops.size()) {
        sparseOps_.resize(ops.size());
        ++scratchAllocs_;
    }
    for (std::size_t o = 0; o < ops.size(); ++o) {
        const Matrix &k = ops[o];
        SparseKraus &s = sparseOps_[o];
        for (int r = 0; r < w; ++r) {
            int nnz = 0;
            for (int c = 0; c < w; ++c) {
                const Complex v = k(static_cast<std::size_t>(r),
                                    static_cast<std::size_t>(c));
                if (v != Complex(0.0, 0.0)) {
                    s.col[r][nnz] = c;
                    s.val[r][nnz] = v;
                    s.cval[r][nnz] = std::conj(v);
                    ++nnz;
                }
            }
            s.nnz[r] = nnz;
        }
    }
}

void
DensityMatrix::applyKrausSum(const std::vector<int> &qubits,
                             const KrausChannel &channel)
{
    // K acts on a fixed 2- or 4-dimensional local subspace, so each
    // (row-block, col-block) tile of ρ maps onto itself:
    //   out[rows[r], cols[c]] = Σ_k Σ_ab K_k[r,a] ρ[rows[a], cols[b]] K̄_k[c,b]
    // Load the tile once, accumulate every operator's contribution
    // through the sparse row forms, and write it back — fully in place,
    // one pass over ρ, no per-channel buffers at all. Noise operators
    // are (near-)Paulis with 1-2 nonzeros per row, so the inner sums
    // collapse accordingly.
    const std::size_t numOps = channel.operators().size();

    if (qubits.size() == 1) {
        lowerKrausOperators(channel, 2);
        const std::size_t b = std::size_t{1} << qubits[0];
        const std::size_t half = dim_ >> 1;
        // Row-block pairs are the parallel unit: each ri owns two whole
        // rows of ρ, so units are disjoint and the blocked partition
        // applies. The tile arithmetic itself stays scalar — the sparse
        // accumulation order is part of the determinism contract.
        forEachUnitBlocked(half, dim_ * dim_, [&](std::size_t ri0,
                                                  std::size_t ri1) {
        for (std::size_t ri = ri0; ri < ri1; ++ri) {
            const std::size_t rb = depositOne(ri, b);
            const std::size_t rows[2] = {rb, rb | b};
            for (std::size_t ci = 0; ci < half; ++ci) {
                const std::size_t cb = depositOne(ci, b);
                const std::size_t cols[2] = {cb, cb | b};
                Complex blk[2][2];
                for (int a = 0; a < 2; ++a)
                    for (int bb = 0; bb < 2; ++bb)
                        blk[a][bb] = rho_[rows[a] * dim_ + cols[bb]];
                Complex out[2][2] = {{Complex(0.0, 0.0), Complex(0.0, 0.0)},
                                     {Complex(0.0, 0.0), Complex(0.0, 0.0)}};
                for (std::size_t o = 0; o < numOps; ++o) {
                    const SparseKraus &s = sparseOps_[o];
                    Complex t[2][2];
                    for (int r = 0; r < 2; ++r) {
                        t[r][0] = t[r][1] = Complex(0.0, 0.0);
                        for (int e = 0; e < s.nnz[r]; ++e) {
                            const Complex v = s.val[r][e];
                            const int a = s.col[r][e];
                            t[r][0] += v * blk[a][0];
                            t[r][1] += v * blk[a][1];
                        }
                    }
                    for (int c = 0; c < 2; ++c)
                        for (int e = 0; e < s.nnz[c]; ++e) {
                            const Complex cv = s.cval[c][e];
                            const int bb = s.col[c][e];
                            out[0][c] += t[0][bb] * cv;
                            out[1][c] += t[1][bb] * cv;
                        }
                }
                for (int r = 0; r < 2; ++r)
                    for (int c = 0; c < 2; ++c)
                        rho_[rows[r] * dim_ + cols[c]] = out[r][c];
            }
        }
        });
        return;
    }

    lowerKrausOperators(channel, 4);
    const std::size_t b1 = std::size_t{1} << qubits[0];
    const std::size_t b0 = std::size_t{1} << qubits[1];
    const std::size_t quarter = dim_ >> 2;
    forEachUnitBlocked(quarter, dim_ * dim_, [&](std::size_t ri0,
                                                 std::size_t ri1) {
    for (std::size_t ri = ri0; ri < ri1; ++ri) {
        const std::size_t rb = depositTwo(ri, b1, b0);
        const std::size_t rows[4] = {rb, rb | b0, rb | b1, rb | b1 | b0};
        for (std::size_t ci = 0; ci < quarter; ++ci) {
            const std::size_t cb = depositTwo(ci, b1, b0);
            const std::size_t cols[4] = {cb, cb | b0, cb | b1, cb | b1 | b0};
            Complex blk[4][4];
            for (int a = 0; a < 4; ++a)
                for (int bb = 0; bb < 4; ++bb)
                    blk[a][bb] = rho_[rows[a] * dim_ + cols[bb]];
            Complex out[4][4];
            for (int r = 0; r < 4; ++r)
                for (int c = 0; c < 4; ++c)
                    out[r][c] = Complex(0.0, 0.0);
            for (std::size_t o = 0; o < numOps; ++o) {
                const SparseKraus &s = sparseOps_[o];
                Complex t[4][4];
                for (int r = 0; r < 4; ++r) {
                    t[r][0] = t[r][1] = t[r][2] = t[r][3] =
                        Complex(0.0, 0.0);
                    for (int e = 0; e < s.nnz[r]; ++e) {
                        const Complex v = s.val[r][e];
                        const int a = s.col[r][e];
                        for (int bb = 0; bb < 4; ++bb)
                            t[r][bb] += v * blk[a][bb];
                    }
                }
                for (int c = 0; c < 4; ++c)
                    for (int e = 0; e < s.nnz[c]; ++e) {
                        const Complex cv = s.cval[c][e];
                        const int bb = s.col[c][e];
                        for (int r = 0; r < 4; ++r)
                            out[r][c] += t[r][bb] * cv;
                    }
            }
            for (int r = 0; r < 4; ++r)
                for (int c = 0; c < 4; ++c)
                    rho_[rows[r] * dim_ + cols[c]] = out[r][c];
        }
    }
    });
}

void
DensityMatrix::applyChannel1q(int q, const KrausChannel &channel)
{
    checkQubit(q);
    if (channel.numQubits() != 1)
        throw std::invalid_argument("applyChannel1q: channel is not 1-qubit");
    applyKrausSum({q}, channel);
}

void
DensityMatrix::applyChannel2q(int q1, int q0, const KrausChannel &channel)
{
    checkQubit(q1);
    checkQubit(q0);
    if (q1 == q0)
        throw std::invalid_argument("applyChannel2q: equal qubits");
    if (channel.numQubits() != 2)
        throw std::invalid_argument("applyChannel2q: channel is not 2-qubit");
    applyKrausSum({q1, q0}, channel);
}

void
DensityMatrix::run(const Circuit &circuit, const std::vector<double> &params)
{
    if (circuit.numQubits() != numQubits_)
        throw std::invalid_argument("DensityMatrix::run: width mismatch");
    // Same amortization rule as Statevector::run, against the dim^2
    // elements a density-matrix sweep touches.
    if (fusionEnabled() && dim_ * dim_ >= kAutoCompileAmplitudes) {
        run(CompiledCircuit(circuit), params);
        return;
    }
    for (const Gate &g : circuit.gates())
        applyGate(g, params);
}

void
DensityMatrix::run(const CompiledCircuit &circuit,
                   const std::vector<double> &params)
{
    if (circuit.numQubits() != numQubits_)
        throw std::invalid_argument("DensityMatrix::run: width mismatch");
    if (circuit.parameterized()) {
        if (bindPool_.capacity() < circuit.bindPoolSize())
            ++scratchAllocs_;
        circuit.bind(params, bindPool_);
    }
    Complex adj[16];
    for (const CompiledOp &op : circuit.ops()) {
        const Complex *m = circuit.matrixFor(op, bindPool_);
        switch (op.kind) {
          case CompiledOpKind::Dense1:
          case CompiledOpKind::PermX:
            adjointInto(m, 2, adj);
            applyLeft1q(op.q0, m, rho_);
            applyRight1q(op.q0, adj, rho_);
            break;
          case CompiledOpKind::Dense2:
          case CompiledOpKind::PermCX:
          case CompiledOpKind::PermSwap:
            adjointInto(m, 4, adj);
            applyLeft2q(op.q0, op.q1, m, rho_);
            applyRight2q(op.q0, op.q1, adj, rho_);
            break;
          case CompiledOpKind::Diag:
            applyDiagConjugation(op.mask, m);
            break;
        }
    }
}

void
DensityMatrix::applyDiagConjugation(std::uint64_t mask, const Complex *table)
{
    // Expand the op's phase table to a per-row phase vector once, then
    // sweep ρ a single time: ρ[r,c] *= d[r] * conj(d[c]).
    if (diagPhase_.capacity() < dim_)
        ++scratchAllocs_;
    diagPhase_.resize(dim_);
    const std::uint64_t comp = (dim_ - 1) & ~mask;
    const int t = std::popcount(mask);
    const std::uint64_t entries = std::uint64_t{1} << t;
    for (std::uint64_t li = 0; li < entries; ++li) {
        const Complex d = table[li];
        const std::uint64_t fixed = depositBits(li, mask);
        std::uint64_t s = 0;
        do {
            diagPhase_[fixed | s] = d;
            s = (s - comp) & comp;
        } while (s != 0);
    }
    const bool simd = simdEnabled();
    forEachUnitBlocked(
        dim_, dim_ * dim_, [&](std::size_t r0, std::size_t r1) {
            for (std::size_t r = r0; r < r1; ++r)
                kern::conjPhaseRow(rho_.data() + r * dim_,
                                   diagPhase_.data(), diagPhase_[r], dim_,
                                   simd);
        });
}

double
DensityMatrix::trace() const
{
    return orderedBlockReduceComplex(
               dim_, dim_,
               [&](std::size_t lo, std::size_t hi) {
                   Complex t(0.0, 0.0);
                   for (std::size_t i = lo; i < hi; ++i)
                       t += rho_[i * dim_ + i];
                   return t;
               })
        .real();
}

double
DensityMatrix::purity() const
{
    // Tr(ρ²) = Σ_rc ρ[r,c] ρ[c,r]; ρ is Hermitian so this is Σ |ρ[r,c]|².
    return orderedBlockReduce(
        rho_.size(), rho_.size(), [&](std::size_t lo, std::size_t hi) {
            double s = 0.0;
            for (std::size_t i = lo; i < hi; ++i)
                s += std::norm(rho_[i]);
            return s;
        });
}

std::vector<double>
DensityMatrix::probabilities() const
{
    std::vector<double> p(dim_);
    for (std::size_t i = 0; i < dim_; ++i)
        p[i] = rho_[i * dim_ + i].real();
    return p;
}

double
DensityMatrix::fidelity(const Statevector &reference) const
{
    if (reference.dim() != dim_)
        throw std::invalid_argument("DensityMatrix::fidelity: width");
    const auto &amps = reference.amplitudes();
    // Blocked by row range: within a block the row-major summation order
    // is the legacy one, and the block partials fold in fixed order.
    return orderedBlockReduceComplex(
               dim_, dim_ * dim_,
               [&](std::size_t r0, std::size_t r1) {
                   Complex acc(0.0, 0.0);
                   for (std::size_t r = r0; r < r1; ++r)
                       for (std::size_t c = 0; c < dim_; ++c)
                           acc += std::conj(amps[r]) * rho_[r * dim_ + c] *
                                  amps[c];
                   return acc;
               })
        .real();
}

double
DensityMatrix::expectation(const Matrix &observable) const
{
    if (observable.rows() != dim_ || observable.cols() != dim_)
        throw std::invalid_argument("DensityMatrix::expectation: shape");
    // Tr(ρ O) = Σ_rc ρ[r,c] O[c,r].
    return orderedBlockReduceComplex(
               dim_, dim_ * dim_,
               [&](std::size_t r0, std::size_t r1) {
                   Complex acc(0.0, 0.0);
                   for (std::size_t r = r0; r < r1; ++r)
                       for (std::size_t c = 0; c < dim_; ++c)
                           acc += rho_[r * dim_ + c] * observable(c, r);
                   return acc;
               })
        .real();
}

} // namespace qismet
