#include "sim/density_matrix.hpp"

#include <cmath>
#include <stdexcept>

namespace qismet {

DensityMatrix::DensityMatrix(int num_qubits) : numQubits_(num_qubits)
{
    if (num_qubits <= 0 || num_qubits > 12)
        throw std::invalid_argument("DensityMatrix: unsupported qubit count");
    dim_ = std::size_t{1} << num_qubits;
    rho_.assign(dim_ * dim_, Complex(0.0, 0.0));
    rho_[0] = Complex(1.0, 0.0);
}

DensityMatrix::DensityMatrix(const Statevector &state)
    : numQubits_(state.numQubits()), dim_(state.dim())
{
    rho_.assign(dim_ * dim_, Complex(0.0, 0.0));
    const auto &amps = state.amplitudes();
    for (std::size_t r = 0; r < dim_; ++r)
        for (std::size_t c = 0; c < dim_; ++c)
            rho_[r * dim_ + c] = amps[r] * std::conj(amps[c]);
}

void
DensityMatrix::reset()
{
    std::fill(rho_.begin(), rho_.end(), Complex(0.0, 0.0));
    rho_[0] = Complex(1.0, 0.0);
}

void
DensityMatrix::checkQubit(int q) const
{
    if (q < 0 || q >= numQubits_)
        throw std::out_of_range("DensityMatrix: qubit out of range");
}

void
DensityMatrix::applyLeft1q(int q, const Matrix &m,
                           std::vector<Complex> &rho) const
{
    const std::size_t stride = std::size_t{1} << q;
    const Complex m00 = m(0, 0), m01 = m(0, 1), m10 = m(1, 0), m11 = m(1, 1);
    for (std::size_t base = 0; base < dim_; base += 2 * stride) {
        for (std::size_t off = 0; off < stride; ++off) {
            const std::size_t r0 = base + off;
            const std::size_t r1 = r0 + stride;
            for (std::size_t c = 0; c < dim_; ++c) {
                const Complex a = rho[r0 * dim_ + c];
                const Complex b = rho[r1 * dim_ + c];
                rho[r0 * dim_ + c] = m00 * a + m01 * b;
                rho[r1 * dim_ + c] = m10 * a + m11 * b;
            }
        }
    }
}

void
DensityMatrix::applyRight1q(int q, const Matrix &m,
                            std::vector<Complex> &rho) const
{
    const std::size_t stride = std::size_t{1} << q;
    const Complex m00 = m(0, 0), m01 = m(0, 1), m10 = m(1, 0), m11 = m(1, 1);
    for (std::size_t base = 0; base < dim_; base += 2 * stride) {
        for (std::size_t off = 0; off < stride; ++off) {
            const std::size_t c0 = base + off;
            const std::size_t c1 = c0 + stride;
            for (std::size_t r = 0; r < dim_; ++r) {
                const Complex a = rho[r * dim_ + c0];
                const Complex b = rho[r * dim_ + c1];
                rho[r * dim_ + c0] = a * m00 + b * m10;
                rho[r * dim_ + c1] = a * m01 + b * m11;
            }
        }
    }
}

void
DensityMatrix::applyLeft2q(int q1, int q0, const Matrix &m,
                           std::vector<Complex> &rho) const
{
    const std::size_t b1 = std::size_t{1} << q1;
    const std::size_t b0 = std::size_t{1} << q0;
    for (std::size_t i = 0; i < dim_; ++i) {
        if (i & (b1 | b0))
            continue;
        const std::size_t rows[4] = {i, i | b0, i | b1, i | b1 | b0};
        for (std::size_t c = 0; c < dim_; ++c) {
            Complex in[4];
            for (int k = 0; k < 4; ++k)
                in[k] = rho[rows[k] * dim_ + c];
            for (int r = 0; r < 4; ++r) {
                Complex acc(0.0, 0.0);
                for (int k = 0; k < 4; ++k)
                    acc += m(r, k) * in[k];
                rho[rows[r] * dim_ + c] = acc;
            }
        }
    }
}

void
DensityMatrix::applyRight2q(int q1, int q0, const Matrix &m,
                            std::vector<Complex> &rho) const
{
    const std::size_t b1 = std::size_t{1} << q1;
    const std::size_t b0 = std::size_t{1} << q0;
    for (std::size_t i = 0; i < dim_; ++i) {
        if (i & (b1 | b0))
            continue;
        const std::size_t cols[4] = {i, i | b0, i | b1, i | b1 | b0};
        for (std::size_t r = 0; r < dim_; ++r) {
            Complex in[4];
            for (int k = 0; k < 4; ++k)
                in[k] = rho[r * dim_ + cols[k]];
            for (int c = 0; c < 4; ++c) {
                Complex acc(0.0, 0.0);
                for (int k = 0; k < 4; ++k)
                    acc += in[k] * m(k, c);
                rho[r * dim_ + cols[c]] = acc;
            }
        }
    }
}

void
DensityMatrix::applyGate(const Gate &gate, const std::vector<double> &params)
{
    const Matrix u = gate.matrix(params);
    const Matrix udag = u.adjoint();
    if (gateArity(gate.type) == 1) {
        checkQubit(gate.qubits[0]);
        applyLeft1q(gate.qubits[0], u, rho_);
        applyRight1q(gate.qubits[0], udag, rho_);
    } else {
        checkQubit(gate.qubits[0]);
        checkQubit(gate.qubits[1]);
        applyLeft2q(gate.qubits[0], gate.qubits[1], u, rho_);
        applyRight2q(gate.qubits[0], gate.qubits[1], udag, rho_);
    }
}

void
DensityMatrix::applyKrausSum(const std::vector<int> &qubits,
                             const KrausChannel &channel)
{
    std::vector<Complex> acc(dim_ * dim_, Complex(0.0, 0.0));
    for (const Matrix &k : channel.operators()) {
        std::vector<Complex> term = rho_;
        const Matrix kdag = k.adjoint();
        if (qubits.size() == 1) {
            applyLeft1q(qubits[0], k, term);
            applyRight1q(qubits[0], kdag, term);
        } else {
            applyLeft2q(qubits[0], qubits[1], k, term);
            applyRight2q(qubits[0], qubits[1], kdag, term);
        }
        for (std::size_t i = 0; i < acc.size(); ++i)
            acc[i] += term[i];
    }
    rho_ = std::move(acc);
}

void
DensityMatrix::applyChannel1q(int q, const KrausChannel &channel)
{
    checkQubit(q);
    if (channel.numQubits() != 1)
        throw std::invalid_argument("applyChannel1q: channel is not 1-qubit");
    applyKrausSum({q}, channel);
}

void
DensityMatrix::applyChannel2q(int q1, int q0, const KrausChannel &channel)
{
    checkQubit(q1);
    checkQubit(q0);
    if (q1 == q0)
        throw std::invalid_argument("applyChannel2q: equal qubits");
    if (channel.numQubits() != 2)
        throw std::invalid_argument("applyChannel2q: channel is not 2-qubit");
    applyKrausSum({q1, q0}, channel);
}

void
DensityMatrix::run(const Circuit &circuit, const std::vector<double> &params)
{
    if (circuit.numQubits() != numQubits_)
        throw std::invalid_argument("DensityMatrix::run: width mismatch");
    for (const Gate &g : circuit.gates())
        applyGate(g, params);
}

double
DensityMatrix::trace() const
{
    Complex t(0.0, 0.0);
    for (std::size_t i = 0; i < dim_; ++i)
        t += rho_[i * dim_ + i];
    return t.real();
}

double
DensityMatrix::purity() const
{
    // Tr(ρ²) = Σ_rc ρ[r,c] ρ[c,r]; ρ is Hermitian so this is Σ |ρ[r,c]|².
    double s = 0.0;
    for (const auto &x : rho_)
        s += std::norm(x);
    return s;
}

std::vector<double>
DensityMatrix::probabilities() const
{
    std::vector<double> p(dim_);
    for (std::size_t i = 0; i < dim_; ++i)
        p[i] = rho_[i * dim_ + i].real();
    return p;
}

double
DensityMatrix::fidelity(const Statevector &reference) const
{
    if (reference.dim() != dim_)
        throw std::invalid_argument("DensityMatrix::fidelity: width");
    const auto &amps = reference.amplitudes();
    Complex acc(0.0, 0.0);
    for (std::size_t r = 0; r < dim_; ++r)
        for (std::size_t c = 0; c < dim_; ++c)
            acc += std::conj(amps[r]) * rho_[r * dim_ + c] * amps[c];
    return acc.real();
}

double
DensityMatrix::expectation(const Matrix &observable) const
{
    if (observable.rows() != dim_ || observable.cols() != dim_)
        throw std::invalid_argument("DensityMatrix::expectation: shape");
    // Tr(ρ O) = Σ_rc ρ[r,c] O[c,r].
    Complex acc(0.0, 0.0);
    for (std::size_t r = 0; r < dim_; ++r)
        for (std::size_t c = 0; c < dim_; ++c)
            acc += rho_[r * dim_ + c] * observable(c, r);
    return acc.real();
}

} // namespace qismet
