/**
 * @file
 * Portable kernel implementations + SIMD dispatch wrappers.
 *
 * Every scalar loop here is a line-for-line transplant of the pre-SIMD
 * simulator code (statevector.cpp / density_matrix.cpp at the time the
 * kernels were extracted): same formulas, same accumulation order, same
 * special cases. The AVX2 cores (kernels_avx2.cpp) mirror these ops
 * lane-wise; the wrappers below let them process the longest vector
 * prefix and always finish the tail with the scalar code, so the tail
 * never executes inside an AVX2-target function where the compiler
 * could contract it. See kernels.hpp for the full rounding contract.
 */

#include "sim/kernels.hpp"

#include <algorithm>
#include <bit>

#include "common/block_partition.hpp"
#include "sim/compiled_circuit.hpp"

namespace qismet {
namespace kern {

namespace {

/** k-th index with bit `b` clear, counting upward (bit-deposit). */
inline std::size_t
deposit1(std::size_t k, std::size_t b)
{
    return (k & (b - 1)) | ((k << 1) & ~((b << 1) - 1));
}

/** k-th index with bits bA|bB clear, counting upward. */
inline std::size_t
deposit2(std::size_t k, std::size_t bA, std::size_t bB)
{
    const std::size_t lo = bA < bB ? bA : bB;
    const std::size_t hi = bA < bB ? bB : bA;
    const std::size_t mLow = lo - 1;
    const std::size_t mMid = (hi - 1) & ~((lo << 1) - 1);
    const std::size_t mHigh = ~((hi << 1) - 1);
    return (k & mLow) | ((k << 1) & mMid) | ((k << 2) & mHigh);
}

/* ------------------------------------------------------------------ */
/* Scalar micro-kernels (exact legacy formulas).                       */
/* ------------------------------------------------------------------ */

inline void
dense1RunScalar(Complex *p0, Complex *p1, std::size_t count, const Complex *m)
{
    const Complex u00 = m[0], u01 = m[1], u10 = m[2], u11 = m[3];
    for (std::size_t i = 0; i < count; ++i) {
        const Complex a0 = p0[i];
        const Complex a1 = p1[i];
        p0[i] = u00 * a0 + u01 * a1;
        p1[i] = u10 * a0 + u11 * a1;
    }
}

inline void
dense1RunRealScalar(Complex *p0, Complex *p1, std::size_t count,
                    const Complex *m)
{
    const double r00 = m[0].real(), r01 = m[1].real();
    const double r10 = m[2].real(), r11 = m[3].real();
    for (std::size_t i = 0; i < count; ++i) {
        const Complex a0 = p0[i];
        const Complex a1 = p1[i];
        p0[i] = Complex(r00 * a0.real() + r01 * a1.real(),
                        r00 * a0.imag() + r01 * a1.imag());
        p1[i] = Complex(r10 * a0.real() + r11 * a1.real(),
                        r10 * a0.imag() + r11 * a1.imag());
    }
}

/** 2x2 on interleaved adjacent pairs (the q = 0 case). */
inline void
dense1PairsScalarCore(Complex *p, std::size_t count, const Complex *m)
{
    const Complex u00 = m[0], u01 = m[1], u10 = m[2], u11 = m[3];
    for (std::size_t i = 0; i < count; ++i) {
        const Complex a0 = p[2 * i];
        const Complex a1 = p[2 * i + 1];
        p[2 * i] = u00 * a0 + u01 * a1;
        p[2 * i + 1] = u10 * a0 + u11 * a1;
    }
}

inline void
dense1PairsRealScalarCore(Complex *p, std::size_t count, const Complex *m)
{
    const double r00 = m[0].real(), r01 = m[1].real();
    const double r10 = m[2].real(), r11 = m[3].real();
    for (std::size_t i = 0; i < count; ++i) {
        const Complex a0 = p[2 * i];
        const Complex a1 = p[2 * i + 1];
        p[2 * i] = Complex(r00 * a0.real() + r01 * a1.real(),
                           r00 * a0.imag() + r01 * a1.imag());
        p[2 * i + 1] = Complex(r10 * a0.real() + r11 * a1.real(),
                               r10 * a0.imag() + r11 * a1.imag());
    }
}

inline void
dense2RunScalar(Complex *p0, Complex *p1, Complex *p2, Complex *p3,
                std::size_t count, const Complex *m)
{
    for (std::size_t i = 0; i < count; ++i) {
        const Complex in[4] = {p0[i], p1[i], p2[i], p3[i]};
        Complex out[4];
        for (int r = 0; r < 4; ++r) {
            Complex acc(0.0, 0.0);
            for (int c = 0; c < 4; ++c)
                acc += m[r * 4 + c] * in[c];
            out[r] = acc;
        }
        p0[i] = out[0];
        p1[i] = out[1];
        p2[i] = out[2];
        p3[i] = out[3];
    }
}

/** One 4-tuple at scattered indices (the pLow = 0 case). */
inline void
dense2Quartet(Complex *a, std::size_t base, std::size_t bl, std::size_t bm,
              const Complex *m)
{
    const std::size_t idx[4] = {base, base | bl, base | bm, base | bm | bl};
    Complex in[4];
    for (int c = 0; c < 4; ++c)
        in[c] = a[idx[c]];
    for (int r = 0; r < 4; ++r) {
        Complex acc(0.0, 0.0);
        for (int c = 0; c < 4; ++c)
            acc += m[r * 4 + c] * in[c];
        a[idx[r]] = acc;
    }
}

inline void
scaleRunScalar(Complex *run, Complex d, std::size_t count)
{
    for (std::size_t i = 0; i < count; ++i)
        run[i] *= d;
}

inline void
conjPhaseRowScalar(Complex *row, const Complex *phases, Complex rowPhase,
                   std::size_t count)
{
    for (std::size_t i = 0; i < count; ++i)
        row[i] *= rowPhase * std::conj(phases[i]);
}

inline void
swapRunsScalar(Complex *a, Complex *b, std::size_t count)
{
    for (std::size_t i = 0; i < count; ++i)
        std::swap(a[i], b[i]);
}

/* ------------------------------------------------------------------ */
/* Dispatching micro-kernel variants used only inside this TU.         */
/* ------------------------------------------------------------------ */

inline void
dense1RunReal(Complex *p0, Complex *p1, std::size_t count, const Complex *m,
              bool simd)
{
    std::size_t done = 0;
#if QISMET_SIMD_X86
    if (simd)
        done = detail::dense1RunRealAvx2(p0, p1, count, m);
#else
    (void)simd;
#endif
    dense1RunRealScalar(p0 + done, p1 + done, count - done, m);
}

inline void
dense1Pairs(Complex *p, std::size_t count, const Complex *m, bool simd)
{
    std::size_t done = 0;
#if QISMET_SIMD_X86
    if (simd)
        done = detail::dense1PairsAvx2(p, count, m);
#else
    (void)simd;
#endif
    dense1PairsScalarCore(p + 2 * done, count - done, m);
}

inline void
dense1PairsReal(Complex *p, std::size_t count, const Complex *m, bool simd)
{
    std::size_t done = 0;
#if QISMET_SIMD_X86
    if (simd)
        done = detail::dense1PairsRealAvx2(p, count, m);
#else
    (void)simd;
#endif
    dense1PairsRealScalarCore(p + 2 * done, count - done, m);
}

inline void
swapAdjacentPairs(Complex *p, std::size_t count, bool simd)
{
    std::size_t done = 0;
#if QISMET_SIMD_X86
    if (simd)
        done = detail::swapAdjacentPairsAvx2(p, count);
#else
    (void)simd;
#endif
    for (std::size_t i = done; i < count; ++i)
        std::swap(p[2 * i], p[2 * i + 1]);
}

} // namespace

/* ------------------------------------------------------------------ */
/* Public contiguous-run micro-kernels.                                */
/* ------------------------------------------------------------------ */

void
dense1Run(Complex *p0, Complex *p1, std::size_t count, const Complex *m,
          bool simd)
{
    std::size_t done = 0;
#if QISMET_SIMD_X86
    if (simd)
        done = detail::dense1RunAvx2(p0, p1, count, m);
#else
    (void)simd;
#endif
    dense1RunScalar(p0 + done, p1 + done, count - done, m);
}

void
dense2Run(Complex *p0, Complex *p1, Complex *p2, Complex *p3,
          std::size_t count, const Complex *m, bool simd)
{
    std::size_t done = 0;
#if QISMET_SIMD_X86
    if (simd)
        done = detail::dense2RunAvx2(p0, p1, p2, p3, count, m);
#else
    (void)simd;
#endif
    dense2RunScalar(p0 + done, p1 + done, p2 + done, p3 + done, count - done,
                    m);
}

void
scaleRun(Complex *run, Complex d, std::size_t count, bool simd)
{
    std::size_t done = 0;
#if QISMET_SIMD_X86
    if (simd)
        done = detail::scaleRunAvx2(run, d, count);
#else
    (void)simd;
#endif
    scaleRunScalar(run + done, d, count - done);
}

void
conjPhaseRow(Complex *row, const Complex *phases, Complex rowPhase,
             std::size_t count, bool simd)
{
    std::size_t done = 0;
#if QISMET_SIMD_X86
    if (simd)
        done = detail::conjPhaseRowAvx2(row, phases, rowPhase, count);
#else
    (void)simd;
#endif
    conjPhaseRowScalar(row + done, phases + done, rowPhase, count - done);
}

void
swapRuns(Complex *a, Complex *b, std::size_t count, bool simd)
{
    std::size_t done = 0;
#if QISMET_SIMD_X86
    if (simd)
        done = detail::swapRunsAvx2(a, b, count);
#else
    (void)simd;
#endif
    swapRunsScalar(a + done, b + done, count - done);
}

/* ------------------------------------------------------------------ */
/* Unit-range cores over an interleaved array.                         */
/*                                                                     */
/* A "unit" is one independent work item: an amplitude pair (dense1 /  */
/* permX), a 4-tuple (dense2 / permCX / permSwap), or one amplitude    */
/* (diag). Each core handles any [k0, k1) sub-range so the blocked     */
/* partition can hand out pieces; the walk decomposes the range into   */
/* contiguous runs (all unit addresses below the acted-on qubit are    */
/* consecutive) and feeds them to the run micro-kernels.               */
/* ------------------------------------------------------------------ */

void
dense1Units(Complex *a, int q, const Complex *m, bool real, bool simd,
            std::size_t k0, std::size_t k1)
{
    if (q == 0) {
        // Units are adjacent (even, odd) amplitude pairs.
        if (real)
            dense1PairsReal(a + 2 * k0, k1 - k0, m, simd);
        else
            dense1Pairs(a + 2 * k0, k1 - k0, m, simd);
        return;
    }
    const std::size_t s = std::size_t{1} << q;
    std::size_t k = k0;
    while (k < k1) {
        const std::size_t off = k & (s - 1);
        const std::size_t len = std::min(s - off, k1 - k);
        const std::size_t i0 = deposit1(k, s);
        if (real)
            dense1RunReal(a + i0, a + i0 + s, len, m, simd);
        else
            dense1Run(a + i0, a + i0 + s, len, m, simd);
        k += len;
    }
}

void
dense2Units(Complex *a, int qm, int ql, const Complex *m, bool simd,
            std::size_t k0, std::size_t k1)
{
    const std::size_t bm = std::size_t{1} << qm;
    const std::size_t bl = std::size_t{1} << ql;
    const int pLow = qm < ql ? qm : ql;
    if (pLow == 0) {
        // One of the acted-on qubits is bit 0: tuples are scattered,
        // stay scalar (see DESIGN.md — not worth a gather/blend path
        // for the op mix the compiler emits).
        for (std::size_t k = k0; k < k1; ++k)
            dense2Quartet(a, deposit2(k, bm, bl), bl, bm, m);
        return;
    }
    const std::size_t sLow = std::size_t{1} << pLow;
    std::size_t k = k0;
    while (k < k1) {
        const std::size_t off = k & (sLow - 1);
        const std::size_t len = std::min(sLow - off, k1 - k);
        const std::size_t base = deposit2(k, bm, bl);
        dense2Run(a + base, a + (base | bl), a + (base | bm),
                  a + (base | bm | bl), len, m, simd);
        k += len;
    }
}

void
diagUnits(Complex *a, std::size_t dim, std::uint64_t mask,
          const Complex *table, bool simd, std::size_t u0, std::size_t u1)
{
    const std::uint64_t comp = (dim - 1) & ~mask;
    const int t = std::popcount(mask);
    const int freeBits = std::countr_zero(dim) - t;
    const std::size_t subSize = std::size_t{1} << freeBits;
    const std::size_t runLen = std::size_t{1} << std::countr_one(comp);
    const Complex one(1.0, 0.0);
    std::size_t u = u0;
    while (u < u1) {
        const std::uint64_t li = u >> freeBits;
        const std::size_t entryBegin = static_cast<std::size_t>(li) * subSize;
        const std::size_t jEnd = std::min(u1, entryBegin + subSize) -
                                 entryBegin;
        const Complex d = table[li];
        if (d == one) { // common for merged CZ/S/T runs
            u = entryBegin + jEnd;
            continue;
        }
        const std::uint64_t fixed = depositBits(li, mask);
        std::size_t j = u - entryBegin;
        while (j < jEnd) {
            const std::size_t off = j & (runLen - 1);
            const std::size_t len = std::min(runLen - off, jEnd - j);
            const std::uint64_t idx = fixed | depositBits(j, comp);
            scaleRun(a + idx, d, len, simd);
            j += len;
        }
        u = entryBegin + jEnd;
    }
}

void
permXUnits(Complex *a, int q, bool simd, std::size_t k0, std::size_t k1)
{
    if (q == 0) {
        swapAdjacentPairs(a + 2 * k0, k1 - k0, simd);
        return;
    }
    const std::size_t b = std::size_t{1} << q;
    std::size_t k = k0;
    while (k < k1) {
        const std::size_t off = k & (b - 1);
        const std::size_t len = std::min(b - off, k1 - k);
        const std::size_t i0 = deposit1(k, b);
        swapRuns(a + i0, a + i0 + b, len, simd);
        k += len;
    }
}

void
permCXUnits(Complex *a, int qc, int qt, bool simd, std::size_t k0,
            std::size_t k1)
{
    const std::size_t bc = std::size_t{1} << qc;
    const std::size_t bt = std::size_t{1} << qt;
    const int pLow = qc < qt ? qc : qt;
    if (pLow == 0) {
        for (std::size_t k = k0; k < k1; ++k) {
            const std::size_t base = deposit2(k, bc, bt);
            std::swap(a[base | bc], a[base | bc | bt]);
        }
        return;
    }
    const std::size_t sLow = std::size_t{1} << pLow;
    std::size_t k = k0;
    while (k < k1) {
        const std::size_t off = k & (sLow - 1);
        const std::size_t len = std::min(sLow - off, k1 - k);
        const std::size_t base = deposit2(k, bc, bt);
        swapRuns(a + (base | bc), a + (base | bc | bt), len, simd);
        k += len;
    }
}

void
permSwapUnits(Complex *a, int qa, int qb, bool simd, std::size_t k0,
              std::size_t k1)
{
    const std::size_t ba = std::size_t{1} << qa;
    const std::size_t bb = std::size_t{1} << qb;
    const int pLow = qa < qb ? qa : qb;
    if (pLow == 0) {
        for (std::size_t k = k0; k < k1; ++k) {
            const std::size_t base = deposit2(k, ba, bb);
            std::swap(a[base | ba], a[base | bb]);
        }
        return;
    }
    const std::size_t sLow = std::size_t{1} << pLow;
    std::size_t k = k0;
    while (k < k1) {
        const std::size_t off = k & (sLow - 1);
        const std::size_t len = std::min(sLow - off, k1 - k);
        const std::size_t base = deposit2(k, ba, bb);
        swapRuns(a + (base | ba), a + (base | bb), len, simd);
        k += len;
    }
}

/* ------------------------------------------------------------------ */
/* Layout-generic unit cores (SplitComplex; scalar, same formulas).    */
/* ------------------------------------------------------------------ */

namespace {

void
dense1UnitsGeneric(const AmpSpan &amps, int q, const Complex *m, bool real,
                   std::size_t k0, std::size_t k1)
{
    const std::size_t s = std::size_t{1} << q;
    const Complex u00 = m[0], u01 = m[1], u10 = m[2], u11 = m[3];
    const double r00 = m[0].real(), r01 = m[1].real();
    const double r10 = m[2].real(), r11 = m[3].real();
    for (std::size_t k = k0; k < k1; ++k) {
        const std::size_t i0 = deposit1(k, s);
        const std::size_t i1 = i0 + s;
        const Complex a0 = amps.load(i0);
        const Complex a1 = amps.load(i1);
        if (real) {
            amps.store(i0, Complex(r00 * a0.real() + r01 * a1.real(),
                                   r00 * a0.imag() + r01 * a1.imag()));
            amps.store(i1, Complex(r10 * a0.real() + r11 * a1.real(),
                                   r10 * a0.imag() + r11 * a1.imag()));
        } else {
            amps.store(i0, u00 * a0 + u01 * a1);
            amps.store(i1, u10 * a0 + u11 * a1);
        }
    }
}

void
dense2UnitsGeneric(const AmpSpan &amps, int qm, int ql, const Complex *m,
                   std::size_t k0, std::size_t k1)
{
    const std::size_t bm = std::size_t{1} << qm;
    const std::size_t bl = std::size_t{1} << ql;
    for (std::size_t k = k0; k < k1; ++k) {
        const std::size_t base = deposit2(k, bm, bl);
        const std::size_t idx[4] = {base, base | bl, base | bm,
                                    base | bm | bl};
        Complex in[4];
        for (int c = 0; c < 4; ++c)
            in[c] = amps.load(idx[c]);
        for (int r = 0; r < 4; ++r) {
            Complex acc(0.0, 0.0);
            for (int c = 0; c < 4; ++c)
                acc += m[r * 4 + c] * in[c];
            amps.store(idx[r], acc);
        }
    }
}

void
diagUnitsGeneric(const AmpSpan &amps, std::uint64_t mask,
                 const Complex *table, std::size_t u0, std::size_t u1)
{
    const std::size_t dim = amps.size();
    const std::uint64_t comp = (dim - 1) & ~mask;
    const int t = std::popcount(mask);
    const int freeBits = std::countr_zero(dim) - t;
    const std::size_t subSize = std::size_t{1} << freeBits;
    const Complex one(1.0, 0.0);
    std::size_t u = u0;
    while (u < u1) {
        const std::uint64_t li = u >> freeBits;
        const std::size_t entryBegin = static_cast<std::size_t>(li) * subSize;
        const std::size_t jEnd = std::min(u1, entryBegin + subSize) -
                                 entryBegin;
        const Complex d = table[li];
        if (d == one) {
            u = entryBegin + jEnd;
            continue;
        }
        const std::uint64_t fixed = depositBits(li, mask);
        for (std::size_t j = u - entryBegin; j < jEnd; ++j) {
            const std::size_t idx = fixed | depositBits(j, comp);
            amps.store(idx, amps.load(idx) * d);
        }
        u = entryBegin + jEnd;
    }
}

void
permXUnitsGeneric(const AmpSpan &amps, int q, std::size_t k0, std::size_t k1)
{
    const std::size_t b = std::size_t{1} << q;
    for (std::size_t k = k0; k < k1; ++k) {
        const std::size_t i0 = deposit1(k, b);
        const Complex tmp = amps.load(i0);
        amps.store(i0, amps.load(i0 + b));
        amps.store(i0 + b, tmp);
    }
}

void
permCXUnitsGeneric(const AmpSpan &amps, int qc, int qt, std::size_t k0,
                   std::size_t k1)
{
    const std::size_t bc = std::size_t{1} << qc;
    const std::size_t bt = std::size_t{1} << qt;
    for (std::size_t k = k0; k < k1; ++k) {
        const std::size_t base = deposit2(k, bc, bt);
        const Complex tmp = amps.load(base | bc);
        amps.store(base | bc, amps.load(base | bc | bt));
        amps.store(base | bc | bt, tmp);
    }
}

void
permSwapUnitsGeneric(const AmpSpan &amps, int qa, int qb, std::size_t k0,
                     std::size_t k1)
{
    const std::size_t ba = std::size_t{1} << qa;
    const std::size_t bb = std::size_t{1} << qb;
    for (std::size_t k = k0; k < k1; ++k) {
        const std::size_t base = deposit2(k, ba, bb);
        const Complex tmp = amps.load(base | ba);
        amps.store(base | ba, amps.load(base | bb));
        amps.store(base | bb, tmp);
    }
}

} // namespace

/* ------------------------------------------------------------------ */
/* Whole-state entry points: blocked partition + SIMD dispatch.        */
/* ------------------------------------------------------------------ */

void
applyDense1(const AmpSpan &amps, int q, const Complex *m)
{
    const std::size_t units = amps.size() >> 1;
    // Real matrix (H, RY, X-basis changes): half the multiplies.
    const bool real = m[0].imag() == 0.0 && m[1].imag() == 0.0 &&
                      m[2].imag() == 0.0 && m[3].imag() == 0.0;
    if (amps.layout() == AmpLayout::Interleaved) {
        Complex *a = amps.complexData();
        const bool simd = simdEnabled();
        forEachUnitBlocked(units, amps.size(),
                           [&](std::size_t k0, std::size_t k1) {
                               dense1Units(a, q, m, real, simd, k0, k1);
                           });
        return;
    }
    forEachUnitBlocked(units, amps.size(),
                       [&](std::size_t k0, std::size_t k1) {
                           dense1UnitsGeneric(amps, q, m, real, k0, k1);
                       });
}

void
applyDense2(const AmpSpan &amps, int qm, int ql, const Complex *m)
{
    const std::size_t units = amps.size() >> 2;
    if (amps.layout() == AmpLayout::Interleaved) {
        Complex *a = amps.complexData();
        const bool simd = simdEnabled();
        forEachUnitBlocked(units, amps.size(),
                           [&](std::size_t k0, std::size_t k1) {
                               dense2Units(a, qm, ql, m, simd, k0, k1);
                           });
        return;
    }
    forEachUnitBlocked(units, amps.size(),
                       [&](std::size_t k0, std::size_t k1) {
                           dense2UnitsGeneric(amps, qm, ql, m, k0, k1);
                       });
}

void
applyDiag(const AmpSpan &amps, std::uint64_t mask, const Complex *table)
{
    const std::size_t units = amps.size();
    if (amps.layout() == AmpLayout::Interleaved) {
        Complex *a = amps.complexData();
        const bool simd = simdEnabled();
        forEachUnitBlocked(units, amps.size(),
                           [&](std::size_t u0, std::size_t u1) {
                               diagUnits(a, amps.size(), mask, table, simd,
                                         u0, u1);
                           });
        return;
    }
    forEachUnitBlocked(units, amps.size(),
                       [&](std::size_t u0, std::size_t u1) {
                           diagUnitsGeneric(amps, mask, table, u0, u1);
                       });
}

void
applyPermX(const AmpSpan &amps, int q)
{
    const std::size_t units = amps.size() >> 1;
    if (amps.layout() == AmpLayout::Interleaved) {
        Complex *a = amps.complexData();
        const bool simd = simdEnabled();
        forEachUnitBlocked(units, amps.size(),
                           [&](std::size_t k0, std::size_t k1) {
                               permXUnits(a, q, simd, k0, k1);
                           });
        return;
    }
    forEachUnitBlocked(units, amps.size(),
                       [&](std::size_t k0, std::size_t k1) {
                           permXUnitsGeneric(amps, q, k0, k1);
                       });
}

void
applyPermCX(const AmpSpan &amps, int qc, int qt)
{
    const std::size_t units = amps.size() >> 2;
    if (amps.layout() == AmpLayout::Interleaved) {
        Complex *a = amps.complexData();
        const bool simd = simdEnabled();
        forEachUnitBlocked(units, amps.size(),
                           [&](std::size_t k0, std::size_t k1) {
                               permCXUnits(a, qc, qt, simd, k0, k1);
                           });
        return;
    }
    forEachUnitBlocked(units, amps.size(),
                       [&](std::size_t k0, std::size_t k1) {
                           permCXUnitsGeneric(amps, qc, qt, k0, k1);
                       });
}

void
applyPermSwap(const AmpSpan &amps, int qa, int qb)
{
    const std::size_t units = amps.size() >> 2;
    if (amps.layout() == AmpLayout::Interleaved) {
        Complex *a = amps.complexData();
        const bool simd = simdEnabled();
        forEachUnitBlocked(units, amps.size(),
                           [&](std::size_t k0, std::size_t k1) {
                               permSwapUnits(a, qa, qb, simd, k0, k1);
                           });
        return;
    }
    forEachUnitBlocked(units, amps.size(),
                       [&](std::size_t k0, std::size_t k1) {
                           permSwapUnitsGeneric(amps, qa, qb, k0, k1);
                       });
}

/* ------------------------------------------------------------------ */
/* Ordered reductions. Scalar arithmetic only: SIMD lanes would change */
/* the summation grouping, which the determinism contract forbids.     */
/* ------------------------------------------------------------------ */

double
norm2(const AmpSpan &amps)
{
    return orderedBlockReduce(
        amps.size(), amps.size(), [&](std::size_t b, std::size_t e) {
            double s = 0.0;
            for (std::size_t i = b; i < e; ++i)
                s += std::norm(amps.load(i));
            return s;
        });
}

Complex
innerProduct(const AmpSpan &a, const AmpSpan &b)
{
    return orderedBlockReduceComplex(
        a.size(), a.size(), [&](std::size_t lo, std::size_t hi) {
            Complex acc(0.0, 0.0);
            for (std::size_t i = lo; i < hi; ++i)
                acc += std::conj(a.load(i)) * b.load(i);
            return acc;
        });
}

double
expectationZMask(const AmpSpan &amps, std::uint64_t mask)
{
    return orderedBlockReduce(
        amps.size(), amps.size(), [&](std::size_t b, std::size_t e) {
            double s = 0.0;
            for (std::size_t i = b; i < e; ++i) {
                const double p = std::norm(amps.load(i));
                const int parity = std::popcount(i & mask) & 1;
                s += parity ? -p : p;
            }
            return s;
        });
}

namespace {

/**
 * Scalar grouped-expectation sweep: the legacy per-term loop with the
 * amplitude loads hoisted out of the term loop and the (discarded)
 * imaginary accumulator dropped. Every multiply/subtract below is one
 * of the individually rounded ops the std::complex chain
 * `conj(a[i^x]) * phase * a[i]` performed, in the same order, so the
 * per-term sums are bit-identical to the term-by-term path.
 */
inline void
pauliGroupSumsScalar(const AmpSpan &amps, std::uint64_t xmask,
                     const PauliTermSpec *terms, std::size_t num_terms,
                     std::size_t u0, std::size_t u1, double *acc)
{
    for (std::size_t i = u0; i < u1; ++i) {
        const Complex a = amps.load(i);
        const Complex ax = amps.load(i ^ xmask);
        // conj(ax): the sign flip is exact.
        const double cr = ax.real();
        const double ci = -ax.imag();
        for (std::size_t t = 0; t < num_terms; ++t) {
            const int parity = std::popcount(i & terms[t].zmask) & 1;
            const Complex ph =
                parity ? terms[t].phaseMinus : terms[t].phasePlus;
            // t1 = conj(ax) * phase, then Re(t1 * a).
            const double t1r = cr * ph.real() - ci * ph.imag();
            const double t1i = cr * ph.imag() + ci * ph.real();
            acc[t] += t1r * a.real() - t1i * a.imag();
        }
    }
}

} // namespace

void
pauliGroupSums(const AmpSpan &amps, std::uint64_t xmask,
               const PauliTermSpec *terms, std::size_t num_terms,
               bool simd, std::size_t u0, std::size_t u1, double *acc)
{
#if QISMET_SIMD_X86
    if (simd && amps.layout() == AmpLayout::Interleaved) {
        // The AVX2 core caps its per-call term slab (stack phase
        // tables); slabs split the *term* axis only, so each term's
        // ascending-i accumulation order is untouched.
        for (std::size_t t0 = 0; t0 < num_terms; t0 += kPauliGroupSlab) {
            const std::size_t n =
                std::min(kPauliGroupSlab, num_terms - t0);
            const std::size_t done =
                u0 + detail::pauliGroupSumsAvx2(amps.complexData(), xmask,
                                                terms + t0, n, u0, u1,
                                                acc + t0);
            pauliGroupSumsScalar(amps, xmask, terms + t0, n, done, u1,
                                 acc + t0);
        }
        return;
    }
#else
    (void)simd;
#endif
    pauliGroupSumsScalar(amps, xmask, terms, num_terms, u0, u1, acc);
}

} // namespace kern
} // namespace qismet
