/**
 * @file
 * Density-matrix simulator with Kraus-channel noise.
 *
 * This is the library's "ground truth" noisy back-end: gates are applied
 * as unitaries ρ → UρU†, noise as CPTP maps ρ → Σ_k K_k ρ K_k†. It is
 * used by the static-noise fidelity studies (paper Fig. 4) and by tests
 * that validate the faster expectation-damping path in the VQE engine.
 */

#ifndef QISMET_SIM_DENSITY_MATRIX_HPP
#define QISMET_SIM_DENSITY_MATRIX_HPP

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/matrix.hpp"
#include "sim/compiled_circuit.hpp"
#include "sim/kraus.hpp"
#include "sim/statevector.hpp"

namespace qismet {

/** Mixed-state simulator over a fixed qubit register. */
class DensityMatrix
{
  public:
    /** Initialize to |0..0><0..0| over num_qubits qubits. */
    explicit DensityMatrix(int num_qubits);

    /** Initialize from a pure state. */
    explicit DensityMatrix(const Statevector &state);

    int numQubits() const { return numQubits_; }
    std::size_t dim() const { return dim_; }

    /** Element access rho(r, c). */
    Complex element(std::size_t r, std::size_t c) const
    {
        return rho_[r * dim_ + c];
    }

    /** Reset to |0..0><0..0|. */
    void reset();

    /** Apply a gate as a unitary conjugation. */
    void applyGate(const Gate &gate, const std::vector<double> &params = {});

    /** Apply a 1-qubit channel to qubit q. */
    void applyChannel1q(int q, const KrausChannel &channel);

    /** Apply a 2-qubit channel to (q1, q0), q1 = most significant. */
    void applyChannel2q(int q1, int q0, const KrausChannel &channel);

    /**
     * Run a noiseless circuit. With fusion enabled (fusionEnabled())
     * the circuit is compiled and executed through the fused kernels;
     * otherwise the original gate-by-gate path runs bit-for-bit.
     */
    void run(const Circuit &circuit, const std::vector<double> &params = {});

    /** Run a pre-compiled circuit (compile once, conjugate many). */
    void run(const CompiledCircuit &circuit,
             const std::vector<double> &params = {});

    /**
     * Number of times a member scratch buffer had to (re)allocate.
     * Steady-state noisy simulation reuses warm scratch, so this
     * counter stays flat across repeated channel/gate applications —
     * the perf bench asserts exactly that.
     */
    std::size_t scratchAllocCount() const { return scratchAllocs_; }

    /** Trace of the density matrix (should stay 1). */
    double trace() const;

    /** Purity Tr(ρ²) ∈ (0, 1]. */
    double purity() const;

    /** Diagonal (measurement probabilities in the computational basis). */
    std::vector<double> probabilities() const;

    /** <ψ|ρ|ψ> against a pure reference state. */
    double fidelity(const Statevector &reference) const;

    /** Expectation of a Hermitian observable Tr(ρ O). */
    double expectation(const Matrix &observable) const;

  private:
    /**
     * Sparse row form of one Kraus operator (every gate-level operator
     * here is at most 4x4, and noise operators are near-Pauli, so rows
     * hold 1-2 nonzeros). `cval` caches the conjugates for the K† side.
     */
    struct SparseKraus
    {
        int nnz[4] = {0, 0, 0, 0};
        int col[4][4] = {};
        Complex val[4][4];
        Complex cval[4][4];
    };

    void checkQubit(int q) const;
    /** ρ → Mρ restricted to qubit q (M is 2x2 row-major). */
    void applyLeft1q(int q, const Complex *m, std::vector<Complex> &rho) const;
    /** ρ → ρM restricted to qubit q (M is 2x2 row-major). */
    void applyRight1q(int q, const Complex *m,
                      std::vector<Complex> &rho) const;
    /** ρ → Mρ restricted to (q1, q0) (M 4x4 row-major, q1 most signif.). */
    void applyLeft2q(int q1, int q0, const Complex *m,
                     std::vector<Complex> &rho) const;
    /** ρ → ρM restricted to (q1, q0). */
    void applyRight2q(int q1, int q0, const Complex *m,
                      std::vector<Complex> &rho) const;
    /** ρ → D ρ D† for a diagonal op over `mask` (compiled Diag kernel). */
    void applyDiagConjugation(std::uint64_t mask, const Complex *table);
    /** ρ → Σ_k K_k ρ K_k† for 1- or 2-qubit Kraus sets, in place. */
    void applyKrausSum(const std::vector<int> &qubits,
                       const KrausChannel &channel);
    /** Lower the channel's operators into sparseOps_ (w = 2 or 4). */
    void lowerKrausOperators(const KrausChannel &channel, int w);

    int numQubits_;
    std::size_t dim_;
    std::vector<Complex> rho_; // row-major dim_ x dim_
    /** Member scratch, reused across calls (see scratchAllocCount). */
    std::vector<SparseKraus> sparseOps_;
    std::vector<Complex> bindPool_;
    std::vector<Complex> diagPhase_;
    std::size_t scratchAllocs_ = 0;
};

} // namespace qismet

#endif // QISMET_SIM_DENSITY_MATRIX_HPP
