/**
 * @file
 * AVX2 kernel cores.
 *
 * Compiled in every build (no global -mavx2): each core carries a
 * per-function target("avx2,fma") attribute and is only called after
 * the runtime dispatch check (simdEnabled()). Each core processes the
 * longest 2-complex-aligned prefix and returns the number of units it
 * completed; the wrappers in kernels_scalar.cpp run the scalar tail.
 *
 * Bit-compatibility with the scalar code (see kernels.hpp):
 *
 *   - complex multiply = mul + mul + addsub — the naive two-multiply
 *     form, never vfmaddsub. The FMA target feature is enabled only
 *     because the dispatch check requires it; this TU is built with
 *     -ffp-contract=off (see src/CMakeLists.txt) so the compiler cannot
 *     contract the intrinsic mul/add chains either (GCC lowers
 *     _mm256_mul_pd/_mm256_add_pd to plain vector ops that are
 *     otherwise fair game for contraction).
 *   - IEEE-754 multiplies and adds are commutative bit-for-bit, so
 *     lane-parallel evaluation with swapped operand order is identical
 *     to the scalar loops.
 */

#include "sim/kernels.hpp"

#if QISMET_SIMD_X86

#include <bit>
#include <immintrin.h>

#define QISMET_TARGET_AVX2 __attribute__((target("avx2,fma")))
#define QISMET_TARGET_AVX2_POPCNT \
    __attribute__((target("avx2,fma,popcnt")))

namespace qismet {
namespace kern {
namespace detail {

namespace {

/**
 * (ur + i*ui) * v for two packed complexes in v, constant broadcast
 * factors: addsub(ur*v, ui*swap(v)) = [ur*re - ui*im, ur*im + ui*re].
 */
QISMET_TARGET_AVX2 inline __m256d
cmulConst(__m256d ur, __m256d ui, __m256d v)
{
    const __m256d sw = _mm256_permute_pd(v, 0b0101);
    return _mm256_addsub_pd(_mm256_mul_pd(ur, v), _mm256_mul_pd(ui, sw));
}

/** Elementwise complex multiply x*y of two packed-complex vectors. */
QISMET_TARGET_AVX2 inline __m256d
cmulVec(__m256d x, __m256d y)
{
    const __m256d yr = _mm256_movedup_pd(y);
    const __m256d yi = _mm256_permute_pd(y, 0b1111);
    const __m256d xsw = _mm256_permute_pd(x, 0b0101);
    return _mm256_addsub_pd(_mm256_mul_pd(x, yr), _mm256_mul_pd(xsw, yi));
}

} // namespace

QISMET_TARGET_AVX2 std::size_t
dense1RunAvx2(Complex *p0, Complex *p1, std::size_t count, const Complex *m)
{
    double *d0 = reinterpret_cast<double *>(p0);
    double *d1 = reinterpret_cast<double *>(p1);
    const __m256d u00r = _mm256_set1_pd(m[0].real());
    const __m256d u00i = _mm256_set1_pd(m[0].imag());
    const __m256d u01r = _mm256_set1_pd(m[1].real());
    const __m256d u01i = _mm256_set1_pd(m[1].imag());
    const __m256d u10r = _mm256_set1_pd(m[2].real());
    const __m256d u10i = _mm256_set1_pd(m[2].imag());
    const __m256d u11r = _mm256_set1_pd(m[3].real());
    const __m256d u11i = _mm256_set1_pd(m[3].imag());
    const std::size_t vec = count & ~std::size_t{1};
    for (std::size_t i = 0; i < vec; i += 2) {
        const __m256d a0 = _mm256_loadu_pd(d0 + 2 * i);
        const __m256d a1 = _mm256_loadu_pd(d1 + 2 * i);
        const __m256d o0 = _mm256_add_pd(cmulConst(u00r, u00i, a0),
                                         cmulConst(u01r, u01i, a1));
        const __m256d o1 = _mm256_add_pd(cmulConst(u10r, u10i, a0),
                                         cmulConst(u11r, u11i, a1));
        _mm256_storeu_pd(d0 + 2 * i, o0);
        _mm256_storeu_pd(d1 + 2 * i, o1);
    }
    return vec;
}

QISMET_TARGET_AVX2 std::size_t
dense1RunRealAvx2(Complex *p0, Complex *p1, std::size_t count,
                  const Complex *m)
{
    double *d0 = reinterpret_cast<double *>(p0);
    double *d1 = reinterpret_cast<double *>(p1);
    const __m256d r00 = _mm256_set1_pd(m[0].real());
    const __m256d r01 = _mm256_set1_pd(m[1].real());
    const __m256d r10 = _mm256_set1_pd(m[2].real());
    const __m256d r11 = _mm256_set1_pd(m[3].real());
    const std::size_t vec = count & ~std::size_t{1};
    for (std::size_t i = 0; i < vec; i += 2) {
        const __m256d a0 = _mm256_loadu_pd(d0 + 2 * i);
        const __m256d a1 = _mm256_loadu_pd(d1 + 2 * i);
        const __m256d o0 = _mm256_add_pd(_mm256_mul_pd(r00, a0),
                                         _mm256_mul_pd(r01, a1));
        const __m256d o1 = _mm256_add_pd(_mm256_mul_pd(r10, a0),
                                         _mm256_mul_pd(r11, a1));
        _mm256_storeu_pd(d0 + 2 * i, o0);
        _mm256_storeu_pd(d1 + 2 * i, o1);
    }
    return vec;
}

QISMET_TARGET_AVX2 std::size_t
dense1PairsAvx2(Complex *p, std::size_t count, const Complex *m)
{
    double *d = reinterpret_cast<double *>(p);
    const __m256d u00r = _mm256_set1_pd(m[0].real());
    const __m256d u00i = _mm256_set1_pd(m[0].imag());
    const __m256d u01r = _mm256_set1_pd(m[1].real());
    const __m256d u01i = _mm256_set1_pd(m[1].imag());
    const __m256d u10r = _mm256_set1_pd(m[2].real());
    const __m256d u10i = _mm256_set1_pd(m[2].imag());
    const __m256d u11r = _mm256_set1_pd(m[3].real());
    const __m256d u11i = _mm256_set1_pd(m[3].imag());
    const std::size_t vec = count & ~std::size_t{1};
    for (std::size_t i = 0; i < vec; i += 2) {
        // Two adjacent (a0, a1) pairs; regroup across the 128-bit lanes
        // so each vector holds two a0's or two a1's.
        const __m256d v0 = _mm256_loadu_pd(d + 4 * i);
        const __m256d v1 = _mm256_loadu_pd(d + 4 * i + 4);
        const __m256d a0 = _mm256_permute2f128_pd(v0, v1, 0x20);
        const __m256d a1 = _mm256_permute2f128_pd(v0, v1, 0x31);
        const __m256d o0 = _mm256_add_pd(cmulConst(u00r, u00i, a0),
                                         cmulConst(u01r, u01i, a1));
        const __m256d o1 = _mm256_add_pd(cmulConst(u10r, u10i, a0),
                                         cmulConst(u11r, u11i, a1));
        _mm256_storeu_pd(d + 4 * i, _mm256_permute2f128_pd(o0, o1, 0x20));
        _mm256_storeu_pd(d + 4 * i + 4,
                         _mm256_permute2f128_pd(o0, o1, 0x31));
    }
    return vec;
}

QISMET_TARGET_AVX2 std::size_t
dense1PairsRealAvx2(Complex *p, std::size_t count, const Complex *m)
{
    double *d = reinterpret_cast<double *>(p);
    const __m256d r00 = _mm256_set1_pd(m[0].real());
    const __m256d r01 = _mm256_set1_pd(m[1].real());
    const __m256d r10 = _mm256_set1_pd(m[2].real());
    const __m256d r11 = _mm256_set1_pd(m[3].real());
    const std::size_t vec = count & ~std::size_t{1};
    for (std::size_t i = 0; i < vec; i += 2) {
        const __m256d v0 = _mm256_loadu_pd(d + 4 * i);
        const __m256d v1 = _mm256_loadu_pd(d + 4 * i + 4);
        const __m256d a0 = _mm256_permute2f128_pd(v0, v1, 0x20);
        const __m256d a1 = _mm256_permute2f128_pd(v0, v1, 0x31);
        const __m256d o0 = _mm256_add_pd(_mm256_mul_pd(r00, a0),
                                         _mm256_mul_pd(r01, a1));
        const __m256d o1 = _mm256_add_pd(_mm256_mul_pd(r10, a0),
                                         _mm256_mul_pd(r11, a1));
        _mm256_storeu_pd(d + 4 * i, _mm256_permute2f128_pd(o0, o1, 0x20));
        _mm256_storeu_pd(d + 4 * i + 4,
                         _mm256_permute2f128_pd(o0, o1, 0x31));
    }
    return vec;
}

QISMET_TARGET_AVX2 std::size_t
dense2RunAvx2(Complex *p0, Complex *p1, Complex *p2, Complex *p3,
              std::size_t count, const Complex *m)
{
    double *d0 = reinterpret_cast<double *>(p0);
    double *d1 = reinterpret_cast<double *>(p1);
    double *d2 = reinterpret_cast<double *>(p2);
    double *d3 = reinterpret_cast<double *>(p3);
    __m256d mr[16];
    __m256d mi[16];
    for (int e = 0; e < 16; ++e) {
        mr[e] = _mm256_set1_pd(m[e].real());
        mi[e] = _mm256_set1_pd(m[e].imag());
    }
    const __m256d zero = _mm256_setzero_pd();
    const std::size_t vec = count & ~std::size_t{1};
    for (std::size_t i = 0; i < vec; i += 2) {
        const __m256d in[4] = {
            _mm256_loadu_pd(d0 + 2 * i), _mm256_loadu_pd(d1 + 2 * i),
            _mm256_loadu_pd(d2 + 2 * i), _mm256_loadu_pd(d3 + 2 * i)};
        __m256d out[4];
        for (int r = 0; r < 4; ++r) {
            // Start from an explicit zero and add in column order — the
            // scalar accumulator's grouping (0.0 + (-0.0) = +0.0, so
            // the leading zero is not a no-op).
            __m256d acc = zero;
            for (int c = 0; c < 4; ++c)
                acc = _mm256_add_pd(
                    acc, cmulConst(mr[r * 4 + c], mi[r * 4 + c], in[c]));
            out[r] = acc;
        }
        _mm256_storeu_pd(d0 + 2 * i, out[0]);
        _mm256_storeu_pd(d1 + 2 * i, out[1]);
        _mm256_storeu_pd(d2 + 2 * i, out[2]);
        _mm256_storeu_pd(d3 + 2 * i, out[3]);
    }
    return vec;
}

QISMET_TARGET_AVX2 std::size_t
scaleRunAvx2(Complex *run, Complex d, std::size_t count)
{
    double *p = reinterpret_cast<double *>(run);
    const __m256d dr = _mm256_set1_pd(d.real());
    const __m256d di = _mm256_set1_pd(d.imag());
    const std::size_t vec = count & ~std::size_t{1};
    for (std::size_t i = 0; i < vec; i += 2) {
        const __m256d v = _mm256_loadu_pd(p + 2 * i);
        _mm256_storeu_pd(p + 2 * i, cmulConst(dr, di, v));
    }
    return vec;
}

QISMET_TARGET_AVX2 std::size_t
conjPhaseRowAvx2(Complex *row, const Complex *phases, Complex rowPhase,
                 std::size_t count)
{
    double *r = reinterpret_cast<double *>(row);
    const double *ph = reinterpret_cast<const double *>(phases);
    const __m256d prr = _mm256_set1_pd(rowPhase.real());
    const __m256d pri = _mm256_set1_pd(rowPhase.imag());
    // Sign-flip the imaginary lanes: conj via xor, exact.
    const __m256d conjMask = _mm256_set_pd(-0.0, 0.0, -0.0, 0.0);
    const std::size_t vec = count & ~std::size_t{1};
    for (std::size_t i = 0; i < vec; i += 2) {
        const __m256d cph =
            _mm256_xor_pd(_mm256_loadu_pd(ph + 2 * i), conjMask);
        const __m256d t = cmulConst(prr, pri, cph);
        const __m256d v = _mm256_loadu_pd(r + 2 * i);
        _mm256_storeu_pd(r + 2 * i, cmulVec(v, t));
    }
    return vec;
}

QISMET_TARGET_AVX2 std::size_t
swapRunsAvx2(Complex *a, Complex *b, std::size_t count)
{
    double *da = reinterpret_cast<double *>(a);
    double *db = reinterpret_cast<double *>(b);
    const std::size_t vec = count & ~std::size_t{1};
    for (std::size_t i = 0; i < vec; i += 2) {
        const __m256d va = _mm256_loadu_pd(da + 2 * i);
        const __m256d vb = _mm256_loadu_pd(db + 2 * i);
        _mm256_storeu_pd(da + 2 * i, vb);
        _mm256_storeu_pd(db + 2 * i, va);
    }
    return vec;
}

/**
 * Grouped Pauli expectation core: two basis states per iteration. The
 * pair (i, i+1), i even, always maps under ^xmask onto the aligned
 * pair at (i^xmask) & ~1 — in order when xmask is even, swapped when
 * odd — so every load is a whole 2-complex vector. Per term the ±i^nY
 * phase constant is picked from a 4-entry table indexed by the two
 * parities, the two contributions are formed with the same mul/addsub
 * chain as the scalar code (cmulVec + mul + hsub: each product and the
 * final subtraction round individually), and the accumulator adds run
 * as scalar SSE adds in ascending i order — the exact legacy grouping.
 * The popcnt target feature is for the per-term parity of basis state
 * i; every AVX2 CPU has it, and the dispatch check already gates on
 * AVX2+FMA. Requires an even u0 and num_terms <= kPauliGroupSlab;
 * returns 0 otherwise (the wrapper's scalar path covers those calls).
 */
QISMET_TARGET_AVX2_POPCNT std::size_t
pauliGroupSumsAvx2(const Complex *a, std::uint64_t xmask,
                   const PauliTermSpec *terms, std::size_t num_terms,
                   std::size_t u0, std::size_t u1, double *acc)
{
    if ((u0 & 1) != 0 || u1 - u0 < 2 || num_terms > kPauliGroupSlab)
        return 0;
    const double *d = reinterpret_cast<const double *>(a);
    // conj via sign-flip of the imaginary lanes: exact.
    const __m256d conjMask = _mm256_set_pd(-0.0, 0.0, -0.0, 0.0);
    const bool swapHalves = (xmask & 1) != 0;

    // Per-term phase vectors indexed by (parity(i), parity(i+1)):
    // tab[p0 + 2*p1] = [ph(p0).re, ph(p0).im, ph(p1).re, ph(p1).im].
    __m256d phaseTab[kPauliGroupSlab][4];
    for (std::size_t t = 0; t < num_terms; ++t) {
        const Complex pp = terms[t].phasePlus;
        const Complex pm = terms[t].phaseMinus;
        phaseTab[t][0] =
            _mm256_set_pd(pp.imag(), pp.real(), pp.imag(), pp.real());
        phaseTab[t][1] =
            _mm256_set_pd(pp.imag(), pp.real(), pm.imag(), pm.real());
        phaseTab[t][2] =
            _mm256_set_pd(pm.imag(), pm.real(), pp.imag(), pp.real());
        phaseTab[t][3] =
            _mm256_set_pd(pm.imag(), pm.real(), pm.imag(), pm.real());
    }

    std::size_t i = u0;
    for (; i + 2 <= u1; i += 2) {
        const __m256d va = _mm256_loadu_pd(d + 2 * i);
        const std::size_t j = (i ^ xmask) & ~std::size_t{1};
        __m256d vx = _mm256_loadu_pd(d + 2 * j);
        if (swapHalves)
            vx = _mm256_permute2f128_pd(vx, vx, 0x01);
        const __m256d vc = _mm256_xor_pd(vx, conjMask);
        for (std::size_t t = 0; t < num_terms; ++t) {
            const std::uint64_t z = terms[t].zmask;
            // parity(i+1) flips parity(i) iff bit 0 of z is set.
            const unsigned p0 =
                static_cast<unsigned>(std::popcount(i & z)) & 1u;
            const unsigned p1 = p0 ^ (static_cast<unsigned>(z) & 1u);
            const __m256d t1 = cmulVec(vc, phaseTab[t][p0 + 2 * p1]);
            // [t1r*u, t1i*v | ...]; hsub forms Re(t1 * a) per complex.
            const __m256d prod = _mm256_mul_pd(t1, va);
            const __m256d re = _mm256_hsub_pd(prod, prod);
            // Two single rounded adds, in i order, through the SSE
            // scalar-add path (no contraction is possible).
            __m128d av = _mm_load_sd(acc + t);
            av = _mm_add_sd(av, _mm256_castpd256_pd128(re));
            av = _mm_add_sd(av, _mm256_extractf128_pd(re, 1));
            _mm_store_sd(acc + t, av);
        }
    }
    return i - u0;
}

QISMET_TARGET_AVX2 std::size_t
swapAdjacentPairsAvx2(Complex *p, std::size_t count)
{
    double *d = reinterpret_cast<double *>(p);
    // One unit (adjacent complex pair) per 256-bit vector: swapping the
    // two 128-bit halves swaps the amplitudes.
    for (std::size_t i = 0; i < count; ++i) {
        const __m256d v = _mm256_loadu_pd(d + 4 * i);
        _mm256_storeu_pd(d + 4 * i, _mm256_permute2f128_pd(v, v, 0x01));
    }
    return count;
}

} // namespace detail
} // namespace kern
} // namespace qismet

#endif // QISMET_SIMD_X86
