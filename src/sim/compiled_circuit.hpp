/**
 * @file
 * Compiled-circuit execution layer: gate fusion and constant-matrix
 * caching for the simulators.
 *
 * A `CompiledCircuit` lowers a `Circuit` once into a flat op-stream the
 * simulators execute without touching `Gate::matrix` again:
 *
 *  - **Constant folding.** Every constant gate's dense matrix is
 *    resolved at compile time into a shared matrix pool. Parameterized
 *    gates become *parameter slots*: at run time `bind()` re-evaluates
 *    only the parameter-dependent entries into a caller-owned scratch
 *    pool, so one compiled circuit serves every (θ, thread) pair.
 *  - **Greedy fusion.** Adjacent 1q gates on the same qubit fuse into a
 *    single 2×2; 1q gates are absorbed into neighbouring 2q ops as 4×4
 *    products (cost-gated — see `CompileOptions::absorb2q`); runs of
 *    commuting diagonal gates (Z/S/T/RZ/CZ...) merge into one
 *    multi-qubit diagonal table applied in a single pass; X·X, CX·CX
 *    and SWAP·SWAP pairs cancel.
 *  - **Kernel classification.** Each op carries a kind tag so the
 *    simulators dispatch to specialized kernels: diagonal ops touch
 *    each amplitude exactly once, permutation ops (X/CX/SWAP) move
 *    amplitudes without arithmetic, and dense 2q ops enumerate their
 *    dim/4 base indices directly via bit-deposit instead of
 *    scan-and-skip.
 *
 * Determinism contract: compilation is a pure function of (circuit,
 * options); executing a compiled circuit is bit-identical run-to-run
 * and at every thread count. Fusion *does* change the floating-point
 * summation order relative to the unfused gate-by-gate path, so
 * results agree with the legacy path to ~1e-12, not bit-for-bit —
 * golden traces were regenerated once when this layer landed
 * (DESIGN.md §11). The escape hatch `QISMET_NO_FUSION=1` (or
 * `setFusionEnabled(false)`, or `EstimatorConfig::compileCircuits =
 * false`) restores the exact legacy path for A/B comparison.
 */

#ifndef QISMET_SIM_COMPILED_CIRCUIT_HPP
#define QISMET_SIM_COMPILED_CIRCUIT_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/matrix.hpp"

namespace qismet {

/** Kernel selector for one compiled op. */
enum class CompiledOpKind : std::uint8_t
{
    Dense1,   ///< Arbitrary 2×2 on one qubit.
    Dense2,   ///< Arbitrary 4×4 on a qubit pair (q0 = most significant).
    Diag,     ///< Diagonal over the qubits in `mask`; matrix = phase table.
    PermX,    ///< Pauli-X: amplitude pair swap.
    PermCX,   ///< Controlled-X: conditional pair swap (q0 = control).
    PermSwap, ///< SWAP: cross-qubit amplitude exchange.
};

/** One executable op of a compiled circuit. */
struct CompiledOp
{
    CompiledOpKind kind = CompiledOpKind::Dense1;
    /** True when the matrix lives in the bind pool, not the const pool. */
    bool parameterized = false;
    /** Acting qubits; q0 is the most-significant local qubit (2q ops). */
    int q0 = 0;
    int q1 = 0;
    /** Diag only: set of acted-on qubits. */
    std::uint64_t mask = 0;
    /**
     * Offset of this op's matrix into the const pool (constant ops) or
     * the bind pool (parameterized ops). Dense1/PermX: 4 entries
     * row-major; Dense2/PermCX/PermSwap: 16; Diag: 2^popcount(mask)
     * phase-table entries indexed by the gathered mask bits (ascending
     * qubit order).
     */
    std::uint32_t offset = 0;
};

/** Fusion-pass accounting, for tests and compile-time introspection. */
struct FusionStats
{
    std::size_t inputGates = 0; ///< Gates in the source circuit (I skipped).
    std::size_t ops = 0;        ///< Compiled ops emitted.
    std::size_t dense1 = 0;
    std::size_t dense2 = 0;
    std::size_t diag = 0;
    std::size_t perm = 0;
    std::size_t cancelled = 0;  ///< Gates removed by X·X / CX·CX / SWAP·SWAP.
};

/** Compilation policy knobs. */
struct CompileOptions
{
    /** Master switch: false lowers one op per gate with no merging. */
    bool fuse = true;

    /** Cap on the qubit count of a merged diagonal run (table = 2^n). */
    int maxDiagQubits = 10;

    /**
     * Whether dense 1q gates may absorb a neighbouring CX/SWAP into a
     * dense 4×4 (losing the permutation fast path but saving a memory
     * pass). `Auto` enables it only for wide registers where passes
     * are memory-bound; small states are compute-bound and keep the
     * permutation kernels.
     */
    enum class Absorb2q : std::uint8_t
    {
        Auto,
        Always,
        Never,
    };
    Absorb2q absorb2q = Absorb2q::Auto;

    /** Register width at and above which `Auto` absorbs into 2q ops. */
    int absorb2qAutoWidth = 14;
};

/**
 * A circuit lowered to a flat op-stream with cached matrices.
 *
 * Immutable after construction and safe to share across threads: the
 * parameter-dependent matrices are evaluated by `bind()` into a
 * caller-owned pool, never into the compiled circuit itself.
 */
class CompiledCircuit
{
  public:
    /** Compile `circuit` under the given options. */
    explicit CompiledCircuit(const Circuit &circuit,
                             CompileOptions options = {});

    int numQubits() const { return numQubits_; }
    int numParams() const { return numParams_; }
    const std::vector<CompiledOp> &ops() const { return ops_; }
    const FusionStats &stats() const { return stats_; }

    /** Constant-matrix pool (offsets from constant ops point here). */
    const std::vector<Complex> &constPool() const { return constPool_; }

    /** Entries `bind()` writes; 0 when the circuit has no parameters. */
    std::size_t bindPoolSize() const { return bindPoolSize_; }

    /** True when at least one op depends on a circuit parameter. */
    bool parameterized() const { return !slots_.empty(); }

    /**
     * Evaluate all parameter-dependent matrices for `params` into
     * `pool` (resized to bindPoolSize()). Each simulator thread owns
     * its own pool, keeping concurrent runs race-free.
     * @throws std::invalid_argument on parameter-count mismatch.
     */
    void bind(const std::vector<double> &params,
              std::vector<Complex> &pool) const;

    /** Matrix storage for `op`, given the pool bind() filled. */
    const Complex *matrixFor(const CompiledOp &op,
                             const std::vector<Complex> &pool) const
    {
        return (op.parameterized ? pool.data() : constPool_.data()) +
               op.offset;
    }

  private:
    /**
     * One multiplicative factor of a fused op, in application order.
     * `sub` locates 1q factors inside a 2q op: 0 = the op's
     * most-significant qubit (q0), 1 = q1, -1 = full-width factor.
     */
    struct ParamFactor
    {
        Gate gate;
        int sub = -1;
    };

    /** Re-evaluation plan for one parameterized op. */
    struct ParamSlot
    {
        CompiledOpKind kind = CompiledOpKind::Dense1;
        std::uint32_t offset = 0;
        std::uint64_t mask = 0;
        int q0 = 0;
        int q1 = 0;
        std::vector<ParamFactor> factors;
    };

    void evalSlot(const ParamSlot &slot, const std::vector<double> &params,
                  Complex *out) const;

    int numQubits_ = 0;
    int numParams_ = 0;
    std::vector<CompiledOp> ops_;
    std::vector<Complex> constPool_;
    std::vector<ParamSlot> slots_;
    std::size_t bindPoolSize_ = 0;
    FusionStats stats_;
};

/**
 * Scatter the low bits of `value` onto the set bits of `mask`
 * (PDEP-style bit deposit). The kernels use this to enumerate the
 * 2^k basis indices spanned by a k-qubit op directly, instead of
 * scanning all dim indices and skipping.
 */
inline std::uint64_t
depositBits(std::uint64_t value, std::uint64_t mask)
{
    std::uint64_t out = 0;
    while (mask != 0) {
        const std::uint64_t low = mask & (~mask + 1);
        if ((value & 1u) != 0u)
            out |= low;
        mask ^= low;
        value >>= 1;
    }
    return out;
}

/**
 * Global compile-on/off switch the simulators consult: true unless the
 * `QISMET_NO_FUSION` environment variable is set (read once) or
 * `setFusionEnabled(false)` was called. With fusion disabled,
 * `Statevector::run(Circuit)` / `DensityMatrix::run(Circuit)` take the
 * original gate-by-gate path bit-for-bit.
 */
bool fusionEnabled();

/** Programmatic override of the fusion switch (tests, A/B benches). */
void setFusionEnabled(bool on);

/**
 * Minimum state size (amplitudes for a statevector, elements for a
 * density matrix) at which `run(Circuit)` auto-compiles before
 * executing. Below it the one-shot compile costs more than the sweep it
 * saves, so the legacy per-gate path runs instead. Irrelevant to
 * callers holding a CompiledCircuit, who have already paid the compile.
 */
inline constexpr std::size_t kAutoCompileAmplitudes = 64;

} // namespace qismet

#endif // QISMET_SIM_COMPILED_CIRCUIT_HPP
