/**
 * @file
 * Kraus (CPTP) channel representation and the standard NISQ noise
 * channels: depolarizing, amplitude damping, phase damping, bit flip,
 * and thermal relaxation derived from T1/T2 and gate duration.
 */

#ifndef QISMET_SIM_KRAUS_HPP
#define QISMET_SIM_KRAUS_HPP

#include <vector>

#include "common/matrix.hpp"

namespace qismet {

/** A quantum channel as a list of Kraus operators (all same shape). */
class KrausChannel
{
  public:
    KrausChannel() = default;

    /** Construct from operators; validates consistent shape. */
    explicit KrausChannel(std::vector<Matrix> operators);

    const std::vector<Matrix> &operators() const { return ops_; }
    bool empty() const { return ops_.empty(); }

    /** Number of qubits the channel acts on (1 or 2). */
    int numQubits() const;

    /** True when sum_k K_k^dagger K_k == I within tol. */
    bool isTracePreserving(double tol = 1e-9) const;

    /** Compose: this channel followed by `after`. */
    KrausChannel then(const KrausChannel &after) const;

    /** @name Channel factories @{ */

    /** Identity (no-op) channel on one qubit. */
    static KrausChannel identity1q();

    /**
     * Single-qubit depolarizing channel: with probability p the state is
     * replaced by the maximally mixed state.
     */
    static KrausChannel depolarizing1q(double p);

    /** Two-qubit depolarizing channel (15 Pauli error terms). */
    static KrausChannel depolarizing2q(double p);

    /** Amplitude damping with decay probability gamma (T1 decay). */
    static KrausChannel amplitudeDamping(double gamma);

    /** Phase damping with dephasing probability lambda (T2 decay). */
    static KrausChannel phaseDamping(double lambda);

    /** Classical bit flip with probability p. */
    static KrausChannel bitFlip(double p);

    /**
     * Thermal relaxation over `duration_ns` for a qubit with the given
     * coherence times: amplitude damping gamma = 1 - exp(-t/T1) composed
     * with pure dephasing so the total off-diagonal decay matches
     * exp(-t/T2). Requires T2 <= 2*T1 (physical).
     */
    static KrausChannel thermalRelaxation(double t1_ns, double t2_ns,
                                          double duration_ns);

    /** @} */

  private:
    std::vector<Matrix> ops_;
};

} // namespace qismet

#endif // QISMET_SIM_KRAUS_HPP
