#include "sim/kraus.hpp"

#include <cmath>
#include <stdexcept>

namespace qismet {

KrausChannel::KrausChannel(std::vector<Matrix> operators)
    : ops_(std::move(operators))
{
    if (ops_.empty())
        throw std::invalid_argument("KrausChannel: no operators");
    const std::size_t n = ops_.front().rows();
    if (n != 2 && n != 4)
        throw std::invalid_argument("KrausChannel: must act on 1 or 2 qubits");
    for (const auto &k : ops_)
        if (k.rows() != n || k.cols() != n)
            throw std::invalid_argument("KrausChannel: inconsistent shapes");
}

int
KrausChannel::numQubits() const
{
    if (ops_.empty())
        throw std::logic_error("KrausChannel::numQubits: empty channel");
    return ops_.front().rows() == 2 ? 1 : 2;
}

bool
KrausChannel::isTracePreserving(double tol) const
{
    const std::size_t n = ops_.front().rows();
    Matrix sum(n, n);
    for (const auto &k : ops_)
        sum += k.adjoint() * k;
    return sum.maxAbsDiff(Matrix::identity(n)) <= tol;
}

KrausChannel
KrausChannel::then(const KrausChannel &after) const
{
    if (after.ops_.front().rows() != ops_.front().rows())
        throw std::invalid_argument("KrausChannel::then: shape mismatch");
    std::vector<Matrix> combined;
    combined.reserve(ops_.size() * after.ops_.size());
    for (const auto &b : after.ops_)
        for (const auto &a : ops_)
            combined.push_back(b * a);
    return KrausChannel(std::move(combined));
}

KrausChannel
KrausChannel::identity1q()
{
    return KrausChannel({Matrix::identity(2)});
}

namespace {

void
checkProbability(double p, const char *what)
{
    if (p < 0.0 || p > 1.0)
        throw std::invalid_argument(std::string(what) +
                                    ": probability outside [0, 1]");
}

Matrix
pauli(char axis)
{
    const Complex i(0.0, 1.0);
    switch (axis) {
      case 'I': return Matrix::identity(2);
      case 'X': return Matrix::fromRows({{0, 1}, {1, 0}});
      case 'Y': return Matrix::fromRows({{0, -i}, {i, 0}});
      case 'Z': return Matrix::fromRows({{1, 0}, {0, -1}});
    }
    throw std::logic_error("pauli: bad axis");
}

} // namespace

KrausChannel
KrausChannel::depolarizing1q(double p)
{
    checkProbability(p, "depolarizing1q");
    std::vector<Matrix> ops;
    ops.push_back(pauli('I') * Complex(std::sqrt(1.0 - 3.0 * p / 4.0), 0.0));
    for (char axis : {'X', 'Y', 'Z'})
        ops.push_back(pauli(axis) * Complex(std::sqrt(p / 4.0), 0.0));
    return KrausChannel(std::move(ops));
}

KrausChannel
KrausChannel::depolarizing2q(double p)
{
    checkProbability(p, "depolarizing2q");
    std::vector<Matrix> ops;
    const char axes[] = {'I', 'X', 'Y', 'Z'};
    for (char a : axes) {
        for (char b : axes) {
            const bool ident = (a == 'I' && b == 'I');
            const double w = ident ? 1.0 - 15.0 * p / 16.0 : p / 16.0;
            ops.push_back(pauli(a).kron(pauli(b)) *
                          Complex(std::sqrt(w), 0.0));
        }
    }
    return KrausChannel(std::move(ops));
}

KrausChannel
KrausChannel::amplitudeDamping(double gamma)
{
    checkProbability(gamma, "amplitudeDamping");
    Matrix k0 = Matrix::fromRows({{1, 0}, {0, std::sqrt(1.0 - gamma)}});
    Matrix k1 = Matrix::fromRows({{0, std::sqrt(gamma)}, {0, 0}});
    return KrausChannel({k0, k1});
}

KrausChannel
KrausChannel::phaseDamping(double lambda)
{
    checkProbability(lambda, "phaseDamping");
    Matrix k0 = Matrix::fromRows({{1, 0}, {0, std::sqrt(1.0 - lambda)}});
    Matrix k1 = Matrix::fromRows({{0, 0}, {0, std::sqrt(lambda)}});
    return KrausChannel({k0, k1});
}

KrausChannel
KrausChannel::bitFlip(double p)
{
    checkProbability(p, "bitFlip");
    Matrix k0 = pauli('I') * Complex(std::sqrt(1.0 - p), 0.0);
    Matrix k1 = pauli('X') * Complex(std::sqrt(p), 0.0);
    return KrausChannel({k0, k1});
}

KrausChannel
KrausChannel::thermalRelaxation(double t1_ns, double t2_ns,
                                double duration_ns)
{
    if (t1_ns <= 0.0 || t2_ns <= 0.0)
        throw std::invalid_argument("thermalRelaxation: T1/T2 must be > 0");
    if (t2_ns > 2.0 * t1_ns)
        throw std::invalid_argument("thermalRelaxation: need T2 <= 2*T1");
    if (duration_ns < 0.0)
        throw std::invalid_argument("thermalRelaxation: negative duration");

    const double gamma = 1.0 - std::exp(-duration_ns / t1_ns);

    // Off-diagonal decay from amplitude damping alone is sqrt(1-gamma) =
    // exp(-t/(2 T1)); the remaining dephasing must supply
    // exp(-t/T2) / exp(-t/(2 T1)) = exp(-t (1/T2 - 1/(2 T1))).
    const double extra = std::exp(-duration_ns *
                                  (1.0 / t2_ns - 1.0 / (2.0 * t1_ns)));
    // Phase damping with parameter lambda scales off-diagonals by
    // sqrt(1 - lambda).
    const double lambda = 1.0 - extra * extra;

    return amplitudeDamping(gamma).then(
        phaseDamping(std::min(1.0, std::max(0.0, lambda))));
}

} // namespace qismet
