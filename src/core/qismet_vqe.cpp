#include "core/qismet_vqe.hpp"

#include <cmath>
#include <optional>
#include <stdexcept>

#include "common/atomic_file.hpp"
#include "common/serial.hpp"
#include "common/thread_pool.hpp"
#include "fault/fault_injector.hpp"
#include "persist/checkpoint.hpp"

namespace qismet {

std::uint64_t
runConfigDigest(const QismetVqeConfig &config, int num_params)
{
    Encoder enc;
    enc.writeU32(static_cast<std::uint32_t>(config.scheme));
    enc.writeU64(config.totalJobs);
    enc.writeU64(config.seed);
    enc.writeI64(config.traceVersion);
    // estimator.compileCircuits and estimator.planCache/planCacheTenant
    // are deliberately not encoded: compiled circuits and expectation
    // plans are pure accelerations, bit-identical to their fallbacks,
    // so they cannot change the trajectory the digest certifies.
    enc.writeU32(static_cast<std::uint32_t>(config.estimator.mode));
    enc.writeU64(config.estimator.shots);
    enc.writeBool(config.estimator.mitigateMeasurement);
    enc.writeF64(config.transientScale);
    enc.writeI64(config.retryBudget);
    enc.writeF64(config.kalman.transition);
    enc.writeF64(config.kalman.measurementVariance);
    enc.writeF64(config.kalman.processVariance);
    enc.writeF64(config.kalman.initialVariance);
    enc.writeF64(config.onlyTransientsSkipTarget);
    enc.writeF64(config.intraJobJitter);
    enc.writeF64(config.intraJobRelativeJitter);
    enc.writeF64(config.spsaInitialStep);
    enc.writeBool(config.qismetCorrectedFeed);
    enc.writeF64(config.spsaPerturbation);
    enc.writeVecF64(config.initialTheta);
    enc.writeF64(config.faults.timeoutRate);
    enc.writeF64(config.faults.errorRate);
    enc.writeF64(config.faults.partialRate);
    enc.writeF64(config.faults.referenceLossRate);
    enc.writeF64(config.faults.burstCoupling);
    enc.writeF64(config.faults.burstScale);
    enc.writeF64(config.faults.minShotFraction);
    enc.writeF64(config.faults.maxFaultProbability);
    enc.writeI64(config.faultRetry.maxRetries);
    enc.writeF64(config.faultRetry.baseBackoffSeconds);
    enc.writeF64(config.faultRetry.backoffMultiplier);
    enc.writeF64(config.faultRetry.maxBackoffSeconds);
    enc.writeF64(config.deadlineSimSeconds);
    enc.writeI64(num_params);
    return fnv1a64(enc.bytes());
}

std::string
schemeName(Scheme scheme)
{
    switch (scheme) {
      case Scheme::NoiseFree: return "Noise-free";
      case Scheme::Baseline: return "Baseline";
      case Scheme::Qismet: return "QISMET";
      case Scheme::QismetConservative: return "QISMET-conservative";
      case Scheme::QismetAggressive: return "QISMET-aggressive";
      case Scheme::QismetDynamic: return "QISMET-dynamic";
      case Scheme::Blocking: return "Blocking";
      case Scheme::Resampling: return "Resampling";
      case Scheme::SecondOrder: return "2nd-order";
      case Scheme::OnlyTransients: return "Only-transients";
      case Scheme::Kalman: return "Kalman";
    }
    return "?";
}

QismetVqe::QismetVqe(PauliSum hamiltonian, Circuit ansatz_circuit,
                     MachineModel machine, double exact_ground_energy)
    : hamiltonian_(std::move(hamiltonian)),
      ansatz_(std::move(ansatz_circuit)), machine_(std::move(machine)),
      exactGroundEnergy_(exact_ground_energy)
{
    if (hamiltonian_.numQubits() != ansatz_.numQubits())
        throw std::invalid_argument("QismetVqe: width mismatch");
    if (hamiltonian_.numQubits() > machine_.numQubits)
        throw std::invalid_argument(
            "QismetVqe: problem wider than the machine");
}

double
QismetVqe::energyScale() const
{
    const StaticNoiseModel noise = machine_.staticModel();
    const double f = noise.survivalFactor(ansatz_);
    const double mixed = hamiltonian_.identityCoefficient();
    const double scale = f * std::abs(mixed - exactGroundEnergy_);
    return scale > 0.0 ? scale : 1.0;
}

double
QismetVqe::calibratedThreshold(double skip_target, int trace_version,
                               double transient_scale) const
{
    MachineModel m = machine_;
    if (transient_scale >= 0.0)
        m.transient.scale = transient_scale;
    // A pilot trace long enough for stable tail quantiles; unit energy
    // scale and no noise term: the result is the dimensionless quantile
    // of |Δτ| that the controller's relative test consumes.
    TransientTrace pilot = m.traceGenerator(trace_version).generate(4000);
    return ThresholdCalibrator(skip_target)
        .fromTraceDifferences(pilot, 1.0, 0.0);
}

std::vector<QismetVqeResult>
QismetVqe::runEnsemble(const QismetVqeConfig &config,
                       const std::vector<std::uint64_t> &seeds) const
{
    std::vector<QismetVqeResult> results(seeds.size());
    ParallelExecutor::global().parallelFor(
        seeds.size(), [&](std::size_t i) {
            QismetVqeConfig trial = config;
            trial.seed = seeds[i];
            // Trials must not share journal files: isolate each seed
            // in its own checkpoint subdirectory.
            if (!trial.checkpointDir.empty())
                trial.checkpointDir +=
                    "/seed-" + std::to_string(seeds[i]);
            results[i] = run(trial);
        });
    return results;
}

QismetVqeResult
QismetVqe::run(const QismetVqeConfig &config) const
{
    MachineModel machine = machine_;
    if (config.transientScale >= 0.0)
        machine.transient.scale = config.transientScale;

    // --- Estimator ---------------------------------------------------
    EstimatorConfig est_cfg = config.estimator;
    std::optional<StaticNoiseModel> noise;
    if (config.scheme == Scheme::NoiseFree) {
        est_cfg.mode = EstimatorMode::Ideal;
    } else {
        noise.emplace(machine.staticModel());
    }
    EnergyEstimator estimator(hamiltonian_, ansatz_, noise, est_cfg);

    // --- Transient trace & executor ----------------------------------
    TransientTrace trace;
    if (config.scheme != Scheme::NoiseFree) {
        trace = machine.traceGenerator(config.traceVersion)
                    .generate(config.totalJobs + 8);
    }
    const int mitigation_circuits =
        (est_cfg.mode == EstimatorMode::Sampling &&
         est_cfg.mitigateMeasurement)
            ? MeasurementMitigator::kCalibrationCircuits
            : 0;
    JobExecutor executor(estimator, trace, config.seed * 0x5851F42Dull + 1,
                         config.intraJobJitter,
                         config.intraJobRelativeJitter,
                         mitigation_circuits);

    // --- Fault injection ----------------------------------------------
    // The injector's stream is derived from the master seed but
    // independent of the executor's, so the same trajectory modulo the
    // faults themselves is replayed when rates change from zero.
    std::optional<FaultInjector> injector;
    if (config.faults.enabled()) {
        injector.emplace(config.faults,
                         config.seed * 0xD1342543DE82EF95ull + 0xFA17ull);
        executor.setFaultInjector(&*injector);
    }

    // --- Optimizer ----------------------------------------------------
    SpsaGains gains = SpsaGains::forHorizon(
        config.totalJobs,
        config.spsaInitialStep /
            std::sqrt(static_cast<double>(ansatz_.numParams())),
        config.spsaPerturbation);
    // Emulate Qiskit SPSA's learning-rate calibration: measured
    // gradients scale with the survival factor, so normalize the step
    // size by it (capped to avoid divergence on very deep circuits).
    gains.a *= std::min(4.0, 1.0 / std::max(0.05,
                                            estimator.staticSurvival()));
    std::unique_ptr<StochasticOptimizer> optimizer;
    switch (config.scheme) {
      case Scheme::Resampling:
        optimizer = std::make_unique<ResamplingSpsa>(gains);
        break;
      case Scheme::SecondOrder:
        optimizer = std::make_unique<SecondOrderSpsa>(gains);
        break;
      default:
        optimizer = std::make_unique<Spsa>(gains);
        break;
    }

    // --- Policy ---------------------------------------------------------
    // Blocking tolerance (Qiskit calibrates this from the observed loss
    // variance): twice the shot-noise sigma plus a few percent of the
    // objective swing, so ordinary statistical and drift wiggle is not
    // rejected.
    double shot_var = 0.0;
    for (const auto &t : hamiltonian_.terms())
        if (!t.pauli.isIdentity())
            shot_var += t.coefficient * t.coefficient /
                        static_cast<double>(est_cfg.shots);
    const double blocking_tol =
        2.0 * std::sqrt(shot_var) + 0.05 * energyScale();

    // T_m measurement noise: two shot-noisy estimates plus the absolute
    // intra-job jitter on each (in energy units).
    const double jitter_energy = config.intraJobJitter * energyScale();
    const double tm_sigma =
        std::sqrt(2.0 * shot_var + 2.0 * jitter_energy * jitter_energy);

    std::unique_ptr<TuningPolicy> policy;
    double threshold_used = 0.0;
    auto make_qismet = [&](double skip_target, bool adaptive = false) {
        QismetControllerConfig cc;
        cc.relativeThreshold = calibratedThreshold(
            skip_target, config.traceVersion, config.transientScale);
        cc.noiseFloor = 1.0 * tm_sigma;
        cc.mixedEnergy = hamiltonian_.identityCoefficient();
        cc.retryBudget = config.retryBudget;
        cc.correctedFeed = config.qismetCorrectedFeed;
        cc.adaptiveThreshold = adaptive;
        cc.adaptiveSkipTarget = skip_target;
        threshold_used = cc.relativeThreshold;
        return std::make_unique<GradientFaithfulController>(cc);
    };

    switch (config.scheme) {
      case Scheme::Qismet:
        policy = make_qismet(SkipTargets::kDefault);
        break;
      case Scheme::QismetDynamic:
        policy = make_qismet(SkipTargets::kDefault, /*adaptive=*/true);
        break;
      case Scheme::QismetConservative:
        policy = make_qismet(SkipTargets::kConservative);
        break;
      case Scheme::QismetAggressive:
        policy = make_qismet(SkipTargets::kAggressive);
        break;
      case Scheme::Blocking:
        policy = std::make_unique<BlockingPolicy>(blocking_tol);
        break;
      case Scheme::OnlyTransients: {
        threshold_used =
            calibratedThreshold(config.onlyTransientsSkipTarget,
                                config.traceVersion,
                                config.transientScale);
        // The naive scheme has no noise-floor refinement (that guard is
        // part of QISMET's pink band): low-percentile thresholds fire
        // on measurement noise and waste the retry budget, which is
        // exactly the failure Fig. 15 demonstrates.
        policy = std::make_unique<OnlyTransientsPolicy>(
            threshold_used, 1e-9, hamiltonian_.identityCoefficient(),
            config.retryBudget);
        break;
      }
      case Scheme::Kalman:
        policy = std::make_unique<KalmanPolicy>(config.kalman);
        break;
      default:
        policy = std::make_unique<AlwaysAcceptPolicy>();
        break;
    }

    // --- Durability -----------------------------------------------------
    std::optional<CheckpointManager> checkpoint;
    if (!config.checkpointDir.empty()) {
        CheckpointConfig ckpt_cfg;
        ckpt_cfg.dir = config.checkpointDir;
        ckpt_cfg.snapshotEveryIters = config.snapshotEveryIters;
        ckpt_cfg.resume = config.resume;
        checkpoint.emplace(ckpt_cfg,
                           runConfigDigest(config, ansatz_.numParams()));
    }

    // --- Driver ---------------------------------------------------------
    VqeDriverConfig dcfg;
    dcfg.totalJobs = config.totalJobs;
    dcfg.seed = config.seed;
    dcfg.retry = config.faultRetry;
    dcfg.retry.maxRetries = config.retryBudget;
    if (checkpoint)
        dcfg.checkpoint = &*checkpoint;
    dcfg.deadlineSimSeconds = config.deadlineSimSeconds;
    dcfg.crashAfterIters = config.crashAfterIters;
    if (config.crashAfterIters > 0 && config.checkpointDir.empty())
        throw std::invalid_argument(
            "QismetVqe::run: crashAfterIters requires checkpointDir");
    VqeDriver driver(estimator, executor, *optimizer, *policy, dcfg);

    // Deterministic initial point shared across schemes with equal seed.
    std::vector<double> theta0 = config.initialTheta;
    if (theta0.empty()) {
        Rng init_rng(config.seed ^ 0xA5A5A5A5ull);
        theta0.resize(static_cast<std::size_t>(ansatz_.numParams()));
        for (auto &t : theta0)
            t = init_rng.uniform(-M_PI, M_PI);
    } else if (theta0.size() !=
               static_cast<std::size_t>(ansatz_.numParams())) {
        throw std::invalid_argument(
            "QismetVqe::run: initialTheta size mismatch");
    }

    QismetVqeResult result;
    result.scheme = schemeName(config.scheme);
    result.run = driver.run(theta0);
    result.exactGroundEnergy = exactGroundEnergy_;
    result.mixedEnergy = hamiltonian_.identityCoefficient();
    result.errorThreshold = threshold_used;

    if (auto *ctrl =
            dynamic_cast<GradientFaithfulController *>(policy.get())) {
        result.skipFraction = ctrl->skipFraction();
    } else if (auto *ot =
                   dynamic_cast<OnlyTransientsPolicy *>(policy.get())) {
        result.skipFraction =
            ot->judged() == 0
                ? 0.0
                : static_cast<double>(ot->skipsIssued()) /
                      static_cast<double>(ot->judged());
    }
    return result;
}

} // namespace qismet
