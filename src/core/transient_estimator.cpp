#include "core/transient_estimator.hpp"

#include <cmath>

namespace qismet {

TransientEstimate
TransientEstimator::estimate(double e_prev, double e_rerun_prev,
                             double e_curr)
{
    TransientEstimate est;
    est.machineEnergyPrev = e_prev;
    est.rerunEnergyPrev = e_rerun_prev;
    est.machineEnergyCurr = e_curr;

    est.transient = e_rerun_prev - e_prev;
    est.machineGradient = e_curr - e_prev;
    est.predictedEnergy = e_curr - est.transient;
    est.predictedGradient = est.predictedEnergy - e_prev;

    magnitudes_.push_back(std::abs(est.transient));
    return est;
}

} // namespace qismet
