/**
 * @file
 * QISMET's gradient-faithful controller (paper Section 5.2, Fig. 9)
 * plus the two comparison policies that also consume reference reruns:
 * only-transients skipping (Section 5.3) and the Kalman output filter
 * (Section 7.4).
 */

#ifndef QISMET_CORE_CONTROLLER_HPP
#define QISMET_CORE_CONTROLLER_HPP

#include "core/transient_estimator.hpp"
#include "filter/kalman.hpp"
#include "filter/only_transients.hpp"
#include "vqe/vqe_driver.hpp"

namespace qismet {

/** QISMET controller configuration. */
struct QismetControllerConfig
{
    /**
     * Error threshold (the pink band of Fig. 9) as a fraction of the
     * current objective swing |E_m(i) - E_mixed|: sign-flipped
     * gradients whose transient magnitude stays inside the band are
     * accepted anyway. Relative units follow the paper's Section 6.2
     * normalization of transient effects "to the magnitude of the VQA
     * estimations", keeping the controller equally sensitive early
     * (small swing) and late (large swing) in tuning.
     */
    double relativeThreshold = 0.25;
    /**
     * Absolute floor of the effective threshold, guarding against
     * treating pure measurement noise as transients (energy units;
     * a few T_m noise sigmas).
     */
    double noiseFloor = 0.05;
    /** <H> in the maximally mixed state (the swing's reference point). */
    double mixedEnergy = 0.0;
    /**
     * Retry budget: maximum rejections of one iteration before the
     * controller accepts it regardless (Section 8.1 fixes this to 5).
     */
    int retryBudget = 5;
    /**
     * Dynamic thresholding (the paper's Section-7.7 future-work
     * pointer: "intelligent dynamic thresholding can potentially be
     * used to improve these benefits further"): when enabled, the
     * relative threshold is re-calibrated online from the trailing
     * window of observed relative transient magnitudes, so the skip
     * rate tracks `adaptiveSkipTarget` even if the machine's transient
     * behavior drifts away from the ahead-of-time pilot trace.
     */
    bool adaptiveThreshold = false;
    /** Target skip fraction the adaptive threshold aims for. */
    double adaptiveSkipTarget = 0.10;
    /** Trailing window (judgments) used for re-calibration. */
    std::size_t adaptiveWindow = 120;

    /**
     * Degraded-mode accept band (fault resilience): when a job's
     * reference rerun is lost (FaultKind::ReferenceLoss) there is no
     * transient estimate T_m, so the sign test is impossible. The
     * controller then falls back to judging the raw machine gradient
     * G_m against the error-threshold band *widened by this factor* —
     * small moves are trusted (the transient-free gradient cannot
     * differ much), large unverifiable moves are retried. Must be
     * >= 1; 1 reuses the ordinary band.
     */
    double degradedBandFactor = 2.0;

    /**
     * Keep the tuner's gradients faithful to the transient-free
     * prediction (paper Fig. 8 / Section 5.1): when the estimated
     * transient on a job exceeds the error threshold, the energy handed
     * to the tuner is the prediction E_p = E_m - T_m rather than the
     * raw measurement, so the consumed gradient is G_p. Below the
     * threshold the raw measurement is trusted — correcting inside the
     * noise band would only inject estimation noise (the reason the
     * paper's pink band exists, and why the aggressive threshold hurts
     * in low-transient scenarios, Fig. 19). Disable for the skip-only
     * ablation.
     */
    bool correctedFeed = true;
};

/**
 * The gradient-faithful controller: a candidate iteration is accepted
 * iff the machine gradient G_m and the predicted transient-free
 * gradient G_p point the same way, or the estimated transient is inside
 * the error-threshold band; otherwise the iteration is retried until
 * realignment or budget exhaustion.
 */
class GradientFaithfulController : public TuningPolicy
{
  public:
    explicit GradientFaithfulController(QismetControllerConfig config);

    std::string name() const override { return "QISMET"; }
    bool wantsReferenceRerun() const override { return true; }
    Decision judgeEvaluation(const EvalContext &ctx) override;

    /**
     * Recursive transient-free prediction fed to the tuner:
     * fed(i+1) = E_m(i+1) - (E_mR(i) - fed(i)), so consecutive fed
     * differences equal the within-job quantity E_m(i+1) - E_mR(i) —
     * the paper's predicted gradient G_p with the job-level transient
     * cancelled.
     */
    double energyForOptimizer(const EvalContext &ctx) override;

    void reset() override;
    void saveState(Encoder &enc) const override;
    void loadState(Decoder &dec) override;

    /** Iterations the controller chose to skip (retries issued). */
    std::size_t skipsIssued() const { return skips_; }
    /** Iterations judged in total. */
    std::size_t judged() const { return judged_; }
    /** Observed skip fraction. */
    double skipFraction() const;

    /** Access the accumulated transient statistics. */
    const TransientEstimator &estimator() const { return estimator_; }

    const QismetControllerConfig &config() const { return config_; }

    /**
     * Effective (energy-units) threshold for a given previous energy.
     * Partial-result jobs (shot_fraction < 1) carry proportionally more
     * shot noise, so the noise-floor leg of the band widens by
     * 1/sqrt(shot_fraction).
     */
    double effectiveThreshold(double e_prev,
                              double shot_fraction = 1.0) const;

    /** Currently active relative threshold (adapted when dynamic). */
    double activeRelativeThreshold() const { return relativeThreshold_; }

  private:
    void observeRelativeMagnitude(double rel_magnitude);

    QismetControllerConfig config_;
    double relativeThreshold_ = 0.0;
    TransientEstimator estimator_;
    std::vector<double> relativeHistory_;
    std::size_t skips_ = 0;
    std::size_t judged_ = 0;
    double fedPrev_ = 0.0;
    bool haveFedPrev_ = false;
};

/**
 * Only-transients policy: skip on |T_m| > threshold alone, with the
 * same relative-threshold semantics as the QISMET controller so the
 * two are comparable at equal skip targets (paper Fig. 15).
 */
class OnlyTransientsPolicy : public TuningPolicy
{
  public:
    /**
     * @param relative_threshold Threshold as a fraction of the current
     *        objective swing.
     * @param noise_floor Absolute threshold floor (energy units).
     * @param mixed_energy <H> in the maximally mixed state.
     * @param retry_budget Maximum consecutive skips of one evaluation.
     */
    OnlyTransientsPolicy(double relative_threshold, double noise_floor,
                         double mixed_energy, int retry_budget);

    std::string name() const override { return "Only-transients"; }
    bool wantsReferenceRerun() const override { return true; }
    Decision judgeEvaluation(const EvalContext &ctx) override;
    void reset() override;
    void saveState(Encoder &enc) const override;
    void loadState(Decoder &dec) override;

    std::size_t skipsIssued() const { return skips_; }
    std::size_t judged() const { return judged_; }

  private:
    double relativeThreshold_;
    double noiseFloor_;
    double mixedEnergy_;
    OnlyTransientsSkipper skipper_;
    TransientEstimator estimator_;
    std::size_t skips_ = 0;
    std::size_t judged_ = 0;
};

/**
 * Kalman output filter as an iteration policy: every iteration is
 * accepted (the tuner runs exactly like the baseline), but the reported
 * energy estimate is the filter's posterior (Section 7.4's evaluation).
 */
class KalmanPolicy : public TuningPolicy
{
  public:
    explicit KalmanPolicy(KalmanParams params);

    std::string name() const override { return "Kalman"; }
    Decision judgeEvaluation(const EvalContext &) override
    {
        return Decision::Accept;
    }
    double transformEnergy(double e_measured) override;
    void reset() override;
    void saveState(Encoder &enc) const override;
    void loadState(Decoder &dec) override;

    const KalmanFilter1D &filter() const { return filter_; }

  private:
    KalmanFilter1D filter_;
};

} // namespace qismet

#endif // QISMET_CORE_CONTROLLER_HPP
