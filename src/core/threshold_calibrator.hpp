/**
 * @file
 * QISMET error-threshold calibration.
 *
 * The paper sets the error threshold "so as to skip at most N% of the
 * iterations" (10% default, 1% conservative, 25% aggressive — Sections
 * 6.3 and 7.7). The calibrator turns a target skip fraction into an
 * energy-units threshold by taking the (1 - target) quantile of the
 * expected transient-magnitude distribution, obtained either from a
 * trace prefix (ahead-of-time, how the benches run) or from the online
 * history of |T_m| estimates.
 */

#ifndef QISMET_CORE_THRESHOLD_CALIBRATOR_HPP
#define QISMET_CORE_THRESHOLD_CALIBRATOR_HPP

#include <vector>

#include "noise/transient_trace.hpp"

namespace qismet {

/** The paper's three named skip-rate targets. */
struct SkipTargets
{
    static constexpr double kConservative = 0.01;
    static constexpr double kDefault = 0.10;
    static constexpr double kAggressive = 0.25;
};

/** Computes energy-unit thresholds from skip-rate targets. */
class ThresholdCalibrator
{
  public:
    /**
     * @param target_skip_fraction Maximum fraction of iterations the
     *        controller should skip; in (0, 1).
     */
    explicit ThresholdCalibrator(double target_skip_fraction);

    double targetSkipFraction() const { return target_; }

    /**
     * Threshold from a sample of transient magnitudes already in
     * energy units (e.g. online |T_m| history).
     */
    double fromSamples(std::vector<double> magnitudes) const;

    /**
     * Threshold from a transient trace plus the problem's energy scale.
     * @param trace Dimensionless per-job intensities.
     * @param energy_scale Conversion from intensity to energy impact:
     *        the damped objective swing f·|E_ideal - E_mixed| of the
     *        application (see DESIGN.md §5.2's noise composition).
     */
    double fromTrace(const TransientTrace &trace,
                     double energy_scale) const;

    /**
     * Threshold matched to what the controller actually measures: the
     * transient estimate T_m compares *adjacent jobs*, so its
     * distribution is |Δτ · energy_scale + measurement noise|, where Δτ
     * walks consecutive trace intensities and the noise models shot and
     * intra-job effects. A deterministic Monte-Carlo convolution over
     * the trace's consecutive differences gives the quantile.
     *
     * @param noise_sigma Stddev of the T_m measurement noise (≈ √2 ×
     *        the per-estimate shot-noise sigma).
     * @param seed Seed for the (deterministic) noise draws.
     */
    double fromTraceDifferences(const TransientTrace &trace,
                                double energy_scale, double noise_sigma,
                                std::uint64_t seed = 12345) const;

  private:
    double target_;
};

} // namespace qismet

#endif // QISMET_CORE_THRESHOLD_CALIBRATOR_HPP
