#include "core/threshold_calibrator.hpp"

#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"
#include "common/statistics.hpp"

namespace qismet {

ThresholdCalibrator::ThresholdCalibrator(double target_skip_fraction)
    : target_(target_skip_fraction)
{
    if (target_ <= 0.0 || target_ >= 1.0)
        throw std::invalid_argument(
            "ThresholdCalibrator: target must be in (0, 1)");
}

double
ThresholdCalibrator::fromSamples(std::vector<double> magnitudes) const
{
    if (magnitudes.empty())
        throw std::invalid_argument(
            "ThresholdCalibrator::fromSamples: empty sample");
    for (auto &m : magnitudes)
        m = std::abs(m);
    return quantile(std::move(magnitudes), 1.0 - target_);
}

double
ThresholdCalibrator::fromTrace(const TransientTrace &trace,
                               double energy_scale) const
{
    if (trace.size() == 0)
        throw std::invalid_argument(
            "ThresholdCalibrator::fromTrace: empty trace");
    if (energy_scale <= 0.0)
        throw std::invalid_argument(
            "ThresholdCalibrator::fromTrace: energy scale must be > 0");

    std::vector<double> mags;
    mags.reserve(trace.size());
    for (double v : trace.values())
        mags.push_back(std::abs(v) * energy_scale);
    return quantile(std::move(mags), 1.0 - target_);
}

double
ThresholdCalibrator::fromTraceDifferences(const TransientTrace &trace,
                                          double energy_scale,
                                          double noise_sigma,
                                          std::uint64_t seed) const
{
    if (trace.size() < 2)
        throw std::invalid_argument(
            "ThresholdCalibrator::fromTraceDifferences: trace too short");
    if (energy_scale <= 0.0)
        throw std::invalid_argument(
            "ThresholdCalibrator::fromTraceDifferences: bad energy scale");
    if (noise_sigma < 0.0)
        throw std::invalid_argument(
            "ThresholdCalibrator::fromTraceDifferences: negative sigma");

    Rng rng(seed);
    const auto &v = trace.values();
    std::vector<double> mags;
    mags.reserve(v.size() - 1);
    for (std::size_t i = 0; i + 1 < v.size(); ++i) {
        const double dtau = v[i + 1] - v[i];
        mags.push_back(std::abs(dtau * energy_scale +
                                rng.normal(0.0, noise_sigma)));
    }
    return quantile(std::move(mags), 1.0 - target_);
}

} // namespace qismet
