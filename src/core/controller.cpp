#include "core/controller.hpp"

#include <cmath>
#include <stdexcept>

#include "common/statistics.hpp"

namespace qismet {

GradientFaithfulController::GradientFaithfulController(
    QismetControllerConfig config)
    : config_(config), relativeThreshold_(config.relativeThreshold)
{
    if (config_.relativeThreshold < 0.0 || config_.noiseFloor < 0.0)
        throw std::invalid_argument(
            "GradientFaithfulController: negative threshold");
    if (config_.retryBudget < 1)
        throw std::invalid_argument(
            "GradientFaithfulController: retry budget < 1");
    if (config_.adaptiveThreshold &&
        (config_.adaptiveSkipTarget <= 0.0 ||
         config_.adaptiveSkipTarget >= 1.0 ||
         config_.adaptiveWindow < 10))
        throw std::invalid_argument(
            "GradientFaithfulController: bad adaptive settings");
    if (config_.degradedBandFactor < 1.0)
        throw std::invalid_argument(
            "GradientFaithfulController: degraded band factor < 1");
}

double
GradientFaithfulController::effectiveThreshold(double e_prev,
                                               double shot_fraction) const
{
    return std::max(config_.noiseFloor / std::sqrt(shot_fraction),
                    relativeThreshold_ *
                        std::abs(e_prev - config_.mixedEnergy));
}

void
GradientFaithfulController::observeRelativeMagnitude(double rel_magnitude)
{
    if (!config_.adaptiveThreshold)
        return;
    relativeHistory_.push_back(rel_magnitude);
    if (relativeHistory_.size() < config_.adaptiveWindow)
        return;
    // Re-calibrate from the trailing window, then slide it.
    relativeThreshold_ = quantile(relativeHistory_,
                                  1.0 - config_.adaptiveSkipTarget);
    relativeHistory_.erase(relativeHistory_.begin(),
                           relativeHistory_.begin() +
                               static_cast<std::ptrdiff_t>(
                                   config_.adaptiveWindow / 2));
}

Decision
GradientFaithfulController::judgeEvaluation(const EvalContext &ctx)
{
    if (!ctx.hasReference) {
        if (!ctx.referenceLost)
            return Decision::Accept;
        // Degraded mode: the reference rerun was lost, so no transient
        // estimate exists. Accept on the machine estimate when the
        // perceived move is small (inside the widened band — the
        // transient-free gradient cannot point far elsewhere); retry
        // large, unverifiable moves until the shared budget is spent.
        ++judged_;
        const double band = config_.degradedBandFactor *
                            effectiveThreshold(ctx.ePrev,
                                               ctx.shotFraction);
        if (std::abs(ctx.machineGradient()) <= band)
            return Decision::Accept;
        if (ctx.retryIndex >= config_.retryBudget)
            return Decision::Accept;
        ++skips_;
        return Decision::Retry;
    }

    ++judged_;
    const TransientEstimate est = estimator_.estimate(
        ctx.ePrev, ctx.eReferenceRerun, ctx.eCurr);

    // Feed the adaptive threshold its observation (relative transient
    // magnitude against the current objective swing).
    const double swing = std::abs(ctx.ePrev - config_.mixedEnergy);
    if (swing > 1e-9)
        observeRelativeMagnitude(std::abs(est.transient) / swing);

    // Fig. 9 (a/b/d/e): gradient directions agree — accept.
    const bool same_direction =
        (est.machineGradient >= 0.0) == (est.predictedGradient >= 0.0);
    if (same_direction)
        return Decision::Accept;

    // Fig. 9 pink band: small swings are always accepted. A sign flip
    // with |T_m| inside the band implies both gradients are tiny.
    if (std::abs(est.transient) <=
        effectiveThreshold(ctx.ePrev, ctx.shotFraction))
        return Decision::Accept;

    // Fig. 9 (c/f): a truly-bad configuration perceived good (or vice
    // versa) — skip, unless the retry budget is spent (Section 8.1:
    // long-lived device changes must eventually be adapted to).
    if (ctx.retryIndex >= config_.retryBudget)
        return Decision::Accept;

    ++skips_;
    return Decision::Retry;
}

double
GradientFaithfulController::energyForOptimizer(const EvalContext &ctx)
{
    if (!config_.correctedFeed || !ctx.hasReference || !haveFedPrev_) {
        fedPrev_ = ctx.eCurr;
        haveFedPrev_ = true;
        return fedPrev_;
    }

    // Estimated transient on this job, relative to the transient-free
    // estimate of the previous evaluation.
    const double transient = ctx.eReferenceRerun - fedPrev_;
    if (std::abs(transient) >
        effectiveThreshold(fedPrev_, ctx.shotFraction)) {
        // Significant: hand the tuner the prediction E_p = E_m - T_m.
        fedPrev_ = ctx.eCurr - transient;
    } else {
        // Inside the noise band: trust the measurement.
        fedPrev_ = ctx.eCurr;
    }
    return fedPrev_;
}

void
GradientFaithfulController::reset()
{
    estimator_.reset();
    relativeHistory_.clear();
    relativeThreshold_ = config_.relativeThreshold;
    skips_ = 0;
    judged_ = 0;
    fedPrev_ = 0.0;
    haveFedPrev_ = false;
}

void
GradientFaithfulController::saveState(Encoder &enc) const
{
    enc.writeF64(relativeThreshold_);
    enc.writeVecF64(estimator_.magnitudeHistory());
    enc.writeVecF64(relativeHistory_);
    enc.writeU64(skips_);
    enc.writeU64(judged_);
    enc.writeF64(fedPrev_);
    enc.writeBool(haveFedPrev_);
}

void
GradientFaithfulController::loadState(Decoder &dec)
{
    relativeThreshold_ = dec.readF64();
    estimator_.restoreMagnitudes(dec.readVecF64());
    relativeHistory_ = dec.readVecF64();
    skips_ = static_cast<std::size_t>(dec.readU64());
    judged_ = static_cast<std::size_t>(dec.readU64());
    fedPrev_ = dec.readF64();
    haveFedPrev_ = dec.readBool();
}

double
GradientFaithfulController::skipFraction() const
{
    if (judged_ == 0)
        return 0.0;
    return static_cast<double>(skips_) / static_cast<double>(judged_);
}

OnlyTransientsPolicy::OnlyTransientsPolicy(double relative_threshold,
                                           double noise_floor,
                                           double mixed_energy,
                                           int retry_budget)
    : relativeThreshold_(relative_threshold), noiseFloor_(noise_floor),
      mixedEnergy_(mixed_energy), skipper_(1.0, retry_budget)
{
    if (relative_threshold < 0.0 || noise_floor < 0.0)
        throw std::invalid_argument(
            "OnlyTransientsPolicy: negative threshold");
}

Decision
OnlyTransientsPolicy::judgeEvaluation(const EvalContext &ctx)
{
    if (!ctx.hasReference)
        return Decision::Accept;

    ++judged_;
    const TransientEstimate est = estimator_.estimate(
        ctx.ePrev, ctx.eReferenceRerun, ctx.eCurr);

    const double threshold =
        std::max(noiseFloor_,
                 relativeThreshold_ * std::abs(ctx.ePrev - mixedEnergy_));
    // Normalize so the skipper's unit threshold applies the budget rule.
    if (skipper_.shouldSkip(est.transient / threshold, ctx.retryIndex)) {
        ++skips_;
        return Decision::Retry;
    }
    return Decision::Accept;
}

void
OnlyTransientsPolicy::reset()
{
    estimator_.reset();
    skips_ = 0;
    judged_ = 0;
}

void
OnlyTransientsPolicy::saveState(Encoder &enc) const
{
    enc.writeVecF64(estimator_.magnitudeHistory());
    enc.writeU64(skips_);
    enc.writeU64(judged_);
}

void
OnlyTransientsPolicy::loadState(Decoder &dec)
{
    estimator_.restoreMagnitudes(dec.readVecF64());
    skips_ = static_cast<std::size_t>(dec.readU64());
    judged_ = static_cast<std::size_t>(dec.readU64());
}

KalmanPolicy::KalmanPolicy(KalmanParams params) : filter_(params) {}

double
KalmanPolicy::transformEnergy(double e_measured)
{
    return filter_.update(e_measured);
}

void
KalmanPolicy::reset()
{
    filter_.reset();
}

void
KalmanPolicy::saveState(Encoder &enc) const
{
    filter_.saveState(enc);
}

void
KalmanPolicy::loadState(Decoder &dec)
{
    filter_.loadState(dec);
}

} // namespace qismet
