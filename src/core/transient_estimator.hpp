/**
 * @file
 * Transient estimation and transient-free prediction (paper Section 5.1
 * and Fig. 8).
 *
 * Given the previous iteration's accepted energy E_m(i), its rerun in
 * the current job E_mR(i), and the current candidate's energy E_m(i+1):
 *
 *   T_m(i+1) = E_mR(i)  - E_m(i)       (transient estimate)
 *   G_m(i+1) = E_m(i+1) - E_m(i)       (machine gradient)
 *   E_p(i+1) = E_m(i+1) - T_m(i+1)     (transient-free prediction)
 *   G_p(i+1) = E_p(i+1) - E_m(i)       (predicted gradient)
 */

#ifndef QISMET_CORE_TRANSIENT_ESTIMATOR_HPP
#define QISMET_CORE_TRANSIENT_ESTIMATOR_HPP

#include <cstddef>
#include <vector>

namespace qismet {

/** All Fig.-8 quantities for one iteration. */
struct TransientEstimate
{
    double machineEnergyPrev = 0.0;    ///< E_m(i)
    double rerunEnergyPrev = 0.0;      ///< E_mR(i)
    double machineEnergyCurr = 0.0;    ///< E_m(i+1)

    double transient = 0.0;            ///< T_m(i+1)
    double machineGradient = 0.0;      ///< G_m(i+1)
    double predictedEnergy = 0.0;      ///< E_p(i+1)
    double predictedGradient = 0.0;    ///< G_p(i+1)
};

/**
 * Computes Fig.-8 quantities and keeps a history of transient
 * magnitudes for online threshold calibration.
 */
class TransientEstimator
{
  public:
    /** Compute the estimate for one iteration (also recorded). */
    TransientEstimate estimate(double e_prev, double e_rerun_prev,
                               double e_curr);

    /** |T_m| magnitudes observed so far. */
    const std::vector<double> &magnitudeHistory() const
    {
        return magnitudes_;
    }

    /** Number of iterations observed. */
    std::size_t count() const { return magnitudes_.size(); }

    /** Clear the history. */
    void reset() { magnitudes_.clear(); }

    /** Crash-recovery: restore a history captured by magnitudeHistory(). */
    void restoreMagnitudes(std::vector<double> magnitudes)
    {
        magnitudes_ = std::move(magnitudes);
    }

  private:
    std::vector<double> magnitudes_;
};

} // namespace qismet

#endif // QISMET_CORE_TRANSIENT_ESTIMATOR_HPP
