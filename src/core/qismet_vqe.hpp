/**
 * @file
 * Integrated QISMET VQE experiment runner: wires a Hamiltonian, an
 * ansatz, a simulated machine (static noise + transient trace), an SPSA
 * family tuner and an acceptance policy into one reproducible run.
 *
 * All of the paper's evaluation schemes (Section 6.3) are constructed
 * here from a single Scheme tag, so every bench compares schemes under
 * identical traces, seeds, and job budgets.
 */

#ifndef QISMET_CORE_QISMET_VQE_HPP
#define QISMET_CORE_QISMET_VQE_HPP

#include <memory>
#include <optional>
#include <string>

#include "ansatz/ansatz.hpp"
#include "core/controller.hpp"
#include "core/threshold_calibrator.hpp"
#include "fault/fault_policy.hpp"
#include "noise/machine_model.hpp"
#include "optim/spsa_variants.hpp"
#include "pauli/pauli_sum.hpp"
#include "vqe/vqe_driver.hpp"

namespace qismet {

/** The paper's evaluation schemes (Section 6.3). */
enum class Scheme
{
    NoiseFree,          ///< Ideal simulator, no noise of any kind.
    Baseline,           ///< Static + transient noise, no transient control.
    Qismet,             ///< Gradient-faithful controller, 10% skip target.
    QismetConservative, ///< 1% skip target.
    QismetAggressive,   ///< 25% skip target.
    QismetDynamic,      ///< Online-adaptive threshold (Sec. 7.7 extension).
    Blocking,           ///< SPSA blocking option.
    Resampling,         ///< SPSA with 2x gradient resampling.
    SecondOrder,        ///< 2-SPSA Hessian preconditioning.
    OnlyTransients,     ///< Skip on transient magnitude alone.
    Kalman,             ///< Kalman output filtering on the estimates.
};

/** Display name matching the paper's figure legends. */
std::string schemeName(Scheme scheme);

/** One experiment configuration. */
struct QismetVqeConfig
{
    Scheme scheme = Scheme::Baseline;
    /** Machine-execution budget; every retry consumes a job. */
    std::size_t totalJobs = 500;
    /** Master seed (optimizer, shot noise, initial point). */
    std::uint64_t seed = 7;
    /** Transient trace version (the paper's v1/v2 trials). */
    int traceVersion = 1;
    /** Energy-estimation mode and shots. */
    EstimatorConfig estimator;
    /** Transient-scale override; <0 keeps the machine's default. */
    double transientScale = -1.0;
    /** QISMET retry budget (Section 8.1 fixes 5). */
    int retryBudget = 5;
    /** Kalman hyper-parameters (Kalman scheme only). */
    KalmanParams kalman;
    /**
     * Only-transients skip target (fraction of jobs whose transient
     * magnitude exceeds the threshold), used by that scheme only.
     */
    double onlyTransientsSkipTarget = 0.10;
    /** Absolute intra-job transient jitter passed to the JobExecutor. */
    double intraJobJitter = 0.01;
    /** Relative (∝ |τ|) intra-job jitter passed to the JobExecutor. */
    double intraJobRelativeJitter = 0.15;
    /**
     * SPSA initial step scale, interpreted as a *total* L2 step target:
     * the per-coordinate step is this divided by sqrt(numParams), so
     * deeper ansatz (more parameters) automatically get proportionally
     * finer per-parameter moves. The full gain schedule is derived from
     * this and the job budget via SpsaGains::forHorizon.
     */
    double spsaInitialStep = 0.25;
    /** QISMET extension: feed transient-corrected energies (ablation). */
    bool qismetCorrectedFeed = true;
    /** SPSA perturbation size c. */
    double spsaPerturbation = 0.12;
    /**
     * Starting parameters; empty draws uniform [-π, π) from the seed.
     * Ansatz families with structured landscapes (e.g. QAOA, which
     * wants small positive angles) should supply their own.
     */
    std::vector<double> initialTheta;
    /**
     * Fault-injection policy for the job pipeline (all rates zero =
     * disabled, the default; existing experiments are unchanged).
     * Fault draws derive from `seed` through an independent stream.
     */
    FaultPolicy faults;
    /**
     * Backoff shape for fault retries. Its maxRetries is overridden
     * with `retryBudget` at run time, so fault retries and controller
     * reject-retries share one per-evaluation budget.
     */
    RetryPolicy faultRetry;
    /**
     * Durability: directory for the write-ahead journal + snapshots.
     * Empty (the default) disables checkpointing entirely.
     */
    std::string checkpointDir;
    /**
     * Resume from `checkpointDir` if a valid checkpoint of *this*
     * configuration exists there (config digests are verified);
     * otherwise start fresh. Resumed runs continue bit-identically
     * with the uninterrupted run at any thread count.
     */
    bool resume = false;
    /** Snapshot cadence in optimizer iterations (>= 1). */
    std::size_t snapshotEveryIters = 1;
    /**
     * Deadline budget over the run's simulated seconds; 0 = none. The
     * run stops at the first optimizer-iteration boundary at or past
     * the budget (VqeRunResult::deadlineExpired). Included in
     * runConfigDigest: a deadline changes the trajectory.
     */
    double deadlineSimSeconds = 0.0;
    /**
     * Per-run crash injection (serve soak harness): when > 0, the run
     * throws SimulatedCrash at this optimizer-iteration boundary after
     * any due snapshot. Requires `checkpointDir`. Excluded from
     * runConfigDigest like the other durability fields, so a resume
     * leg with a different (or no) planned crash can recover the
     * checkpoint.
     */
    std::size_t crashAfterIters = 0;
};

/**
 * Digest of the configuration fields that determine a run's trajectory
 * (plus the parameter count). Stamped into journal and snapshot
 * headers so a checkpoint can never be resumed under a different
 * configuration.
 */
std::uint64_t runConfigDigest(const QismetVqeConfig &config,
                              int num_params);

/** Result of one experiment. */
struct QismetVqeResult
{
    std::string scheme;
    VqeRunResult run;
    /** Exact ground-state energy of the problem. */
    double exactGroundEnergy = 0.0;
    /** Expectation in the maximally mixed state. */
    double mixedEnergy = 0.0;
    /** Controller skip fraction (QISMET / only-transients schemes). */
    double skipFraction = 0.0;
    /** Calibrated error threshold used (energy units), if any. */
    double errorThreshold = 0.0;

    /**
     * Distance of the final reported estimate from the exact ground
     * energy (lower is better).
     */
    double estimateError() const
    {
        return run.finalEstimate - exactGroundEnergy;
    }
    /** Distance of the final *true* energy from the exact ground energy. */
    double solutionError() const
    {
        return run.finalIdealEnergy - exactGroundEnergy;
    }
};

/** Builds and runs QISMET VQE experiments for one problem + machine. */
class QismetVqe
{
  public:
    /**
     * @param hamiltonian Problem observable.
     * @param ansatz_circuit Parameterized ansatz.
     * @param machine Simulated machine (noise + transient personality).
     * @param exact_ground_energy Exact reference energy for metrics.
     */
    QismetVqe(PauliSum hamiltonian, Circuit ansatz_circuit,
              MachineModel machine, double exact_ground_energy);

    /** Run one experiment. */
    QismetVqeResult run(const QismetVqeConfig &config) const;

    /**
     * Run the same experiment once per seed, fanning the independent
     * trials out over the global ParallelExecutor (the bench layer's
     * seed-averaged figures are exactly this shape). Every trial
     * derives all of its randomness from its own seed, so the returned
     * results — ordered like `seeds` — are bit-identical for every
     * thread count.
     */
    std::vector<QismetVqeResult>
    runEnsemble(const QismetVqeConfig &config,
                const std::vector<std::uint64_t> &seeds) const;

    /**
     * The energy scale used to convert trace intensities into
     * energy-unit thresholds: f_static · (E_mixed - E_ground).
     */
    double energyScale() const;

    /**
     * Calibrated QISMET *relative* error threshold (fraction of the
     * current objective swing) for a skip-rate target, using a pilot
     * trace from this machine (paper Section 6.3: "threshold is set so
     * as to skip at most 10% of the iterations"). The quantile is taken
     * over the job-to-job transient intensity differences — the
     * dimensionless distribution the controller's relative test sees.
     */
    double calibratedThreshold(double skip_target, int trace_version,
                               double transient_scale = -1.0) const;

    const MachineModel &machine() const { return machine_; }
    double exactGroundEnergy() const { return exactGroundEnergy_; }

  private:
    PauliSum hamiltonian_;
    Circuit ansatz_;
    MachineModel machine_;
    double exactGroundEnergy_;
};

} // namespace qismet

#endif // QISMET_CORE_QISMET_VQE_HPP
