/**
 * @file
 * Ornstein-Uhlenbeck process — the slow-drift component of the
 * transient-noise model.
 *
 * Paper Fig. 3 shows T1 times wandering around a mean with occasional
 * deep excursions. The wander is modeled here as mean-reverting OU
 * noise; the excursions come from the TLS burst process (tls_burst.hpp).
 */

#ifndef QISMET_NOISE_OU_PROCESS_HPP
#define QISMET_NOISE_OU_PROCESS_HPP

#include "common/rng.hpp"

namespace qismet {

/** Mean-reverting Gaussian process dx = θ(μ - x)dt + σ dW. */
class OuProcess
{
  public:
    /**
     * @param mean Long-run mean μ.
     * @param reversion Mean-reversion rate θ (per unit time, > 0).
     * @param sigma Diffusion strength σ.
     * @param initial Starting value (defaults to the mean).
     */
    OuProcess(double mean, double reversion, double sigma, double initial);

    /** Construct starting at the mean. */
    OuProcess(double mean, double reversion, double sigma);

    /** Current value. */
    double value() const { return x_; }

    /**
     * Advance by dt using the exact OU transition density (valid for
     * any step size, unlike Euler-Maruyama).
     */
    double step(double dt, Rng &rng);

    /** Stationary standard deviation σ / sqrt(2θ). */
    double stationaryStddev() const;

    /** Reset to a given value. */
    void reset(double value) { x_ = value; }

  private:
    double mean_;
    double reversion_;
    double sigma_;
    double x_;
};

} // namespace qismet

#endif // QISMET_NOISE_OU_PROCESS_HPP
