/**
 * @file
 * Per-job transient-noise traces (paper Section 6.2).
 *
 * The paper captures per-iteration transient effects on real machines,
 * normalizes them to the magnitude of the VQA estimations, and replays
 * them in the Qiskit simulator. This module produces the same artifact
 * synthetically: a TransientTrace is a sequence of dimensionless
 * transient intensities τ(job), one per quantum job, where τ = 0 means
 * no transient and τ = 1 means the job's output is fully scrambled
 * toward the maximally mixed state. Small negative values (from the OU
 * drift) model jobs that transiently run *better* than the static
 * average.
 */

#ifndef QISMET_NOISE_TRANSIENT_TRACE_HPP
#define QISMET_NOISE_TRANSIENT_TRACE_HPP

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "noise/tls_burst.hpp"

namespace qismet {

/** Parameters of the synthetic transient-noise generator. */
struct TransientTraceParams
{
    /** Burst (outlier) component. */
    TlsBurstParams burst;
    /** Stationary stddev of the slow OU drift component. */
    double driftStddev = 0.01;
    /** OU mean-reversion rate per job. */
    double driftReversion = 0.05;
    /**
     * Overall intensity multiplier; the paper's Fig. 10 sweeps this
     * from 0 to 0.5 ("0-50% of the ideal VQA objective estimations").
     */
    double scale = 1.0;
    /** Clamp of the final intensity. */
    double maxIntensity = 1.0;
};

/** A realized trace: one transient intensity per job. */
class TransientTrace
{
  public:
    /** Empty trace (all-zero on demand). */
    TransientTrace() = default;

    /** Wrap explicit per-job intensities. */
    explicit TransientTrace(std::vector<double> intensities);

    /** Intensity for the job with the given index (0 past the end). */
    double at(std::size_t job_index) const;

    std::size_t size() const { return intensities_.size(); }
    const std::vector<double> &values() const { return intensities_; }

    /** Fraction of jobs whose |intensity| exceeds the threshold. */
    double exceedanceFraction(double threshold) const;

  private:
    std::vector<double> intensities_;
};

/** Generates TransientTraces from the OU + TLS-burst model. */
class TransientTraceGenerator
{
  public:
    /**
     * @param params Model parameters (typically from a MachineModel).
     * @param seed Generator seed; a given (params, seed) pair always
     *        produces the same trace — traces are citable artifacts,
     *        like the paper's captured machine traces.
     */
    TransientTraceGenerator(TransientTraceParams params,
                            std::uint64_t seed);

    /** Generate a trace covering num_jobs jobs. */
    TransientTrace generate(std::size_t num_jobs);

    const TransientTraceParams &params() const { return params_; }

  private:
    TransientTraceParams params_;
    std::uint64_t seed_;
    std::uint64_t streamCounter_ = 0;
};

} // namespace qismet

#endif // QISMET_NOISE_TRANSIENT_TRACE_HPP
