#include "noise/transient_trace.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "noise/ou_process.hpp"

namespace qismet {

TransientTrace::TransientTrace(std::vector<double> intensities)
    : intensities_(std::move(intensities))
{
}

double
TransientTrace::at(std::size_t job_index) const
{
    if (job_index >= intensities_.size())
        return 0.0;
    return intensities_[job_index];
}

double
TransientTrace::exceedanceFraction(double threshold) const
{
    if (intensities_.empty())
        return 0.0;
    std::size_t n = 0;
    for (double v : intensities_)
        if (std::abs(v) > threshold)
            ++n;
    return static_cast<double>(n) / static_cast<double>(intensities_.size());
}

TransientTraceGenerator::TransientTraceGenerator(TransientTraceParams params,
                                                 std::uint64_t seed)
    : params_(params), seed_(seed)
{
    if (params_.scale < 0.0)
        throw std::invalid_argument("TransientTraceGenerator: scale < 0");
    if (params_.maxIntensity <= 0.0)
        throw std::invalid_argument(
            "TransientTraceGenerator: maxIntensity <= 0");
}

TransientTrace
TransientTraceGenerator::generate(std::size_t num_jobs)
{
    // Each generate() call uses a fresh, deterministic sub-stream so the
    // generator can produce independent trace "versions" (the paper's
    // Toronto (v1) / Toronto (v2)).
    Rng rng(seed_ ^ (0x9E3779B97F4A7C15ull * (++streamCounter_)));
    Rng drift_rng = rng.split();
    Rng burst_rng = rng.split();

    // Convert the requested stationary stddev to an OU sigma.
    const double theta = params_.driftReversion;
    const double sigma = params_.driftStddev * std::sqrt(2.0 * theta);
    OuProcess drift(0.0, theta, sigma);
    TlsBurstProcess bursts(params_.burst, burst_rng);

    std::vector<double> out;
    out.reserve(num_jobs);
    for (std::size_t j = 0; j < num_jobs; ++j) {
        const double d = drift.step(1.0, drift_rng);
        const double b = bursts.step();
        const double tau = params_.scale * (d + b);
        out.push_back(std::clamp(tau, -params_.maxIntensity,
                                 params_.maxIntensity));
    }
    return TransientTrace(std::move(out));
}

} // namespace qismet
