/**
 * @file
 * Static device noise model — the paper's "blue line" component
 * (Fig. 1): noise that is stable over the duration of an experiment.
 *
 * Two consumption paths:
 *  - exact: apply Kraus channels gate-by-gate on a DensityMatrix
 *    (used by tests and the Fig. 4 fidelity study);
 *  - analytic: a scalar survival factor f ∈ (0, 1] that damps exact
 *    expectation values toward the maximally mixed value (used by the
 *    VQE fast path, validated against the exact path in tests).
 */

#ifndef QISMET_NOISE_NOISE_MODEL_HPP
#define QISMET_NOISE_NOISE_MODEL_HPP

#include <vector>

#include "circuit/circuit.hpp"
#include "sim/density_matrix.hpp"
#include "sim/shot_sampler.hpp"

namespace qismet {

/** Static (time-invariant) noise parameters of a device. */
struct StaticNoiseParams
{
    /** Depolarizing probability per 1-qubit gate. */
    double p1q = 3e-4;
    /** Depolarizing probability per 2-qubit gate. */
    double p2q = 1e-2;
    /** Readout: P(read 1 | prepared 0). */
    double readoutP10 = 1e-2;
    /** Readout: P(read 0 | prepared 1). */
    double readoutP01 = 2.5e-2;
    /** Median T1 in microseconds. */
    double t1Us = 100.0;
    /** Median T2 in microseconds. */
    double t2Us = 80.0;
    /** 1-qubit gate duration (ns). */
    double gate1qNs = 35.0;
    /** 2-qubit gate duration (ns). */
    double gate2qNs = 300.0;
};

/** Applies static noise to circuits in both exact and analytic forms. */
class StaticNoiseModel
{
  public:
    explicit StaticNoiseModel(StaticNoiseParams params);

    const StaticNoiseParams &params() const { return params_; }

    /** Per-qubit readout errors for a register of width n. */
    std::vector<ReadoutError> readoutErrors(int num_qubits) const;

    /**
     * Run a bound circuit on a density matrix with a noise channel after
     * every gate: depolarizing on the operand qubits plus thermal
     * relaxation for the gate duration.
     *
     * @param t1_scale Multiplies T1 and T2 (transiently degraded
     *        coherence uses t1_scale < 1; used by the Fig. 4 study).
     */
    void runNoisy(DensityMatrix &rho, const Circuit &circuit,
                  const std::vector<double> &params = {},
                  double t1_scale = 1.0) const;

    /**
     * Analytic survival factor: the estimated probability that a run of
     * the circuit suffers no error, f = Π_gates (1 - p_gate) ·
     * Π_qubits exp(-d (1/T1 + 1/T2) / 2), with d the circuit duration.
     * Expectation values damp as <H> ≈ f <H>_ideal + (1 - f) <H>_mixed.
     */
    double survivalFactor(const Circuit &circuit,
                          double t1_scale = 1.0) const;

  private:
    StaticNoiseParams params_;
};

} // namespace qismet

#endif // QISMET_NOISE_NOISE_MODEL_HPP
