/**
 * @file
 * Two-level-system (TLS) burst process — the outlier component of the
 * transient-noise model.
 *
 * Paper Section 3.1: TLS defects parasitically couple to a transmon and
 * transiently collapse its T1/T2; the coupling strength varies in time,
 * so impactful events are rare, large, and short-lived (Fig. 3's circled
 * outliers; Sec. 8.1: "transient errors disappear in one or two
 * repetitions"). The model: Poisson arrivals, log-normal magnitudes,
 * geometric durations, with optional exponential decay over a burst's
 * lifetime.
 */

#ifndef QISMET_NOISE_TLS_BURST_HPP
#define QISMET_NOISE_TLS_BURST_HPP

#include <vector>

#include "common/rng.hpp"

namespace qismet {

/** Parameters of the burst process. */
struct TlsBurstParams
{
    /** Expected bursts per sampled step (Poisson rate). */
    double ratePerStep = 0.02;
    /** Log-normal magnitude: median burst depth. */
    double magnitudeMedian = 0.3;
    /** Log-normal magnitude: sigma of the underlying normal. */
    double magnitudeSigma = 0.5;
    /** Geometric duration: mean steps a burst persists (>= 1). */
    double meanDurationSteps = 1.5;
    /** Per-step decay of an active burst's depth (1 = no decay). */
    double decayPerStep = 0.7;
    /**
     * Within-burst flicker: each step an active burst contributes
     * depth × Exp(1). A TLS near-resonant coupling fluctuates on fine
     * time scales (paper Section 3.1), so even inside a bad phase some
     * jobs execute almost cleanly — the clean windows QISMET's retries
     * exploit ("realignment would happen ... in an instance of low
     * transient noise"). Set false for a constant-depth burst.
     */
    bool flicker = true;
};

/**
 * Superposition of active bursts sampled step-by-step. The value at a
 * step is the sum of every active burst's current depth (>= 0).
 */
class TlsBurstProcess
{
  public:
    TlsBurstProcess(TlsBurstParams params, Rng rng);

    /** Advance one step and return the realized burst intensity. */
    double step();

    /** Realized intensity of the current step without advancing. */
    double value() const { return lastValue_; }

    /** Sum of active burst depths (pre-flicker). */
    double totalDepth() const;

    /** Number of currently active bursts. */
    std::size_t activeBursts() const { return bursts_.size(); }

    const TlsBurstParams &params() const { return params_; }

  private:
    struct Burst
    {
        double depth;
        int remainingSteps;
    };

    TlsBurstParams params_;
    Rng rng_;
    std::vector<Burst> bursts_;
    double lastValue_ = 0.0;
};

} // namespace qismet

#endif // QISMET_NOISE_TLS_BURST_HPP
