#include "noise/noise_model.hpp"

#include <cmath>
#include <stdexcept>

#include "circuit/metrics.hpp"
#include "sim/kraus.hpp"

namespace qismet {

StaticNoiseModel::StaticNoiseModel(StaticNoiseParams params)
    : params_(params)
{
    if (params_.p1q < 0.0 || params_.p1q > 1.0 || params_.p2q < 0.0 ||
        params_.p2q > 1.0)
        throw std::invalid_argument("StaticNoiseModel: bad gate error");
    if (params_.t1Us <= 0.0 || params_.t2Us <= 0.0)
        throw std::invalid_argument("StaticNoiseModel: bad T1/T2");
    if (params_.t2Us > 2.0 * params_.t1Us)
        throw std::invalid_argument("StaticNoiseModel: T2 > 2*T1");
}

std::vector<ReadoutError>
StaticNoiseModel::readoutErrors(int num_qubits) const
{
    std::vector<ReadoutError> out(static_cast<std::size_t>(num_qubits));
    for (auto &r : out) {
        r.p10 = params_.readoutP10;
        r.p01 = params_.readoutP01;
    }
    return out;
}

void
StaticNoiseModel::runNoisy(DensityMatrix &rho, const Circuit &circuit,
                           const std::vector<double> &params,
                           double t1_scale) const
{
    if (t1_scale <= 0.0)
        throw std::invalid_argument("runNoisy: t1_scale must be > 0");

    const double t1_ns = params_.t1Us * 1e3 * t1_scale;
    const double t2_ns = params_.t2Us * 1e3 * t1_scale;

    const KrausChannel dep1 = KrausChannel::depolarizing1q(params_.p1q);
    const KrausChannel dep2 = KrausChannel::depolarizing2q(params_.p2q);
    const KrausChannel relax1 = KrausChannel::thermalRelaxation(
        t1_ns, t2_ns, params_.gate1qNs);
    const KrausChannel relax2 = KrausChannel::thermalRelaxation(
        t1_ns, t2_ns, params_.gate2qNs);

    for (const Gate &g : circuit.gates()) {
        rho.applyGate(g, params);
        if (gateArity(g.type) == 2) {
            rho.applyChannel2q(g.qubits[0], g.qubits[1], dep2);
            rho.applyChannel1q(g.qubits[0], relax2);
            rho.applyChannel1q(g.qubits[1], relax2);
        } else {
            rho.applyChannel1q(g.qubits[0], dep1);
            rho.applyChannel1q(g.qubits[0], relax1);
        }
    }
}

double
StaticNoiseModel::survivalFactor(const Circuit &circuit,
                                 double t1_scale) const
{
    if (t1_scale <= 0.0)
        throw std::invalid_argument("survivalFactor: t1_scale must be > 0");

    const CircuitMetrics m = computeMetrics(circuit);
    double f = std::pow(1.0 - params_.p1q, m.oneQubitGates) *
               std::pow(1.0 - params_.p2q, m.twoQubitGates);

    const double duration_ns =
        estimateDurationNs(circuit, params_.gate1qNs, params_.gate2qNs);
    const double t1_ns = params_.t1Us * 1e3 * t1_scale;
    const double t2_ns = params_.t2Us * 1e3 * t1_scale;
    const double per_qubit =
        std::exp(-duration_ns * 0.5 * (1.0 / t1_ns + 1.0 / t2_ns));
    f *= std::pow(per_qubit, m.numQubits);
    return f;
}

} // namespace qismet
