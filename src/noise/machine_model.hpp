/**
 * @file
 * Per-machine noise calibrations standing in for the paper's IBMQ
 * backends (Guadalupe, Toronto, Sydney, Casablanca, Jakarta, Mumbai,
 * Cairo).
 *
 * Substitution note (DESIGN.md §2): the absolute numbers are
 * NISQ-typical rather than captured calibration data; what the paper's
 * results depend on — the *relative* ordering of machine quality and
 * each machine's transient personality (Jakarta spiky, Sydney quiet
 * with rare sharp events, ...) — is encoded here and consumed
 * everywhere else through this one registry.
 */

#ifndef QISMET_NOISE_MACHINE_MODEL_HPP
#define QISMET_NOISE_MACHINE_MODEL_HPP

#include <string>
#include <vector>

#include "noise/noise_model.hpp"
#include "noise/transient_trace.hpp"

namespace qismet {

/** A simulated quantum machine: static noise + transient personality. */
struct MachineModel
{
    std::string name;
    int numQubits = 7;
    StaticNoiseParams staticNoise;
    TransientTraceParams transient;

    /**
     * Deterministic trace generator for this machine.
     * @param version Trace version (the paper's "(v1)" / "(v2)" trials);
     *        different versions give independent traces.
     */
    TransientTraceGenerator traceGenerator(int version = 1) const;

    /** Static noise model view. */
    StaticNoiseModel staticModel() const
    {
        return StaticNoiseModel(staticNoise);
    }
};

/**
 * Look up a machine by (case-insensitive) name.
 * Known machines: guadalupe, toronto, sydney, casablanca, jakarta,
 * mumbai, cairo.
 * @throws std::invalid_argument for unknown names.
 */
MachineModel machineModel(const std::string &name);

/** Names of all registered machines (sorted). */
std::vector<std::string> machineNames();

} // namespace qismet

#endif // QISMET_NOISE_MACHINE_MODEL_HPP
