#include "noise/tls_burst.hpp"

#include <cmath>
#include <stdexcept>

namespace qismet {

TlsBurstProcess::TlsBurstProcess(TlsBurstParams params, Rng rng)
    : params_(params), rng_(rng)
{
    if (params_.ratePerStep < 0.0)
        throw std::invalid_argument("TlsBurstProcess: negative rate");
    if (params_.meanDurationSteps < 1.0)
        throw std::invalid_argument(
            "TlsBurstProcess: mean duration must be >= 1 step");
    if (params_.decayPerStep <= 0.0 || params_.decayPerStep > 1.0)
        throw std::invalid_argument(
            "TlsBurstProcess: decay must be in (0, 1]");
    if (params_.magnitudeMedian < 0.0)
        throw std::invalid_argument("TlsBurstProcess: negative magnitude");
}

double
TlsBurstProcess::step()
{
    // Age existing bursts.
    std::vector<Burst> alive;
    alive.reserve(bursts_.size());
    for (Burst b : bursts_) {
        b.depth *= params_.decayPerStep;
        if (--b.remainingSteps > 0 && b.depth > 1e-6)
            alive.push_back(b);
    }
    bursts_ = std::move(alive);

    // New arrivals this step.
    const std::uint64_t arrivals = rng_.poisson(params_.ratePerStep);
    for (std::uint64_t k = 0; k < arrivals; ++k) {
        Burst b;
        b.depth = params_.magnitudeMedian *
                  std::exp(params_.magnitudeSigma * rng_.normal());
        // Geometric duration with mean meanDurationSteps:
        // P(len = n) = (1-p)^{n-1} p with p = 1/mean.
        const double p = 1.0 / params_.meanDurationSteps;
        int len = 1;
        while (!rng_.bernoulli(p) && len < 1000)
            ++len;
        b.remainingSteps = len;
        bursts_.push_back(b);
    }

    // Realize this step's intensity, with fine-time-scale flicker per
    // active burst when enabled.
    double total = 0.0;
    for (const Burst &b : bursts_) {
        const double flicker =
            params_.flicker ? rng_.exponential(1.0) : 1.0;
        total += b.depth * flicker;
    }
    lastValue_ = total;
    return lastValue_;
}

double
TlsBurstProcess::totalDepth() const
{
    double total = 0.0;
    for (const Burst &b : bursts_)
        total += b.depth;
    return total;
}

} // namespace qismet
