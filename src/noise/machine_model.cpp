#include "noise/machine_model.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace qismet {

namespace {

/** Stable 64-bit hash of the machine name (FNV-1a) for trace seeding. */
std::uint64_t
nameHash(const std::string &name)
{
    std::uint64_t h = 0xCBF29CE484222325ull;
    for (char c : name) {
        h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
        h *= 0x100000001B3ull;
    }
    return h;
}

MachineModel
make(const std::string &name, int qubits, double p1q, double p2q,
     double ro10, double ro01, double t1, double t2, double burst_rate,
     double burst_median, double burst_sigma, double burst_duration,
     double drift_std, double burst_decay = 0.95)
{
    MachineModel m;
    m.name = name;
    m.numQubits = qubits;
    m.staticNoise.p1q = p1q;
    m.staticNoise.p2q = p2q;
    m.staticNoise.readoutP10 = ro10;
    m.staticNoise.readoutP01 = ro01;
    m.staticNoise.t1Us = t1;
    m.staticNoise.t2Us = t2;
    m.transient.burst.ratePerStep = burst_rate;
    m.transient.burst.magnitudeMedian = burst_median;
    m.transient.burst.magnitudeSigma = burst_sigma;
    m.transient.burst.meanDurationSteps = burst_duration;
    m.transient.burst.decayPerStep = burst_decay;
    m.transient.driftStddev = drift_std;
    return m;
}

} // namespace

TransientTraceGenerator
MachineModel::traceGenerator(int version) const
{
    if (version < 1)
        throw std::invalid_argument("traceGenerator: version must be >= 1");
    const std::uint64_t seed =
        nameHash(name) + 0x1000003ull * static_cast<std::uint64_t>(version);
    return TransientTraceGenerator(transient, seed);
}

MachineModel
machineModel(const std::string &name)
{
    std::string key = name;
    std::transform(key.begin(), key.end(), key.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });

    // name, qubits, p1q, p2q, ro10, ro01, T1us, T2us,
    // burst rate/median/sigma/duration, drift stddev.
    //
    // Quality ordering mirrors public IBMQ experience circa the paper:
    // 27q Falcons (toronto, guadalupe, mumbai, cairo, sydney) cleaner
    // than the 7q machines (casablanca, jakarta). Transient
    // personalities follow the paper's anecdotes: jakarta shows many
    // sharp spikes (Fig. 5), sydney is quiet with one sharp phase
    // (Fig. 12), guadalupe has phases of moderate transients (Fig. 11).
    // Burst durations are phases of several jobs (paper Fig. 11 circles
    // multi-iteration transient phases; Fig. 3's T1 dips span hours),
    // with per-job flicker inside a phase supplying the clean windows
    // QISMET's retries exploit.
    if (key == "guadalupe")
        return make("guadalupe", 16, 2.5e-4, 9e-3, 1.2e-2, 2.4e-2, 110,
                    90, 0.020, 0.80, 0.45, 7.0, 0.010);
    if (key == "toronto")
        return make("toronto", 27, 3.0e-4, 1.1e-2, 1.5e-2, 2.8e-2, 100,
                    85, 0.014, 0.70, 0.50, 6.0, 0.010);
    if (key == "sydney")
        return make("sydney", 27, 3.0e-4, 1.2e-2, 1.5e-2, 3.0e-2, 95, 80,
                    0.0045, 1.10, 0.35, 10.0, 0.008);
    if (key == "casablanca")
        return make("casablanca", 7, 4.0e-4, 1.6e-2, 2.0e-2, 3.5e-2, 80,
                    65, 0.020, 0.90, 0.50, 8.0, 0.015);
    if (key == "jakarta")
        return make("jakarta", 7, 4.5e-4, 1.8e-2, 2.2e-2, 4.0e-2, 75, 60,
                    0.024, 0.90, 0.55, 5.0, 0.015);
    if (key == "mumbai")
        return make("mumbai", 27, 2.8e-4, 1.0e-2, 1.4e-2, 2.6e-2, 105, 88,
                    0.015, 0.60, 0.45, 6.0, 0.010);
    if (key == "cairo")
        return make("cairo", 27, 2.6e-4, 9.5e-3, 1.3e-2, 2.5e-2, 108, 90,
                    0.016, 0.85, 0.50, 7.0, 0.009);

    throw std::invalid_argument("machineModel: unknown machine '" + name +
                                "'");
}

std::vector<std::string>
machineNames()
{
    return {"cairo",   "casablanca", "guadalupe", "jakarta",
            "mumbai",  "sydney",     "toronto"};
}

} // namespace qismet
