#include "noise/ou_process.hpp"

#include <cmath>
#include <stdexcept>

namespace qismet {

OuProcess::OuProcess(double mean, double reversion, double sigma,
                     double initial)
    : mean_(mean), reversion_(reversion), sigma_(sigma), x_(initial)
{
    if (reversion <= 0.0)
        throw std::invalid_argument("OuProcess: reversion must be > 0");
    if (sigma < 0.0)
        throw std::invalid_argument("OuProcess: sigma must be >= 0");
}

OuProcess::OuProcess(double mean, double reversion, double sigma)
    : OuProcess(mean, reversion, sigma, mean)
{
}

double
OuProcess::step(double dt, Rng &rng)
{
    if (dt < 0.0)
        throw std::invalid_argument("OuProcess::step: negative dt");
    // Exact transition: x' = μ + (x - μ) e^{-θ dt} + N(0, v),
    // v = σ²(1 - e^{-2θ dt}) / (2θ).
    const double decay = std::exp(-reversion_ * dt);
    const double var =
        sigma_ * sigma_ * (1.0 - decay * decay) / (2.0 * reversion_);
    x_ = mean_ + (x_ - mean_) * decay + rng.normal(0.0, std::sqrt(var));
    return x_;
}

double
OuProcess::stationaryStddev() const
{
    return sigma_ / std::sqrt(2.0 * reversion_);
}

} // namespace qismet
