#include "common/matrix.hpp"

#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <utility>
#include <vector>

namespace qismet {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, Complex(0.0, 0.0))
{
}

Matrix
Matrix::fromRows(const std::vector<std::vector<Complex>> &rows)
{
    if (rows.empty())
        return Matrix();
    Matrix m(rows.size(), rows[0].size());
    for (std::size_t r = 0; r < rows.size(); ++r) {
        if (rows[r].size() != m.cols_)
            throw std::invalid_argument("Matrix::fromRows: ragged rows");
        for (std::size_t c = 0; c < m.cols_; ++c)
            m(r, c) = rows[r][c];
    }
    return m;
}

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        m(i, i) = Complex(1.0, 0.0);
    return m;
}

Matrix
Matrix::operator+(const Matrix &other) const
{
    if (rows_ != other.rows_ || cols_ != other.cols_)
        throw std::invalid_argument("Matrix::operator+: shape mismatch");
    Matrix out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] = data_[i] + other.data_[i];
    return out;
}

Matrix
Matrix::operator-(const Matrix &other) const
{
    if (rows_ != other.rows_ || cols_ != other.cols_)
        throw std::invalid_argument("Matrix::operator-: shape mismatch");
    Matrix out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] = data_[i] - other.data_[i];
    return out;
}

Matrix
Matrix::operator*(const Matrix &other) const
{
    if (cols_ != other.rows_)
        throw std::invalid_argument("Matrix::operator*: shape mismatch");
    Matrix out(rows_, other.cols_);
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t k = 0; k < cols_; ++k) {
            const Complex a = (*this)(r, k);
            if (a == Complex(0.0, 0.0))
                continue;
            for (std::size_t c = 0; c < other.cols_; ++c)
                out(r, c) += a * other(k, c);
        }
    }
    return out;
}

Matrix
Matrix::operator*(Complex scalar) const
{
    Matrix out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] = data_[i] * scalar;
    return out;
}

Matrix &
Matrix::operator+=(const Matrix &other)
{
    if (rows_ != other.rows_ || cols_ != other.cols_)
        throw std::invalid_argument("Matrix::operator+=: shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] += other.data_[i];
    return *this;
}

Matrix &
Matrix::operator*=(Complex scalar)
{
    for (auto &x : data_)
        x *= scalar;
    return *this;
}

Matrix
Matrix::adjoint() const
{
    Matrix out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c)
            out(c, r) = std::conj((*this)(r, c));
    return out;
}

Matrix
Matrix::transpose() const
{
    Matrix out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c)
            out(c, r) = (*this)(r, c);
    return out;
}

Matrix
Matrix::kron(const Matrix &other) const
{
    Matrix out(rows_ * other.rows_, cols_ * other.cols_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c) {
            const Complex a = (*this)(r, c);
            if (a == Complex(0.0, 0.0))
                continue;
            for (std::size_t r2 = 0; r2 < other.rows_; ++r2)
                for (std::size_t c2 = 0; c2 < other.cols_; ++c2)
                    out(r * other.rows_ + r2, c * other.cols_ + c2) =
                        a * other(r2, c2);
        }
    return out;
}

Complex
Matrix::trace() const
{
    if (rows_ != cols_)
        throw std::invalid_argument("Matrix::trace: not square");
    Complex t(0.0, 0.0);
    for (std::size_t i = 0; i < rows_; ++i)
        t += (*this)(i, i);
    return t;
}

double
Matrix::frobeniusNorm() const
{
    double s = 0.0;
    for (const auto &x : data_)
        s += std::norm(x);
    return std::sqrt(s);
}

double
Matrix::maxAbsDiff(const Matrix &other) const
{
    if (rows_ != other.rows_ || cols_ != other.cols_)
        throw std::invalid_argument("Matrix::maxAbsDiff: shape mismatch");
    double m = 0.0;
    for (std::size_t i = 0; i < data_.size(); ++i)
        m = std::max(m, std::abs(data_[i] - other.data_[i]));
    return m;
}

bool
Matrix::isHermitian(double tol) const
{
    if (rows_ != cols_)
        return false;
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = r; c < cols_; ++c)
            if (std::abs((*this)(r, c) - std::conj((*this)(c, r))) > tol)
                return false;
    return true;
}

bool
Matrix::isUnitary(double tol) const
{
    if (rows_ != cols_)
        return false;
    const Matrix prod = (*this) * adjoint();
    return prod.maxAbsDiff(identity(rows_)) <= tol;
}

std::vector<Complex>
Matrix::apply(const std::vector<Complex> &v) const
{
    if (v.size() != cols_)
        throw std::invalid_argument("Matrix::apply: size mismatch");
    std::vector<Complex> out(rows_, Complex(0.0, 0.0));
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c)
            out[r] += (*this)(r, c) * v[c];
    return out;
}

std::vector<double>
solveLinear(std::vector<std::vector<double>> a, std::vector<double> b)
{
    const std::size_t n = b.size();
    if (a.size() != n)
        throw std::invalid_argument("solveLinear: shape mismatch");

    for (std::size_t col = 0; col < n; ++col) {
        // Partial pivot.
        std::size_t pivot = col;
        for (std::size_t r = col + 1; r < n; ++r)
            if (std::abs(a[r][col]) > std::abs(a[pivot][col]))
                pivot = r;
        if (std::abs(a[pivot][col]) < 1e-14)
            throw std::runtime_error("solveLinear: singular matrix");
        std::swap(a[col], a[pivot]);
        std::swap(b[col], b[pivot]);

        for (std::size_t r = col + 1; r < n; ++r) {
            const double f = a[r][col] / a[col][col];
            if (f == 0.0)
                continue;
            for (std::size_t c = col; c < n; ++c)
                a[r][c] -= f * a[col][c];
            b[r] -= f * b[col];
        }
    }

    std::vector<double> x(n, 0.0);
    for (std::size_t ri = n; ri-- > 0;) {
        double s = b[ri];
        for (std::size_t c = ri + 1; c < n; ++c)
            s -= a[ri][c] * x[c];
        x[ri] = s / a[ri][ri];
    }
    return x;
}

} // namespace qismet
