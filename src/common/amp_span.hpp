/**
 * @file
 * Amplitude-storage views for the simulation kernels.
 *
 * `AmpSpan` is the small abstraction the kernels are written against:
 * a non-owning view of one state's amplitudes plus a layout tag. Two
 * layouts exist:
 *
 *   - **Interleaved** (`std::vector<Complex>`, re/im adjacent) — the
 *     default and the layout the simulators store. The AVX2 kernels
 *     operate on this layout.
 *   - **SplitComplex** (structure-of-arrays: one double array of real
 *     parts, one of imaginary parts) — toggleable for experiments via
 *     `SplitAmpBuffer`. Profiling on the kernel bench (see
 *     `BM_KernelDense1Layout`) showed no win over interleaved+AVX2 for
 *     these 2x2/4x4 kernel shapes at <= 2^14 amplitudes, so the
 *     simulators keep interleaved storage; the split path remains a
 *     first-class kernel target so the decision can be revisited with
 *     one line, and the equivalence suite pins both layouts to
 *     identical bits.
 *
 * Both layouts run the same scalar arithmetic in the same order, so
 * results are bit-identical across layouts by construction.
 */

#ifndef QISMET_COMMON_AMP_SPAN_HPP
#define QISMET_COMMON_AMP_SPAN_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/matrix.hpp"

namespace qismet {

/** Physical arrangement of the amplitudes an AmpSpan views. */
enum class AmpLayout : std::uint8_t
{
    Interleaved,  ///< re/im pairs adjacent (std::complex array).
    SplitComplex, ///< separate re[] and im[] arrays (SoA).
};

/** Non-owning, layout-tagged view of one state's amplitudes. */
class AmpSpan
{
  public:
    /** View over an interleaved std::complex array. */
    static AmpSpan interleaved(Complex *data, std::size_t n)
    {
        AmpSpan s;
        s.layout_ = AmpLayout::Interleaved;
        // std::complex<double> is array-oriented by [complex.numbers]:
        // reinterpreting as a double array is defined behavior.
        s.re_ = reinterpret_cast<double *>(data);
        s.im_ = s.re_ + 1;
        s.stride_ = 2;
        s.size_ = n;
        return s;
    }

    /** View over split re[] / im[] arrays of n amplitudes each. */
    static AmpSpan split(double *re, double *im, std::size_t n)
    {
        AmpSpan s;
        s.layout_ = AmpLayout::SplitComplex;
        s.re_ = re;
        s.im_ = im;
        s.stride_ = 1;
        s.size_ = n;
        return s;
    }

    AmpLayout layout() const { return layout_; }
    std::size_t size() const { return size_; }

    /** Interleaved storage as Complex*; only valid for Interleaved. */
    Complex *complexData() const
    {
        return reinterpret_cast<Complex *>(re_);
    }

    double &real(std::size_t i) const { return re_[i * stride_]; }
    double &imag(std::size_t i) const { return im_[i * stride_]; }

    Complex load(std::size_t i) const
    {
        return Complex(re_[i * stride_], im_[i * stride_]);
    }
    void store(std::size_t i, Complex v) const
    {
        re_[i * stride_] = v.real();
        im_[i * stride_] = v.imag();
    }

  private:
    AmpLayout layout_ = AmpLayout::Interleaved;
    double *re_ = nullptr;
    double *im_ = nullptr;
    std::size_t stride_ = 2;
    std::size_t size_ = 0;
};

/**
 * Owning split-complex (SoA) buffer, convertible to/from interleaved
 * amplitudes. Used by the layout-equivalence tests and the layout
 * bench; the simulators themselves keep interleaved storage (see the
 * file comment).
 */
class SplitAmpBuffer
{
  public:
    SplitAmpBuffer() = default;
    explicit SplitAmpBuffer(std::size_t n) : re_(n, 0.0), im_(n, 0.0) {}

    std::size_t size() const { return re_.size(); }

    /** Copy interleaved amplitudes into the split arrays. */
    void pack(const std::vector<Complex> &amps)
    {
        re_.resize(amps.size());
        im_.resize(amps.size());
        for (std::size_t i = 0; i < amps.size(); ++i) {
            re_[i] = amps[i].real();
            im_[i] = amps[i].imag();
        }
    }

    /** Copy the split arrays back out as interleaved amplitudes. */
    void unpackInto(std::vector<Complex> &amps) const
    {
        amps.resize(re_.size());
        for (std::size_t i = 0; i < re_.size(); ++i)
            amps[i] = Complex(re_[i], im_[i]);
    }

    AmpSpan span()
    {
        return AmpSpan::split(re_.data(), im_.data(), re_.size());
    }

  private:
    std::vector<double> re_;
    std::vector<double> im_;
};

} // namespace qismet

#endif // QISMET_COMMON_AMP_SPAN_HPP
