/**
 * @file
 * Fixed-size thread pool and the deterministic parallel-execution layer
 * built on top of it.
 *
 * QISMET's simulated-job throughput is the hot path of every figure
 * reproduction: the accept/reject controller doubles circuit volume per
 * job (current + reference rerun) and every rejected iteration re-runs
 * the whole job. The engine here fans out the three independent levels
 * of that workload — Pauli-term expectations inside one energy estimate,
 * circuit evaluations inside one job, and whole VQA trials in the bench
 * layer — without changing a single numerical result.
 *
 * Determinism contract (DESIGN.md "Parallel execution & determinism
 * model"): no code in this library may let thread scheduling influence
 * either the order of floating-point reductions or the consumption of
 * random numbers. Concretely,
 *  - every stochastic task receives its own Rng sub-stream, derived
 *    from the owning component's seed Rng *before* the fan-out
 *    (Rng::split / Rng::splitAt), never from a shared stream raced by
 *    workers;
 *  - parallel reductions write per-index slots and are folded serially
 *    in index order after the join.
 * Under this contract `--threads=N` output is bit-identical to
 * `--threads=1` for every N, which is what makes the parallel engine
 * safely landable under the reproducibility guarantees of the benches.
 */

#ifndef QISMET_COMMON_THREAD_POOL_HPP
#define QISMET_COMMON_THREAD_POOL_HPP

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace qismet {

/**
 * Fixed-size worker pool with a single shared FIFO queue.
 *
 * Deliberately work-stealing-free: tasks in this library are coarse
 * (one circuit simulation, one VQA trial), so a mutex-guarded queue is
 * contention-free in practice and keeps the scheduling model simple
 * enough to reason about under TSan.
 */
class ThreadPool
{
  public:
    /**
     * Start `threads` workers.
     * @param threads Worker count; at least 1.
     */
    explicit ThreadPool(std::size_t threads);

    /** Drains the queue, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one task; runnable from any thread. */
    void submit(std::function<void()> task);

    /** Number of worker threads. */
    std::size_t size() const { return workers_.size(); }

    /** True when called from one of this pool's worker threads. */
    bool onWorkerThread() const;

    /** Best guess at the machine's usable hardware concurrency. */
    static std::size_t hardwareThreads();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    mutable std::mutex mutex_;
    std::condition_variable wake_;
    bool stop_ = false;
};

/**
 * Deterministic fan-out helper over an optional ThreadPool.
 *
 * With `threads() <= 1` every call runs inline on the caller's thread;
 * otherwise index ranges are executed by the pool. Nested calls (a
 * parallel region entered from inside a worker task) degrade to inline
 * serial execution instead of deadlocking on the shared queue, so
 * callers never need to know whether they are already inside a region.
 *
 * All entry points guarantee: the function observes every index exactly
 * once, exceptions from tasks are rethrown on the calling thread (first
 * one wins), and the call returns only after all indices completed.
 */
class ParallelExecutor
{
  public:
    /** Executor with the given worker count (1 = always inline). */
    explicit ParallelExecutor(std::size_t threads = 1);

    /** Configured worker count. */
    std::size_t threads() const;

    /**
     * Reconfigure the worker count, recreating the pool. Not safe to
     * call concurrently with running regions.
     * @param threads New count; 0 means hardwareThreads().
     */
    void setThreads(std::size_t threads);

    /**
     * Run fn(i) for every i in [0, n), blocking until all complete.
     * Tasks must be independent; the scheduling order is unspecified
     * (which is why the determinism contract forbids shared mutable
     * state, including shared Rngs, inside fn).
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn) const;

    /**
     * Map [0, n) through fn into a vector ordered by index — the
     * deterministic-reduction building block: compute in parallel,
     * fold the returned vector serially.
     */
    template <typename T>
    std::vector<T> map(std::size_t n,
                       const std::function<T(std::size_t)> &fn) const
    {
        std::vector<T> out(n);
        parallelFor(n, [&](std::size_t i) { out[i] = fn(i); });
        return out;
    }

    /**
     * The process-wide executor used by the library's internal fan-out
     * points (energy estimator, job executor, bench trials). Starts
     * with 1 thread unless the QISMET_THREADS environment variable is
     * set; reconfigure via setGlobalThreads (the bench `--threads`
     * flag does exactly that).
     */
    static ParallelExecutor &global();

    /** Reconfigure the global executor (0 = hardwareThreads()). */
    static void setGlobalThreads(std::size_t threads);

  private:
    std::size_t threads_ = 1;
    /** Lazily (re)created when threads_ > 1. */
    mutable std::unique_ptr<ThreadPool> pool_;
    /**
     * Guards lazy pool creation: the serve layer enters parallel
     * regions from many scheduler workers at once, so first-use must
     * not race. setThreads() remains non-concurrent by contract.
     */
    mutable std::mutex poolInit_;
};

} // namespace qismet

#endif // QISMET_COMMON_THREAD_POOL_HPP
