/**
 * @file
 * Deterministic random number generation for every stochastic component
 * in the QISMET reproduction.
 *
 * All simulators, noise processes, optimizers and workload generators take
 * an explicit seed so that every test and every figure-reproduction bench
 * is bit-reproducible. The underlying engine is xoshiro256++, a small,
 * fast, high-quality generator; it satisfies the C++
 * UniformRandomBitGenerator requirements so it can also feed standard
 * distributions.
 */

#ifndef QISMET_COMMON_RNG_HPP
#define QISMET_COMMON_RNG_HPP

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace qismet {

/**
 * Stream-allocation convention (the serve layer's collision-safety
 * contract).
 *
 * Hand-rolled stream offsets — `seed + tenantId`, `seed * K + C`,
 * `splitAt(tenantId * 1000 + runId)` — are forbidden for new code:
 * linear packings collide under adversarial ID patterns (tenant 1 /
 * run 1000 aliases tenant 2 / run 0), and affine `seed * A + B`
 * derivations in two components can be mapped onto each other by
 * solving one linear congruence. Instead, derive every stream as
 *
 *     deriveStreamSeed(root, StreamDomain::kX, index)
 *
 * where each level (root, domain, index) passes through a full
 * SplitMix64 avalanche before the next is folded in. No arithmetic
 * relation among roots, domains or indices can then relate two derived
 * seeds; residual collisions are 64-bit-birthday events, not
 * constructible ones. The qismet-lint rule `stream-offset` enforces
 * this in src/serve, where tenant/job IDs are caller-controlled.
 * (The pre-serve affine derivations inside src/core are kept verbatim
 * for trace stability; their seeds are process-internal, not
 * caller-controlled.)
 */
namespace StreamDomain {
/** One VQA run multiplexed by the serve layer (index = serve job id). */
inline constexpr std::uint64_t kServeRun = 1;
/** Backend calibration stream (index = backend id). */
inline constexpr std::uint64_t kBackend = 2;
/** Per-lease backend stream (index = lease epoch). */
inline constexpr std::uint64_t kBackendLease = 3;
/** Soak-driver workload generator (index = spec ordinal). */
inline constexpr std::uint64_t kSoakSpec = 4;
/** Crash-plan draws for one soak spec (index = spec ordinal). */
inline constexpr std::uint64_t kSoakCrashPlan = 5;
/** Chaos backend-outage windows (index = backend id). */
inline constexpr std::uint64_t kChaosOutage = 6;
/** Chaos backend-slowdown windows (index = backend id). */
inline constexpr std::uint64_t kChaosSlowdown = 7;
/** Chaos calibration-drift storms (index = backend id). */
inline constexpr std::uint64_t kChaosStorm = 8;
/** Chaos tenant burst floods (index = flood ordinal). */
inline constexpr std::uint64_t kChaosFlood = 9;
/** Chaos-driver workload generator (index = spec ordinal). */
inline constexpr std::uint64_t kChaosWorkload = 10;
} // namespace StreamDomain

/**
 * Derive the seed of an independent sub-stream from (root, domain,
 * index), avalanching at every level (see StreamDomain above).
 */
std::uint64_t deriveStreamSeed(std::uint64_t root, std::uint64_t domain,
                               std::uint64_t index);

/**
 * xoshiro256++ pseudo random engine (Blackman & Vigna).
 *
 * Satisfies UniformRandomBitGenerator. Seeded through SplitMix64 so that
 * any 64-bit seed (including 0) produces a well-mixed initial state.
 */
class Xoshiro256
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed; the state is expanded via SplitMix64. */
    explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Smallest value next() can return. */
    static constexpr result_type min() { return 0; }
    /** Largest value next() can return. */
    static constexpr result_type max()
    {
        return std::numeric_limits<result_type>::max();
    }

    /** Advance the engine and return the next 64 random bits. */
    result_type operator()();

    /**
     * Jump the engine forward by 2^128 steps.
     *
     * Used to derive independent streams from a single seed (one jump per
     * stream); streams derived this way never overlap in practice.
     */
    void jump();

    /**
     * Deterministic 64-bit digest of the current state, without
     * advancing it. Feeds the counter-based Rng::splitAt derivation.
     */
    std::uint64_t stateDigest() const;

    /** Raw engine state (for checkpointing). */
    std::array<std::uint64_t, 4> state() const;

    /** Restore a state previously captured with state(). */
    void setState(const std::array<std::uint64_t, 4> &state);

  private:
    std::uint64_t state_[4];
};

/**
 * Complete serializable state of an Rng: the engine words plus the
 * Marsaglia-polar spare-normal cache. Restoring it resumes the stream
 * bit-exactly, including a buffered second normal deviate.
 */
struct RngState
{
    std::array<std::uint64_t, 4> engine = {};
    bool hasSpareNormal = false;
    double spareNormal = 0.0;
};

/**
 * Convenience wrapper bundling an engine with the distributions the
 * library needs.
 *
 * Not thread-safe; give each thread / component its own Rng.
 */
class Rng
{
  public:
    /** Construct with the given seed. */
    explicit Rng(std::uint64_t seed = 42);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n) using rejection sampling (unbiased). */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Standard normal deviate (Marsaglia polar method). */
    double normal();

    /** Normal deviate with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Exponential deviate with the given rate (mean 1/rate). */
    double exponential(double rate);

    /** Poisson deviate with the given mean (Knuth for small, PTRS-lite via normal approx for large). */
    std::uint64_t poisson(double mean);

    /** Bernoulli trial with probability p of returning true. */
    bool bernoulli(double p);

    /**
     * Sample an index from an unnormalized non-negative weight vector.
     * @param weights Non-negative weights; at least one must be positive.
     */
    std::size_t discrete(const std::vector<double> &weights);

    /** Random sign: +1 with probability 1/2, otherwise -1. */
    int sign();

    /**
     * Derive an independent child generator.
     *
     * The child is seeded from this generator's stream, so different calls
     * yield different (deterministic) children.
     */
    Rng split();

    /**
     * Counter-based split: derive the index-th child sub-stream from the
     * *current* state without advancing this generator.
     *
     * This is the parallel engine's determinism primitive: a component
     * that fans out N tasks derives splitAt(0..N-1) from its seed Rng
     * before dispatch, so every task's randomness is a pure function of
     * (seed, task index) — independent of thread scheduling and of how
     * much randomness sibling tasks consume. Children at distinct
     * indices are pairwise uncorrelated (tested); calling splitAt twice
     * with the same index and no intervening draws yields the same
     * child by design.
     */
    Rng splitAt(std::uint64_t index) const;

    /**
     * Domain-separated counter split: derive the child stream for
     * (domain, index) from the current state without advancing it.
     *
     * The collision-safe form of splitAt for caller-controlled indices
     * (tenant IDs, serve job IDs): the derivation avalanches root,
     * domain and index independently (deriveStreamSeed), so children of
     * different domains can never be aliased by arithmetic on the
     * indices. See the StreamDomain convention note above.
     */
    Rng splitStream(std::uint64_t domain, std::uint64_t index) const;

    /** Access the raw engine (for std:: distributions). */
    Xoshiro256 &engine() { return engine_; }

    /** Capture the full stream position (for checkpointing). */
    RngState saveState() const;

    /** Resume from a position captured with saveState(). */
    void restoreState(const RngState &state);

  private:
    Xoshiro256 engine_;
    bool hasSpareNormal_ = false;
    double spareNormal_ = 0.0;
};

} // namespace qismet

#endif // QISMET_COMMON_RNG_HPP
