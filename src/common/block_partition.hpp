/**
 * @file
 * Fixed-block partitioning for intra-state parallelism and
 * deterministic ordered reductions.
 *
 * The simulation kernels split one large statevector / density matrix
 * across the global ParallelExecutor. The partition is a **pure
 * function of the problem size** — always `kIntraStateBlocks`
 * contiguous, near-equal blocks — and never of the thread count, which
 * is what makes the results bit-identical at 1/2/4/8 threads:
 *
 *   - elementwise kernels (gate application) compute each amplitude
 *     independently, so any block schedule yields identical bits;
 *   - reductions (norms, expectation values, traces) compute one
 *     partial per block, in index order within the block, and fold the
 *     partials serially in block order after the join — the
 *     "unordered-reduction" lint rule's required shape.
 *
 * Below `intraStateParallelThreshold()` elements (default 1024 — a
 * 10-qubit statevector) everything runs as a single serial sweep in
 * the legacy summation order, so small states (including every golden
 * workload) are byte-identical to the pre-SIMD code. At or above the
 * threshold the blocked shape is used at *every* thread count,
 * including 1, so crossing a thread-count boundary never changes bits.
 *
 * Nested use is safe: ParallelExecutor::parallelFor degrades to inline
 * serial execution inside an already-parallel region (the energy
 * estimator fans out per-term over the same executor), and the inline
 * path walks the same blocks in the same order.
 */

#ifndef QISMET_COMMON_BLOCK_PARTITION_HPP
#define QISMET_COMMON_BLOCK_PARTITION_HPP

#include <cstddef>
#include <functional>

#include "common/matrix.hpp"

namespace qismet {

/** Fixed block count of every intra-state partition. */
inline constexpr std::size_t kIntraStateBlocks = 16;

/**
 * Minimum state size (elements touched by the sweep) at which kernels
 * split across the pool and reductions switch to the blocked shape.
 * Default 1024 (a 10-qubit statevector; QISMET_PARALLEL_MIN_AMPS
 * overrides, read once).
 */
std::size_t intraStateParallelThreshold();

/**
 * Programmatic threshold override (tests probe both sides of the
 * boundary). 0 restores the default/environment value.
 */
void setIntraStateParallelThreshold(std::size_t elements);

/** Half-open unit range of one block. */
struct BlockRange
{
    std::size_t begin = 0;
    std::size_t end = 0;
};

/** Block `index` of `units` split into kIntraStateBlocks pieces. */
BlockRange intraStateBlock(std::size_t units, std::size_t index);

/**
 * Run `fn(begin, end)` over [0, units). Below the threshold (measured
 * in `elements` actually touched) this is one inline call fn(0, units);
 * at or above it the fixed blocks are dispatched through the global
 * ParallelExecutor (inline, in order, when it has 1 thread or the
 * caller is already inside a parallel region). `fn` must treat the
 * units independently — elementwise kernels only.
 */
void forEachUnitBlocked(std::size_t units, std::size_t elements,
                        const std::function<void(std::size_t, std::size_t)> &fn);

/**
 * Deterministic ordered reduction over [0, units): below the threshold
 * returns blockFn(0, units) (the legacy serial summation, bit-for-bit);
 * at or above it computes one partial per fixed block (in parallel when
 * possible) and folds them serially in block order — the same grouping
 * at every thread count.
 */
double orderedBlockReduce(
    std::size_t units, std::size_t elements,
    const std::function<double(std::size_t, std::size_t)> &blockFn);

/** Complex-valued variant of orderedBlockReduce. */
Complex orderedBlockReduceComplex(
    std::size_t units, std::size_t elements,
    const std::function<Complex(std::size_t, std::size_t)> &blockFn);

} // namespace qismet

#endif // QISMET_COMMON_BLOCK_PARTITION_HPP
