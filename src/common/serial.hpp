/**
 * @file
 * Minimal binary serializer for checkpoint payloads.
 *
 * All integers are little-endian fixed-width; doubles are encoded as
 * the little-endian image of their IEEE-754 bit pattern, so a value
 * round-trips *bit-exactly* — the property the crash-resume contract
 * rests on. The format carries no type tags: encoder and decoder must
 * agree on the field sequence, which is versioned at the container
 * level (journal/snapshot headers).
 *
 * Decoder fails closed: any read past the end of the buffer, and any
 * length prefix larger than the bytes that remain, throws SerialError
 * instead of returning garbage.
 */

#ifndef QISMET_COMMON_SERIAL_HPP
#define QISMET_COMMON_SERIAL_HPP

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace qismet {

/** Raised on any malformed or truncated decode. */
class SerialError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Appends little-endian fields to a growing byte buffer. */
class Encoder
{
  public:
    void writeU8(std::uint8_t value);
    void writeU32(std::uint32_t value);
    void writeU64(std::uint64_t value);
    void writeI64(std::int64_t value);
    void writeF64(double value);
    void writeBool(bool value);
    /** u64 count followed by the elements. */
    void writeVecF64(const std::vector<double> &values);
    /** u64 length followed by the raw bytes. */
    void writeString(std::string_view value);

    const std::string &bytes() const { return out_; }
    std::string take() { return std::move(out_); }

  private:
    std::string out_;
};

/** Reads fields in the order the Encoder wrote them. */
class Decoder
{
  public:
    explicit Decoder(std::string_view bytes) : bytes_(bytes) {}

    std::uint8_t readU8();
    std::uint32_t readU32();
    std::uint64_t readU64();
    std::int64_t readI64();
    double readF64();
    bool readBool();
    std::vector<double> readVecF64();
    std::string readString();

    std::size_t remaining() const { return bytes_.size() - pos_; }
    bool atEnd() const { return pos_ == bytes_.size(); }

  private:
    /** @throws SerialError when fewer than `n` bytes remain. */
    const unsigned char *need(std::size_t n);

    std::string_view bytes_;
    std::size_t pos_ = 0;
};

} // namespace qismet

#endif // QISMET_COMMON_SERIAL_HPP
