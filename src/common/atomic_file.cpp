#include "common/atomic_file.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream> // qismet-lint: allow-file(raw-file-write) — this IS the atomic layer
#include <sstream>
#include <sys/stat.h>
#include <sys/types.h>

#include <fcntl.h>
#include <unistd.h>

namespace qismet {

namespace {

[[noreturn]] void
throwErrno(const std::string &what, const std::string &path)
{
    throw FileError(what + " '" + path + "': " + std::strerror(errno));
}

/** Directory part of a path ("." when there is no separator). */
std::string
dirOf(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    if (slash == 0)
        return "/";
    return path.substr(0, slash);
}

/** fsync a directory so a completed rename inside it is durable. */
void
syncDir(const std::string &dir)
{
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0)
        throwErrno("open directory", dir);
    const int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0)
        throwErrno("fsync directory", dir);
}

/** Write the whole buffer to the descriptor, retrying short writes. */
void
writeAll(int fd, std::string_view bytes, const std::string &path)
{
    std::size_t done = 0;
    while (done < bytes.size()) {
        const ssize_t n =
            ::write(fd, bytes.data() + done, bytes.size() - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throwErrno("write", path);
        }
        done += static_cast<std::size_t>(n);
    }
}

} // namespace

std::uint64_t
fnv1a64(const void *data, std::size_t size, std::uint64_t seed)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    std::uint64_t hash = seed;
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= 0x100000001B3ull;
    }
    return hash;
}

std::uint64_t
fnv1a64(std::string_view bytes, std::uint64_t seed)
{
    return fnv1a64(bytes.data(), bytes.size(), seed);
}

bool
fileExists(const std::string &path)
{
    struct stat st = {};
    return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw FileError("cannot open '" + path + "' for reading");
    std::ostringstream buf;
    buf << in.rdbuf();
    if (in.bad())
        throw FileError("read error on '" + path + "'");
    return std::move(buf).str();
}

void
atomicWriteFile(const std::string &path, std::string_view bytes)
{
    const std::string tmp = path + ".tmp";
    const int fd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        throwErrno("open temp file", tmp);
    try {
        writeAll(fd, bytes, tmp);
        if (::fsync(fd) != 0)
            throwErrno("fsync", tmp);
    }
    catch (...) {
        ::close(fd);
        ::unlink(tmp.c_str());
        throw;
    }
    if (::close(fd) != 0)
        throwErrno("close", tmp);
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        const int saved = errno;
        ::unlink(tmp.c_str());
        errno = saved;
        throwErrno("rename temp over", path);
    }
    syncDir(dirOf(path));
}

DurableFile::DurableFile(const std::string &path, Mode mode)
    : path_(path)
{
    int flags = O_WRONLY | O_CREAT;
    if (mode == Mode::Truncate)
        flags |= O_TRUNC;
    fd_ = ::open(path.c_str(), flags, 0644);
    if (fd_ < 0)
        throwErrno("open durable file", path);
    if (mode == Mode::Append) {
        const off_t end = ::lseek(fd_, 0, SEEK_END);
        if (end < 0) {
            ::close(fd_);
            fd_ = -1;
            throwErrno("seek to end of", path);
        }
        offset_ = static_cast<std::uint64_t>(end);
    }
}

DurableFile::~DurableFile()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
DurableFile::append(std::string_view bytes)
{
    writeAll(fd_, bytes, path_);
    offset_ += bytes.size();
}

void
DurableFile::sync()
{
    if (::fsync(fd_) != 0)
        throwErrno("fsync", path_);
}

void
DurableFile::truncateTo(std::uint64_t offset)
{
    if (::ftruncate(fd_, static_cast<off_t>(offset)) != 0)
        throwErrno("truncate", path_);
    if (::lseek(fd_, static_cast<off_t>(offset), SEEK_SET) < 0)
        throwErrno("seek", path_);
    offset_ = offset;
}

} // namespace qismet
