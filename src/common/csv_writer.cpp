#include "common/csv_writer.hpp"

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

namespace qismet {

CsvWriter::CsvWriter(const std::string &path,
                     const std::vector<std::string> &header)
    : out_(path), width_(header.size())
{
    if (!out_)
        throw std::runtime_error("CsvWriter: cannot open " + path);
    writeRow(header);
}

void
CsvWriter::writeRow(const std::vector<double> &values)
{
    if (values.size() != width_)
        throw std::invalid_argument("CsvWriter::writeRow: width mismatch");
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i)
            out_ << ',';
        out_ << values[i];
    }
    out_ << '\n';
}

void
CsvWriter::writeRow(const std::vector<std::string> &values)
{
    if (values.size() != width_)
        throw std::invalid_argument("CsvWriter::writeRow: width mismatch");
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i)
            out_ << ',';
        out_ << values[i];
    }
    out_ << '\n';
}

} // namespace qismet
