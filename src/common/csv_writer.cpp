#include "common/csv_writer.hpp"

#include <cstddef>
#include <cstdio>
#include <exception>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/atomic_file.hpp"

namespace qismet {

CsvWriter::CsvWriter(const std::string &path,
                     const std::vector<std::string> &header)
    : path_(path), width_(header.size())
{
    writeRow(header);
}

CsvWriter::~CsvWriter()
{
    try {
        close();
    }
    catch (const std::exception &err) {
        // Destructors must not throw; losing a bench CSV is not worth
        // a terminate, but it must not be silent either.
        std::fprintf(stderr, "CsvWriter: failed to publish '%s': %s\n",
                     path_.c_str(), err.what());
    }
}

void
CsvWriter::writeRow(const std::vector<double> &values)
{
    if (values.size() != width_)
        throw std::invalid_argument("CsvWriter::writeRow: width mismatch");
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i)
            buffer_ << ',';
        buffer_ << values[i];
    }
    buffer_ << '\n';
    dirty_ = true;
}

void
CsvWriter::writeRow(const std::vector<std::string> &values)
{
    if (values.size() != width_)
        throw std::invalid_argument("CsvWriter::writeRow: width mismatch");
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i)
            buffer_ << ',';
        buffer_ << values[i];
    }
    buffer_ << '\n';
    dirty_ = true;
}

void
CsvWriter::close()
{
    if (!dirty_)
        return;
    atomicWriteFile(path_, buffer_.str());
    dirty_ = false;
}

} // namespace qismet
