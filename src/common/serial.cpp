#include "common/serial.hpp"

#include <bit>
#include <cstring>

namespace qismet {

namespace {

void
putLE(std::string &out, std::uint64_t value, std::size_t width)
{
    for (std::size_t i = 0; i < width; ++i)
        out.push_back(
            static_cast<char>((value >> (8 * i)) & 0xFFull));
}

std::uint64_t
getLE(const unsigned char *bytes, std::size_t width)
{
    std::uint64_t value = 0;
    for (std::size_t i = 0; i < width; ++i)
        value |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
    return value;
}

} // namespace

void
Encoder::writeU8(std::uint8_t value)
{
    putLE(out_, value, 1);
}

void
Encoder::writeU32(std::uint32_t value)
{
    putLE(out_, value, 4);
}

void
Encoder::writeU64(std::uint64_t value)
{
    putLE(out_, value, 8);
}

void
Encoder::writeI64(std::int64_t value)
{
    putLE(out_, static_cast<std::uint64_t>(value), 8);
}

void
Encoder::writeF64(double value)
{
    putLE(out_, std::bit_cast<std::uint64_t>(value), 8);
}

void
Encoder::writeBool(bool value)
{
    putLE(out_, value ? 1u : 0u, 1);
}

void
Encoder::writeVecF64(const std::vector<double> &values)
{
    writeU64(values.size());
    for (const double v : values)
        writeF64(v);
}

void
Encoder::writeString(std::string_view value)
{
    writeU64(value.size());
    out_.append(value.data(), value.size());
}

const unsigned char *
Decoder::need(std::size_t n)
{
    if (remaining() < n)
        throw SerialError("decode past end of buffer (need " +
                          std::to_string(n) + " bytes, have " +
                          std::to_string(remaining()) + ")");
    const auto *p =
        reinterpret_cast<const unsigned char *>(bytes_.data()) + pos_;
    pos_ += n;
    return p;
}

std::uint8_t
Decoder::readU8()
{
    return static_cast<std::uint8_t>(getLE(need(1), 1));
}

std::uint32_t
Decoder::readU32()
{
    return static_cast<std::uint32_t>(getLE(need(4), 4));
}

std::uint64_t
Decoder::readU64()
{
    return getLE(need(8), 8);
}

std::int64_t
Decoder::readI64()
{
    return static_cast<std::int64_t>(getLE(need(8), 8));
}

double
Decoder::readF64()
{
    return std::bit_cast<double>(getLE(need(8), 8));
}

bool
Decoder::readBool()
{
    return getLE(need(1), 1) != 0;
}

std::vector<double>
Decoder::readVecF64()
{
    const std::uint64_t count = readU64();
    // Divide rather than multiply: a hostile count must not overflow.
    if (count > remaining() / 8)
        throw SerialError("vector length " + std::to_string(count) +
                          " exceeds remaining buffer");
    std::vector<double> values;
    values.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i)
        values.push_back(readF64());
    return values;
}

std::string
Decoder::readString()
{
    const std::uint64_t length = readU64();
    if (length > remaining())
        throw SerialError("string length " + std::to_string(length) +
                          " exceeds remaining buffer");
    const unsigned char *p = need(static_cast<std::size_t>(length));
    return std::string(reinterpret_cast<const char *>(p),
                       static_cast<std::size_t>(length));
}

} // namespace qismet
