/**
 * @file
 * Hermitian eigensolver used for exact ground-state references.
 *
 * A complex Hermitian matrix H = A + iB (A symmetric, B antisymmetric) is
 * embedded into the 2N x 2N real symmetric matrix [[A, -B], [B, A]], whose
 * spectrum is that of H with every eigenvalue doubled. The real symmetric
 * problem is solved with the cyclic Jacobi rotation method, which is
 * simple, unconditionally stable, and plenty fast for the <= 64x64
 * Hamiltonians this library encounters.
 */

#ifndef QISMET_COMMON_EIGEN_HPP
#define QISMET_COMMON_EIGEN_HPP

#include <vector>

#include "common/matrix.hpp"

namespace qismet {

/** Result of a Hermitian eigendecomposition. */
struct EigenResult
{
    /** Eigenvalues in ascending order. */
    std::vector<double> values;
    /** Eigenvectors as matrix columns, values[k] <-> column k. */
    Matrix vectors;
};

/**
 * Eigendecomposition of a real symmetric matrix via cyclic Jacobi.
 *
 * @param a Symmetric matrix (symmetry is asserted up to 1e-9).
 * @param max_sweeps Upper bound on full Jacobi sweeps before giving up.
 * @return Eigenvalues ascending with matching eigenvector columns.
 */
EigenResult eigRealSymmetric(const std::vector<std::vector<double>> &a,
                             int max_sweeps = 100);

/**
 * Eigendecomposition of a complex Hermitian matrix (see file comment for
 * the embedding). Throws std::invalid_argument when the input is not
 * Hermitian.
 */
EigenResult eigHermitian(const Matrix &h);

/**
 * Smallest eigenvalue of a complex Hermitian matrix — the exact ground
 * state energy when h is a Hamiltonian.
 */
double groundStateEnergy(const Matrix &h);

/**
 * Ground state (eigenvector of the smallest eigenvalue) of a Hermitian
 * matrix, normalized to unit 2-norm.
 */
std::vector<Complex> groundStateVector(const Matrix &h);

} // namespace qismet

#endif // QISMET_COMMON_EIGEN_HPP
