/**
 * @file
 * Streaming and batch statistics used across noise analysis, benchmark
 * reporting and the QISMET threshold calibrator.
 */

#ifndef QISMET_COMMON_STATISTICS_HPP
#define QISMET_COMMON_STATISTICS_HPP

#include <cstddef>
#include <vector>

namespace qismet {

/**
 * Numerically stable streaming mean / variance / extrema accumulator
 * (Welford's algorithm).
 */
class RunningStats
{
  public:
    RunningStats();

    /** Add one observation. */
    void add(double x);

    /** Merge another accumulator into this one (parallel Welford). */
    void merge(const RunningStats &other);

    /** Number of observations so far. */
    std::size_t count() const { return count_; }

    /** Sample mean; 0 when empty. */
    double mean() const { return mean_; }

    /** Unbiased sample variance; 0 when fewer than two observations. */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Minimum observation; +inf when empty. */
    double min() const { return min_; }

    /** Maximum observation; -inf when empty. */
    double max() const { return max_; }

    /** Reset to the empty state. */
    void reset();

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_;
    double max_;
};

/**
 * Empirical p-quantile of a sample using linear interpolation between
 * order statistics (type-7, the numpy default).
 *
 * @param sample Observations; copied and sorted internally.
 * @param p Quantile in [0, 1].
 */
double quantile(std::vector<double> sample, double p);

/** Arithmetic mean of a sample; 0 when empty. */
double mean(const std::vector<double> &sample);

/** Unbiased sample standard deviation; 0 when fewer than two elements. */
double stddev(const std::vector<double> &sample);

/** Median absolute deviation (robust scale estimate). */
double medianAbsDeviation(const std::vector<double> &sample);

/**
 * Simple moving average with the given window (centered on trailing edge).
 * Useful for plotting convergence curves in bench output.
 */
std::vector<double> movingAverage(const std::vector<double> &series,
                                  std::size_t window);

/**
 * Pearson correlation coefficient of two equal-length series.
 * Returns 0 when either series is constant.
 */
double pearson(const std::vector<double> &a, const std::vector<double> &b);

} // namespace qismet

#endif // QISMET_COMMON_STATISTICS_HPP
