#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <exception>
#include <functional>
#include <memory>
#include <stdexcept>
#include <utility>

namespace qismet {

namespace {

/**
 * Set while a ParallelExecutor region runs on this thread (worker or
 * caller): nested regions run inline rather than re-entering the pool.
 */
thread_local bool t_inParallelRegion = false;

} // namespace

ThreadPool::ThreadPool(std::size_t threads)
{
    if (threads == 0)
        throw std::invalid_argument("ThreadPool: zero threads");
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    if (!task)
        throw std::invalid_argument("ThreadPool::submit: empty task");
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stop_)
            throw std::logic_error("ThreadPool::submit: pool stopped");
        queue_.push_back(std::move(task));
    }
    wake_.notify_one();
}

bool
ThreadPool::onWorkerThread() const
{
    const auto self = std::this_thread::get_id();
    for (const auto &w : workers_)
        if (w.get_id() == self)
            return true;
    return false;
}

std::size_t
ThreadPool::hardwareThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

ParallelExecutor::ParallelExecutor(std::size_t threads)
{
    setThreads(threads);
}

std::size_t
ParallelExecutor::threads() const
{
    return threads_;
}

void
ParallelExecutor::setThreads(std::size_t threads)
{
    if (threads == 0)
        threads = ThreadPool::hardwareThreads();
    threads_ = threads;
    pool_.reset(); // lazily recreated at the next parallel region
}

void
ParallelExecutor::parallelFor(
    std::size_t n, const std::function<void(std::size_t)> &fn) const
{
    if (n == 0)
        return;

    // Inline paths: single-threaded executor, tiny range, or a nested
    // region (running it through the pool from a worker would deadlock
    // once all workers block on the join).
    if (threads_ <= 1 || n == 1 || t_inParallelRegion) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    {
        // Double-checked under the lock: concurrent regions (serve
        // workers) may race on first use; later reads are safe because
        // every region passes through this acquire/release pair.
        std::lock_guard<std::mutex> lock(poolInit_);
        if (!pool_)
            pool_ = std::make_unique<ThreadPool>(threads_);
    }

    // Dynamic index claiming: workers race on `next`, but every index
    // runs exactly once and tasks are independent, so results do not
    // depend on which worker claims which index.
    struct Region
    {
        std::atomic<std::size_t> next{0};
        std::atomic<std::size_t> done{0};
        std::exception_ptr error;
        std::mutex errorMutex;
        std::mutex doneMutex;
        std::condition_variable doneCv;
    };
    auto region = std::make_shared<Region>();

    const std::size_t workers = std::min(threads_, n);
    auto body = [region, n, &fn] {
        const bool was_in_region = t_inParallelRegion;
        t_inParallelRegion = true;
        for (;;) {
            const std::size_t i =
                region->next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                break;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(region->errorMutex);
                if (!region->error)
                    region->error = std::current_exception();
            }
            const std::size_t finished =
                region->done.fetch_add(1, std::memory_order_acq_rel) + 1;
            if (finished == n) {
                std::lock_guard<std::mutex> lock(region->doneMutex);
                region->doneCv.notify_all();
            }
        }
        t_inParallelRegion = was_in_region;
    };

    // The calling thread participates too: it would otherwise idle at
    // the join, and its participation bounds the wait even if the pool
    // is busy with someone else's tasks.
    for (std::size_t w = 1; w < workers; ++w)
        pool_->submit(body);
    body();

    {
        std::unique_lock<std::mutex> lock(region->doneMutex);
        region->doneCv.wait(lock, [&] {
            return region->done.load(std::memory_order_acquire) == n;
        });
    }
    if (region->error)
        std::rethrow_exception(region->error);
}

ParallelExecutor &
ParallelExecutor::global()
{
    static ParallelExecutor executor = [] {
        std::size_t threads = 1;
        if (const char *env = std::getenv("QISMET_THREADS")) {
            const long parsed = std::strtol(env, nullptr, 10);
            if (parsed >= 0)
                threads = static_cast<std::size_t>(parsed);
        }
        return ParallelExecutor(threads);
    }();
    return executor;
}

void
ParallelExecutor::setGlobalThreads(std::size_t threads)
{
    global().setThreads(threads);
}

} // namespace qismet
