#include "common/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace qismet {

EigenResult
eigRealSymmetric(const std::vector<std::vector<double>> &a_in, int max_sweeps)
{
    const std::size_t n = a_in.size();
    for (const auto &row : a_in)
        if (row.size() != n)
            throw std::invalid_argument("eigRealSymmetric: not square");

    // Working copies: a becomes diagonal, v accumulates rotations.
    std::vector<std::vector<double>> a = a_in;
    std::vector<std::vector<double>> v(n, std::vector<double>(n, 0.0));
    for (std::size_t i = 0; i < n; ++i)
        v[i][i] = 1.0;

    auto off_diag_norm = [&]() {
        double s = 0.0;
        for (std::size_t r = 0; r < n; ++r)
            for (std::size_t c = r + 1; c < n; ++c)
                s += a[r][c] * a[r][c];
        return std::sqrt(2.0 * s);
    };

    const double tol = 1e-13 * std::max(1.0, [&]() {
        double s = 0.0;
        for (std::size_t r = 0; r < n; ++r)
            for (std::size_t c = 0; c < n; ++c)
                s += a[r][c] * a[r][c];
        return std::sqrt(s);
    }());

    for (int sweep = 0; sweep < max_sweeps; ++sweep) {
        if (off_diag_norm() <= tol)
            break;
        for (std::size_t p = 0; p + 1 < n; ++p) {
            for (std::size_t q = p + 1; q < n; ++q) {
                const double apq = a[p][q];
                if (std::abs(apq) <= 1e-300)
                    continue;
                const double theta = (a[q][q] - a[p][p]) / (2.0 * apq);
                // Smaller-angle root for stability.
                const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                    (std::abs(theta) + std::sqrt(theta * theta + 1.0));
                const double c = 1.0 / std::sqrt(t * t + 1.0);
                const double s = t * c;

                for (std::size_t k = 0; k < n; ++k) {
                    const double akp = a[k][p];
                    const double akq = a[k][q];
                    a[k][p] = c * akp - s * akq;
                    a[k][q] = s * akp + c * akq;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    const double apk = a[p][k];
                    const double aqk = a[q][k];
                    a[p][k] = c * apk - s * aqk;
                    a[q][k] = s * apk + c * aqk;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    const double vkp = v[k][p];
                    const double vkq = v[k][q];
                    v[k][p] = c * vkp - s * vkq;
                    v[k][q] = s * vkp + c * vkq;
                }
            }
        }
    }

    // Sort ascending by eigenvalue.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t i, std::size_t j) {
        return a[i][i] < a[j][j];
    });

    EigenResult result;
    result.values.resize(n);
    result.vectors = Matrix(n, n);
    for (std::size_t k = 0; k < n; ++k) {
        result.values[k] = a[order[k]][order[k]];
        for (std::size_t r = 0; r < n; ++r)
            result.vectors(r, k) = Complex(v[r][order[k]], 0.0);
    }
    return result;
}

EigenResult
eigHermitian(const Matrix &h)
{
    if (!h.isHermitian(1e-9))
        throw std::invalid_argument("eigHermitian: matrix is not Hermitian");
    const std::size_t n = h.rows();

    // Embed H = A + iB into the real symmetric [[A, -B], [B, A]].
    std::vector<std::vector<double>> big(2 * n, std::vector<double>(2 * n));
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c) {
            const double re = h(r, c).real();
            const double im = h(r, c).imag();
            big[r][c] = re;
            big[r + n][c + n] = re;
            big[r][c + n] = -im;
            big[r + n][c] = im;
        }
    }

    EigenResult real_res = eigRealSymmetric(big);

    // Every eigenvalue of H appears twice; take one representative of each
    // pair. The pairs are adjacent after sorting (values are equal), so
    // keeping even indices is correct even with degeneracies beyond the
    // doubling, because any selection of n values with the right
    // multiplicity-halving works: eigenvalue multiplicity in the embedding
    // is exactly 2x the multiplicity in H.
    EigenResult result;
    result.values.resize(n);
    result.vectors = Matrix(n, n);
    for (std::size_t k = 0; k < n; ++k) {
        result.values[k] = real_res.values[2 * k];
        // Recover the complex eigenvector: x = u + i w where the real
        // eigenvector is (u, w).
        std::vector<Complex> x(n);
        double norm = 0.0;
        for (std::size_t r = 0; r < n; ++r) {
            x[r] = Complex(real_res.vectors(r, 2 * k).real(),
                           real_res.vectors(r + n, 2 * k).real());
            norm += std::norm(x[r]);
        }
        norm = std::sqrt(norm);
        for (std::size_t r = 0; r < n; ++r)
            result.vectors(r, k) = x[r] / norm;
    }
    return result;
}

double
groundStateEnergy(const Matrix &h)
{
    return eigHermitian(h).values.front();
}

std::vector<Complex>
groundStateVector(const Matrix &h)
{
    const EigenResult res = eigHermitian(h);
    std::vector<Complex> v(h.rows());
    for (std::size_t r = 0; r < h.rows(); ++r)
        v[r] = res.vectors(r, 0);
    return v;
}

} // namespace qismet
