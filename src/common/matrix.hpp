/**
 * @file
 * Small dense complex matrix type used by the exact Hamiltonian solver,
 * the density-matrix simulator and the measurement-mitigation inverter.
 *
 * This is deliberately a simple row-major container with the handful of
 * operations the library needs (multiply, adjoint, kron, norms) rather
 * than a general linear-algebra package — problem sizes here top out at
 * 2^6 = 64 for states and 64x64 for Hamiltonians.
 */

#ifndef QISMET_COMMON_MATRIX_HPP
#define QISMET_COMMON_MATRIX_HPP

#include <complex>
#include <cstddef>
#include <vector>

namespace qismet {

using Complex = std::complex<double>;

/** Dense row-major complex matrix. */
class Matrix
{
  public:
    /** Empty 0x0 matrix. */
    Matrix() = default;

    /** Zero-filled rows x cols matrix. */
    Matrix(std::size_t rows, std::size_t cols);

    /** Build from a nested initializer-style vector (rows of equal size). */
    static Matrix fromRows(
        const std::vector<std::vector<Complex>> &rows);

    /** n x n identity. */
    static Matrix identity(std::size_t n);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    /** Element access (no bounds check in release builds). */
    Complex &operator()(std::size_t r, std::size_t c)
    {
        return data_[r * cols_ + c];
    }
    /** Const element access. */
    const Complex &operator()(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    /** Raw storage (row-major). */
    const std::vector<Complex> &data() const { return data_; }

    Matrix operator+(const Matrix &other) const;
    Matrix operator-(const Matrix &other) const;
    Matrix operator*(const Matrix &other) const;
    Matrix operator*(Complex scalar) const;
    Matrix &operator+=(const Matrix &other);
    Matrix &operator*=(Complex scalar);

    /** Conjugate transpose. */
    Matrix adjoint() const;

    /** Transpose without conjugation. */
    Matrix transpose() const;

    /** Kronecker product this ⊗ other. */
    Matrix kron(const Matrix &other) const;

    /** Trace (must be square). */
    Complex trace() const;

    /** Frobenius norm. */
    double frobeniusNorm() const;

    /** Max |a_ij - b_ij| between two same-shape matrices. */
    double maxAbsDiff(const Matrix &other) const;

    /** True when max |a_ij - a_ji^*| <= tol. */
    bool isHermitian(double tol = 1e-10) const;

    /** True when A * A^dagger == I within tol. */
    bool isUnitary(double tol = 1e-10) const;

    /** Matrix-vector product. */
    std::vector<Complex> apply(const std::vector<Complex> &v) const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<Complex> data_;
};

/**
 * Solve the square linear system A x = b by Gaussian elimination with
 * partial pivoting. Used by measurement-error mitigation to invert the
 * confusion matrix. Throws std::runtime_error on (numerically) singular A.
 */
std::vector<double> solveLinear(std::vector<std::vector<double>> a,
                                std::vector<double> b);

} // namespace qismet

#endif // QISMET_COMMON_MATRIX_HPP
