#include "common/table_printer.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace qismet {

TablePrinter::TablePrinter(std::string caption) : caption_(std::move(caption))
{
}

void
TablePrinter::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TablePrinter::addRow(std::vector<std::string> row)
{
    if (!header_.empty() && row.size() != header_.size())
        throw std::invalid_argument("TablePrinter::addRow: width mismatch");
    rows_.push_back(std::move(row));
}

void
TablePrinter::addRow(const std::string &label,
                     const std::vector<double> &values, int precision)
{
    std::vector<std::string> row;
    row.reserve(values.size() + 1);
    row.push_back(label);
    for (double v : values)
        row.push_back(formatDouble(v, precision));
    addRow(std::move(row));
}

void
TablePrinter::print(std::ostream &os) const
{
    std::vector<std::size_t> widths;
    auto grow = [&](const std::vector<std::string> &row) {
        if (widths.size() < row.size())
            widths.resize(row.size(), 0);
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    grow(header_);
    for (const auto &row : rows_)
        grow(row);

    auto print_row = [&](const std::vector<std::string> &row) {
        os << "  ";
        for (std::size_t i = 0; i < row.size(); ++i) {
            os << std::left << std::setw(static_cast<int>(widths[i]) + 2)
               << row[i];
        }
        os << "\n";
    };

    os << caption_ << "\n";
    if (!header_.empty()) {
        print_row(header_);
        std::size_t total = 2;
        for (auto w : widths)
            total += w + 2;
        os << "  " << std::string(total - 2, '-') << "\n";
    }
    for (const auto &row : rows_)
        print_row(row);
    os << "\n";
}

std::string
sparkline(const std::vector<double> &series, std::size_t width)
{
    if (series.empty())
        return "";
    static const char *kLevels[] = {"▁", "▂", "▃", "▄",
                                    "▅", "▆", "▇", "█"};

    // Downsample by averaging buckets.
    std::vector<double> buckets;
    const std::size_t n = series.size();
    const std::size_t w = std::min(width, n);
    for (std::size_t b = 0; b < w; ++b) {
        const std::size_t lo = b * n / w;
        const std::size_t hi = std::max(lo + 1, (b + 1) * n / w);
        double sum = 0.0;
        for (std::size_t i = lo; i < hi; ++i)
            sum += series[i];
        buckets.push_back(sum / static_cast<double>(hi - lo));
    }

    const double lo = *std::min_element(buckets.begin(), buckets.end());
    const double hi = *std::max_element(buckets.begin(), buckets.end());
    const double span = hi - lo;

    std::string out;
    for (double v : buckets) {
        int level = span <= 0.0
            ? 0
            : static_cast<int>(std::floor((v - lo) / span * 7.999));
        level = std::clamp(level, 0, 7);
        out += kLevels[level];
    }
    return out;
}

std::string
formatDouble(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

} // namespace qismet
