/**
 * @file
 * SimClock: the library's simulated-time source, shared by the fault
 * layer's retry backoff (seconds) and the serve layer's circuit
 * breakers (ticks).
 *
 * Nothing in this repository may read a wall clock on a path that
 * feeds results — wall time would make every trajectory
 * machine-dependent. Instead, simulated time is *advanced explicitly*
 * by the component that owns the clock:
 *
 *  - VqeDriver owns one SimClock per run and advances it in seconds
 *    (one job-slot duration per executed job, plus the retry policy's
 *    backoff per fault retry). Because the advance sequence is a pure
 *    function of the run's spec, `seconds()` is bit-identical across
 *    thread counts, resumes and worker placements — which is what lets
 *    a per-job deadline budget be enforced deterministically.
 *
 *  - ServeCore owns the fleet clock and advances it in ticks (one tick
 *    per leg outcome, plus explicit advances from the chaos harness
 *    and the idle-fleet time skip). Breaker cooldowns and chaos
 *    windows are expressed in these ticks. Fleet ticks are
 *    path-dependent under threads — only components whose outputs are
 *    allowed to vary with interleaving (health telemetry, breaker
 *    timing) may consume them; run randomness never does.
 *
 * The two time bases never mix: a run's seconds belong to the run, the
 * fleet's ticks belong to the fleet.
 */

#ifndef QISMET_COMMON_SIM_CLOCK_HPP
#define QISMET_COMMON_SIM_CLOCK_HPP

#include <cstdint>

namespace qismet {

/** Explicitly advanced simulated clock; never reads wall time. */
class SimClock
{
  public:
    SimClock() = default;

    /** Current simulated tick count. */
    std::uint64_t now() const { return ticks_; }

    /** Current simulated seconds. */
    double seconds() const { return seconds_; }

    /** Advance by `ticks` ticks. */
    void advanceTicks(std::uint64_t ticks) { ticks_ += ticks; }

    /**
     * Advance the tick count to `tick` (discrete-event time skip).
     * A target in the past is a no-op — time never runs backwards.
     */
    void advanceTo(std::uint64_t tick)
    {
        if (tick > ticks_)
            ticks_ = tick;
    }

    /** Advance by `s` simulated seconds (s >= 0). */
    void advanceSeconds(double s) { seconds_ += s; }

    /** Restore a checkpointed tick count (resume path). */
    void restoreTicks(std::uint64_t ticks) { ticks_ = ticks; }

    /**
     * Restore checkpointed seconds (resume path). The subsequent
     * advance sequence re-accumulates bit-identically because double
     * addition from an equal start over an equal sequence is exact
     * replay.
     */
    void restoreSeconds(double s) { seconds_ = s; }

  private:
    std::uint64_t ticks_ = 0;
    double seconds_ = 0.0;
};

} // namespace qismet

#endif // QISMET_COMMON_SIM_CLOCK_HPP
