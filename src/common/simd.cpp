#include "common/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace qismet {

namespace {

/** -1 = follow the environment, 0/1 = setSimdEnabled override. */
std::atomic<int> g_simdOverride{-1};

bool
detectCpu()
{
#if QISMET_SIMD_X86
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
    return false;
#endif
}

} // namespace

bool
simdCompiledIn()
{
    return QISMET_SIMD_X86 != 0;
}

bool
simdAvailable()
{
    static const bool available = detectCpu();
    return available;
}

bool
simdEnabled()
{
    if (!simdAvailable())
        return false;
    const int override_ = g_simdOverride.load(std::memory_order_relaxed);
    if (override_ >= 0)
        return override_ != 0;
    static const bool envDisabled = [] {
        const char *v = std::getenv("QISMET_SIMD");
        return v != nullptr &&
               (std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0);
    }();
    return !envDisabled;
}

void
setSimdEnabled(bool on)
{
    g_simdOverride.store(on ? 1 : 0, std::memory_order_relaxed);
}

const char *
simdBackendName()
{
    return simdEnabled() ? "avx2" : "scalar";
}

} // namespace qismet
