#include "common/block_partition.hpp"

#include <array>
#include <atomic>
#include <cstdlib>

#include "common/thread_pool.hpp"

namespace qismet {

namespace {

constexpr std::size_t kDefaultThreshold = 1024;

std::size_t
envThreshold()
{
    static const std::size_t value = [] {
        const char *v = std::getenv("QISMET_PARALLEL_MIN_AMPS");
        if (v == nullptr)
            return kDefaultThreshold;
        char *end = nullptr;
        const unsigned long long parsed = std::strtoull(v, &end, 10);
        if (end == v || parsed == 0)
            return kDefaultThreshold;
        return static_cast<std::size_t>(parsed);
    }();
    return value;
}

/** 0 = follow the environment/default. */
std::atomic<std::size_t> g_thresholdOverride{0};

} // namespace

std::size_t
intraStateParallelThreshold()
{
    const std::size_t override_ =
        g_thresholdOverride.load(std::memory_order_relaxed);
    return override_ != 0 ? override_ : envThreshold();
}

void
setIntraStateParallelThreshold(std::size_t elements)
{
    g_thresholdOverride.store(elements, std::memory_order_relaxed);
}

BlockRange
intraStateBlock(std::size_t units, std::size_t index)
{
    // ceil-divided block size: the first blocks absorb the remainder,
    // trailing blocks may be empty for tiny unit counts.
    const std::size_t per =
        (units + kIntraStateBlocks - 1) / kIntraStateBlocks;
    const std::size_t begin = index * per;
    const std::size_t end = begin + per;
    return BlockRange{begin < units ? begin : units,
                      end < units ? end : units};
}

void
forEachUnitBlocked(std::size_t units, std::size_t elements,
                   const std::function<void(std::size_t, std::size_t)> &fn)
{
    if (units == 0)
        return;
    if (elements < intraStateParallelThreshold()) {
        fn(0, units);
        return;
    }
    ParallelExecutor::global().parallelFor(
        kIntraStateBlocks, [&](std::size_t b) {
            const BlockRange r = intraStateBlock(units, b);
            if (r.begin < r.end)
                fn(r.begin, r.end);
        });
}

double
orderedBlockReduce(
    std::size_t units, std::size_t elements,
    const std::function<double(std::size_t, std::size_t)> &blockFn)
{
    if (units == 0)
        return 0.0;
    if (elements < intraStateParallelThreshold())
        return blockFn(0, units);
    // Partials land in per-block slots; the fold below is serial and in
    // block order, so the grouping is fixed at every thread count.
    std::array<double, kIntraStateBlocks> partial{};
    ParallelExecutor::global().parallelFor(
        kIntraStateBlocks, [&](std::size_t b) {
            const BlockRange r = intraStateBlock(units, b);
            partial[b] = r.begin < r.end ? blockFn(r.begin, r.end) : 0.0;
        });
    double total = 0.0;
    for (std::size_t b = 0; b < kIntraStateBlocks; ++b)
        total += partial[b];
    return total;
}

Complex
orderedBlockReduceComplex(
    std::size_t units, std::size_t elements,
    const std::function<Complex(std::size_t, std::size_t)> &blockFn)
{
    if (units == 0)
        return Complex(0.0, 0.0);
    if (elements < intraStateParallelThreshold())
        return blockFn(0, units);
    std::array<Complex, kIntraStateBlocks> partial{};
    ParallelExecutor::global().parallelFor(
        kIntraStateBlocks, [&](std::size_t b) {
            const BlockRange r = intraStateBlock(units, b);
            partial[b] = r.begin < r.end ? blockFn(r.begin, r.end)
                                         : Complex(0.0, 0.0);
        });
    Complex total(0.0, 0.0);
    for (std::size_t b = 0; b < kIntraStateBlocks; ++b)
        total += partial[b];
    return total;
}

} // namespace qismet
