/**
 * @file
 * ASCII table and sparkline rendering for benchmark output.
 *
 * Every figure-reproduction bench prints its series with these helpers so
 * that bench_output.txt reads like the paper's tables: aligned columns,
 * a caption, and compact unicode sparklines for convergence curves.
 */

#ifndef QISMET_COMMON_TABLE_PRINTER_HPP
#define QISMET_COMMON_TABLE_PRINTER_HPP

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace qismet {

/** Column-aligned ASCII table with a caption. */
class TablePrinter
{
  public:
    /** @param caption Printed above the table (e.g. "Fig. 14 ..."). */
    explicit TablePrinter(std::string caption);

    /** Set the header row. Must be called before addRow. */
    void setHeader(std::vector<std::string> header);

    /** Append one row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format doubles to the given precision and append. */
    void addRow(const std::string &label, const std::vector<double> &values,
                int precision = 4);

    /** Render to the stream. */
    void print(std::ostream &os) const;

  private:
    std::string caption_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/**
 * Render a numeric series as a unicode sparkline (8 levels).
 * @param series Values; empty input renders as empty string.
 * @param width Downsample to at most this many characters.
 */
std::string sparkline(const std::vector<double> &series,
                      std::size_t width = 60);

/** Format a double with fixed precision into a string. */
std::string formatDouble(double value, int precision = 4);

} // namespace qismet

#endif // QISMET_COMMON_TABLE_PRINTER_HPP
