/**
 * @file
 * Crash-safe file primitives: every byte the project persists (journals,
 * snapshots, bench CSVs) flows through this layer.
 *
 * Two write disciplines cover every durability need:
 *
 *  - atomicWriteFile: whole-file replacement via write-temp -> fsync ->
 *    rename -> fsync(dir). Readers see either the complete old file or
 *    the complete new file, never a torn mixture — rename(2) is atomic
 *    on POSIX filesystems. Used for snapshots and CSV dumps.
 *  - DurableFile: an append-only descriptor with explicit sync(), for
 *    write-ahead journals whose tail may legitimately be torn by a
 *    crash. Torn tails are the *reader's* problem (the journal format
 *    frames and checksums every record so a partial append is detected
 *    and discarded on recovery).
 *
 * The qismet-lint rule `raw-file-write` flags persistence writes under
 * src/ that bypass this layer.
 */

#ifndef QISMET_COMMON_ATOMIC_FILE_HPP
#define QISMET_COMMON_ATOMIC_FILE_HPP

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace qismet {

/** Raised when a durable-file operation fails (message carries errno). */
class FileError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** FNV-1a offset basis (the conventional 64-bit seed). */
inline constexpr std::uint64_t kFnvOffsetBasis = 0xCBF29CE484222325ull;

/**
 * 64-bit FNV-1a digest of a byte range. Deterministic and
 * platform-independent; used to checksum journal frames and snapshot
 * payloads.
 */
std::uint64_t fnv1a64(const void *data, std::size_t size,
                      std::uint64_t seed = kFnvOffsetBasis);

/** FNV-1a over a string view. */
std::uint64_t fnv1a64(std::string_view bytes,
                      std::uint64_t seed = kFnvOffsetBasis);

/** True when a regular file exists at the path. */
bool fileExists(const std::string &path);

/**
 * Read a whole file into memory.
 * @throws FileError when the file cannot be opened or read.
 */
std::string readFile(const std::string &path);

/**
 * Atomically replace `path` with `bytes`.
 *
 * Writes `path + ".tmp"`, fsyncs it, renames it over `path`, then
 * fsyncs the containing directory so the rename itself is durable. A
 * crash at any instant leaves either the previous complete file or the
 * new complete file (plus, at worst, an orphaned `.tmp` that the next
 * atomic write truncates).
 *
 * @throws FileError on any I/O failure.
 */
void atomicWriteFile(const std::string &path, std::string_view bytes);

/**
 * Append-only file handle with explicit durability control — the
 * substrate of the run journal.
 *
 * Not thread-safe; the single driver thread owns it.
 */
class DurableFile
{
  public:
    enum class Mode
    {
        Truncate, ///< Start fresh (create/empty the file).
        Append,   ///< Keep existing contents; position at the end.
    };

    /** @throws FileError when the file cannot be opened. */
    DurableFile(const std::string &path, Mode mode);
    ~DurableFile();

    DurableFile(const DurableFile &) = delete;
    DurableFile &operator=(const DurableFile &) = delete;

    /** Append bytes at the current offset. @throws FileError. */
    void append(std::string_view bytes);

    /** fsync the descriptor (make all appends durable). */
    void sync();

    /**
     * Truncate the file to `offset` bytes and continue appending from
     * there (recovery: drop a torn tail). @throws FileError.
     */
    void truncateTo(std::uint64_t offset);

    /** Current append offset (== file size). */
    std::uint64_t offset() const { return offset_; }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    int fd_ = -1;
    std::uint64_t offset_ = 0;
};

} // namespace qismet

#endif // QISMET_COMMON_ATOMIC_FILE_HPP
