#include "common/rng.hpp"

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace qismet {

namespace {

/** SplitMix64 step used to expand seeds into engine state. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t
deriveStreamSeed(std::uint64_t root, std::uint64_t domain,
                 std::uint64_t index)
{
    // Each level passes through a full SplitMix64 avalanche before the
    // next is folded in. The leading constant domain-separates derived
    // seeds from raw user seeds fed straight to Rng(seed).
    std::uint64_t x = root ^ 0x243F6A8885A308D3ull;
    std::uint64_t h = splitmix64(x);
    x = h ^ domain;
    h = splitmix64(x);
    x = h ^ index;
    return splitmix64(x);
}

Xoshiro256::Xoshiro256(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : state_)
        s = splitmix64(sm);
}

Xoshiro256::result_type
Xoshiro256::operator()()
{
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

void
Xoshiro256::jump()
{
    static constexpr std::uint64_t kJump[] = {
        0x180EC6D33CFD0ABAull, 0xD5A61266F0C9392Cull,
        0xA9582618E03FC9AAull, 0x39ABDC4529B1661Cull};

    std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    for (std::uint64_t jump : kJump) {
        for (int b = 0; b < 64; ++b) {
            if (jump & (1ull << b)) {
                s0 ^= state_[0];
                s1 ^= state_[1];
                s2 ^= state_[2];
                s3 ^= state_[3];
            }
            (*this)();
        }
    }
    state_[0] = s0;
    state_[1] = s1;
    state_[2] = s2;
    state_[3] = s3;
}

std::uint64_t
Xoshiro256::stateDigest() const
{
    return rotl(state_[0], 7) ^ rotl(state_[1], 21) ^ rotl(state_[2], 37) ^
           rotl(state_[3], 51);
}

std::array<std::uint64_t, 4>
Xoshiro256::state() const
{
    return {state_[0], state_[1], state_[2], state_[3]};
}

void
Xoshiro256::setState(const std::array<std::uint64_t, 4> &state)
{
    for (std::size_t i = 0; i < 4; ++i)
        state_[i] = state[i];
}

Rng::Rng(std::uint64_t seed) : engine_(seed) {}

RngState
Rng::saveState() const
{
    RngState state;
    state.engine = engine_.state();
    state.hasSpareNormal = hasSpareNormal_;
    state.spareNormal = spareNormal_;
    return state;
}

void
Rng::restoreState(const RngState &state)
{
    engine_.setState(state.engine);
    hasSpareNormal_ = state.hasSpareNormal;
    spareNormal_ = state.spareNormal;
}

double
Rng::uniform()
{
    // 53 random bits into the mantissa: uniform on [0, 1).
    return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    if (n == 0)
        throw std::invalid_argument("Rng::uniformInt: n must be positive");
    const std::uint64_t limit =
        std::numeric_limits<std::uint64_t>::max() -
        std::numeric_limits<std::uint64_t>::max() % n;
    std::uint64_t x;
    do {
        x = engine_();
    } while (x >= limit);
    return x % n;
}

double
Rng::normal()
{
    if (hasSpareNormal_) {
        hasSpareNormal_ = false;
        return spareNormal_;
    }
    double u, v, s;
    do {
        u = uniform(-1.0, 1.0);
        v = uniform(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    spareNormal_ = v * m;
    hasSpareNormal_ = true;
    return u * m;
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::exponential(double rate)
{
    if (rate <= 0.0)
        throw std::invalid_argument("Rng::exponential: rate must be positive");
    // 1 - uniform() is in (0, 1], so the log argument is never zero.
    return -std::log(1.0 - uniform()) / rate;
}

std::uint64_t
Rng::poisson(double mean)
{
    if (mean < 0.0)
        throw std::invalid_argument("Rng::poisson: mean must be non-negative");
    if (mean == 0.0)
        return 0;
    if (mean < 30.0) {
        // Knuth's multiplication method.
        const double limit = std::exp(-mean);
        std::uint64_t k = 0;
        double p = 1.0;
        do {
            ++k;
            p *= uniform();
        } while (p > limit);
        return k - 1;
    }
    // Normal approximation with continuity correction; adequate for the
    // large-mean shot counts used in this library.
    const double x = normal(mean, std::sqrt(mean));
    return x < 0.5 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

std::size_t
Rng::discrete(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        if (w < 0.0)
            throw std::invalid_argument("Rng::discrete: negative weight");
        total += w;
    }
    if (total <= 0.0)
        throw std::invalid_argument("Rng::discrete: all weights zero");
    double target = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        target -= weights[i];
        if (target < 0.0)
            return i;
    }
    return weights.size() - 1;
}

int
Rng::sign()
{
    return (engine_() & 1ull) ? 1 : -1;
}

Rng
Rng::split()
{
    return Rng(engine_());
}

Rng
Rng::splitStream(std::uint64_t domain, std::uint64_t index) const
{
    return Rng(deriveStreamSeed(engine_.stateDigest(), domain, index));
}

Rng
Rng::splitAt(std::uint64_t index) const
{
    // One SplitMix64 round over (state digest, counter) decorrelates
    // adjacent indices; the child constructor expands the result into a
    // well-mixed xoshiro state.
    std::uint64_t x =
        engine_.stateDigest() + index * 0x9E3779B97F4A7C15ull;
    return Rng(splitmix64(x));
}

} // namespace qismet
