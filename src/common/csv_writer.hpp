/**
 * @file
 * Minimal CSV emission so benches can dump raw series alongside the ASCII
 * tables (for external plotting of the reproduced figures).
 */

#ifndef QISMET_COMMON_CSV_WRITER_HPP
#define QISMET_COMMON_CSV_WRITER_HPP

#include <cstddef>
#include <fstream>
#include <string>
#include <vector>

namespace qismet {

/** Writes rows of doubles/strings to a CSV file; RAII-closed. */
class CsvWriter
{
  public:
    /**
     * Open (truncate) the file and write the header row.
     * @throws std::runtime_error when the file cannot be opened.
     */
    CsvWriter(const std::string &path, const std::vector<std::string> &header);

    /** Append one numeric row (must match header width). */
    void writeRow(const std::vector<double> &values);

    /** Append one string row (must match header width). */
    void writeRow(const std::vector<std::string> &values);

  private:
    std::ofstream out_;
    std::size_t width_;
};

} // namespace qismet

#endif // QISMET_COMMON_CSV_WRITER_HPP
