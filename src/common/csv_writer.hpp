/**
 * @file
 * Minimal CSV emission so benches can dump raw series alongside the ASCII
 * tables (for external plotting of the reproduced figures).
 *
 * Rows are buffered in memory and published atomically (temp -> fsync
 * -> rename, via the atomic-file layer) when the writer is closed or
 * destroyed: an interrupted bench run never leaves a truncated or
 * half-written CSV behind — the previous complete file (or no file)
 * survives instead.
 */

#ifndef QISMET_COMMON_CSV_WRITER_HPP
#define QISMET_COMMON_CSV_WRITER_HPP

#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

namespace qismet {

/** Writes rows of doubles/strings to a CSV file; RAII-closed. */
class CsvWriter
{
  public:
    /**
     * Start a CSV with the given header row. Nothing touches the
     * filesystem until close() (or destruction) publishes the file
     * atomically.
     */
    CsvWriter(const std::string &path, const std::vector<std::string> &header);

    /** Publishes on destruction; write errors are reported to stderr. */
    ~CsvWriter();

    CsvWriter(const CsvWriter &) = delete;
    CsvWriter &operator=(const CsvWriter &) = delete;

    /** Append one numeric row (must match header width). */
    void writeRow(const std::vector<double> &values);

    /** Append one string row (must match header width). */
    void writeRow(const std::vector<std::string> &values);

    /**
     * Atomically publish the buffered rows to the target path.
     * Idempotent; later writeRow calls re-open the buffer for the next
     * publish. @throws FileError when the write fails.
     */
    void close();

  private:
    std::string path_;
    std::ostringstream buffer_;
    std::size_t width_;
    bool dirty_ = false;
};

} // namespace qismet

#endif // QISMET_COMMON_CSV_WRITER_HPP
