/**
 * @file
 * SIMD capability detection and the runtime kernel-dispatch switch.
 *
 * The simulation kernels ship two implementations: a portable scalar
 * path and an AVX2/FMA path (compiled with per-function target
 * attributes, so the rest of the library keeps the baseline ISA). Which
 * one runs is decided at run time:
 *
 *   - compile-time: `QISMET_SIMD_X86` is defined only on x86-64 with a
 *     compiler that supports target attributes + intrinsics (and the
 *     QISMET_ENABLE_SIMD CMake option left ON). Elsewhere the AVX2
 *     entry points are compiled as scalar forwarders.
 *   - run time: the CPU must report AVX2 and FMA
 *     (`__builtin_cpu_supports`), checked once and cached.
 *   - policy: the `QISMET_SIMD` environment variable (`off` or `0`
 *     disables; read once) and the `setSimdEnabled()` programmatic
 *     override (tests, A/B benches), mirroring the fusion switch.
 *
 * Determinism contract (DESIGN.md "SIMD + intra-state parallelism"):
 * the SIMD kernels are bit-identical to the scalar kernels. The
 * FP-contraction policy is **off** — no fused multiply-add is used on
 * either path, every multiply and add rounds individually, in the same
 * order, exactly like the pre-SIMD scalar code. FMA hardware is
 * required only because AVX2 CPUs universally have it and the runtime
 * check is conservative; the kernels never emit contracted ops. This is
 * what lets SIMD-on and SIMD-off runs — and every thread count — share
 * one set of golden traces.
 */

#ifndef QISMET_COMMON_SIMD_HPP
#define QISMET_COMMON_SIMD_HPP

#if !defined(QISMET_DISABLE_SIMD) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define QISMET_SIMD_X86 1
#else
#define QISMET_SIMD_X86 0
#endif

namespace qismet {

/** True when the AVX2 kernel bodies were compiled in at all. */
bool simdCompiledIn();

/**
 * True when the AVX2 kernels can run here: compiled in and the CPU
 * reports AVX2+FMA. Checked once, then cached.
 */
bool simdAvailable();

/**
 * The dispatch decision the kernels consult: simdAvailable() and not
 * disabled by `QISMET_SIMD=off` (or `=0`) or setSimdEnabled(false).
 */
bool simdEnabled();

/**
 * Programmatic override of the SIMD switch (tests, A/B benches).
 * Enabling on a machine without AVX2 support is a no-op: simdEnabled()
 * stays false.
 */
void setSimdEnabled(bool on);

/** "avx2" when simdEnabled(), else "scalar" — for bench/CI labels. */
const char *simdBackendName();

} // namespace qismet

#endif // QISMET_COMMON_SIMD_HPP
