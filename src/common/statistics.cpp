#include "common/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

namespace qismet {

RunningStats::RunningStats()
    : min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity())
{
}

void
RunningStats::add(double x)
{
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = n1 + n2;
    mean_ += delta * n2 / n;
    m2_ += other.m2_ + delta * delta * n1 * n2 / n;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
RunningStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStats::reset()
{
    *this = RunningStats();
}

double
quantile(std::vector<double> sample, double p)
{
    if (sample.empty())
        throw std::invalid_argument("quantile: empty sample");
    if (p < 0.0 || p > 1.0)
        throw std::invalid_argument("quantile: p outside [0, 1]");
    std::sort(sample.begin(), sample.end());
    const double idx = p * static_cast<double>(sample.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(idx);
    const std::size_t hi = std::min(lo + 1, sample.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    return sample[lo] * (1.0 - frac) + sample[hi] * frac;
}

double
mean(const std::vector<double> &sample)
{
    if (sample.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : sample)
        sum += x;
    return sum / static_cast<double>(sample.size());
}

double
stddev(const std::vector<double> &sample)
{
    if (sample.size() < 2)
        return 0.0;
    const double m = mean(sample);
    double s = 0.0;
    for (double x : sample)
        s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(sample.size() - 1));
}

double
medianAbsDeviation(const std::vector<double> &sample)
{
    if (sample.empty())
        return 0.0;
    const double med = quantile(sample, 0.5);
    std::vector<double> dev;
    dev.reserve(sample.size());
    for (double x : sample)
        dev.push_back(std::abs(x - med));
    return quantile(std::move(dev), 0.5);
}

std::vector<double>
movingAverage(const std::vector<double> &series, std::size_t window)
{
    if (window == 0)
        throw std::invalid_argument("movingAverage: window must be positive");
    std::vector<double> out;
    out.reserve(series.size());
    double sum = 0.0;
    for (std::size_t i = 0; i < series.size(); ++i) {
        sum += series[i];
        if (i >= window)
            sum -= series[i - window];
        const std::size_t n = std::min(i + 1, window);
        out.push_back(sum / static_cast<double>(n));
    }
    return out;
}

double
pearson(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.size() != b.size())
        throw std::invalid_argument("pearson: length mismatch");
    if (a.size() < 2)
        return 0.0;
    const double ma = mean(a);
    const double mb = mean(b);
    double num = 0.0, da = 0.0, db = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        num += (a[i] - ma) * (b[i] - mb);
        da += (a[i] - ma) * (a[i] - ma);
        db += (b[i] - mb) * (b[i] - mb);
    }
    if (da == 0.0 || db == 0.0)
        return 0.0;
    return num / std::sqrt(da * db);
}

} // namespace qismet
