/**
 * @file
 * Variational ansatz interface. Concrete ansatz generators (EfficientSU2,
 * RealAmplitudes — the paper's "SU2" and "RA", Table 1) produce the
 * parameterized circuits the VQE engine binds each iteration.
 */

#ifndef QISMET_ANSATZ_ANSATZ_HPP
#define QISMET_ANSATZ_ANSATZ_HPP

#include <memory>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"

namespace qismet {

/** Abstract hardware-efficient ansatz. */
class Ansatz
{
  public:
    /**
     * @param num_qubits Register width.
     * @param reps Number of entangling-block repetitions (Table 1's
     *        "Reps" column).
     */
    Ansatz(int num_qubits, int reps);
    virtual ~Ansatz() = default;

    int numQubits() const { return numQubits_; }
    int reps() const { return reps_; }

    /** Short name, e.g. "SU2" or "RA". */
    virtual std::string name() const = 0;

    /** Number of free parameters. */
    virtual int numParams() const = 0;

    /** Build the parameterized circuit. */
    virtual Circuit build() const = 0;

    /**
     * A reasonable random starting point: angles uniform in [-π, π].
     */
    std::vector<double> randomInitialPoint(Rng &rng) const;

  protected:
    /** Append the linear CX entanglement layer CX(0,1)...CX(n-2,n-1). */
    static void appendLinearEntanglement(Circuit &circuit);

    int numQubits_;
    int reps_;
};

} // namespace qismet

#endif // QISMET_ANSATZ_ANSATZ_HPP
