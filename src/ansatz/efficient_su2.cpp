#include "ansatz/efficient_su2.hpp"

namespace qismet {

EfficientSU2::EfficientSU2(int num_qubits, int reps)
    : Ansatz(num_qubits, reps)
{
}

int
EfficientSU2::numParams() const
{
    // reps+1 layers, each RY and RZ per qubit.
    return 2 * numQubits_ * (reps_ + 1);
}

Circuit
EfficientSU2::build() const
{
    Circuit c(numQubits_, numParams());
    int p = 0;
    for (int layer = 0; layer <= reps_; ++layer) {
        for (int q = 0; q < numQubits_; ++q)
            c.ryParam(q, p++);
        for (int q = 0; q < numQubits_; ++q)
            c.rzParam(q, p++);
        if (layer < reps_)
            appendLinearEntanglement(c);
    }
    return c;
}

} // namespace qismet
