/**
 * @file
 * EfficientSU2 ansatz (the paper's "SU2"), following Qiskit's
 * circuit-library semantics: reps+1 rotation layers of RY followed by
 * RZ on every qubit, with a linear CX entanglement layer between
 * consecutive rotation layers.
 */

#ifndef QISMET_ANSATZ_EFFICIENT_SU2_HPP
#define QISMET_ANSATZ_EFFICIENT_SU2_HPP

#include "ansatz/ansatz.hpp"

namespace qismet {

/** Hardware-efficient SU(2) ansatz: RY+RZ layers, linear CX. */
class EfficientSU2 : public Ansatz
{
  public:
    EfficientSU2(int num_qubits, int reps);

    std::string name() const override { return "SU2"; }
    int numParams() const override;
    Circuit build() const override;
};

} // namespace qismet

#endif // QISMET_ANSATZ_EFFICIENT_SU2_HPP
