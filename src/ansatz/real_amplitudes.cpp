#include "ansatz/real_amplitudes.hpp"

namespace qismet {

RealAmplitudes::RealAmplitudes(int num_qubits, int reps)
    : Ansatz(num_qubits, reps)
{
}

int
RealAmplitudes::numParams() const
{
    return numQubits_ * (reps_ + 1);
}

Circuit
RealAmplitudes::build() const
{
    Circuit c(numQubits_, numParams());
    int p = 0;
    for (int layer = 0; layer <= reps_; ++layer) {
        for (int q = 0; q < numQubits_; ++q)
            c.ryParam(q, p++);
        if (layer < reps_)
            appendLinearEntanglement(c);
    }
    return c;
}

} // namespace qismet
