/**
 * @file
 * RealAmplitudes ansatz (the paper's "RA"), following Qiskit's
 * circuit-library semantics: reps+1 rotation layers of RY on every
 * qubit with a linear CX entanglement layer between them. The prepared
 * states have real amplitudes only.
 */

#ifndef QISMET_ANSATZ_REAL_AMPLITUDES_HPP
#define QISMET_ANSATZ_REAL_AMPLITUDES_HPP

#include "ansatz/ansatz.hpp"

namespace qismet {

/** Real-amplitude ansatz: RY layers, linear CX. */
class RealAmplitudes : public Ansatz
{
  public:
    RealAmplitudes(int num_qubits, int reps);

    std::string name() const override { return "RA"; }
    int numParams() const override;
    Circuit build() const override;
};

} // namespace qismet

#endif // QISMET_ANSATZ_REAL_AMPLITUDES_HPP
