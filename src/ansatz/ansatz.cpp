#include "ansatz/ansatz.hpp"

#include <cmath>
#include <stdexcept>

namespace qismet {

Ansatz::Ansatz(int num_qubits, int reps)
    : numQubits_(num_qubits), reps_(reps)
{
    if (num_qubits < 2)
        throw std::invalid_argument("Ansatz: need at least 2 qubits");
    if (reps < 1)
        throw std::invalid_argument("Ansatz: reps must be >= 1");
}

std::vector<double>
Ansatz::randomInitialPoint(Rng &rng) const
{
    std::vector<double> theta(static_cast<std::size_t>(numParams()));
    for (auto &t : theta)
        t = rng.uniform(-M_PI, M_PI);
    return theta;
}

void
Ansatz::appendLinearEntanglement(Circuit &circuit)
{
    for (int q = 0; q + 1 < circuit.numQubits(); ++q)
        circuit.cx(q, q + 1);
}

} // namespace qismet
