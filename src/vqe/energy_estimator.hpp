/**
 * @file
 * Noisy VQE objective-function (energy) estimation.
 *
 * One estimator owns a Hamiltonian, an ansatz circuit and a machine's
 * static noise model, and produces the machine-style energy estimate
 * E_m(θ, τ) for a parameter vector θ under transient intensity τ.
 *
 * Noise composition (DESIGN.md §5.2):
 *   τ_eff  = τ · κ(θ),  κ(θ) = 2 · (mean excited-state population)
 *   f_eff  = clamp(f_static · (1 - τ_eff), 0, 1)
 *   <H>_noisy = f_eff · (<H>_ideal(θ) - <H>_mixed) + <H>_mixed
 * i.e. the static survival factor and the transient intensity both pull
 * the estimate toward the maximally mixed value, exactly the
 * "normalized to the magnitude of the VQA estimations" composition of
 * paper Section 6.2. Shot noise and SPAM are then layered on by the
 * sampling path (exact Pauli expectations → noisy distribution →
 * finite-shot counts → readout errors → optional tensored mitigation),
 * or approximated analytically by the fast path.
 *
 * The κ(θ) factor implements paper Section 3.2(c): transient T1/TLS
 * events damp *excited-state population*, so "a circuit that carries a
 * superposition of states with a high proportion of 0s is less
 * affected". κ is 1 at half excitation, below 1 for 0-heavy states.
 * This state dependence is what lets a transient *reorder* candidate
 * configurations (paper Fig. 6.b) instead of merely rescaling them: a
 * corrupted gradient systematically favors low-excitation states, and
 * that false attractor is exactly how the baseline tuner gets derailed.
 */

#ifndef QISMET_VQE_ENERGY_ESTIMATOR_HPP
#define QISMET_VQE_ENERGY_ESTIMATOR_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "ansatz/ansatz.hpp"
#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "mitigation/measurement_mitigation.hpp"
#include "noise/noise_model.hpp"
#include "pauli/expectation_plan.hpp"
#include "pauli/grouping.hpp"
#include "pauli/pauli_sum.hpp"
#include "sim/compiled_circuit.hpp"
#include "sim/statevector.hpp"

namespace qismet {

/** How the estimator turns exact expectations into machine estimates. */
enum class EstimatorMode
{
    /** Exact statevector expectation, no noise at all. */
    Ideal,
    /**
     * Noise composition + Gaussian shot noise (no explicit sampling).
     * Fast: used by the long 2000-iteration parameter sweeps.
     */
    Analytic,
    /**
     * Full pipeline: per measurement-group sampling with readout errors
     * and optional tensored measurement mitigation.
     */
    Sampling,
};

/** Estimator configuration. */
struct EstimatorConfig
{
    EstimatorMode mode = EstimatorMode::Analytic;
    /** Shots per measurement group. */
    std::size_t shots = 4096;
    /** Apply tensored measurement-error mitigation (Sampling mode). */
    bool mitigateMeasurement = true;
    /**
     * Compile the ansatz and basis-change circuits once in the
     * constructor and reuse across every iteration/thread (the
     * compile=off escape hatch alongside QISMET_NO_FUSION).
     */
    bool compileCircuits = true;
    /**
     * Optional cross-run ExpectationPlan cache. When set, the
     * constructor leases the compiled plan from here (keyed by
     * planCacheTenant + the simplified Hamiltonian's fingerprint)
     * instead of compiling its own; the serve layer points this at a
     * per-backend, lease-scoped cache. A plan is a pure function of
     * its sum, so neither field can change any result bit — both are
     * deliberately excluded from runConfigDigest (like
     * compileCircuits). Not owned; must outlive the estimator.
     */
    ExpectationPlanCache *planCache = nullptr;
    /** Tenant half of the plan-cache key (serve-layer isolation). */
    std::uint64_t planCacheTenant = 0;
};

/** Produces machine-style energy estimates for one VQE problem. */
class EnergyEstimator
{
  public:
    /**
     * @param hamiltonian Observable (width must match the ansatz).
     * @param ansatz_circuit Parameterized ansatz circuit.
     * @param noise Static machine noise (ignored in Ideal mode).
     * @param config Estimation mode and shot budget.
     */
    EnergyEstimator(PauliSum hamiltonian, Circuit ansatz_circuit,
                    std::optional<StaticNoiseModel> noise,
                    EstimatorConfig config);

    /** Exact noise-free <H>(θ). */
    double idealEnergy(const std::vector<double> &theta) const;

    /**
     * Machine-style estimate of <H>(θ) under transient intensity tau.
     * Each call models one execution of the iteration's circuits.
     *
     * @param shot_fraction Fraction of the configured shots actually
     *        retained, in (0, 1] — partial-result jobs deliver fewer
     *        shots, inflating the shot-noise variance accordingly
     *        (Analytic mode) or sampling fewer counts (Sampling mode).
     */
    double estimate(const std::vector<double> &theta, double tau,
                    Rng &rng, double shot_fraction = 1.0) const;

    /** Expectation in the maximally mixed state (identity coefficient). */
    double mixedEnergy() const { return mixedEnergy_; }

    /**
     * State-dependent transient sensitivity κ(θ) = 2 x̄ where x̄ is the
     * mean per-qubit excited-state population of the prepared state
     * (paper Section 3.2(c)).
     */
    static double transientSensitivity(const Statevector &state);

    /** Static survival factor of the ansatz circuit. */
    double staticSurvival() const { return staticSurvival_; }

    /** Number of measurement groups (circuits per energy evaluation). */
    std::size_t numGroups() const { return groups_.size(); }

    /**
     * The compiled expectation plan (leased from config.planCache when
     * set, else compiled privately). Exposed so tests can assert cache
     * identity: two estimators sharing a cache and a Hamiltonian hold
     * the same plan object.
     */
    std::shared_ptr<const ExpectationPlan> plan() const { return plan_; }

    const PauliSum &hamiltonian() const { return hamiltonian_; }
    const Circuit &ansatzCircuit() const { return ansatz_; }
    const EstimatorConfig &config() const { return config_; }

  private:
    double effectiveSurvival(double tau, double sensitivity) const;
    std::size_t effectiveShots(double shot_fraction) const;
    double estimateAnalytic(const std::vector<double> &theta, double tau,
                            Rng &rng, double shot_fraction) const;
    double estimateSampling(const std::vector<double> &theta, double tau,
                            Rng &rng, double shot_fraction) const;
    /** Prepare |ψ(θ)> through the compiled ansatz when available. */
    void prepareState(Statevector &state,
                      const std::vector<double> &theta) const;

    PauliSum hamiltonian_;
    Circuit ansatz_;
    std::optional<StaticNoiseModel> noise_;
    EstimatorConfig config_;

    /**
     * Compiled once per (tenant, Hamiltonian) — every estimate() reuses
     * the xmask grouping, phase tables and sampling layout instead of
     * re-deriving them per iteration. The term-by-term fallback stays
     * reachable at call time via batchedExpectationEnabled().
     */
    std::shared_ptr<const ExpectationPlan> plan_;
    std::vector<MeasurementGroup> groups_;
    std::vector<Circuit> basisChanges_;
    /**
     * Circuits compiled once at construction; every estimate() reuses
     * them instead of re-deriving gate matrices. The basis-change
     * circuits are parameter-free, so concurrent group threads may run
     * the same compiled instance safely.
     */
    std::optional<CompiledCircuit> compiledAnsatz_;
    std::vector<CompiledCircuit> compiledBasisChanges_;
    std::optional<ShotSampler> sampler_;
    std::optional<MeasurementMitigator> mitigator_;
    double mixedEnergy_ = 0.0;
    double staticSurvival_ = 1.0;
};

} // namespace qismet

#endif // QISMET_VQE_ENERGY_ESTIMATOR_HPP
