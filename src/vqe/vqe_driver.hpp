/**
 * @file
 * The VQE tuning loop with pluggable acceptance policies.
 *
 * Job structure follows the paper exactly (Fig. 7, Section 8.3): each
 * quantum job carries ONE objective-function evaluation — plus, when
 * the policy asks for it, a rerun of the previously evaluated circuits
 * (QISMET's reference, making the overhead exactly 2x) — so consecutive
 * evaluations experience different transient instances. The classical
 * tuner therefore forms its gradients *across jobs*, and an inter-job
 * transient can flip a perceived gradient: that is the failure mode the
 * paper's Fig. 6 illustrates and the QISMET controller gates.
 *
 * Policies hook in at two levels:
 *  - per evaluation (judgeEvaluation): accept the measurement or retry
 *    the same circuits in a fresh job (QISMET, only-transients);
 *  - per optimizer move (acceptMove): keep or reject the parameter
 *    update given the iteration energies (blocking).
 * Every retry consumes a job from the same total budget, so all schemes
 * compare at equal machine time.
 *
 * Resilience: jobs can fail outright (timeout / backend error, via the
 * executor's FaultInjector). The driver retries failed jobs under a
 * RetryPolicy — bounded exponential backoff in simulated time, against
 * the same per-evaluation retry budget the acceptance policy consumes —
 * and degrades gracefully once the budget is spent: the previous
 * accepted energy is carried forward and the evaluation marked skipped,
 * so a burst of fleet failures dents progress instead of ending it.
 */

#ifndef QISMET_VQE_VQE_DRIVER_HPP
#define QISMET_VQE_VQE_DRIVER_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/serial.hpp"
#include "fault/fault_policy.hpp"
#include "optim/spsa.hpp"
#include "vqe/job.hpp"

namespace qismet {

class CheckpointManager;

/** What a policy sees when judging one evaluation job. */
struct EvalContext
{
    /** Global evaluation index. */
    int evalIndex = 0;
    /** How many times this evaluation has been retried already. */
    int retryIndex = 0;
    /** Accepted energy of the previous evaluation, E_m(i). */
    double ePrev = 0.0;
    /** This job's primary energy, E_m(i+1). */
    double eCurr = 0.0;
    /** True when the job carried reference-rerun circuits. */
    bool hasReference = false;
    /** Rerun energy of the previous evaluation's circuits, E_mR(i). */
    double eReferenceRerun = 0.0;
    /**
     * True when the job was supposed to carry a reference rerun but the
     * fleet dropped it (FaultKind::ReferenceLoss): hasReference is then
     * false and policies must degrade gracefully — QISMET falls back to
     * judging the machine estimate against a widened threshold band.
     */
    bool referenceLost = false;
    /** Retained shot fraction of this job (< 1 for partial results). */
    double shotFraction = 1.0;

    /** Machine gradient G_m(i+1) = E_m(i+1) - E_m(i). */
    double machineGradient() const { return eCurr - ePrev; }
    /** Transient estimate T_m(i+1) = E_mR(i) - E_m(i). */
    double transientEstimate() const { return eReferenceRerun - ePrev; }
    /** Predicted transient-free gradient G_p(i+1) = G_m - T_m. */
    double predictedGradient() const
    {
        return machineGradient() - transientEstimate();
    }
};

/** Policy verdict on one evaluation job. */
enum class Decision
{
    Accept, ///< Use this measurement.
    Retry,  ///< Re-execute the same circuits in a new job.
};

/** Acceptance policy (QISMET, blocking, Kalman, ...). */
class TuningPolicy
{
  public:
    virtual ~TuningPolicy() = default;

    /** Scheme name as used in the paper's figures. */
    virtual std::string name() const = 0;

    /** True when jobs must include the previous evaluation's circuits. */
    virtual bool wantsReferenceRerun() const { return false; }

    /** Judge one evaluation job. */
    virtual Decision judgeEvaluation(const EvalContext &)
    {
        return Decision::Accept;
    }

    /**
     * Judge one optimizer move given the previous and new iteration
     * energies (mean of the iteration's evaluations). Returning false
     * keeps the previous parameters (blocking).
     */
    virtual bool acceptMove(double e_iter_prev, double e_iter_new)
    {
        (void)e_iter_prev;
        (void)e_iter_new;
        return true;
    }

    /**
     * Energy value handed to the classical optimizer for an accepted
     * evaluation. The default is the raw measurement. QISMET returns
     * its transient-free prediction E_p (paper Fig. 8): consecutive
     * differences of those predictions telescope to
     * E_m(i+1) - E_mR(i), a *within-job* difference in which the
     * job-level transient cancels against the reference rerun — this is
     * how QISMET keeps the tuner's gradients faithful to the
     * transient-free scenario.
     */
    virtual double energyForOptimizer(const EvalContext &ctx)
    {
        return ctx.eCurr;
    }

    /**
     * Transform an iteration energy into the reported estimate
     * (identity except for output filters such as Kalman).
     */
    virtual double transformEnergy(double e_measured)
    {
        return e_measured;
    }

    /** Reset all internal state before a fresh run. */
    virtual void reset() {}

    /**
     * Serialize mutable calibration state (thresholds, estimator
     * history, filter posteriors) for crash-safe checkpointing.
     * Construction-time configuration is not included — a resumed run
     * rebuilds the policy from its config and restores only this.
     */
    virtual void saveState(Encoder &enc) const { (void)enc; }

    /** Restore state produced by saveState on an identical config. */
    virtual void loadState(Decoder &dec) { (void)dec; }
};

/** Baseline policy: accept everything, report raw measurements. */
class AlwaysAcceptPolicy : public TuningPolicy
{
  public:
    std::string name() const override { return "Baseline"; }
};

/**
 * Blocking (Qiskit SPSA option): "only accepts VQA updates that move
 * towards the objective" — a parameter move is rejected when the new
 * iteration energy exceeds the previous one by more than the tolerance.
 */
class BlockingPolicy : public TuningPolicy
{
  public:
    explicit BlockingPolicy(double tolerance);

    std::string name() const override { return "Blocking"; }
    bool acceptMove(double e_iter_prev, double e_iter_new) override;

  private:
    double tolerance_;
};

/** Per-job record of a run. */
struct VqeJobRecord
{
    std::size_t jobIndex = 0;
    int evalIndex = 0;
    int retryIndex = 0;
    double transientIntensity = 0.0;
    /** Primary energy measured in this job (0 when the job failed). */
    double eMeasured = 0.0;
    bool accepted = false;
    /** How the job ended (faults show up here). */
    JobStatus status = JobStatus::Completed;
    /**
     * True when this failed job exhausted the retry budget and the
     * driver carried the previous accepted energy forward instead
     * (graceful degradation — the evaluation was skipped).
     */
    bool carriedForward = false;
};

/** Full result of a VQE run. */
struct VqeRunResult
{
    /** One record per executed job (retries included). */
    std::vector<VqeJobRecord> history;
    /** Reported energy per optimizer iteration (policy-transformed). */
    std::vector<double> iterationEnergies;
    std::vector<double> finalTheta;
    /** Mean reported energy over the final window of iterations. */
    double finalEstimate = 0.0;
    /** Exact noise-free <H> at finalTheta (true solution quality). */
    double finalIdealEnergy = 0.0;
    std::size_t jobsUsed = 0;
    std::size_t circuitsUsed = 0;
    /** Jobs spent on retries (QISMET skips and fault retries). */
    std::size_t retriesUsed = 0;
    /** Optimizer moves rejected (blocking). */
    std::size_t rejections = 0;
    /** Jobs that suffered any injected fault. */
    std::size_t faultsSeen = 0;
    /** Retries forced by failed (timed-out / errored) jobs. */
    std::size_t faultRetries = 0;
    /**
     * Evaluations skipped after fault-retry exhaustion, with the
     * previous accepted energy carried forward.
     */
    std::size_t evalsCarriedForward = 0;
    /** Simulated wall time: job slots plus fault-retry backoff. */
    double simTimeSeconds = 0.0;
    /** Simulated time spent waiting in fault-retry backoff alone. */
    double backoffSeconds = 0.0;
    /**
     * The run stopped at its deadline budget (deadlineSimSeconds)
     * instead of exhausting its job budget. The truncation happens at
     * an optimizer-iteration boundary, so the partial trajectory is
     * still a pure function of the configuration.
     */
    bool deadlineExpired = false;

    /** Measured primary-energy series over every job. */
    std::vector<double> perJobEnergySeries() const;
    /** Measured series over accepted evaluations only. */
    std::vector<double> acceptedEnergySeries() const;
};

/** Driver configuration. */
struct VqeDriverConfig
{
    /** Total job budget (each retry consumes one job). */
    std::size_t totalJobs = 500;
    /** Seed for the optimizer's perturbations. */
    std::uint64_t seed = 7;
    /** Window (iterations) for the final-estimate average. */
    std::size_t finalWindow = 10;
    /**
     * Recovery behavior for failed jobs. `retry.maxRetries` is the
     * shared per-evaluation budget: policy reject-retries and fault
     * retries both advance the same counter, and once it is spent a
     * failed job degrades to carrying the previous estimate forward.
     */
    RetryPolicy retry;
    /** Simulated duration of one job slot (for simTimeSeconds). */
    double jobDurationSeconds = 1.0;
    /**
     * Deadline budget over the run's simulated seconds (job slots plus
     * fault-retry backoff); 0 = none. Checked at optimizer-iteration
     * boundaries: the first boundary at or past the budget ends the
     * run cleanly with `deadlineExpired` set and the final estimate
     * computed from the iterations already accepted. Because
     * simTimeSeconds is itself deterministic, so is the truncation
     * point — independent of wall time, worker count or resume
     * lineage.
     */
    double deadlineSimSeconds = 0.0;
    /**
     * Optional durability (not owned; may be null). When set, every
     * executed job and completed iteration is journaled write-ahead,
     * snapshots are taken at iteration boundaries, and run() first
     * attempts recovery — restoring driver, policy, optimizer, RNG and
     * executor state so the resumed run continues bit-identically.
     */
    CheckpointManager *checkpoint = nullptr;
    /**
     * Per-run crash injection: when > 0, throw SimulatedCrash at the
     * boundary of this optimizer iteration, after any due snapshot has
     * been written. Unlike the process-global CrashPoints registry
     * (which can arm only one point at a time), this is run-local
     * state, so hundreds of concurrently multiplexed runs can each
     * carry their own crash plan. Requires `checkpoint` so the crash
     * is recoverable; a resumed run continues bit-identically.
     */
    std::size_t crashAfterIters = 0;
};

/** Runs one VQE tuning experiment. */
class VqeDriver
{
  public:
    /**
     * @param estimator Energy estimator for the problem.
     * @param executor Job executor carrying the transient trace.
     * @param optimizer Classical tuner (SPSA family).
     * @param policy Acceptance policy; the baseline uses
     *        AlwaysAcceptPolicy.
     */
    VqeDriver(const EnergyEstimator &estimator, JobExecutor &executor,
              StochasticOptimizer &optimizer, TuningPolicy &policy,
              VqeDriverConfig config);

    /** Run from the given starting parameters. */
    VqeRunResult run(const std::vector<double> &initial_theta);

  private:
    const EnergyEstimator &estimator_;
    JobExecutor &executor_;
    StochasticOptimizer &optimizer_;
    TuningPolicy &policy_;
    VqeDriverConfig config_;
};

} // namespace qismet

#endif // QISMET_VQE_VQE_DRIVER_HPP
