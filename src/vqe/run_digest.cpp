#include "vqe/run_digest.hpp"

#include <cstdint>
#include <cstdio>
#include <cstring>

#include "vqe/job.hpp"

namespace qismet {

std::string
bitsHex(double value)
{
    std::uint64_t u = 0;
    std::memcpy(&u, &value, sizeof(u));
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(u));
    return std::string(buf);
}

std::string
trajectoryCsv(const VqeRunResult &run)
{
    std::string csv =
        "job,eval,retry,status,accepted,carried,e_measured,tau\n";
    for (const VqeJobRecord &rec : run.history) {
        csv += std::to_string(rec.jobIndex) + ',' +
               std::to_string(rec.evalIndex) + ',' +
               std::to_string(rec.retryIndex) + ',' +
               jobStatusName(rec.status) + ',' +
               (rec.accepted ? '1' : '0') + ',' +
               (rec.carriedForward ? '1' : '0') + ',' +
               bitsHex(rec.eMeasured) + ',' +
               bitsHex(rec.transientIntensity) + '\n';
    }
    csv += "iteration,e_reported\n";
    for (std::size_t i = 0; i < run.iterationEnergies.size(); ++i)
        csv += std::to_string(i) + ',' +
               bitsHex(run.iterationEnergies[i]) + '\n';
    csv += "final," + bitsHex(run.finalEstimate) + '\n';
    return csv;
}

std::string
trajectoryDigest(const VqeRunResult &run)
{
    const std::string csv = trajectoryCsv(run);
    std::uint64_t hash = 0xCBF29CE484222325ull;
    for (const char c : csv) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001B3ull;
    }
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(hash));
    return std::string(buf);
}

} // namespace qismet
