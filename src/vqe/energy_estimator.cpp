#include "vqe/energy_estimator.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/thread_pool.hpp"
#include "pauli/expectation.hpp"
#include "sim/statevector.hpp"

namespace qismet {

EnergyEstimator::EnergyEstimator(PauliSum hamiltonian,
                                 Circuit ansatz_circuit,
                                 std::optional<StaticNoiseModel> noise,
                                 EstimatorConfig config)
    : hamiltonian_(std::move(hamiltonian)), ansatz_(std::move(ansatz_circuit)),
      noise_(std::move(noise)), config_(config)
{
    if (hamiltonian_.numQubits() != ansatz_.numQubits())
        throw std::invalid_argument("EnergyEstimator: width mismatch");
    if (config_.shots == 0)
        throw std::invalid_argument("EnergyEstimator: zero shots");
    if (config_.mode != EstimatorMode::Ideal && !noise_)
        throw std::invalid_argument(
            "EnergyEstimator: noisy mode requires a noise model");

    hamiltonian_.simplify();
    mixedEnergy_ = hamiltonian_.identityCoefficient();

    // Lease the compiled plan from the caller's cross-run cache when
    // one is wired in (the serve layer scopes one cache per backend
    // lease), else compile privately. Either way the grouping, phase
    // tables and sampling layout are derived once, not per iteration.
    plan_ = config_.planCache
                ? config_.planCache->acquire(hamiltonian_,
                                             config_.planCacheTenant)
                : compileExpectationPlan(hamiltonian_);
    groups_ = plan_->measurementGroups();
    basisChanges_.reserve(groups_.size());
    for (const auto &g : groups_)
        basisChanges_.push_back(
            basisChangeCircuit(g, hamiltonian_.numQubits()));

    // Compile the per-iteration circuits once; thousands of estimate()
    // calls then skip both per-gate matrix derivation and the fusion
    // pass itself.
    if (config_.compileCircuits) {
        compiledAnsatz_.emplace(ansatz_);
        compiledBasisChanges_.reserve(basisChanges_.size());
        for (const auto &bc : basisChanges_)
            compiledBasisChanges_.emplace_back(bc);
    }

    if (noise_) {
        staticSurvival_ = noise_->survivalFactor(ansatz_);
        sampler_.emplace(noise_->readoutErrors(ansatz_.numQubits()));
        if (config_.mitigateMeasurement) {
            mitigator_.emplace(ansatz_.numQubits(),
                               noise_->readoutErrors(ansatz_.numQubits()));
        }
    }
}

void
EnergyEstimator::prepareState(Statevector &state,
                              const std::vector<double> &theta) const
{
    // fusionEnabled() is consulted at call time so the QISMET_NO_FUSION
    // escape hatch also bypasses circuits compiled at construction.
    if (compiledAnsatz_ && fusionEnabled())
        state.run(*compiledAnsatz_, theta);
    else
        state.run(ansatz_, theta);
}

double
EnergyEstimator::idealEnergy(const std::vector<double> &theta) const
{
    Statevector state(ansatz_.numQubits());
    prepareState(state, theta);
    // Like fusionEnabled() in prepareState, the batched switch is
    // consulted per call so the QISMET_NO_BATCHED_EXPECT escape hatch
    // also bypasses plans compiled at construction.
    if (batchedExpectationEnabled())
        return plan_->evaluate(state);
    return expectation(state, hamiltonian_);
}

double
EnergyEstimator::transientSensitivity(const Statevector &state)
{
    // Mean per-qubit excited-state population, scaled so that a
    // half-excited register has sensitivity 1 (paper Section 3.2(c):
    // 0-heavy states are less affected by T1-style transients).
    const int n = state.numQubits();
    const auto &amps = state.amplitudes();
    double excited = 0.0;
    for (std::size_t i = 0; i < amps.size(); ++i) {
        const double p = std::norm(amps[i]);
        if (p == 0.0)
            continue;
        excited += p * static_cast<double>(std::popcount(i));
    }
    return 2.0 * excited / static_cast<double>(n);
}

double
EnergyEstimator::effectiveSurvival(double tau, double sensitivity) const
{
    return std::clamp(staticSurvival_ * (1.0 - tau * sensitivity), 0.0,
                      1.0);
}

std::size_t
EnergyEstimator::effectiveShots(double shot_fraction) const
{
    const double scaled =
        std::round(shot_fraction * static_cast<double>(config_.shots));
    return std::max<std::size_t>(1, static_cast<std::size_t>(scaled));
}

double
EnergyEstimator::estimate(const std::vector<double> &theta, double tau,
                          Rng &rng, double shot_fraction) const
{
    if (!(shot_fraction > 0.0 && shot_fraction <= 1.0))
        throw std::invalid_argument(
            "EnergyEstimator: shot fraction must lie in (0, 1]");
    switch (config_.mode) {
      case EstimatorMode::Ideal:
        return idealEnergy(theta);
      case EstimatorMode::Analytic:
        return estimateAnalytic(theta, tau, rng, shot_fraction);
      case EstimatorMode::Sampling:
        return estimateSampling(theta, tau, rng, shot_fraction);
    }
    throw std::logic_error("EnergyEstimator::estimate: bad mode");
}

double
EnergyEstimator::estimateAnalytic(const std::vector<double> &theta,
                                  double tau, Rng &rng,
                                  double shot_fraction) const
{
    Statevector state(ansatz_.numQubits());
    prepareState(state, theta);

    const double f = effectiveSurvival(tau, transientSensitivity(state));

    // Damped expectation plus a Gaussian shot-noise term whose variance
    // matches the per-term sampling variance Σ_k c_k² (1 - <P_k>²)/shots
    // (terms measured in the same group share shots; covariances between
    // terms are neglected, which tests show is adequate for our
    // Hamiltonians).
    //
    // The per-term ideal expectations are pure reads of `state`, so they
    // fan out over the executor; the reduction below stays serial in
    // term order, keeping the sum bit-identical for every thread count.
    const auto &terms = hamiltonian_.terms();
    std::vector<double> p_ideal(terms.size(), 0.0);
    if (batchedExpectationEnabled()) {
        // One sweep per xmask group instead of one per term. Identity
        // entries come back as the state's norm² rather than the 0.0
        // the fallback leaves, but the fold below skips identity terms
        // so every consumed value is bit-identical either way.
        plan_->termExpectations(state, p_ideal.data());
    } else {
        ParallelExecutor::global().parallelFor(
            terms.size(), [&](std::size_t k) {
                if (!terms[k].pauli.isIdentity())
                    p_ideal[k] = expectation(state, terms[k].pauli);
            });
    }

    // Partial-result jobs deliver fewer shots; the shot-noise variance
    // scales inversely with the retained count.
    const double shots_eff =
        static_cast<double>(effectiveShots(shot_fraction));
    double e = mixedEnergy_;
    double var = 0.0;
    for (std::size_t k = 0; k < terms.size(); ++k) {
        const auto &t = terms[k];
        if (t.pauli.isIdentity())
            continue;
        const double p_noisy = f * p_ideal[k];
        e += t.coefficient * p_noisy;
        var += t.coefficient * t.coefficient * (1.0 - p_noisy * p_noisy) /
               shots_eff;
    }
    return e + rng.normal(0.0, std::sqrt(var));
}

double
EnergyEstimator::estimateSampling(const std::vector<double> &theta,
                                  double tau, Rng &rng,
                                  double shot_fraction) const
{
    const std::size_t shots_eff = effectiveShots(shot_fraction);
    const int n = ansatz_.numQubits();
    const std::size_t dim = std::size_t{1} << n;
    const double uniform = 1.0 / static_cast<double>(dim);

    Statevector prepared(n);
    prepareState(prepared, theta);
    const double f =
        effectiveSurvival(tau, transientSensitivity(prepared));

    // Measurement groups are independent circuits of the same job, so
    // they fan out in parallel. Each group gets its own RNG sub-stream,
    // split from the caller's stream in group order *before* dispatch,
    // and the group energies are folded serially in group order — both
    // are required for thread-count-invariant results.
    std::vector<Rng> groupRngs;
    groupRngs.reserve(groups_.size());
    for (std::size_t gi = 0; gi < groups_.size(); ++gi)
        groupRngs.push_back(rng.split());

    std::vector<double> groupEnergies(groups_.size(), 0.0);
    ParallelExecutor::global().parallelFor(
        groups_.size(), [&](std::size_t gi) {
            // Rotate into the group's measurement basis.
            Statevector state = prepared;
            if (!compiledBasisChanges_.empty() && fusionEnabled())
                state.run(compiledBasisChanges_[gi]);
            else
                state.run(basisChanges_[gi]);

            // Depolarize the outcome distribution by the survival
            // factor, then sample through the readout channel.
            std::vector<double> probs = state.probabilities();
            for (auto &p : probs)
                p = f * p + (1.0 - f) * uniform;

            const Counts counts =
                sampler_->sample(probs, n, shots_eff, groupRngs[gi]);

            std::vector<double> est_probs;
            if (mitigator_) {
                est_probs = MeasurementMitigator::clipToPhysical(
                    mitigator_->mitigateCounts(counts));
            } else {
                est_probs = countsToProbabilities(counts, n);
            }

            // Every term in the group is diagonal after the basis
            // change: its value is the average parity over its support.
            // The batched path reads the plan's pre-flattened
            // support-mask / coefficient tables; the fallback re-reads
            // them through the term list. Same values, same order —
            // the arithmetic is identical bit for bit.
            double e_group = 0.0;
            if (batchedExpectationEnabled()) {
                const auto &masks = plan_->samplingMasks(gi);
                const auto &coeffs = plan_->samplingCoefficients(gi);
                for (std::size_t k = 0; k < masks.size(); ++k) {
                    double parity_avg = 0.0;
                    for (std::size_t b = 0; b < dim; ++b) {
                        const int parity = std::popcount(b & masks[k]) & 1;
                        parity_avg +=
                            (parity ? -1.0 : 1.0) * est_probs[b];
                    }
                    e_group += coeffs[k] * parity_avg;
                }
            } else {
                for (std::size_t ti : groups_[gi].termIndices) {
                    const auto &term = hamiltonian_.terms()[ti];
                    const std::uint64_t mask = term.pauli.supportMask();
                    double parity_avg = 0.0;
                    for (std::size_t b = 0; b < dim; ++b) {
                        const int parity = std::popcount(b & mask) & 1;
                        parity_avg +=
                            (parity ? -1.0 : 1.0) * est_probs[b];
                    }
                    e_group += term.coefficient * parity_avg;
                }
            }
            groupEnergies[gi] = e_group;
        });

    double e = mixedEnergy_;
    for (double e_group : groupEnergies)
        e += e_group;
    return e;
}

} // namespace qismet
