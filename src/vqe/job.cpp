#include "vqe/job.hpp"

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_pool.hpp"
#include "fault/fault_injector.hpp"

namespace qismet {

std::string
jobStatusName(JobStatus status)
{
    switch (status) {
      case JobStatus::Completed: return "completed";
      case JobStatus::TimedOut: return "timed-out";
      case JobStatus::Failed: return "failed";
      case JobStatus::PartialResult: return "partial";
      case JobStatus::ReferenceLost: return "reference-lost";
    }
    return "?";
}

JobExecutor::JobExecutor(const EnergyEstimator &estimator,
                         TransientTrace trace, std::uint64_t seed,
                         double intra_job_jitter, double relative_jitter,
                         int mitigation_circuits)
    : estimator_(estimator), trace_(std::move(trace)), rng_(seed),
      intraJobJitter_(intra_job_jitter), relativeJitter_(relative_jitter),
      mitigationCircuits_(mitigation_circuits)
{
    if (intra_job_jitter < 0.0 || relative_jitter < 0.0)
        throw std::invalid_argument("JobExecutor: negative jitter");
    if (mitigation_circuits < 0)
        throw std::invalid_argument("JobExecutor: negative mitigation count");
}

double
JobExecutor::peekNextIntensity() const
{
    return trace_.at(jobCount_);
}

JobResult
JobExecutor::execute(const JobRequest &request)
{
    if (request.evaluations.empty())
        throw std::invalid_argument("JobExecutor: empty job");

    JobResult result;
    result.jobIndex = jobCount_;
    result.transientIntensity = trace_.at(jobCount_);

    // Fault injection first: a timed-out or errored job never runs its
    // circuits, but it did occupy the machine slot — the job index
    // advances and the circuit volume is charged, exactly like a real
    // fleet bills a failed submission. The fault draw lives in the
    // injector's own counter-based stream, so the executor's RNG and
    // every later job's randomness are untouched.
    FaultEvent fault;
    if (faultInjector_ != nullptr)
        fault = faultInjector_->eventFor(jobCount_,
                                         result.transientIntensity);
    const std::size_t job_circuits =
        request.evaluations.size() * estimator_.numGroups() +
        static_cast<std::size_t>(mitigationCircuits_);
    if (fault.kind == FaultKind::JobTimeout ||
        fault.kind == FaultKind::JobError) {
        result.status = fault.kind == FaultKind::JobTimeout
                            ? JobStatus::TimedOut
                            : JobStatus::Failed;
        circuitCount_ += job_circuits;
        ++jobCount_;
        return result;
    }
    if (fault.kind == FaultKind::PartialResult) {
        result.status = JobStatus::PartialResult;
        result.shotFraction = fault.shotFraction;
    }

    // Counter-based per-job stream: a job's randomness depends only on
    // (seed, job index), never on how many circuits earlier jobs
    // carried or on which thread runs what.
    Rng jobRng = rng_.splitAt(jobCount_);

    // Every circuit in the job sees the job's transient instance plus a
    // little intra-job drift. The jitter draws and the per-circuit
    // sub-streams are taken serially in evaluation order; only the
    // (independent) circuit executions fan out.
    const std::size_t n_evals = request.evaluations.size();
    std::vector<double> taus(n_evals);
    for (auto &tau : taus)
        tau = result.transientIntensity +
              jobRng.normal(0.0,
                            intraJobJitter_ +
                                relativeJitter_ *
                                    std::abs(result.transientIntensity));
    std::vector<Rng> evalRngs;
    evalRngs.reserve(n_evals);
    for (std::size_t i = 0; i < n_evals; ++i)
        evalRngs.push_back(jobRng.split());

    result.energies.assign(n_evals, 0.0);
    ParallelExecutor::global().parallelFor(n_evals, [&](std::size_t i) {
        result.energies[i] =
            estimator_.estimate(request.evaluations[i], taus[i],
                                evalRngs[i], result.shotFraction);
    });

    // Reference loss: the machine ran the whole batch, but the results
    // of everything past the primary evaluation were dropped on the way
    // back. Running first and truncating after keeps the primary energy
    // bit-identical to the fault-free value.
    if (fault.kind == FaultKind::ReferenceLoss && n_evals > 1) {
        result.status = JobStatus::ReferenceLost;
        result.energies.resize(1);
    }

    // Overhead accounting: each evaluation costs numGroups() circuits,
    // plus any standing mitigation circuits.
    circuitCount_ += job_circuits;
    ++jobCount_;
    return result;
}

} // namespace qismet
