#include "vqe/job.hpp"

#include <cmath>
#include <stdexcept>

namespace qismet {

JobExecutor::JobExecutor(const EnergyEstimator &estimator,
                         TransientTrace trace, std::uint64_t seed,
                         double intra_job_jitter, double relative_jitter,
                         int mitigation_circuits)
    : estimator_(estimator), trace_(std::move(trace)), rng_(seed),
      intraJobJitter_(intra_job_jitter), relativeJitter_(relative_jitter),
      mitigationCircuits_(mitigation_circuits)
{
    if (intra_job_jitter < 0.0 || relative_jitter < 0.0)
        throw std::invalid_argument("JobExecutor: negative jitter");
    if (mitigation_circuits < 0)
        throw std::invalid_argument("JobExecutor: negative mitigation count");
}

double
JobExecutor::peekNextIntensity() const
{
    return trace_.at(jobCount_);
}

JobResult
JobExecutor::execute(const JobRequest &request)
{
    if (request.evaluations.empty())
        throw std::invalid_argument("JobExecutor: empty job");

    JobResult result;
    result.jobIndex = jobCount_;
    result.transientIntensity = trace_.at(jobCount_);

    result.energies.reserve(request.evaluations.size());
    for (const auto &theta : request.evaluations) {
        // Every circuit in the job sees the job's transient instance
        // plus a little intra-job drift.
        const double tau = result.transientIntensity +
            rng_.normal(0.0,
                        intraJobJitter_ +
                            relativeJitter_ *
                                std::abs(result.transientIntensity));
        result.energies.push_back(estimator_.estimate(theta, tau, rng_));
    }

    // Overhead accounting: each evaluation costs numGroups() circuits,
    // plus any standing mitigation circuits.
    circuitCount_ += request.evaluations.size() * estimator_.numGroups() +
                     static_cast<std::size_t>(mitigationCircuits_);
    ++jobCount_;
    return result;
}

} // namespace qismet
