#include "vqe/job.hpp"

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/thread_pool.hpp"

namespace qismet {

JobExecutor::JobExecutor(const EnergyEstimator &estimator,
                         TransientTrace trace, std::uint64_t seed,
                         double intra_job_jitter, double relative_jitter,
                         int mitigation_circuits)
    : estimator_(estimator), trace_(std::move(trace)), rng_(seed),
      intraJobJitter_(intra_job_jitter), relativeJitter_(relative_jitter),
      mitigationCircuits_(mitigation_circuits)
{
    if (intra_job_jitter < 0.0 || relative_jitter < 0.0)
        throw std::invalid_argument("JobExecutor: negative jitter");
    if (mitigation_circuits < 0)
        throw std::invalid_argument("JobExecutor: negative mitigation count");
}

double
JobExecutor::peekNextIntensity() const
{
    return trace_.at(jobCount_);
}

JobResult
JobExecutor::execute(const JobRequest &request)
{
    if (request.evaluations.empty())
        throw std::invalid_argument("JobExecutor: empty job");

    JobResult result;
    result.jobIndex = jobCount_;
    result.transientIntensity = trace_.at(jobCount_);

    // Counter-based per-job stream: a job's randomness depends only on
    // (seed, job index), never on how many circuits earlier jobs
    // carried or on which thread runs what.
    Rng jobRng = rng_.splitAt(jobCount_);

    // Every circuit in the job sees the job's transient instance plus a
    // little intra-job drift. The jitter draws and the per-circuit
    // sub-streams are taken serially in evaluation order; only the
    // (independent) circuit executions fan out.
    const std::size_t n_evals = request.evaluations.size();
    std::vector<double> taus(n_evals);
    for (auto &tau : taus)
        tau = result.transientIntensity +
              jobRng.normal(0.0,
                            intraJobJitter_ +
                                relativeJitter_ *
                                    std::abs(result.transientIntensity));
    std::vector<Rng> evalRngs;
    evalRngs.reserve(n_evals);
    for (std::size_t i = 0; i < n_evals; ++i)
        evalRngs.push_back(jobRng.split());

    result.energies.assign(n_evals, 0.0);
    ParallelExecutor::global().parallelFor(n_evals, [&](std::size_t i) {
        result.energies[i] = estimator_.estimate(request.evaluations[i],
                                                 taus[i], evalRngs[i]);
    });

    // Overhead accounting: each evaluation costs numGroups() circuits,
    // plus any standing mitigation circuits.
    circuitCount_ += request.evaluations.size() * estimator_.numGroups() +
                     static_cast<std::size_t>(mitigationCircuits_);
    ++jobCount_;
    return result;
}

} // namespace qismet
