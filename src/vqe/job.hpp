/**
 * @file
 * The quantum-job model (paper Fig. 7).
 *
 * A Job is the unit of machine execution: a batch of circuits submitted
 * together. QISMET's transient estimation relies on one invariant that
 * this module owns: every circuit in a job experiences (approximately)
 * the same transient-noise instance. The JobExecutor binds one trace
 * intensity τ(job) to the whole batch, adding small per-circuit jitter
 * to model the residual intra-job fluctuation that QISMET's error
 * threshold must tolerate.
 *
 * Jobs can also *fail*: an optional FaultInjector (src/fault) models
 * queue timeouts, backend errors, shot-truncated partial results and
 * dropped reference circuits. Fault decisions are counter-based per job
 * index, so enabling them never perturbs the randomness of the circuits
 * that do run, and schedules are bit-identical at every thread count.
 */

#ifndef QISMET_VQE_JOB_HPP
#define QISMET_VQE_JOB_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include <string>

#include "common/rng.hpp"
#include "noise/transient_trace.hpp"
#include "vqe/energy_estimator.hpp"

namespace qismet {

class FaultInjector;

/** One circuit-batch execution request. */
struct JobRequest
{
    /** Parameter vectors whose energies the job must estimate. */
    std::vector<std::vector<double>> evaluations;
};

/** Terminal state of one job. */
enum class JobStatus
{
    Completed,     ///< All circuits ran; results are complete.
    TimedOut,      ///< Queue timeout; no results, the slot is consumed.
    Failed,        ///< Backend error; no results, the slot is consumed.
    PartialResult, ///< Results present but shot-truncated (noisier).
    ReferenceLost, ///< Primary result present; reference reruns dropped.
};

/** Display name of a job status. */
std::string jobStatusName(JobStatus status);

/** Results of a job: one energy per requested evaluation. */
struct JobResult
{
    /**
     * Energies per requested evaluation. Empty when the job failed;
     * truncated to the primary evaluation when the reference was lost.
     */
    std::vector<double> energies;
    /** Transient intensity the job experienced (for analysis only). */
    double transientIntensity = 0.0;
    /** Index of the job in the executor's sequence. */
    std::size_t jobIndex = 0;
    /** How the job ended. */
    JobStatus status = JobStatus::Completed;
    /** Retained shot fraction (< 1 for PartialResult jobs). */
    double shotFraction = 1.0;

    /** True when the job produced no usable results at all. */
    bool failed() const
    {
        return status == JobStatus::TimedOut ||
               status == JobStatus::Failed;
    }
};

/** Executes jobs against an estimator under a transient trace. */
class JobExecutor
{
  public:
    /**
     * @param estimator Energy estimator (shared; not owned).
     * @param trace Per-job transient intensities.
     * @param seed Randomness for shot noise and intra-job jitter.
     * @param intra_job_jitter Stddev of the absolute per-circuit jitter
     *        added to τ(job).
     * @param relative_jitter Per-circuit jitter proportional to
     *        |τ(job)|. The paper's core premise (Section 4.1) is that
     *        the noise landscape shifts *across the candidates of one
     *        gradient-estimation step*; during a burst each circuit in
     *        the job therefore sees a substantially different transient
     *        draw, which is what corrupts gradients and derails the
     *        baseline tuner.
     * @param mitigation_circuits Extra circuits charged to every job for
     *        overhead accounting (e.g. measurement calibration).
     */
    JobExecutor(const EnergyEstimator &estimator, TransientTrace trace,
                std::uint64_t seed, double intra_job_jitter = 0.01,
                double relative_jitter = 0.15,
                int mitigation_circuits = 0);

    /**
     * Execute the next job in sequence.
     *
     * The job's circuits run in parallel over the global
     * ParallelExecutor. Randomness is scheduling-independent: the job
     * derives a counter-based sub-stream from its index
     * (Rng::splitAt), draws the intra-job jitter serially, and hands
     * every circuit its own child stream before the fan-out — so
     * results are bit-identical for every thread count.
     */
    JobResult execute(const JobRequest &request);

    /** Jobs executed so far. */
    std::size_t jobsExecuted() const { return jobCount_; }

    /** Total circuit evaluations so far (overhead metric, Sec. 8.3). */
    std::size_t circuitsExecuted() const { return circuitCount_; }

    /** The transient intensity the *next* job will experience. */
    double peekNextIntensity() const;

    /**
     * Crash-recovery: fast-forward the job/circuit counters to a
     * snapshotted position. The root RNG is never advanced by
     * execute() (every job derives a counter-based splitAt sub-stream
     * from the immutable root), so restoring the counters alone makes
     * the resumed executor produce the uninterrupted run's remaining
     * jobs bit for bit. The same holds for the attached fault
     * injector, whose schedule is a pure function of the job index.
     */
    void restoreProgress(std::size_t jobs_executed,
                         std::size_t circuits_executed)
    {
        jobCount_ = jobs_executed;
        circuitCount_ = circuits_executed;
    }

    const TransientTrace &trace() const { return trace_; }

    /**
     * Attach (or detach, with nullptr) a fault injector. Not owned;
     * must outlive the executor's use. Injection consults the
     * injector's counter-based stream only, so attaching one changes
     * nothing about the randomness of the circuits that still run.
     */
    void setFaultInjector(const FaultInjector *injector)
    {
        faultInjector_ = injector;
    }

    const FaultInjector *faultInjector() const { return faultInjector_; }

  private:
    const EnergyEstimator &estimator_;
    TransientTrace trace_;
    Rng rng_;
    double intraJobJitter_;
    double relativeJitter_;
    int mitigationCircuits_;
    const FaultInjector *faultInjector_ = nullptr;
    std::size_t jobCount_ = 0;
    std::size_t circuitCount_ = 0;
};

} // namespace qismet

#endif // QISMET_VQE_JOB_HPP
