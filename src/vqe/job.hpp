/**
 * @file
 * The quantum-job model (paper Fig. 7).
 *
 * A Job is the unit of machine execution: a batch of circuits submitted
 * together. QISMET's transient estimation relies on one invariant that
 * this module owns: every circuit in a job experiences (approximately)
 * the same transient-noise instance. The JobExecutor binds one trace
 * intensity τ(job) to the whole batch, adding small per-circuit jitter
 * to model the residual intra-job fluctuation that QISMET's error
 * threshold must tolerate.
 */

#ifndef QISMET_VQE_JOB_HPP
#define QISMET_VQE_JOB_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "noise/transient_trace.hpp"
#include "vqe/energy_estimator.hpp"

namespace qismet {

/** One circuit-batch execution request. */
struct JobRequest
{
    /** Parameter vectors whose energies the job must estimate. */
    std::vector<std::vector<double>> evaluations;
};

/** Results of a job: one energy per requested evaluation. */
struct JobResult
{
    std::vector<double> energies;
    /** Transient intensity the job experienced (for analysis only). */
    double transientIntensity = 0.0;
    /** Index of the job in the executor's sequence. */
    std::size_t jobIndex = 0;
};

/** Executes jobs against an estimator under a transient trace. */
class JobExecutor
{
  public:
    /**
     * @param estimator Energy estimator (shared; not owned).
     * @param trace Per-job transient intensities.
     * @param seed Randomness for shot noise and intra-job jitter.
     * @param intra_job_jitter Stddev of the absolute per-circuit jitter
     *        added to τ(job).
     * @param relative_jitter Per-circuit jitter proportional to
     *        |τ(job)|. The paper's core premise (Section 4.1) is that
     *        the noise landscape shifts *across the candidates of one
     *        gradient-estimation step*; during a burst each circuit in
     *        the job therefore sees a substantially different transient
     *        draw, which is what corrupts gradients and derails the
     *        baseline tuner.
     * @param mitigation_circuits Extra circuits charged to every job for
     *        overhead accounting (e.g. measurement calibration).
     */
    JobExecutor(const EnergyEstimator &estimator, TransientTrace trace,
                std::uint64_t seed, double intra_job_jitter = 0.01,
                double relative_jitter = 0.15,
                int mitigation_circuits = 0);

    /**
     * Execute the next job in sequence.
     *
     * The job's circuits run in parallel over the global
     * ParallelExecutor. Randomness is scheduling-independent: the job
     * derives a counter-based sub-stream from its index
     * (Rng::splitAt), draws the intra-job jitter serially, and hands
     * every circuit its own child stream before the fan-out — so
     * results are bit-identical for every thread count.
     */
    JobResult execute(const JobRequest &request);

    /** Jobs executed so far. */
    std::size_t jobsExecuted() const { return jobCount_; }

    /** Total circuit evaluations so far (overhead metric, Sec. 8.3). */
    std::size_t circuitsExecuted() const { return circuitCount_; }

    /** The transient intensity the *next* job will experience. */
    double peekNextIntensity() const;

    const TransientTrace &trace() const { return trace_; }

  private:
    const EnergyEstimator &estimator_;
    TransientTrace trace_;
    Rng rng_;
    double intraJobJitter_;
    double relativeJitter_;
    int mitigationCircuits_;
    std::size_t jobCount_ = 0;
    std::size_t circuitCount_ = 0;
};

} // namespace qismet

#endif // QISMET_VQE_JOB_HPP
