#include "vqe/vqe_driver.hpp"

#include "common/sim_clock.hpp"

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "fault/crash_point.hpp"
#include "persist/checkpoint.hpp"

namespace qismet {

BlockingPolicy::BlockingPolicy(double tolerance) : tolerance_(tolerance)
{
    if (tolerance < 0.0)
        throw std::invalid_argument("BlockingPolicy: negative tolerance");
}

bool
BlockingPolicy::acceptMove(double e_iter_prev, double e_iter_new)
{
    return e_iter_new <= e_iter_prev + tolerance_;
}

std::vector<double>
VqeRunResult::perJobEnergySeries() const
{
    std::vector<double> out;
    out.reserve(history.size());
    for (const auto &rec : history)
        out.push_back(rec.eMeasured);
    return out;
}

std::vector<double>
VqeRunResult::acceptedEnergySeries() const
{
    std::vector<double> out;
    for (const auto &rec : history)
        if (rec.accepted)
            out.push_back(rec.eMeasured);
    return out;
}

VqeDriver::VqeDriver(const EnergyEstimator &estimator, JobExecutor &executor,
                     StochasticOptimizer &optimizer, TuningPolicy &policy,
                     VqeDriverConfig config)
    : estimator_(estimator), executor_(executor), optimizer_(optimizer),
      policy_(policy), config_(config)
{
    if (config_.totalJobs == 0)
        throw std::invalid_argument("VqeDriver: zero job budget");
    if (config_.finalWindow == 0)
        throw std::invalid_argument("VqeDriver: zero final window");
    if (config_.jobDurationSeconds < 0.0)
        throw std::invalid_argument("VqeDriver: negative job duration");
    if (config_.deadlineSimSeconds < 0.0)
        throw std::invalid_argument("VqeDriver: negative deadline budget");
    if (config_.crashAfterIters > 0 && config_.checkpoint == nullptr)
        throw std::invalid_argument(
            "VqeDriver: crashAfterIters without a checkpoint would "
            "lose the run");
    config_.retry.validate();
}

VqeRunResult
VqeDriver::run(const std::vector<double> &initial_theta)
{
    policy_.reset();
    Rng opt_rng(config_.seed);

    VqeRunResult result;
    // Simulated-time base of the run. The serve layer's breakers and
    // chaos windows run on their own fleet SimClock in ticks; this one
    // counts the run's seconds and is a pure function of the config,
    // which is what makes the deadline check deterministic.
    SimClock simClock;

    std::vector<double> theta = initial_theta;
    int k = 0;          // optimizer iteration
    int eval_index = 0; // global evaluation counter

    // Previous evaluation's circuits & accepted energy (the QISMET
    // reference). Absent until the first evaluation completes.
    std::vector<double> prev_point;
    double e_prev = 0.0;
    bool have_prev = false;

    double e_iter_prev = 0.0;
    bool have_iter_prev = false;

    CheckpointManager *ckpt = config_.checkpoint;
    if (ckpt != nullptr) {
        if (auto recovered = ckpt->recover()) {
            const RunSnapshot &snap = recovered->snapshot;
            k = static_cast<int>(snap.iteration);
            eval_index = static_cast<int>(snap.evalIndex);
            theta = snap.theta;
            prev_point = snap.prevPoint;
            e_prev = snap.ePrev;
            have_prev = snap.havePrev;
            e_iter_prev = snap.eIterPrev;
            have_iter_prev = snap.haveIterPrev;
            result.jobsUsed = static_cast<std::size_t>(snap.jobsUsed);
            result.retriesUsed =
                static_cast<std::size_t>(snap.retriesUsed);
            result.rejections =
                static_cast<std::size_t>(snap.rejections);
            result.faultsSeen =
                static_cast<std::size_t>(snap.faultsSeen);
            result.faultRetries =
                static_cast<std::size_t>(snap.faultRetries);
            result.evalsCarriedForward =
                static_cast<std::size_t>(snap.evalsCarriedForward);
            result.simTimeSeconds = snap.simTimeSeconds;
            simClock.restoreSeconds(snap.simTimeSeconds);
            result.backoffSeconds = snap.backoffSeconds;
            opt_rng.restoreState(snap.optimizerRng);
            executor_.restoreProgress(
                static_cast<std::size_t>(snap.executorJobs),
                static_cast<std::size_t>(snap.executorCircuits));
            try {
                Decoder policyDec(snap.policyState);
                policy_.loadState(policyDec);
                Decoder optDec(snap.optimizerState);
                optimizer_.loadState(optDec);
            }
            catch (const SerialError &err) {
                throw CheckpointError(
                    std::string("corrupt component state in snapshot: ") +
                    err.what());
            }
            // Replay the journal prefix to rebuild the run history.
            std::uint64_t iterFrames = 0;
            try {
                for (const JournalFrame &frame : recovered->frames) {
                    Decoder dec(frame.payload);
                    if (frame.type == JournalFrameType::Job) {
                        const JournalJobRecord jr =
                            JournalJobRecord::decode(dec);
                        VqeJobRecord rec;
                        rec.jobIndex =
                            static_cast<std::size_t>(jr.jobIndex);
                        rec.evalIndex = static_cast<int>(jr.evalIndex);
                        rec.retryIndex =
                            static_cast<int>(jr.retryIndex);
                        rec.transientIntensity = jr.transientIntensity;
                        rec.eMeasured = jr.eMeasured;
                        rec.accepted = jr.accepted;
                        rec.status = static_cast<JobStatus>(jr.status);
                        rec.carriedForward = jr.carriedForward;
                        result.history.push_back(rec);
                    }
                    else {
                        const JournalIterationRecord ir =
                            JournalIterationRecord::decode(dec);
                        result.iterationEnergies.push_back(
                            ir.eReported);
                        ++iterFrames;
                    }
                }
            }
            catch (const SerialError &err) {
                throw CheckpointError(
                    std::string("corrupt journal record payload: ") +
                    err.what());
            }
            if (result.history.size() != result.jobsUsed)
                throw CheckpointError(
                    "journal replay rebuilt " +
                    std::to_string(result.history.size()) +
                    " job records but the snapshot accounts for " +
                    std::to_string(result.jobsUsed));
            if (iterFrames != snap.iteration)
                throw CheckpointError(
                    "journal replay rebuilt " +
                    std::to_string(iterFrames) +
                    " iterations but the snapshot was taken at "
                    "iteration " +
                    std::to_string(snap.iteration));
            ckpt->beginResumed(*recovered);
        }
        else {
            ckpt->beginFresh();
        }
    }

    // Capture the complete resumable state at an iteration boundary.
    auto snapshot_now = [&] {
        RunSnapshot snap;
        snap.iteration = static_cast<std::uint64_t>(k);
        snap.evalIndex = eval_index;
        snap.theta = theta;
        snap.prevPoint = prev_point;
        snap.havePrev = have_prev;
        snap.ePrev = e_prev;
        snap.haveIterPrev = have_iter_prev;
        snap.eIterPrev = e_iter_prev;
        snap.jobsUsed = result.jobsUsed;
        snap.retriesUsed = result.retriesUsed;
        snap.rejections = result.rejections;
        snap.faultsSeen = result.faultsSeen;
        snap.faultRetries = result.faultRetries;
        snap.evalsCarriedForward = result.evalsCarriedForward;
        snap.simTimeSeconds = result.simTimeSeconds;
        snap.backoffSeconds = result.backoffSeconds;
        snap.optimizerRng = opt_rng.saveState();
        snap.executorJobs = executor_.jobsExecuted();
        snap.executorCircuits = executor_.circuitsExecuted();
        Encoder policyEnc;
        policy_.saveState(policyEnc);
        snap.policyState = policyEnc.take();
        Encoder optEnc;
        optimizer_.saveState(optEnc);
        snap.optimizerState = optEnc.take();
        ckpt->writeSnapshot(std::move(snap));
    };

    // Write-ahead journal one executed job (no-op without durability).
    auto journal_job = [&](const VqeJobRecord &rec,
                           const std::vector<double> &point,
                           double shot_fraction, bool has_reference,
                           double e_reference,
                           double transient_estimate) {
        if (ckpt == nullptr)
            return;
        JournalJobRecord jr;
        jr.jobIndex = rec.jobIndex;
        jr.evalIndex = rec.evalIndex;
        jr.retryIndex = rec.retryIndex;
        jr.transientIntensity = rec.transientIntensity;
        jr.eMeasured = rec.eMeasured;
        jr.accepted = rec.accepted;
        jr.status = static_cast<std::uint8_t>(rec.status);
        jr.carriedForward = rec.carriedForward;
        jr.shotFraction = shot_fraction;
        jr.transientEstimate = transient_estimate;
        jr.hasReference = has_reference;
        jr.eReference = e_reference;
        jr.point = point;
        ckpt->appendJob(jr);
    };

    // Evaluate one parameter point, retrying per the policy, charging
    // the job budget. On success fills the optimizer-facing energy
    // (possibly policy-corrected) and the raw measured energy. Returns
    // false when the budget ran out before an accepted measurement.
    auto evaluate_point = [&](const std::vector<double> &point,
                              double &energy_out,
                              double &measured_out) -> bool {
        const bool with_reference =
            policy_.wantsReferenceRerun() && have_prev;
        int retry = 0;
        while (result.jobsUsed < config_.totalJobs) {
            JobRequest request;
            request.evaluations.push_back(point);
            if (with_reference)
                request.evaluations.push_back(prev_point);

            const JobResult job = executor_.execute(request);
            ++result.jobsUsed;
            simClock.advanceSeconds(config_.jobDurationSeconds);
            result.simTimeSeconds = simClock.seconds();

            if (job.failed()) {
                // The fleet returned nothing. Record the loss, then
                // either retry (backoff in simulated time, consuming
                // the shared per-evaluation budget) or — once the
                // budget is spent and a previous estimate exists —
                // degrade: carry that estimate forward and mark the
                // evaluation skipped.
                ++result.faultsSeen;
                VqeJobRecord rec;
                rec.jobIndex = job.jobIndex;
                rec.evalIndex = eval_index;
                rec.retryIndex = retry;
                rec.transientIntensity = job.transientIntensity;
                rec.status = job.status;
                if (retry >= config_.retry.maxRetries && have_prev) {
                    rec.carriedForward = true;
                    result.history.push_back(rec);
                    journal_job(rec, point, job.shotFraction, false,
                                0.0, 0.0);
                    ++result.evalsCarriedForward;
                    energy_out = e_prev;
                    measured_out = e_prev;
                    ++eval_index;
                    return true;
                }
                result.history.push_back(rec);
                journal_job(rec, point, job.shotFraction, false, 0.0,
                            0.0);
                const double backoff =
                    config_.retry.backoffSecondsFor(retry);
                simClock.advanceSeconds(backoff);
                result.simTimeSeconds = simClock.seconds();
                result.backoffSeconds += backoff;
                ++retry;
                ++result.retriesUsed;
                ++result.faultRetries;
                continue;
            }

            const bool reference_lost =
                with_reference && job.status == JobStatus::ReferenceLost;
            if (job.status == JobStatus::PartialResult || reference_lost)
                ++result.faultsSeen;

            EvalContext ctx;
            ctx.evalIndex = eval_index;
            ctx.retryIndex = retry;
            ctx.ePrev = e_prev;
            ctx.eCurr = job.energies[0];
            ctx.hasReference = with_reference && !reference_lost;
            ctx.eReferenceRerun =
                ctx.hasReference ? job.energies[1] : 0.0;
            ctx.referenceLost = reference_lost;
            ctx.shotFraction = job.shotFraction;

            const Decision decision =
                have_prev ? policy_.judgeEvaluation(ctx)
                          : Decision::Accept;

            VqeJobRecord rec;
            rec.jobIndex = job.jobIndex;
            rec.evalIndex = eval_index;
            rec.retryIndex = retry;
            rec.transientIntensity = job.transientIntensity;
            rec.eMeasured = ctx.eCurr;
            rec.accepted = (decision == Decision::Accept);
            rec.status = job.status;
            result.history.push_back(rec);
            journal_job(rec, point, ctx.shotFraction, ctx.hasReference,
                        ctx.eReferenceRerun,
                        ctx.hasReference ? ctx.transientEstimate()
                                         : 0.0);

            if (decision == Decision::Accept) {
                energy_out = policy_.energyForOptimizer(ctx);
                measured_out = ctx.eCurr;
                prev_point = point;
                e_prev = ctx.eCurr;
                have_prev = true;
                ++eval_index;
                return true;
            }
            ++retry;
            ++result.retriesUsed;
        }
        return false;
    };

    while (result.jobsUsed < config_.totalJobs) {
        // Deadline budget, checked only at iteration boundaries so the
        // truncation point is a pure function of the configuration. The
        // check precedes the snapshot/crash hooks: an expired run ends
        // cleanly even when a planned crash was armed for this leg.
        if (config_.deadlineSimSeconds > 0.0 &&
            simClock.seconds() >= config_.deadlineSimSeconds) {
            result.deadlineExpired = true;
            break;
        }
        if (ckpt != nullptr) {
            if (ckpt->snapshotDue(static_cast<std::uint64_t>(k)))
                snapshot_now();
            CrashPoints::hit(kCrashIterationBoundary);
        }
        if (config_.crashAfterIters > 0 &&
            static_cast<std::size_t>(k) >= config_.crashAfterIters)
            throw SimulatedCrash(kCrashIterationBoundary);

        const auto points = optimizer_.plan(theta, k, opt_rng);

        std::vector<double> energies;
        energies.reserve(points.size());
        double measured_sum = 0.0;
        bool complete = true;
        for (const auto &p : points) {
            double e = 0.0;
            double m = 0.0;
            if (!evaluate_point(p, e, m)) {
                complete = false;
                break;
            }
            energies.push_back(e);
            measured_sum += m;
        }
        if (!complete)
            break;

        // Iteration energy: mean of this iteration's *measured*
        // evaluations (for symmetric SPSA pairs this is a first-order
        // estimate of E(θ)). The optimizer consumes the possibly
        // policy-corrected `energies` instead.
        const double e_iter =
            measured_sum / static_cast<double>(energies.size());
        const double e_reported = policy_.transformEnergy(e_iter);
        result.iterationEnergies.push_back(e_reported);

        const std::vector<double> candidate =
            optimizer_.propose(theta, k, energies);

        bool move_accepted = true;
        if (have_iter_prev)
            move_accepted = policy_.acceptMove(e_iter_prev, e_iter);
        if (move_accepted) {
            theta = candidate;
            e_iter_prev = e_iter;
            have_iter_prev = true;
        } else {
            ++result.rejections;
            // Blocking: stay; the next iteration re-probes from theta.
        }
        if (ckpt != nullptr) {
            JournalIterationRecord ir;
            ir.iteration = static_cast<std::uint64_t>(k);
            ir.eReported = e_reported;
            ir.moveAccepted = move_accepted;
            ckpt->appendIteration(ir);
        }
        ++k;
    }

    // Final snapshot: a completed (or budget-exhausted) run leaves its
    // checkpoint at the end, so resuming it is a deterministic no-op
    // that just recomputes the final statistics.
    if (ckpt != nullptr)
        snapshot_now();

    result.finalTheta = theta;
    result.circuitsUsed = executor_.circuitsExecuted();

    const auto &series = result.iterationEnergies;
    const std::size_t window = std::min(config_.finalWindow, series.size());
    if (window == 0) {
        result.finalEstimate = 0.0;
    } else {
        double sum = 0.0;
        for (std::size_t i = series.size() - window; i < series.size(); ++i)
            sum += series[i];
        result.finalEstimate = sum / static_cast<double>(window);
    }
    result.finalIdealEnergy = estimator_.idealEnergy(theta);
    return result;
}

} // namespace qismet
