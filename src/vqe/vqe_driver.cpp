#include "vqe/vqe_driver.hpp"

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace qismet {

BlockingPolicy::BlockingPolicy(double tolerance) : tolerance_(tolerance)
{
    if (tolerance < 0.0)
        throw std::invalid_argument("BlockingPolicy: negative tolerance");
}

bool
BlockingPolicy::acceptMove(double e_iter_prev, double e_iter_new)
{
    return e_iter_new <= e_iter_prev + tolerance_;
}

std::vector<double>
VqeRunResult::perJobEnergySeries() const
{
    std::vector<double> out;
    out.reserve(history.size());
    for (const auto &rec : history)
        out.push_back(rec.eMeasured);
    return out;
}

std::vector<double>
VqeRunResult::acceptedEnergySeries() const
{
    std::vector<double> out;
    for (const auto &rec : history)
        if (rec.accepted)
            out.push_back(rec.eMeasured);
    return out;
}

VqeDriver::VqeDriver(const EnergyEstimator &estimator, JobExecutor &executor,
                     StochasticOptimizer &optimizer, TuningPolicy &policy,
                     VqeDriverConfig config)
    : estimator_(estimator), executor_(executor), optimizer_(optimizer),
      policy_(policy), config_(config)
{
    if (config_.totalJobs == 0)
        throw std::invalid_argument("VqeDriver: zero job budget");
    if (config_.finalWindow == 0)
        throw std::invalid_argument("VqeDriver: zero final window");
    if (config_.jobDurationSeconds < 0.0)
        throw std::invalid_argument("VqeDriver: negative job duration");
    config_.retry.validate();
}

VqeRunResult
VqeDriver::run(const std::vector<double> &initial_theta)
{
    policy_.reset();
    Rng opt_rng(config_.seed);

    VqeRunResult result;

    std::vector<double> theta = initial_theta;
    int k = 0;          // optimizer iteration
    int eval_index = 0; // global evaluation counter

    // Previous evaluation's circuits & accepted energy (the QISMET
    // reference). Absent until the first evaluation completes.
    std::vector<double> prev_point;
    double e_prev = 0.0;
    bool have_prev = false;

    double e_iter_prev = 0.0;
    bool have_iter_prev = false;

    // Evaluate one parameter point, retrying per the policy, charging
    // the job budget. On success fills the optimizer-facing energy
    // (possibly policy-corrected) and the raw measured energy. Returns
    // false when the budget ran out before an accepted measurement.
    auto evaluate_point = [&](const std::vector<double> &point,
                              double &energy_out,
                              double &measured_out) -> bool {
        const bool with_reference =
            policy_.wantsReferenceRerun() && have_prev;
        int retry = 0;
        while (result.jobsUsed < config_.totalJobs) {
            JobRequest request;
            request.evaluations.push_back(point);
            if (with_reference)
                request.evaluations.push_back(prev_point);

            const JobResult job = executor_.execute(request);
            ++result.jobsUsed;
            result.simTimeSeconds += config_.jobDurationSeconds;

            if (job.failed()) {
                // The fleet returned nothing. Record the loss, then
                // either retry (backoff in simulated time, consuming
                // the shared per-evaluation budget) or — once the
                // budget is spent and a previous estimate exists —
                // degrade: carry that estimate forward and mark the
                // evaluation skipped.
                ++result.faultsSeen;
                VqeJobRecord rec;
                rec.jobIndex = job.jobIndex;
                rec.evalIndex = eval_index;
                rec.retryIndex = retry;
                rec.transientIntensity = job.transientIntensity;
                rec.status = job.status;
                if (retry >= config_.retry.maxRetries && have_prev) {
                    rec.carriedForward = true;
                    result.history.push_back(rec);
                    ++result.evalsCarriedForward;
                    energy_out = e_prev;
                    measured_out = e_prev;
                    ++eval_index;
                    return true;
                }
                result.history.push_back(rec);
                const double backoff =
                    config_.retry.backoffSecondsFor(retry);
                result.simTimeSeconds += backoff;
                result.backoffSeconds += backoff;
                ++retry;
                ++result.retriesUsed;
                ++result.faultRetries;
                continue;
            }

            const bool reference_lost =
                with_reference && job.status == JobStatus::ReferenceLost;
            if (job.status == JobStatus::PartialResult || reference_lost)
                ++result.faultsSeen;

            EvalContext ctx;
            ctx.evalIndex = eval_index;
            ctx.retryIndex = retry;
            ctx.ePrev = e_prev;
            ctx.eCurr = job.energies[0];
            ctx.hasReference = with_reference && !reference_lost;
            ctx.eReferenceRerun =
                ctx.hasReference ? job.energies[1] : 0.0;
            ctx.referenceLost = reference_lost;
            ctx.shotFraction = job.shotFraction;

            const Decision decision =
                have_prev ? policy_.judgeEvaluation(ctx)
                          : Decision::Accept;

            VqeJobRecord rec;
            rec.jobIndex = job.jobIndex;
            rec.evalIndex = eval_index;
            rec.retryIndex = retry;
            rec.transientIntensity = job.transientIntensity;
            rec.eMeasured = ctx.eCurr;
            rec.accepted = (decision == Decision::Accept);
            rec.status = job.status;
            result.history.push_back(rec);

            if (decision == Decision::Accept) {
                energy_out = policy_.energyForOptimizer(ctx);
                measured_out = ctx.eCurr;
                prev_point = point;
                e_prev = ctx.eCurr;
                have_prev = true;
                ++eval_index;
                return true;
            }
            ++retry;
            ++result.retriesUsed;
        }
        return false;
    };

    while (result.jobsUsed < config_.totalJobs) {
        const auto points = optimizer_.plan(theta, k, opt_rng);

        std::vector<double> energies;
        energies.reserve(points.size());
        double measured_sum = 0.0;
        bool complete = true;
        for (const auto &p : points) {
            double e = 0.0;
            double m = 0.0;
            if (!evaluate_point(p, e, m)) {
                complete = false;
                break;
            }
            energies.push_back(e);
            measured_sum += m;
        }
        if (!complete)
            break;

        // Iteration energy: mean of this iteration's *measured*
        // evaluations (for symmetric SPSA pairs this is a first-order
        // estimate of E(θ)). The optimizer consumes the possibly
        // policy-corrected `energies` instead.
        const double e_iter =
            measured_sum / static_cast<double>(energies.size());
        result.iterationEnergies.push_back(policy_.transformEnergy(e_iter));

        const std::vector<double> candidate =
            optimizer_.propose(theta, k, energies);

        if (!have_iter_prev || policy_.acceptMove(e_iter_prev, e_iter)) {
            theta = candidate;
            e_iter_prev = e_iter;
            have_iter_prev = true;
        } else {
            ++result.rejections;
            // Blocking: stay; the next iteration re-probes from theta.
        }
        ++k;
    }

    result.finalTheta = theta;
    result.circuitsUsed = executor_.circuitsExecuted();

    const auto &series = result.iterationEnergies;
    const std::size_t window = std::min(config_.finalWindow, series.size());
    if (window == 0) {
        result.finalEstimate = 0.0;
    } else {
        double sum = 0.0;
        for (std::size_t i = series.size() - window; i < series.size(); ++i)
            sum += series[i];
        result.finalEstimate = sum / static_cast<double>(window);
    }
    result.finalIdealEnergy = estimator_.idealEnergy(theta);
    return result;
}

} // namespace qismet
