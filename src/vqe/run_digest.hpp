/**
 * @file
 * Canonical trajectory digest of a VQE run.
 *
 * One bit-exact CSV rendering (the golden-trace layout) and its FNV-1a
 * checksum, shared by the golden-trace tests, the checkpoint-resume
 * smoke driver, and the serve layer's solo-equivalence verification.
 * Two runs have equal digests iff their job histories, per-iteration
 * reported energies, and final estimates are bit-identical — this is
 * the value the determinism contract ("same trajectory at any thread
 * count / interleaving / resume pattern") is stated over.
 */

#ifndef QISMET_VQE_RUN_DIGEST_HPP
#define QISMET_VQE_RUN_DIGEST_HPP

#include <string>

#include "vqe/vqe_driver.hpp"

namespace qismet {

/** Bit-exact 16-hex-digit image of a double (checksum-stable cell). */
std::string bitsHex(double value);

/** Render the run as the golden-trace CSV (job table + iteration table
 * + final estimate). */
std::string trajectoryCsv(const VqeRunResult &run);

/** FNV-1a 64-bit digest of trajectoryCsv(run), as 16 hex digits. */
std::string trajectoryDigest(const VqeRunResult &run);

} // namespace qismet

#endif // QISMET_VQE_RUN_DIGEST_HPP
