/**
 * @file
 * Scalar Kalman filter — the paper's classical-filtering comparison
 * (Sections 5.3, 6.3, 7.4).
 *
 * Model (matching the paper's hyper-parameters):
 *   state:        x_{k+1} = T · x_k + w,  w ~ N(0, Q)
 *   measurement:  z_k     = x_k + v,      v ~ N(0, MV)
 * where T is the Transition Coefficient ("a linear estimation of the
 * slope of the noise-free curve") and MV the Measurement Variance. A
 * low MV makes the filter chase measurements (transient spikes leak
 * through); a high MV makes it distrust them (it saturates along the
 * T-decay and cannot follow genuine algorithmic progress) — exactly the
 * failure modes Fig. 16 reports.
 */

#ifndef QISMET_FILTER_KALMAN_HPP
#define QISMET_FILTER_KALMAN_HPP

#include "common/serial.hpp"

namespace qismet {

/** Scalar Kalman filter hyper-parameters. */
struct KalmanParams
{
    /** Transition coefficient T (paper sweeps 0.9 / 0.99 / 1). */
    double transition = 1.0;
    /** Measurement variance MV (paper sweeps 0.01 / 0.1). */
    double measurementVariance = 0.1;
    /** Process-noise variance Q. */
    double processVariance = 1e-3;
    /** Initial estimate covariance. */
    double initialVariance = 1.0;
};

/** Scalar Kalman filter over a stream of energy measurements. */
class KalmanFilter1D
{
  public:
    explicit KalmanFilter1D(KalmanParams params);

    /**
     * Process one measurement; returns the posterior state estimate.
     * The first measurement initializes the state.
     */
    double update(double measurement);

    /** Posterior estimate (0 before the first update). */
    double estimate() const { return x_; }

    /** Posterior covariance. */
    double covariance() const { return p_; }

    /** Most recent Kalman gain. */
    double lastGain() const { return gain_; }

    /** Forget all state. */
    void reset();

    /** Serialize posterior state for crash-safe checkpointing. */
    void saveState(Encoder &enc) const;

    /** Restore state produced by saveState (same params). */
    void loadState(Decoder &dec);

    const KalmanParams &params() const { return params_; }

  private:
    KalmanParams params_;
    double x_ = 0.0;
    double p_ = 0.0;
    double gain_ = 0.0;
    bool initialized_ = false;
};

} // namespace qismet

#endif // QISMET_FILTER_KALMAN_HPP
