#include "filter/kalman.hpp"

#include <stdexcept>

namespace qismet {

KalmanFilter1D::KalmanFilter1D(KalmanParams params) : params_(params)
{
    if (params_.measurementVariance <= 0.0)
        throw std::invalid_argument("KalmanFilter1D: MV must be > 0");
    if (params_.processVariance < 0.0)
        throw std::invalid_argument("KalmanFilter1D: Q must be >= 0");
    if (params_.initialVariance <= 0.0)
        throw std::invalid_argument("KalmanFilter1D: P0 must be > 0");
}

double
KalmanFilter1D::update(double measurement)
{
    if (!initialized_) {
        x_ = measurement;
        p_ = params_.initialVariance;
        initialized_ = true;
        return x_;
    }

    // Predict.
    const double x_pred = params_.transition * x_;
    const double p_pred = params_.transition * params_.transition * p_ +
                          params_.processVariance;

    // Update.
    gain_ = p_pred / (p_pred + params_.measurementVariance);
    x_ = x_pred + gain_ * (measurement - x_pred);
    p_ = (1.0 - gain_) * p_pred;
    return x_;
}

void
KalmanFilter1D::reset()
{
    x_ = 0.0;
    p_ = 0.0;
    gain_ = 0.0;
    initialized_ = false;
}

void
KalmanFilter1D::saveState(Encoder &enc) const
{
    enc.writeF64(x_);
    enc.writeF64(p_);
    enc.writeF64(gain_);
    enc.writeBool(initialized_);
}

void
KalmanFilter1D::loadState(Decoder &dec)
{
    x_ = dec.readF64();
    p_ = dec.readF64();
    gain_ = dec.readF64();
    initialized_ = dec.readBool();
}

} // namespace qismet
