#include "filter/cfar.hpp"

#include <cmath>
#include <stdexcept>

namespace qismet {

CfarDetector::CfarDetector(CfarParams params) : params_(params)
{
    if (params_.trainingCells == 0)
        throw std::invalid_argument("CfarDetector: need training cells");
    if (params_.thresholdFactor <= 0.0)
        throw std::invalid_argument("CfarDetector: bad threshold factor");
}

std::vector<bool>
CfarDetector::detect(const std::vector<double> &series) const
{
    const std::size_t n = series.size();
    std::vector<bool> flags(n, false);
    const std::size_t t = params_.trainingCells;
    const std::size_t g = params_.guardCells;

    for (std::size_t i = 0; i < n; ++i) {
        // Collect training cells on both sides, skipping guards.
        double sum = 0.0;
        std::size_t count = 0;
        std::vector<double> cells;
        for (std::size_t k = 1; k <= t + g; ++k) {
            if (k <= g)
                continue;
            if (i >= k) {
                cells.push_back(series[i - k]);
                sum += series[i - k];
                ++count;
            }
            if (i + k < n) {
                cells.push_back(series[i + k]);
                sum += series[i + k];
                ++count;
            }
        }
        if (count < t) // not enough context: never flag
            continue;
        const double mean = sum / static_cast<double>(count);
        double mad = 0.0;
        for (double c : cells)
            mad += std::abs(c - mean);
        mad /= static_cast<double>(count);
        if (mad <= 0.0)
            continue;
        if (std::abs(series[i] - mean) > params_.thresholdFactor * mad)
            flags[i] = true;
    }
    return flags;
}

bool
CfarDetector::push(double sample)
{
    window_.push_back(sample);
    const std::size_t need =
        params_.trainingCells + params_.guardCells + 1;
    if (window_.size() < need)
        return false;
    if (window_.size() > 4 * need)
        window_.erase(window_.begin(),
                      window_.end() - static_cast<std::ptrdiff_t>(2 * need));

    // Judge the newest sample against trailing training cells.
    const std::size_t i = window_.size() - 1;
    double sum = 0.0;
    std::vector<double> cells;
    for (std::size_t k = params_.guardCells + 1;
         k <= params_.guardCells + params_.trainingCells; ++k) {
        cells.push_back(window_[i - k]);
        sum += window_[i - k];
    }
    const double mean = sum / static_cast<double>(cells.size());
    double mad = 0.0;
    for (double c : cells)
        mad += std::abs(c - mean);
    mad /= static_cast<double>(cells.size());
    if (mad <= 0.0)
        return false;
    return std::abs(sample - mean) > params_.thresholdFactor * mad;
}

void
CfarDetector::reset()
{
    window_.clear();
}

} // namespace qismet
