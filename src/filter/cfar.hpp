/**
 * @file
 * Cell-averaging Constant False Alarm Rate (CA-CFAR) detector — the
 * radar-style alternative the paper mentions in Section 8.4. Like the
 * Kalman filter it flags anomalous samples against the local noise
 * floor but cannot tell *detrimental* transients from harmless ones.
 * Included as an ablation comparison.
 */

#ifndef QISMET_FILTER_CFAR_HPP
#define QISMET_FILTER_CFAR_HPP

#include <cstddef>
#include <vector>

namespace qismet {

/** CA-CFAR configuration. */
struct CfarParams
{
    /** Training cells on each side of the cell under test. */
    std::size_t trainingCells = 8;
    /** Guard cells on each side (excluded from the noise estimate). */
    std::size_t guardCells = 2;
    /** Detection threshold factor over the local noise average. */
    double thresholdFactor = 3.0;
};

/** Sliding-window CA-CFAR over a scalar series. */
class CfarDetector
{
  public:
    explicit CfarDetector(CfarParams params);

    /**
     * Flag anomalous samples of a series. The statistic is |x[i] - m|
     * where m is the mean of the training cells around i; a sample is
     * flagged when the statistic exceeds thresholdFactor times the mean
     * absolute deviation of the training cells.
     */
    std::vector<bool> detect(const std::vector<double> &series) const;

    /**
     * Streaming variant: push one sample, get its verdict (lagged by
     * the window; early samples are never flagged).
     */
    bool push(double sample);

    /** Reset streaming state. */
    void reset();

    const CfarParams &params() const { return params_; }

  private:
    CfarParams params_;
    std::vector<double> window_;
};

} // namespace qismet

#endif // QISMET_FILTER_CFAR_HPP
