#include "filter/only_transients.hpp"

#include <cmath>
#include <stdexcept>

namespace qismet {

OnlyTransientsSkipper::OnlyTransientsSkipper(double threshold,
                                             int retry_budget)
    : threshold_(threshold), retryBudget_(retry_budget)
{
    if (threshold < 0.0)
        throw std::invalid_argument("OnlyTransientsSkipper: threshold < 0");
    if (retry_budget < 1)
        throw std::invalid_argument("OnlyTransientsSkipper: budget < 1");
}

bool
OnlyTransientsSkipper::shouldSkip(double transient_estimate,
                                  int retry_index) const
{
    if (retry_index >= retryBudget_)
        return false; // budget exhausted: accept the iteration as-is
    return std::abs(transient_estimate) > threshold_;
}

} // namespace qismet
