/**
 * @file
 * The "only-transients" skipping rule (paper Sections 5.3 and 7.3):
 * skip a VQA iteration whenever the estimated transient magnitude
 * exceeds a threshold, abs(T_m(i)) > τ, regardless of gradient
 * direction. The paper shows this is *worse* than the baseline at every
 * threshold (Fig. 15) because it also skips transients that were
 * harmless or even constructive.
 */

#ifndef QISMET_FILTER_ONLY_TRANSIENTS_HPP
#define QISMET_FILTER_ONLY_TRANSIENTS_HPP

namespace qismet {

/** Threshold + retry-budget skip rule on transient magnitude. */
class OnlyTransientsSkipper
{
  public:
    /**
     * @param threshold Skip when |T_m| exceeds this.
     * @param retry_budget Maximum consecutive skips of one iteration.
     */
    OnlyTransientsSkipper(double threshold, int retry_budget);

    /**
     * Judge one iteration attempt.
     * @param transient_estimate T_m of the attempt.
     * @param retry_index How many times this iteration has already
     *        been retried.
     * @return true to skip (retry), false to accept.
     */
    bool shouldSkip(double transient_estimate, int retry_index) const;

    double threshold() const { return threshold_; }
    int retryBudget() const { return retryBudget_; }

  private:
    double threshold_;
    int retryBudget_;
};

} // namespace qismet

#endif // QISMET_FILTER_ONLY_TRANSIENTS_HPP
