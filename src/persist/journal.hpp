/**
 * @file
 * Write-ahead run journal: one framed, checksummed record per executed
 * job and per completed optimizer iteration.
 *
 * File layout (all integers little-endian):
 *
 *     header   := magic "QJNL" | u32 version | u64 configDigest
 *                 | u64 fnv1a(preceding 16 bytes)                 (24 B)
 *     frame    := u8 type | u32 payloadLen | payload
 *                 | u64 fnv1a(type byte + payload)
 *
 * Appends go through DurableFile with an fsync per frame, so after a
 * crash the file is a durable prefix of the logical journal plus at
 * most one torn (partial) frame at the tail.
 *
 * Reader semantics (scanJournal) — fail closed, recover only what is
 * provably a crash artifact:
 *
 *  - missing/short/garbled *header*  -> JournalError (no valid prefix
 *    exists; nothing can be trusted).
 *  - frame that runs past end-of-file, or a trailing fragment shorter
 *    than a minimal frame, or a checksum-bad frame that ends exactly
 *    at EOF -> torn tail: the partial record is discarded and reported
 *    in the scan diagnostics.
 *  - anything else (unknown frame type, implausible length, checksum
 *    mismatch with more data after it) cannot be produced by a torn
 *    append -> JournalError. Corruption is never silently skipped.
 */

#ifndef QISMET_PERSIST_JOURNAL_HPP
#define QISMET_PERSIST_JOURNAL_HPP

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/atomic_file.hpp"
#include "common/serial.hpp"

namespace qismet {

/** Raised when a journal is structurally invalid (not merely torn). */
class JournalError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Journal format version; bump on any frame-layout change. */
inline constexpr std::uint32_t kJournalVersion = 1;

/** Frame types. */
enum class JournalFrameType : std::uint8_t
{
    Job = 1,       ///< one executed job (accepted / rejected / faulted)
    Iteration = 2, ///< one completed optimizer iteration
};

/** Payload of a Job frame: the full audit record for one executed job. */
struct JournalJobRecord
{
    std::uint64_t jobIndex = 0;
    std::int64_t evalIndex = 0;
    std::int64_t retryIndex = 0;
    double transientIntensity = 0.0;
    double eMeasured = 0.0;
    bool accepted = false;
    std::uint8_t status = 0; ///< JobStatus as stored in the trace
    bool carriedForward = false;
    double shotFraction = 1.0;
    double transientEstimate = 0.0;
    bool hasReference = false;
    double eReference = 0.0;
    std::vector<double> point; ///< parameters the job evaluated

    void encode(Encoder &enc) const;
    static JournalJobRecord decode(Decoder &dec);
};

/** Payload of an Iteration frame. */
struct JournalIterationRecord
{
    std::uint64_t iteration = 0;
    double eReported = 0.0; ///< energy pushed to iterationEnergies
    bool moveAccepted = false;

    void encode(Encoder &enc) const;
    static JournalIterationRecord decode(Decoder &dec);
};

/** One decoded frame plus its end offset in the file. */
struct JournalFrame
{
    JournalFrameType type = JournalFrameType::Job;
    std::string payload;
    std::uint64_t endOffset = 0; ///< byte offset just past this frame
};

/** Result of scanning a journal file. */
struct JournalScanResult
{
    std::uint64_t configDigest = 0;
    std::vector<JournalFrame> frames;
    std::uint64_t cleanOffset = 0; ///< offset after the last valid frame
    bool tornTail = false;
    std::uint64_t droppedBytes = 0;
    std::string diagnostic; ///< human-readable torn-tail note, if any
};

/**
 * Scan a journal file, validating header and every frame checksum.
 * @throws JournalError on structural corruption (see file comment).
 */
JournalScanResult scanJournal(const std::string &path);

/**
 * Append-side of the journal. Each append* call writes one frame and
 * fsyncs, making the record durable before the driver proceeds.
 */
class JournalWriter
{
  public:
    /**
     * Open `path`. Mode Truncate starts a fresh journal (writes the
     * header); Append continues an existing one at `offset` (recovery
     * truncates the torn tail first). `frames` seeds the frame count.
     */
    JournalWriter(const std::string &path, std::uint64_t config_digest,
                  DurableFile::Mode mode, std::uint64_t offset = 0,
                  std::uint64_t frames = 0);

    void appendJob(const JournalJobRecord &record);
    void appendIteration(const JournalIterationRecord &record);

    /** Frames written so far (including any seeded on resume). */
    std::uint64_t frames() const { return frames_; }

    /** Current durable end-of-journal offset. */
    std::uint64_t offset() const { return file_.offset(); }

  private:
    void appendFrame(JournalFrameType type, const std::string &payload);

    DurableFile file_;
    std::uint64_t frames_ = 0;
};

/** Serialized size of the fixed journal header. */
inline constexpr std::uint64_t kJournalHeaderSize = 24;

/** Encode the 24-byte header for the given config digest. */
std::string encodeJournalHeader(std::uint64_t config_digest);

} // namespace qismet

#endif // QISMET_PERSIST_JOURNAL_HPP
