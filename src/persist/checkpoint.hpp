/**
 * @file
 * CheckpointManager: the driver-facing facade over journal + snapshot.
 *
 * A checkpoint directory holds exactly two files:
 *
 *     journal.qjnl    write-ahead record stream (append + fsync)
 *     snapshot.qsnp   latest full snapshot (atomic replace)
 *
 * Protocol (driver side):
 *   1. recover(): if resuming and a valid snapshot exists, return it
 *      together with the journal frames up to the snapshot's position;
 *      the driver replays those to rebuild its history, then calls
 *      beginResumed() which truncates the journal tail. Otherwise the
 *      driver calls beginFresh().
 *   2. Every executed job / completed iteration is journaled *before*
 *      the driver proceeds (write-ahead + fsync).
 *   3. At iteration boundaries (cadence `snapshotEveryIters`) the
 *      driver captures a RunSnapshot; writeSnapshot() stamps it with
 *      the current journal position and atomically replaces the file.
 *
 * Failure policy: a missing checkpoint is a fresh start; a *corrupt*
 * one (bad snapshot, structurally corrupt journal, digest mismatch,
 * journal shorter than the snapshot claims) throws CheckpointError —
 * recovery never silently degrades to a wrong trajectory.
 */

#ifndef QISMET_PERSIST_CHECKPOINT_HPP
#define QISMET_PERSIST_CHECKPOINT_HPP

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "persist/journal.hpp"
#include "persist/snapshot.hpp"

namespace qismet {

/** Raised when recovery finds inconsistent checkpoint state. */
class CheckpointError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Durability settings threaded from the run configuration. */
struct CheckpointConfig
{
    std::string dir;                    ///< checkpoint directory
    std::size_t snapshotEveryIters = 1; ///< snapshot cadence
    bool resume = false;                ///< attempt recovery first
};

class CheckpointManager
{
  public:
    /** State recovered from disk, ready for driver replay. */
    struct Recovered
    {
        RunSnapshot snapshot;
        std::vector<JournalFrame> frames; ///< prefix up to the snapshot
    };

    CheckpointManager(CheckpointConfig config,
                      std::uint64_t config_digest);

    /**
     * Attempt recovery. Returns the snapshot + replayable journal
     * prefix, or nullopt for a fresh start (not resuming, or nothing
     * durable on disk yet). @throws CheckpointError on corruption or a
     * configuration-digest mismatch.
     */
    std::optional<Recovered> recover();

    /** Start a fresh journal (truncates any previous run's files). */
    void beginFresh();

    /** Continue the recovered journal, truncated at the snapshot. */
    void beginResumed(const Recovered &recovered);

    /** Journal one executed job (durable before return). */
    void appendJob(const JournalJobRecord &record);

    /** Journal one completed iteration (durable before return). */
    void appendIteration(const JournalIterationRecord &record);

    /** True when a snapshot is due at completed-iteration count `k`. */
    bool snapshotDue(std::uint64_t completed_iterations) const
    {
        return completed_iterations % config_.snapshotEveryIters == 0;
    }

    /**
     * Stamp the snapshot with the current journal position and config
     * digest, then atomically replace the snapshot file.
     */
    void writeSnapshot(RunSnapshot snapshot);

    /** Frames durable in the journal so far. */
    std::uint64_t journalFrames() const;

    /** Notes accumulated during recovery (torn-tail reports etc.). */
    const std::string &diagnostics() const { return diagnostics_; }

    std::string journalPath() const
    {
        return config_.dir + "/journal.qjnl";
    }
    std::string snapshotPath() const
    {
        return config_.dir + "/snapshot.qsnp";
    }

  private:
    CheckpointConfig config_;
    std::uint64_t configDigest_;
    std::optional<JournalWriter> journal_;
    std::string diagnostics_;
};

} // namespace qismet

#endif // QISMET_PERSIST_CHECKPOINT_HPP
