/**
 * @file
 * Full run snapshot: everything VqeDriver needs to continue a run
 * bit-identically from an iteration boundary.
 *
 * The snapshot pairs with the journal: it records *how many journal
 * frames* (and bytes) were durable when it was taken, so recovery can
 * replay exactly that prefix to rebuild the result history and then
 * truncate the journal to the snapshot's offset before appending.
 *
 * Component state that the driver does not own — tuning-policy
 * calibration (thresholds, transient-estimator history, Kalman state)
 * and optimizer internals (SPSA perturbation vectors, Hessian
 * accumulators) — is carried as opaque blobs produced by each
 * component's saveState(). The RNG positions are explicit: the
 * serially-advanced optimizer stream is saved in full, while the job
 * executor and fault injector need only counters because their root
 * generators are never advanced (all per-job randomness is a
 * counter-based splitAt of an immutable root — the property that makes
 * resumed runs provably bit-identical at any thread count).
 *
 * On disk: magic "QSNP" | u32 version | u64 payloadLen | payload
 * | u64 fnv1a(payload), written atomically (temp -> fsync -> rename).
 */

#ifndef QISMET_PERSIST_SNAPSHOT_HPP
#define QISMET_PERSIST_SNAPSHOT_HPP

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace qismet {

/** Raised when a snapshot file is unreadable or corrupt. */
class SnapshotError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Snapshot format version; bump on any field change. */
inline constexpr std::uint32_t kSnapshotVersion = 1;

/** Serializable state of one run at an optimizer-iteration boundary. */
struct RunSnapshot
{
    std::uint64_t configDigest = 0;

    // --- journal coupling -------------------------------------------
    std::uint64_t journalFrames = 0; ///< durable frames at capture time
    std::uint64_t journalOffset = 0; ///< durable bytes at capture time

    // --- driver loop state ------------------------------------------
    std::uint64_t iteration = 0; ///< completed optimizer iterations
    std::int64_t evalIndex = 0;
    std::vector<double> theta;
    std::vector<double> prevPoint;
    bool havePrev = false;
    double ePrev = 0.0;
    bool haveIterPrev = false;
    double eIterPrev = 0.0;

    // --- result accumulators ----------------------------------------
    std::uint64_t jobsUsed = 0;
    std::uint64_t retriesUsed = 0;
    std::uint64_t rejections = 0;
    std::uint64_t faultsSeen = 0;
    std::uint64_t faultRetries = 0;
    std::uint64_t evalsCarriedForward = 0;
    double simTimeSeconds = 0.0;
    double backoffSeconds = 0.0;

    // --- stream positions -------------------------------------------
    RngState optimizerRng;               ///< serially-advanced stream
    std::uint64_t executorJobs = 0;      ///< fault-schedule cursor
    std::uint64_t executorCircuits = 0;

    // --- opaque component state -------------------------------------
    std::string policyState;    ///< TuningPolicy::saveState blob
    std::string optimizerState; ///< StochasticOptimizer::saveState blob

    /** Serialize to the on-disk payload. */
    std::string encode() const;

    /** @throws SnapshotError on truncated or malformed payload. */
    static RunSnapshot decode(const std::string &payload);
};

/** Atomically write a snapshot file. */
void saveSnapshotFile(const std::string &path,
                      const RunSnapshot &snapshot);

/**
 * Load and validate a snapshot file.
 * @throws SnapshotError when missing, truncated or checksum-bad.
 */
RunSnapshot loadSnapshotFile(const std::string &path);

} // namespace qismet

#endif // QISMET_PERSIST_SNAPSHOT_HPP
