#include "persist/journal.hpp"

#include "fault/crash_point.hpp"

namespace qismet {

namespace {

constexpr char kMagic[4] = {'Q', 'J', 'N', 'L'};

/** type(1) + len(4) + checksum(8): smallest possible complete frame. */
constexpr std::uint64_t kFrameOverhead = 13;

/** Sanity cap on a single frame; real frames are a few hundred bytes. */
constexpr std::uint32_t kMaxFrameLen = 1u << 20;

bool
validFrameType(std::uint8_t type)
{
    return type == static_cast<std::uint8_t>(JournalFrameType::Job) ||
           type ==
               static_cast<std::uint8_t>(JournalFrameType::Iteration);
}

std::uint64_t
frameChecksum(std::uint8_t type, std::string_view payload)
{
    std::uint64_t hash = fnv1a64(&type, 1);
    return fnv1a64(payload, hash);
}

} // namespace

void
JournalJobRecord::encode(Encoder &enc) const
{
    enc.writeU64(jobIndex);
    enc.writeI64(evalIndex);
    enc.writeI64(retryIndex);
    enc.writeF64(transientIntensity);
    enc.writeF64(eMeasured);
    enc.writeBool(accepted);
    enc.writeU8(status);
    enc.writeBool(carriedForward);
    enc.writeF64(shotFraction);
    enc.writeF64(transientEstimate);
    enc.writeBool(hasReference);
    enc.writeF64(eReference);
    enc.writeVecF64(point);
}

JournalJobRecord
JournalJobRecord::decode(Decoder &dec)
{
    JournalJobRecord rec;
    rec.jobIndex = dec.readU64();
    rec.evalIndex = dec.readI64();
    rec.retryIndex = dec.readI64();
    rec.transientIntensity = dec.readF64();
    rec.eMeasured = dec.readF64();
    rec.accepted = dec.readBool();
    rec.status = dec.readU8();
    rec.carriedForward = dec.readBool();
    rec.shotFraction = dec.readF64();
    rec.transientEstimate = dec.readF64();
    rec.hasReference = dec.readBool();
    rec.eReference = dec.readF64();
    rec.point = dec.readVecF64();
    return rec;
}

void
JournalIterationRecord::encode(Encoder &enc) const
{
    enc.writeU64(iteration);
    enc.writeF64(eReported);
    enc.writeBool(moveAccepted);
}

JournalIterationRecord
JournalIterationRecord::decode(Decoder &dec)
{
    JournalIterationRecord rec;
    rec.iteration = dec.readU64();
    rec.eReported = dec.readF64();
    rec.moveAccepted = dec.readBool();
    return rec;
}

std::string
encodeJournalHeader(std::uint64_t config_digest)
{
    Encoder enc;
    enc.writeU8(static_cast<std::uint8_t>(kMagic[0]));
    enc.writeU8(static_cast<std::uint8_t>(kMagic[1]));
    enc.writeU8(static_cast<std::uint8_t>(kMagic[2]));
    enc.writeU8(static_cast<std::uint8_t>(kMagic[3]));
    enc.writeU32(kJournalVersion);
    enc.writeU64(config_digest);
    const std::uint64_t checksum = fnv1a64(enc.bytes());
    enc.writeU64(checksum);
    return enc.take();
}

JournalScanResult
scanJournal(const std::string &path)
{
    const std::string bytes = readFile(path);
    if (bytes.size() < kJournalHeaderSize)
        throw JournalError(
            "journal '" + path + "' is shorter than its header (" +
            std::to_string(bytes.size()) + " bytes) — not a journal");

    Decoder header(std::string_view(bytes).substr(0, kJournalHeaderSize));
    char magic[4];
    for (char &c : magic)
        c = static_cast<char>(header.readU8());
    if (magic[0] != kMagic[0] || magic[1] != kMagic[1] ||
        magic[2] != kMagic[2] || magic[3] != kMagic[3])
        throw JournalError("journal '" + path + "' has bad magic");
    const std::uint32_t version = header.readU32();
    if (version != kJournalVersion)
        throw JournalError("journal '" + path +
                           "' has unsupported version " +
                           std::to_string(version) + " (expected " +
                           std::to_string(kJournalVersion) + ")");
    const std::uint64_t digest = header.readU64();
    const std::uint64_t stored = header.readU64();
    const std::uint64_t expect =
        fnv1a64(std::string_view(bytes).substr(0, 16));
    if (stored != expect)
        throw JournalError("journal '" + path +
                           "' header checksum mismatch");

    JournalScanResult result;
    result.configDigest = digest;
    result.cleanOffset = kJournalHeaderSize;

    std::uint64_t offset = kJournalHeaderSize;
    const std::uint64_t size = bytes.size();
    while (offset < size) {
        const std::uint64_t rem = size - offset;
        if (rem < kFrameOverhead) {
            result.tornTail = true;
            result.droppedBytes = rem;
            result.diagnostic =
                "torn tail: " + std::to_string(rem) +
                " trailing bytes are shorter than a frame; discarded";
            break;
        }
        Decoder dec(std::string_view(bytes).substr(
            static_cast<std::size_t>(offset),
            static_cast<std::size_t>(rem)));
        const std::uint8_t type = dec.readU8();
        if (!validFrameType(type))
            // A torn append writes a byte-prefix of a valid frame, so
            // a present-but-unknown type byte means corruption.
            throw JournalError("journal '" + path +
                               "' has invalid frame type " +
                               std::to_string(type) + " at offset " +
                               std::to_string(offset));
        const std::uint32_t len = dec.readU32();
        if (len > kMaxFrameLen)
            throw JournalError("journal '" + path +
                               "' has implausible frame length " +
                               std::to_string(len) + " at offset " +
                               std::to_string(offset));
        const std::uint64_t frameSize = kFrameOverhead + len;
        if (frameSize > rem) {
            result.tornTail = true;
            result.droppedBytes = rem;
            result.diagnostic =
                "torn tail: frame at offset " + std::to_string(offset) +
                " needs " + std::to_string(frameSize) +
                " bytes but only " + std::to_string(rem) +
                " remain; discarded";
            break;
        }
        const std::string_view payload =
            std::string_view(bytes).substr(
                static_cast<std::size_t>(offset) + 5, len);
        Decoder tail(std::string_view(bytes).substr(
            static_cast<std::size_t>(offset) + 5 + len, 8));
        const std::uint64_t storedSum = tail.readU64();
        if (storedSum != frameChecksum(type, payload)) {
            if (offset + frameSize == size) {
                // Checksum-bad final frame: a torn append that stopped
                // inside the checksum bytes themselves.
                result.tornTail = true;
                result.droppedBytes = rem;
                result.diagnostic =
                    "torn tail: final frame at offset " +
                    std::to_string(offset) +
                    " failed its checksum; discarded";
                break;
            }
            throw JournalError(
                "journal '" + path +
                "' has a corrupt frame (checksum mismatch) at offset " +
                std::to_string(offset) +
                " with valid data after it — refusing to skip");
        }
        JournalFrame frame;
        frame.type = static_cast<JournalFrameType>(type);
        frame.payload = std::string(payload);
        frame.endOffset = offset + frameSize;
        result.frames.push_back(std::move(frame));
        offset += frameSize;
        result.cleanOffset = offset;
    }
    return result;
}

JournalWriter::JournalWriter(const std::string &path,
                             std::uint64_t config_digest,
                             DurableFile::Mode mode, std::uint64_t offset,
                             std::uint64_t frames)
    : file_(path, mode), frames_(frames)
{
    if (mode == DurableFile::Mode::Truncate) {
        file_.append(encodeJournalHeader(config_digest));
        file_.sync();
        frames_ = 0;
    }
    else {
        // Resume: drop everything past the recovered clean prefix
        // (snapshot offset), including any torn tail.
        file_.truncateTo(offset);
        file_.sync();
    }
}

void
JournalWriter::appendFrame(JournalFrameType type,
                           const std::string &payload)
{
    Encoder enc;
    enc.writeU8(static_cast<std::uint8_t>(type));
    enc.writeU32(static_cast<std::uint32_t>(payload.size()));
    std::string frame = enc.take();
    frame += payload;
    Encoder sum;
    sum.writeU64(
        frameChecksum(static_cast<std::uint8_t>(type), payload));
    frame += sum.bytes();

    if (CrashPoints::fires(kCrashJournalTornWrite)) {
        // Die mid-append: persist only a prefix of the frame, exactly
        // what a crash between write() calls would leave behind.
        file_.append(
            std::string_view(frame).substr(0, frame.size() / 2));
        file_.sync();
        CrashPoints::crash(kCrashJournalTornWrite);
    }

    file_.append(frame);
    file_.sync();
    ++frames_;
}

void
JournalWriter::appendJob(const JournalJobRecord &record)
{
    Encoder enc;
    record.encode(enc);
    appendFrame(JournalFrameType::Job, enc.bytes());
}

void
JournalWriter::appendIteration(const JournalIterationRecord &record)
{
    Encoder enc;
    record.encode(enc);
    appendFrame(JournalFrameType::Iteration, enc.bytes());
}

} // namespace qismet
