#include "persist/snapshot.hpp"

#include "common/atomic_file.hpp"
#include "common/serial.hpp"

namespace qismet {

namespace {

constexpr char kMagic[4] = {'Q', 'S', 'N', 'P'};

void
encodeRng(Encoder &enc, const RngState &state)
{
    for (const std::uint64_t word : state.engine)
        enc.writeU64(word);
    enc.writeBool(state.hasSpareNormal);
    enc.writeF64(state.spareNormal);
}

RngState
decodeRng(Decoder &dec)
{
    RngState state;
    for (std::uint64_t &word : state.engine)
        word = dec.readU64();
    state.hasSpareNormal = dec.readBool();
    state.spareNormal = dec.readF64();
    return state;
}

} // namespace

std::string
RunSnapshot::encode() const
{
    Encoder enc;
    enc.writeU64(configDigest);
    enc.writeU64(journalFrames);
    enc.writeU64(journalOffset);
    enc.writeU64(iteration);
    enc.writeI64(evalIndex);
    enc.writeVecF64(theta);
    enc.writeVecF64(prevPoint);
    enc.writeBool(havePrev);
    enc.writeF64(ePrev);
    enc.writeBool(haveIterPrev);
    enc.writeF64(eIterPrev);
    enc.writeU64(jobsUsed);
    enc.writeU64(retriesUsed);
    enc.writeU64(rejections);
    enc.writeU64(faultsSeen);
    enc.writeU64(faultRetries);
    enc.writeU64(evalsCarriedForward);
    enc.writeF64(simTimeSeconds);
    enc.writeF64(backoffSeconds);
    encodeRng(enc, optimizerRng);
    enc.writeU64(executorJobs);
    enc.writeU64(executorCircuits);
    enc.writeString(policyState);
    enc.writeString(optimizerState);
    return enc.take();
}

RunSnapshot
RunSnapshot::decode(const std::string &payload)
{
    try {
        Decoder dec(payload);
        RunSnapshot snap;
        snap.configDigest = dec.readU64();
        snap.journalFrames = dec.readU64();
        snap.journalOffset = dec.readU64();
        snap.iteration = dec.readU64();
        snap.evalIndex = dec.readI64();
        snap.theta = dec.readVecF64();
        snap.prevPoint = dec.readVecF64();
        snap.havePrev = dec.readBool();
        snap.ePrev = dec.readF64();
        snap.haveIterPrev = dec.readBool();
        snap.eIterPrev = dec.readF64();
        snap.jobsUsed = dec.readU64();
        snap.retriesUsed = dec.readU64();
        snap.rejections = dec.readU64();
        snap.faultsSeen = dec.readU64();
        snap.faultRetries = dec.readU64();
        snap.evalsCarriedForward = dec.readU64();
        snap.simTimeSeconds = dec.readF64();
        snap.backoffSeconds = dec.readF64();
        snap.optimizerRng = decodeRng(dec);
        snap.executorJobs = dec.readU64();
        snap.executorCircuits = dec.readU64();
        snap.policyState = dec.readString();
        snap.optimizerState = dec.readString();
        if (!dec.atEnd())
            throw SnapshotError("snapshot payload has " +
                                std::to_string(dec.remaining()) +
                                " trailing bytes");
        return snap;
    }
    catch (const SerialError &err) {
        throw SnapshotError(std::string("malformed snapshot payload: ") +
                            err.what());
    }
}

void
saveSnapshotFile(const std::string &path, const RunSnapshot &snapshot)
{
    const std::string payload = snapshot.encode();
    Encoder enc;
    enc.writeU8(static_cast<std::uint8_t>(kMagic[0]));
    enc.writeU8(static_cast<std::uint8_t>(kMagic[1]));
    enc.writeU8(static_cast<std::uint8_t>(kMagic[2]));
    enc.writeU8(static_cast<std::uint8_t>(kMagic[3]));
    enc.writeU32(kSnapshotVersion);
    enc.writeU64(payload.size());
    std::string bytes = enc.take();
    bytes += payload;
    Encoder sum;
    sum.writeU64(fnv1a64(payload));
    bytes += sum.bytes();
    atomicWriteFile(path, bytes);
}

RunSnapshot
loadSnapshotFile(const std::string &path)
{
    std::string bytes;
    try {
        bytes = readFile(path);
    }
    catch (const FileError &err) {
        throw SnapshotError(std::string("cannot read snapshot: ") +
                            err.what());
    }
    constexpr std::uint64_t kHeaderSize = 16; // magic + version + len
    if (bytes.size() < kHeaderSize + 8)
        throw SnapshotError("snapshot '" + path +
                            "' is truncated below its header (" +
                            std::to_string(bytes.size()) + " bytes)");
    Decoder dec(bytes);
    char magic[4];
    for (char &c : magic)
        c = static_cast<char>(dec.readU8());
    if (magic[0] != kMagic[0] || magic[1] != kMagic[1] ||
        magic[2] != kMagic[2] || magic[3] != kMagic[3])
        throw SnapshotError("snapshot '" + path + "' has bad magic");
    const std::uint32_t version = dec.readU32();
    if (version != kSnapshotVersion)
        throw SnapshotError("snapshot '" + path +
                            "' has unsupported version " +
                            std::to_string(version));
    const std::uint64_t length = dec.readU64();
    if (length != bytes.size() - kHeaderSize - 8)
        throw SnapshotError(
            "snapshot '" + path + "' payload length " +
            std::to_string(length) + " does not match file size");
    const std::string payload =
        bytes.substr(kHeaderSize, static_cast<std::size_t>(length));
    Decoder tail(std::string_view(bytes).substr(
        static_cast<std::size_t>(kHeaderSize + length)));
    const std::uint64_t stored = tail.readU64();
    if (stored != fnv1a64(payload))
        throw SnapshotError("snapshot '" + path +
                            "' failed its payload checksum");
    return RunSnapshot::decode(payload);
}

} // namespace qismet
