#include "persist/checkpoint.hpp"

#include <filesystem>

#include "fault/crash_point.hpp"

namespace qismet {

CheckpointManager::CheckpointManager(CheckpointConfig config,
                                     std::uint64_t config_digest)
    : config_(std::move(config)), configDigest_(config_digest)
{
    if (config_.dir.empty())
        throw CheckpointError("checkpoint directory must not be empty");
    if (config_.snapshotEveryIters == 0)
        config_.snapshotEveryIters = 1;
    std::filesystem::create_directories(config_.dir);
}

std::optional<CheckpointManager::Recovered>
CheckpointManager::recover()
{
    if (!config_.resume)
        return std::nullopt;
    const bool haveSnapshot = fileExists(snapshotPath());
    const bool haveJournal = fileExists(journalPath());
    if (!haveSnapshot && !haveJournal)
        // --resume on a virgin directory: "resume if possible".
        return std::nullopt;
    if (!haveSnapshot) {
        // The run died before its first snapshot landed; the journal
        // alone cannot seed component state, so start over.
        diagnostics_ +=
            "journal present but no snapshot; restarting from scratch\n";
        return std::nullopt;
    }
    if (!haveJournal)
        throw CheckpointError(
            "checkpoint '" + config_.dir +
            "' has a snapshot but no journal — refusing to resume");

    const RunSnapshot snapshot = loadSnapshotFile(snapshotPath());
    if (snapshot.configDigest != configDigest_)
        throw CheckpointError(
            "snapshot '" + snapshotPath() +
            "' belongs to a different run configuration — refusing to "
            "resume");

    const JournalScanResult scan = scanJournal(journalPath());
    if (scan.configDigest != configDigest_)
        throw CheckpointError(
            "journal '" + journalPath() +
            "' belongs to a different run configuration — refusing to "
            "resume");
    if (scan.tornTail)
        diagnostics_ += scan.diagnostic + "\n";

    if (scan.frames.size() < snapshot.journalFrames)
        throw CheckpointError(
            "journal '" + journalPath() + "' holds " +
            std::to_string(scan.frames.size()) +
            " valid frames but the snapshot was taken at " +
            std::to_string(snapshot.journalFrames) +
            " — journal and snapshot disagree");
    if (scan.cleanOffset < snapshot.journalOffset)
        throw CheckpointError(
            "journal '" + journalPath() +
            "' is shorter than the snapshot's recorded offset");

    Recovered recovered;
    recovered.snapshot = snapshot;
    recovered.frames.assign(
        scan.frames.begin(),
        scan.frames.begin() +
            static_cast<std::ptrdiff_t>(snapshot.journalFrames));
    const std::uint64_t replayed = snapshot.journalFrames;
    if (scan.frames.size() > replayed)
        diagnostics_ +=
            "discarding " +
            std::to_string(scan.frames.size() - replayed) +
            " journal frames past the last snapshot (they will be "
            "re-executed deterministically)\n";
    return recovered;
}

void
CheckpointManager::beginFresh()
{
    journal_.emplace(journalPath(), configDigest_,
                     DurableFile::Mode::Truncate);
}

void
CheckpointManager::beginResumed(const Recovered &recovered)
{
    journal_.emplace(journalPath(), configDigest_,
                     DurableFile::Mode::Append,
                     recovered.snapshot.journalOffset,
                     recovered.snapshot.journalFrames);
}

void
CheckpointManager::appendJob(const JournalJobRecord &record)
{
    journal_->appendJob(record);
}

void
CheckpointManager::appendIteration(const JournalIterationRecord &record)
{
    journal_->appendIteration(record);
}

void
CheckpointManager::writeSnapshot(RunSnapshot snapshot)
{
    CrashPoints::hit(kCrashBeforeSnapshot);
    snapshot.configDigest = configDigest_;
    snapshot.journalFrames = journal_->frames();
    snapshot.journalOffset = journal_->offset();
    saveSnapshotFile(snapshotPath(), snapshot);
}

std::uint64_t
CheckpointManager::journalFrames() const
{
    return journal_->frames();
}

} // namespace qismet
