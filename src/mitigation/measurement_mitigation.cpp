#include "mitigation/measurement_mitigation.hpp"

#include <array>
#include <cmath>
#include <stdexcept>

namespace qismet {

MeasurementMitigator::MeasurementMitigator(int num_qubits)
    : numQubits_(num_qubits)
{
    if (num_qubits <= 0 || num_qubits > 20)
        throw std::invalid_argument("MeasurementMitigator: bad qubit count");
    confusion_.assign(static_cast<std::size_t>(num_qubits),
                      {{{1.0, 0.0}, {0.0, 1.0}}});
    computeInverses();
}

MeasurementMitigator::MeasurementMitigator(
    int num_qubits, const std::vector<ReadoutError> &readout)
    : MeasurementMitigator(num_qubits)
{
    if (static_cast<int>(readout.size()) < num_qubits)
        throw std::invalid_argument(
            "MeasurementMitigator: readout entries fewer than qubits");
    for (int q = 0; q < num_qubits; ++q) {
        readout[q].check();
        // Column = true state, row = read value.
        confusion_[q][0][0] = 1.0 - readout[q].p10;
        confusion_[q][1][0] = readout[q].p10;
        confusion_[q][0][1] = readout[q].p01;
        confusion_[q][1][1] = 1.0 - readout[q].p01;
    }
    computeInverses();
}

MeasurementMitigator
MeasurementMitigator::calibrate(int num_qubits, const ShotSampler &sampler,
                                std::size_t shots, Rng &rng)
{
    if (shots == 0)
        throw std::invalid_argument("calibrate: need at least one shot");

    const std::size_t dim = std::size_t{1} << num_qubits;

    // Ideal preparations: |0...0> and |1...1>.
    std::vector<double> zeros(dim, 0.0);
    zeros[0] = 1.0;
    std::vector<double> ones(dim, 0.0);
    ones[dim - 1] = 1.0;

    const Counts c0 = sampler.sample(zeros, num_qubits, shots, rng);
    const Counts c1 = sampler.sample(ones, num_qubits, shots, rng);

    std::vector<ReadoutError> fitted(static_cast<std::size_t>(num_qubits));
    const double total = static_cast<double>(shots);
    for (int q = 0; q < num_qubits; ++q) {
        const std::uint64_t bit = std::uint64_t{1} << q;
        double read1_given0 = 0.0;
        double read0_given1 = 0.0;
        for (const auto &[bits, n] : c0)
            if (bits & bit)
                read1_given0 += static_cast<double>(n);
        for (const auto &[bits, n] : c1)
            if (!(bits & bit))
                read0_given1 += static_cast<double>(n);
        fitted[q].p10 = read1_given0 / total;
        fitted[q].p01 = read0_given1 / total;
    }
    return MeasurementMitigator(num_qubits, fitted);
}

void
MeasurementMitigator::computeInverses()
{
    inverse_.resize(confusion_.size());
    for (std::size_t q = 0; q < confusion_.size(); ++q) {
        const auto &a = confusion_[q];
        const double det = a[0][0] * a[1][1] - a[0][1] * a[1][0];
        if (std::abs(det) < 1e-9)
            throw std::runtime_error(
                "MeasurementMitigator: singular confusion matrix");
        inverse_[q][0][0] = a[1][1] / det;
        inverse_[q][0][1] = -a[0][1] / det;
        inverse_[q][1][0] = -a[1][0] / det;
        inverse_[q][1][1] = a[0][0] / det;
    }
}

std::vector<double>
MeasurementMitigator::mitigateProbabilities(
    const std::vector<double> &measured) const
{
    const std::size_t dim = std::size_t{1} << numQubits_;
    if (measured.size() != dim)
        throw std::invalid_argument("mitigateProbabilities: size mismatch");

    // Apply each qubit's 2x2 inverse along its axis (tensored solve).
    std::vector<double> p = measured;
    for (int q = 0; q < numQubits_; ++q) {
        const auto &inv = inverse_[static_cast<std::size_t>(q)];
        const std::size_t stride = std::size_t{1} << q;
        for (std::size_t base = 0; base < dim; base += 2 * stride) {
            for (std::size_t off = 0; off < stride; ++off) {
                const std::size_t i0 = base + off;
                const std::size_t i1 = i0 + stride;
                const double a = p[i0];
                const double b = p[i1];
                p[i0] = inv[0][0] * a + inv[0][1] * b;
                p[i1] = inv[1][0] * a + inv[1][1] * b;
            }
        }
    }
    return p;
}

std::vector<double>
MeasurementMitigator::mitigateCounts(const Counts &counts) const
{
    return mitigateProbabilities(countsToProbabilities(counts, numQubits_));
}

std::vector<double>
MeasurementMitigator::clipToPhysical(std::vector<double> quasi)
{
    double sum = 0.0;
    for (auto &x : quasi) {
        if (x < 0.0)
            x = 0.0;
        sum += x;
    }
    if (sum <= 0.0)
        throw std::runtime_error("clipToPhysical: all-zero vector");
    for (auto &x : quasi)
        x /= sum;
    return quasi;
}

const std::array<std::array<double, 2>, 2> &
MeasurementMitigator::confusion(int q) const
{
    if (q < 0 || q >= numQubits_)
        throw std::out_of_range("MeasurementMitigator::confusion: qubit");
    return confusion_[static_cast<std::size_t>(q)];
}

} // namespace qismet
