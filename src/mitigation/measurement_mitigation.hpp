/**
 * @file
 * Measurement-error mitigation ("measurement error mitigation" circuits
 * in paper Fig. 7's dark-gray boxes).
 *
 * Tensored calibration: for each qubit a 2x2 confusion matrix
 * A_q = [[P(0|0), P(0|1)], [P(1|0), P(1|1)]] is estimated (or taken
 * exactly from a known ReadoutError), and measured probability vectors
 * are corrected by applying A_q^{-1} per qubit. The corrected vector is
 * a quasi-probability; `clipToPhysical` projects it back onto the
 * simplex.
 */

#ifndef QISMET_MITIGATION_MEASUREMENT_MITIGATION_HPP
#define QISMET_MITIGATION_MEASUREMENT_MITIGATION_HPP

#include <array>
#include <vector>

#include "common/rng.hpp"
#include "sim/shot_sampler.hpp"

namespace qismet {

/** Tensored (per-qubit) measurement-error mitigator. */
class MeasurementMitigator
{
  public:
    /** Identity mitigator (no correction) over num_qubits qubits. */
    explicit MeasurementMitigator(int num_qubits);

    /** Exact mitigator from known readout-error rates. */
    MeasurementMitigator(int num_qubits,
                         const std::vector<ReadoutError> &readout);

    /**
     * Empirical calibration: sample the all-zeros and all-ones
     * preparations through the given sampler and fit per-qubit
     * confusion matrices from the marginals.
     *
     * @param sampler The noisy readout channel being calibrated.
     * @param shots Calibration shots per preparation.
     */
    static MeasurementMitigator calibrate(int num_qubits,
                                          const ShotSampler &sampler,
                                          std::size_t shots, Rng &rng);

    int numQubits() const { return numQubits_; }

    /** Number of calibration circuits this scheme executes (2). */
    static constexpr int kCalibrationCircuits = 2;

    /**
     * Apply the per-qubit inverse confusion matrices to a measured
     * probability vector (size 2^n). Result may contain small negative
     * entries.
     */
    std::vector<double> mitigateProbabilities(
        const std::vector<double> &measured) const;

    /** Mitigate a counts histogram (normalizes first). */
    std::vector<double> mitigateCounts(const Counts &counts) const;

    /** Clip negatives to zero and renormalize to sum 1. */
    static std::vector<double> clipToPhysical(std::vector<double> quasi);

    /** The 2x2 confusion matrix of qubit q (row = read, col = true). */
    const std::array<std::array<double, 2>, 2> &confusion(int q) const;

  private:
    int numQubits_;
    /** Per-qubit confusion matrices. */
    std::vector<std::array<std::array<double, 2>, 2>> confusion_;
    /** Per-qubit inverse confusion matrices. */
    std::vector<std::array<std::array<double, 2>, 2>> inverse_;

    void computeInverses();
};

} // namespace qismet

#endif // QISMET_MITIGATION_MEASUREMENT_MITIGATION_HPP
