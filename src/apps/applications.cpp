#include "apps/applications.hpp"

#include <stdexcept>

#include "ansatz/efficient_su2.hpp"
#include "ansatz/real_amplitudes.hpp"

namespace qismet {

ApplicationSpec
applicationSpec(int index)
{
    // Table 1: Application | Qubits | Ansatz | Reps | Machine / trial.
    switch (index) {
      case 1: return {"App1", 6, "SU2", 2, "toronto", 1};
      case 2: return {"App2", 6, "RA", 4, "guadalupe", 1};
      case 3: return {"App3", 6, "RA", 4, "guadalupe", 2};
      case 4: return {"App4", 6, "SU2", 4, "toronto", 2};
      case 5: return {"App5", 6, "RA", 8, "cairo", 1};
      case 6: return {"App6", 6, "RA", 8, "casablanca", 1};
      default:
        throw std::invalid_argument("applicationSpec: index must be 1..6");
    }
}

std::unique_ptr<Ansatz>
makeAnsatz(const std::string &name, int num_qubits, int reps)
{
    if (name == "SU2")
        return std::make_unique<EfficientSU2>(num_qubits, reps);
    if (name == "RA")
        return std::make_unique<RealAmplitudes>(num_qubits, reps);
    throw std::invalid_argument("makeAnsatz: unknown ansatz '" + name + "'");
}

Application
buildApplication(const ApplicationSpec &spec)
{
    Application app;
    app.spec = spec;

    TfimParams tfim;
    tfim.numQubits = spec.numQubits;
    tfim.j = 1.0;
    tfim.h = 1.0;
    app.hamiltonian = tfimHamiltonian(tfim);
    app.exactGroundEnergy = tfimExactGroundEnergy(tfim);

    app.ansatzCircuit =
        makeAnsatz(spec.ansatzName, spec.numQubits, spec.reps)->build();
    app.machine = machineModel(spec.machineName);
    return app;
}

Application
application(int index)
{
    return buildApplication(applicationSpec(index));
}

std::vector<Application>
allApplications()
{
    std::vector<Application> apps;
    apps.reserve(6);
    for (int i = 1; i <= 6; ++i)
        apps.push_back(application(i));
    return apps;
}

} // namespace qismet
