/**
 * @file
 * Multi-scheme experiment orchestration and the improvement metrics the
 * paper reports.
 *
 * Metric conventions (used consistently in EXPERIMENTS.md):
 *  - estimate error  = final reported estimate - exact ground energy;
 *  - solution error  = noise-free energy of the final parameters -
 *    exact ground energy (true tuning quality);
 *  - VQA fidelity of an estimate E = (E_mixed - E) / (E_mixed -
 *    E_exact), i.e. the fraction of the exact objective swing the
 *    measured expectation achieves (floored at a small positive value);
 *  - improvement factor of scheme S over the baseline B
 *      = fidelity(E_S) / fidelity(E_B),
 *    matching the paper's "improve the fidelity of VQAs by 1.3x-3x";
 *  - percentage improvement = (E_B - E_S) / |E_B| on the final
 *    estimates, matching the paper's "XX% improvement in VQA
 *    estimation" phrasing (Fig. 13).
 */

#ifndef QISMET_APPS_EXPERIMENT_RUNNER_HPP
#define QISMET_APPS_EXPERIMENT_RUNNER_HPP

#include <string>
#include <vector>

#include "apps/applications.hpp"
#include "core/qismet_vqe.hpp"

namespace qismet {

/** One scheme's outcome in a comparison. */
struct SchemeOutcome
{
    std::string scheme;
    QismetVqeResult result;
    /** fidelity(this) / fidelity(baseline) on final estimates. */
    double improvementFactor = 1.0;
    /** (E_base - E_this) / |E_base| on final estimates. */
    double improvementPercent = 0.0;
};

/** A full comparison on one application. */
struct Comparison
{
    std::string applicationId;
    double exactGroundEnergy = 0.0;
    std::vector<SchemeOutcome> outcomes;

    /** Outcome of the given scheme; throws when absent. */
    const SchemeOutcome &outcome(const std::string &scheme_name) const;
};

/**
 * Run several schemes on one application under a shared seed / job
 * budget / trace, and fill in improvement metrics relative to
 * Scheme::Baseline (which is appended automatically when missing).
 */
Comparison runComparison(const Application &app,
                         const std::vector<Scheme> &schemes,
                         const QismetVqeConfig &base_config);

/**
 * VQA fidelity of a measured estimate: the achieved fraction of the
 * exact objective swing, floored at `floor_fidelity` so schemes that
 * drift past the mixed-state value still yield finite ratios.
 */
double vqaFidelity(double estimate, double mixed_energy,
                   double exact_ground_energy,
                   double floor_fidelity = 0.02);

/** fidelity(scheme) / fidelity(baseline) on final estimates. */
double improvementFactor(double baseline_estimate, double scheme_estimate,
                         double mixed_energy, double exact_ground_energy);

/** Mean of each scheme's improvement factor across comparisons. */
std::vector<std::pair<std::string, double>> meanImprovements(
    const std::vector<Comparison> &comparisons);

} // namespace qismet

#endif // QISMET_APPS_EXPERIMENT_RUNNER_HPP
