#include "apps/experiment_runner.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace qismet {

const SchemeOutcome &
Comparison::outcome(const std::string &scheme_name) const
{
    for (const auto &o : outcomes)
        if (o.scheme == scheme_name)
            return o;
    throw std::invalid_argument("Comparison::outcome: no scheme '" +
                                scheme_name + "'");
}

double
vqaFidelity(double estimate, double mixed_energy,
            double exact_ground_energy, double floor_fidelity)
{
    const double swing = mixed_energy - exact_ground_energy;
    if (swing == 0.0)
        throw std::invalid_argument("vqaFidelity: zero objective swing");
    return std::max(floor_fidelity, (mixed_energy - estimate) / swing);
}

double
improvementFactor(double baseline_estimate, double scheme_estimate,
                  double mixed_energy, double exact_ground_energy)
{
    return vqaFidelity(scheme_estimate, mixed_energy,
                       exact_ground_energy) /
           vqaFidelity(baseline_estimate, mixed_energy,
                       exact_ground_energy);
}

Comparison
runComparison(const Application &app, const std::vector<Scheme> &schemes,
              const QismetVqeConfig &base_config)
{
    std::vector<Scheme> all = schemes;
    if (std::find(all.begin(), all.end(), Scheme::Baseline) == all.end())
        all.insert(all.begin(), Scheme::Baseline);

    const QismetVqe runner = app.makeRunner();

    Comparison cmp;
    cmp.applicationId = app.spec.id;
    cmp.exactGroundEnergy = app.exactGroundEnergy;

    for (Scheme s : all) {
        QismetVqeConfig cfg = base_config;
        cfg.scheme = s;
        cfg.traceVersion = app.spec.traceVersion;
        // Each scheme gets its own journal/snapshot pair so a killed
        // comparison resumes per scheme (the config digest would
        // reject cross-scheme reuse anyway).
        if (!cfg.checkpointDir.empty()) {
            cfg.checkpointDir += '/';
            cfg.checkpointDir += schemeName(s);
        }

        SchemeOutcome out;
        out.scheme = schemeName(s);
        out.result = runner.run(cfg);
        cmp.outcomes.push_back(std::move(out));
    }

    const QismetVqeResult &base =
        cmp.outcome(schemeName(Scheme::Baseline)).result;
    const double base_est = base.run.finalEstimate;

    for (auto &o : cmp.outcomes) {
        o.improvementFactor = improvementFactor(
            base_est, o.result.run.finalEstimate, base.mixedEnergy,
            cmp.exactGroundEnergy);
        o.improvementPercent =
            std::abs(base_est) > 1e-12
                ? (base_est - o.result.run.finalEstimate) /
                      std::abs(base_est)
                : 0.0;
    }
    return cmp;
}

std::vector<std::pair<std::string, double>>
meanImprovements(const std::vector<Comparison> &comparisons)
{
    std::map<std::string, std::pair<double, int>> acc;
    std::vector<std::string> order;
    for (const auto &cmp : comparisons) {
        for (const auto &o : cmp.outcomes) {
            auto it = acc.find(o.scheme);
            if (it == acc.end()) {
                acc.emplace(o.scheme,
                            std::make_pair(o.improvementFactor, 1));
                order.push_back(o.scheme);
            } else {
                it->second.first += o.improvementFactor;
                it->second.second += 1;
            }
        }
    }
    std::vector<std::pair<std::string, double>> out;
    out.reserve(order.size());
    for (const auto &name : order) {
        const auto &[sum, n] = acc.at(name);
        out.emplace_back(name, sum / static_cast<double>(n));
    }
    return out;
}

} // namespace qismet
