/**
 * @file
 * The paper's VQA application suite (Table 1): six 6-qubit TFIM VQE
 * instances differing in ansatz family, entangling-block repetitions
 * and machine trace. Deeper ansatz + noisier machine = more transient
 * exposure (paper Section 3.2), which is why App5/App6 show the largest
 * QISMET benefits in Fig. 17.
 */

#ifndef QISMET_APPS_APPLICATIONS_HPP
#define QISMET_APPS_APPLICATIONS_HPP

#include <memory>
#include <string>
#include <vector>

#include "ansatz/ansatz.hpp"
#include "core/qismet_vqe.hpp"
#include "hamiltonian/tfim.hpp"
#include "noise/machine_model.hpp"

namespace qismet {

/** One Table-1 row. */
struct ApplicationSpec
{
    std::string id;          ///< "App1" ... "App6"
    int numQubits = 6;
    std::string ansatzName;  ///< "SU2" or "RA"
    int reps = 2;
    std::string machineName; ///< lower-case machine key
    int traceVersion = 1;    ///< the "(v1)" / "(v2)" trial index
};

/** A fully built application ready to run. */
struct Application
{
    ApplicationSpec spec;
    PauliSum hamiltonian{6};
    Circuit ansatzCircuit{6};
    MachineModel machine;
    double exactGroundEnergy = 0.0;

    /** Build the integrated experiment runner for this application. */
    QismetVqe makeRunner() const
    {
        return QismetVqe(hamiltonian, ansatzCircuit, machine,
                         exactGroundEnergy);
    }
};

/** Table 1 specs (index 1..6). */
ApplicationSpec applicationSpec(int index);

/** Build an application from its spec. */
Application buildApplication(const ApplicationSpec &spec);

/** Convenience: buildApplication(applicationSpec(index)). */
Application application(int index);

/** All six applications. */
std::vector<Application> allApplications();

/** Construct the named ansatz ("SU2" or "RA"). */
std::unique_ptr<Ansatz> makeAnsatz(const std::string &name, int num_qubits,
                                   int reps);

} // namespace qismet

#endif // QISMET_APPS_APPLICATIONS_HPP
