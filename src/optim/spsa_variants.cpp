#include "optim/spsa_variants.hpp"

#include <cmath>
#include <stdexcept>

#include "common/eigen.hpp"
#include "common/matrix.hpp"

namespace qismet {

ResamplingSpsa::ResamplingSpsa(SpsaGains gains, int samples)
    : Spsa(gains), samples_(samples)
{
    if (samples < 1)
        throw std::invalid_argument("ResamplingSpsa: samples must be >= 1");
}

std::vector<std::vector<double>>
ResamplingSpsa::plan(const std::vector<double> &theta, int k, Rng &rng)
{
    deltas_.clear();
    std::vector<std::vector<double>> points;
    const double c_k = gains_.perturbation(k);
    for (int s = 0; s < samples_; ++s) {
        deltas_.push_back(rademacher(theta.size(), rng));
        std::vector<double> plus = theta;
        std::vector<double> minus = theta;
        for (std::size_t i = 0; i < theta.size(); ++i) {
            plus[i] += c_k * deltas_.back()[i];
            minus[i] -= c_k * deltas_.back()[i];
        }
        points.push_back(std::move(plus));
        points.push_back(std::move(minus));
    }
    return points;
}

std::vector<double>
ResamplingSpsa::propose(const std::vector<double> &theta, int k,
                        const std::vector<double> &energies)
{
    if (energies.size() != 2 * static_cast<std::size_t>(samples_))
        throw std::invalid_argument("ResamplingSpsa::propose: energy count");

    std::vector<double> g(theta.size(), 0.0);
    const double c_k = gains_.perturbation(k);
    for (int s = 0; s < samples_; ++s) {
        const auto gs = pairGradient(deltas_[static_cast<std::size_t>(s)],
                                     energies[2 * s], energies[2 * s + 1],
                                     c_k);
        for (std::size_t i = 0; i < g.size(); ++i)
            g[i] += gs[i] / static_cast<double>(samples_);
    }

    const double a_k = gains_.stepSize(k);
    std::vector<double> next = theta;
    for (std::size_t i = 0; i < theta.size(); ++i)
        next[i] -= a_k * g[i];
    return next;
}

SecondOrderSpsa::SecondOrderSpsa(SpsaGains gains, double regularization)
    : Spsa(gains), regularization_(regularization)
{
    if (regularization <= 0.0)
        throw std::invalid_argument(
            "SecondOrderSpsa: regularization must be > 0");
}

std::vector<std::vector<double>>
SecondOrderSpsa::plan(const std::vector<double> &theta, int k, Rng &rng)
{
    delta_ = rademacher(theta.size(), rng);
    delta2_ = rademacher(theta.size(), rng);
    const double c_k = gains_.perturbation(k);

    // Points: θ+cΔ, θ-cΔ (gradient pair) and the same pair shifted by
    // cΔ₂ (Hessian probes).
    std::vector<std::vector<double>> pts(4, theta);
    for (std::size_t i = 0; i < theta.size(); ++i) {
        pts[0][i] += c_k * delta_[i];
        pts[1][i] -= c_k * delta_[i];
        pts[2][i] += c_k * (delta_[i] + delta2_[i]);
        pts[3][i] += c_k * (-delta_[i] + delta2_[i]);
    }
    return pts;
}

std::vector<double>
SecondOrderSpsa::propose(const std::vector<double> &theta, int k,
                         const std::vector<double> &energies)
{
    if (energies.size() != 4)
        throw std::invalid_argument("SecondOrderSpsa::propose: energy count");
    const std::size_t d = theta.size();
    const double c_k = gains_.perturbation(k);

    const std::vector<double> g =
        pairGradient(delta_, energies[0], energies[1], c_k);

    // Hessian sample: δ = [E(θ+cΔ+cΔ₂) - E(θ+cΔ)] - [E(θ-cΔ+cΔ₂) - E(θ-cΔ)]
    // Ĥ = δ / (2 c²) · (Δ Δ₂ᵀ + Δ₂ Δᵀ) / 2.
    const double delta_e =
        (energies[2] - energies[0]) - (energies[3] - energies[1]);
    const double scale = delta_e / (4.0 * c_k * c_k);

    if (hessian_.empty())
        hessian_.assign(d, std::vector<double>(d, 0.0));

    // Exponential smoothing over iterations.
    const double w = 1.0 / static_cast<double>(hessianSamples_ + 1);
    for (std::size_t r = 0; r < d; ++r)
        for (std::size_t c = 0; c < d; ++c) {
            const double sample =
                scale * (delta_[r] * delta2_[c] + delta2_[r] * delta_[c]);
            hessian_[r][c] = (1.0 - w) * hessian_[r][c] + w * sample;
        }
    ++hessianSamples_;

    // Precondition with the matrix absolute value |H̄| + λI (Spall's
    // 2-SPSA PD enforcement): a noisy smoothed Hessian is typically
    // indefinite, and solving against it directly would invert the
    // step along its negative eigendirections.
    const EigenResult eig = eigRealSymmetric(hessian_);
    std::vector<double> step(d, 0.0);
    for (std::size_t m = 0; m < d; ++m) {
        // Project g on eigenvector m, scale by 1/(|λ_m| + reg).
        double proj = 0.0;
        for (std::size_t i = 0; i < d; ++i)
            proj += eig.vectors(i, m).real() * g[i];
        const double denom = std::abs(eig.values[m]) + regularization_;
        for (std::size_t i = 0; i < d; ++i)
            step[i] += eig.vectors(i, m).real() * proj / denom;
    }

    // Trust region: an ill-conditioned Hessian estimate (common under
    // transients) can inflate the preconditioned step enormously; cap
    // its norm at a small multiple of the raw gradient's.
    double g_norm = 0.0, s_norm = 0.0;
    for (std::size_t i = 0; i < d; ++i) {
        g_norm += g[i] * g[i];
        s_norm += step[i] * step[i];
    }
    g_norm = std::sqrt(g_norm);
    s_norm = std::sqrt(s_norm);
    const double cap = 4.0 * g_norm;
    if (s_norm > cap && s_norm > 0.0)
        for (auto &s : step)
            s *= cap / s_norm;

    const double a_k = gains_.stepSize(k);
    std::vector<double> next = theta;
    for (std::size_t i = 0; i < d; ++i)
        next[i] -= a_k * step[i];
    return next;
}

void
ResamplingSpsa::saveState(Encoder &enc) const
{
    Spsa::saveState(enc);
    enc.writeU64(deltas_.size());
    for (const auto &delta : deltas_)
        enc.writeVecF64(delta);
}

void
ResamplingSpsa::loadState(Decoder &dec)
{
    Spsa::loadState(dec);
    const std::uint64_t count = dec.readU64();
    deltas_.clear();
    for (std::uint64_t i = 0; i < count; ++i)
        deltas_.push_back(dec.readVecF64());
}

void
SecondOrderSpsa::saveState(Encoder &enc) const
{
    Spsa::saveState(enc);
    enc.writeVecF64(delta2_);
    enc.writeI64(hessianSamples_);
    enc.writeU64(hessian_.size());
    for (const auto &row : hessian_)
        enc.writeVecF64(row);
}

void
SecondOrderSpsa::loadState(Decoder &dec)
{
    Spsa::loadState(dec);
    delta2_ = dec.readVecF64();
    hessianSamples_ = static_cast<int>(dec.readI64());
    const std::uint64_t rows = dec.readU64();
    hessian_.clear();
    for (std::uint64_t i = 0; i < rows; ++i)
        hessian_.push_back(dec.readVecF64());
}

} // namespace qismet
