/**
 * @file
 * The paper's alternative SPSA optimization schemes (Section 6.3):
 *
 *  - Resampling: the gradient is sampled twice per iteration with
 *    independent perturbation directions and averaged ("increases the
 *    number of times the gradient is sampled (we use 2x)"). 2x circuit
 *    cost per iteration.
 *  - 2nd-order (2-SPSA / QN-SPSA style): estimates the Hessian from two
 *    extra perturbed pairs and preconditions the gradient ("estimates
 *    second-order derivatives to condition the gradient"). 2x circuit
 *    cost; imperfect Hessians under transients can skew updates, which
 *    is exactly the failure mode Fig. 14/17 report.
 */

#ifndef QISMET_OPTIM_SPSA_VARIANTS_HPP
#define QISMET_OPTIM_SPSA_VARIANTS_HPP

#include "optim/spsa.hpp"

namespace qismet {

/** SPSA with 2x gradient resampling. */
class ResamplingSpsa : public Spsa
{
  public:
    /** @param samples Gradient samples per iteration (paper uses 2). */
    explicit ResamplingSpsa(SpsaGains gains = {}, int samples = 2);

    std::string name() const override { return "Resampling"; }
    double evaluationCostFactor() const override
    {
        return static_cast<double>(samples_);
    }

    std::vector<std::vector<double>> plan(const std::vector<double> &theta,
                                          int k, Rng &rng) override;
    std::vector<double> propose(const std::vector<double> &theta, int k,
                                const std::vector<double> &energies) override;

    void saveState(Encoder &enc) const override;
    void loadState(Decoder &dec) override;

  private:
    int samples_;
    std::vector<std::vector<double>> deltas_;
};

/** Second-order SPSA (2-SPSA) with a smoothed Hessian preconditioner. */
class SecondOrderSpsa : public Spsa
{
  public:
    /**
     * @param regularization Added to the Hessian diagonal before the
     *        solve (keeps the preconditioner positive definite). The
     *        default keeps the preconditioner close to the identity so
     *        the scheme degrades gracefully — without it, transient-
     *        corrupted Hessian samples make the step explode.
     */
    explicit SecondOrderSpsa(SpsaGains gains = {},
                             double regularization = 0.08);

    std::string name() const override { return "2nd-order"; }
    double evaluationCostFactor() const override { return 2.0; }

    std::vector<std::vector<double>> plan(const std::vector<double> &theta,
                                          int k, Rng &rng) override;
    std::vector<double> propose(const std::vector<double> &theta, int k,
                                const std::vector<double> &energies) override;

    void saveState(Encoder &enc) const override;
    void loadState(Decoder &dec) override;

  private:
    double regularization_;
    std::vector<double> delta2_;
    /** Exponentially smoothed Hessian estimate. */
    std::vector<std::vector<double>> hessian_;
    int hessianSamples_ = 0;
};

} // namespace qismet

#endif // QISMET_OPTIM_SPSA_VARIANTS_HPP
