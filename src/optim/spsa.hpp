/**
 * @file
 * SPSA — Simultaneous Perturbation Stochastic Approximation (Spall),
 * the classical tuner used throughout the paper's evaluation
 * ("Simulations are run ... using the SPSA tuner").
 *
 * The optimizer is split into two phases so the VQE driver can place
 * all of an iteration's circuit evaluations inside one quantum job
 * (paper Fig. 7):
 *   - plan(θ, k): the parameter points whose energies the iteration
 *     needs (for plain SPSA: θ ± c_k Δ);
 *   - propose(θ, k, energies): the next parameter vector given those
 *     energies.
 * Retried jobs (QISMET skips) re-execute the same plan, so a plan is
 * created once per candidate and is deterministic thereafter.
 */

#ifndef QISMET_OPTIM_SPSA_HPP
#define QISMET_OPTIM_SPSA_HPP

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/serial.hpp"

namespace qismet {

/** Standard SPSA gain schedule a_k = a/(k+1+A)^α, c_k = c/(k+1)^γ. */
struct SpsaGains
{
    double a = 0.2;
    double c = 0.15;
    /** Stability constant; typically ~1% of the expected iterations. */
    double bigA = 20.0;
    double alpha = 0.602;
    double gamma = 0.101;

    /** Step size at iteration k. */
    double stepSize(int k) const;
    /** Perturbation size at iteration k. */
    double perturbation(int k) const;

    /**
     * Gains sized for a run of `horizon` iterations, following the
     * standard SPSA guidance: A ≈ 10% of the horizon (so the learning
     * rate decays only a few-fold over the run instead of collapsing
     * early) and a scaled so the first steps move each parameter by
     * roughly `initial_step` × the per-coordinate gradient.
     */
    static SpsaGains forHorizon(std::size_t horizon,
                                double initial_step = 0.08,
                                double c = 0.12);
};

/** Abstract stochastic-gradient optimizer with job-friendly phases. */
class StochasticOptimizer
{
  public:
    virtual ~StochasticOptimizer() = default;

    /** Scheme name as used in the paper's figures. */
    virtual std::string name() const = 0;

    /**
     * Parameter points to evaluate for iteration k at θ. Stores the
     * perturbation directions internally; call exactly once per
     * candidate iteration.
     */
    virtual std::vector<std::vector<double>> plan(
        const std::vector<double> &theta, int k, Rng &rng) = 0;

    /**
     * Next parameter vector from the energies of the planned points
     * (same order as plan() returned).
     */
    virtual std::vector<double> propose(
        const std::vector<double> &theta, int k,
        const std::vector<double> &energies) = 0;

    /** Relative per-iteration circuit cost vs. plain SPSA (1.0). */
    virtual double evaluationCostFactor() const { return 1.0; }

    /**
     * Serialize all between-iteration mutable state (perturbation
     * directions planned but not yet consumed, smoothed accumulators)
     * for crash-safe checkpointing. Gains and other construction-time
     * configuration are NOT included — a resumed run reconstructs the
     * optimizer from its config and restores only this state.
     */
    virtual void saveState(Encoder &enc) const { (void)enc; }

    /** Restore state produced by saveState on an identical config. */
    virtual void loadState(Decoder &dec) { (void)dec; }
};

/** Plain first-order SPSA. */
class Spsa : public StochasticOptimizer
{
  public:
    explicit Spsa(SpsaGains gains = {});

    std::string name() const override { return "SPSA"; }

    std::vector<std::vector<double>> plan(const std::vector<double> &theta,
                                          int k, Rng &rng) override;
    std::vector<double> propose(const std::vector<double> &theta, int k,
                                const std::vector<double> &energies) override;

    const SpsaGains &gains() const { return gains_; }

    void saveState(Encoder &enc) const override;
    void loadState(Decoder &dec) override;

  protected:
    /** Draw a Rademacher (±1) direction vector. */
    static std::vector<double> rademacher(std::size_t dim, Rng &rng);

    /** Gradient estimate from one perturbation pair. */
    static std::vector<double> pairGradient(const std::vector<double> &delta,
                                            double e_plus, double e_minus,
                                            double c_k);

    SpsaGains gains_;
    std::vector<double> delta_;
};

} // namespace qismet

#endif // QISMET_OPTIM_SPSA_HPP
