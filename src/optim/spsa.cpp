#include "optim/spsa.hpp"

#include <cmath>
#include <stdexcept>

namespace qismet {

double
SpsaGains::stepSize(int k) const
{
    return a / std::pow(static_cast<double>(k) + 1.0 + bigA, alpha);
}

double
SpsaGains::perturbation(int k) const
{
    return c / std::pow(static_cast<double>(k) + 1.0, gamma);
}

SpsaGains
SpsaGains::forHorizon(std::size_t horizon, double initial_step, double c)
{
    SpsaGains g;
    g.bigA = std::max(10.0, 0.1 * static_cast<double>(horizon));
    g.alpha = 0.602;
    g.gamma = 0.101;
    g.c = c;
    g.a = initial_step * std::pow(1.0 + g.bigA, g.alpha);
    return g;
}

Spsa::Spsa(SpsaGains gains) : gains_(gains)
{
    if (gains_.a <= 0.0 || gains_.c <= 0.0)
        throw std::invalid_argument("Spsa: gains must be positive");
}

std::vector<double>
Spsa::rademacher(std::size_t dim, Rng &rng)
{
    std::vector<double> delta(dim);
    for (auto &d : delta)
        d = static_cast<double>(rng.sign());
    return delta;
}

std::vector<double>
Spsa::pairGradient(const std::vector<double> &delta, double e_plus,
                   double e_minus, double c_k)
{
    std::vector<double> g(delta.size());
    const double diff = (e_plus - e_minus) / (2.0 * c_k);
    for (std::size_t i = 0; i < delta.size(); ++i)
        g[i] = diff / delta[i];
    return g;
}

std::vector<std::vector<double>>
Spsa::plan(const std::vector<double> &theta, int k, Rng &rng)
{
    delta_ = rademacher(theta.size(), rng);
    const double c_k = gains_.perturbation(k);
    std::vector<double> plus = theta;
    std::vector<double> minus = theta;
    for (std::size_t i = 0; i < theta.size(); ++i) {
        plus[i] += c_k * delta_[i];
        minus[i] -= c_k * delta_[i];
    }
    return {plus, minus};
}

std::vector<double>
Spsa::propose(const std::vector<double> &theta, int k,
              const std::vector<double> &energies)
{
    if (energies.size() != 2)
        throw std::invalid_argument("Spsa::propose: expected 2 energies");
    if (delta_.size() != theta.size())
        throw std::logic_error("Spsa::propose: plan() not called");

    const std::vector<double> g =
        pairGradient(delta_, energies[0], energies[1],
                     gains_.perturbation(k));
    const double a_k = gains_.stepSize(k);
    std::vector<double> next = theta;
    for (std::size_t i = 0; i < theta.size(); ++i)
        next[i] -= a_k * g[i];
    return next;
}

void
Spsa::saveState(Encoder &enc) const
{
    enc.writeVecF64(delta_);
}

void
Spsa::loadState(Decoder &dec)
{
    delta_ = dec.readVecF64();
}

} // namespace qismet
