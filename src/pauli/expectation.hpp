/**
 * @file
 * Expectation-value evaluation of Pauli strings and sums against the
 * three state representations the library produces: exact statevectors,
 * density matrices, and finite-shot counts.
 */

#ifndef QISMET_PAULI_EXPECTATION_HPP
#define QISMET_PAULI_EXPECTATION_HPP

#include "pauli/pauli_string.hpp"
#include "pauli/pauli_sum.hpp"
#include "sim/density_matrix.hpp"
#include "sim/shot_sampler.hpp"
#include "sim/statevector.hpp"

namespace qismet {

/** Exact <ψ|P|ψ> without materializing the Pauli matrix. */
double expectation(const Statevector &state, const PauliString &pauli);

/** Exact <ψ|H|ψ> term-by-term. */
double expectation(const Statevector &state, const PauliSum &hamiltonian);

/** Tr(ρ P) without materializing the Pauli matrix. */
double expectation(const DensityMatrix &rho, const PauliString &pauli);

/** Tr(ρ H) term-by-term. */
double expectation(const DensityMatrix &rho, const PauliSum &hamiltonian);

/**
 * Estimate <P> from counts measured in a basis where every non-identity
 * factor of P was rotated to Z before measurement (see grouping.hpp).
 * The estimate is the average parity over the string's support.
 */
double expectationFromCounts(const Counts &counts, const PauliString &pauli);

} // namespace qismet

#endif // QISMET_PAULI_EXPECTATION_HPP
