/**
 * @file
 * Expectation-value evaluation of Pauli strings and sums against the
 * three state representations the library produces: exact statevectors,
 * density matrices, and finite-shot counts.
 */

#ifndef QISMET_PAULI_EXPECTATION_HPP
#define QISMET_PAULI_EXPECTATION_HPP

#include "pauli/pauli_string.hpp"
#include "pauli/pauli_sum.hpp"
#include "sim/density_matrix.hpp"
#include "sim/shot_sampler.hpp"
#include "sim/statevector.hpp"

namespace qismet {

/** Exact <ψ|P|ψ> without materializing the Pauli matrix. */
double expectation(const Statevector &state, const PauliString &pauli);

/**
 * Exact <ψ|H|ψ>. Routes through the batched single-sweep engine
 * (pauli/expectation_plan.hpp) by default — one amplitude walk per
 * xmask group, bit-identical to the term-by-term fallback, which stays
 * reachable via QISMET_NO_BATCHED_EXPECT /
 * setBatchedExpectationEnabled(false). Repeated evaluations of one sum
 * should hold an ExpectationPlan instead of calling this per
 * iteration.
 */
double expectation(const Statevector &state, const PauliSum &hamiltonian);

/** Tr(ρ P) without materializing the Pauli matrix. */
double expectation(const DensityMatrix &rho, const PauliString &pauli);

/** Tr(ρ H); batched per xmask group like the statevector overload. */
double expectation(const DensityMatrix &rho, const PauliSum &hamiltonian);

/**
 * Estimate <P> from counts measured in a basis where every non-identity
 * factor of P was rotated to Z before measurement (see grouping.hpp).
 * The estimate is the average parity over the string's support.
 */
double expectationFromCounts(const Counts &counts, const PauliString &pauli);

} // namespace qismet

#endif // QISMET_PAULI_EXPECTATION_HPP
