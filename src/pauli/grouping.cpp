#include "pauli/grouping.hpp"

#include <stdexcept>

namespace qismet {

namespace {

/**
 * Try to merge a term into a group's basis. Succeeds when every
 * non-identity factor matches the group's axis or fills an I slot.
 */
bool
tryMerge(MeasurementGroup &group, const PauliString &pauli)
{
    // First pass: check compatibility without mutating.
    for (int q = 0; q < pauli.numQubits(); ++q) {
        const PauliOp want = pauli.op(q);
        const PauliOp have = group.basis[static_cast<std::size_t>(q)];
        if (want != PauliOp::I && have != PauliOp::I && want != have)
            return false;
    }
    for (int q = 0; q < pauli.numQubits(); ++q) {
        const PauliOp want = pauli.op(q);
        if (want != PauliOp::I)
            group.basis[static_cast<std::size_t>(q)] = want;
    }
    return true;
}

} // namespace

std::vector<MeasurementGroup>
groupQubitWise(const PauliSum &hamiltonian)
{
    std::vector<MeasurementGroup> groups;
    const auto &terms = hamiltonian.terms();
    for (std::size_t i = 0; i < terms.size(); ++i) {
        if (terms[i].pauli.isIdentity())
            continue;
        bool placed = false;
        for (auto &g : groups) {
            if (tryMerge(g, terms[i].pauli)) {
                g.termIndices.push_back(i);
                placed = true;
                break;
            }
        }
        if (!placed) {
            MeasurementGroup g;
            g.basis.assign(
                static_cast<std::size_t>(hamiltonian.numQubits()),
                PauliOp::I);
            if (!tryMerge(g, terms[i].pauli))
                throw std::logic_error("groupQubitWise: merge into empty");
            g.termIndices.push_back(i);
            groups.push_back(std::move(g));
        }
    }
    return groups;
}

Circuit
basisChangeCircuit(const MeasurementGroup &group, int num_qubits)
{
    if (static_cast<int>(group.basis.size()) != num_qubits)
        throw std::invalid_argument("basisChangeCircuit: width mismatch");
    Circuit c(num_qubits);
    for (int q = 0; q < num_qubits; ++q) {
        switch (group.basis[static_cast<std::size_t>(q)]) {
          case PauliOp::X:
            c.h(q);
            break;
          case PauliOp::Y:
            c.sdg(q);
            c.h(q);
            break;
          case PauliOp::Z:
          case PauliOp::I:
            break;
        }
    }
    return c;
}

} // namespace qismet
