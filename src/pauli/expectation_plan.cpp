#include "pauli/expectation_plan.hpp"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "common/block_partition.hpp"
#include "common/simd.hpp"
#include "common/thread_pool.hpp"

namespace qismet {

namespace {

std::atomic<int> g_batchedOverride{-1};

} // namespace

bool
batchedExpectationEnabled()
{
    const int override_ = g_batchedOverride.load(std::memory_order_relaxed);
    if (override_ >= 0)
        return override_ != 0;
    static const bool envDisabled =
        std::getenv("QISMET_NO_BATCHED_EXPECT") != nullptr;
    return !envDisabled;
}

void
setBatchedExpectationEnabled(bool on)
{
    g_batchedOverride.store(on ? 1 : 0, std::memory_order_relaxed);
}

ExpectationPlan::ExpectationPlan(const PauliSum &hamiltonian)
    : numQubits_(hamiltonian.numQubits()),
      fingerprint_(hamiltonian.fingerprint())
{
    const auto &terms = hamiltonian.terms();
    coefficients_.reserve(terms.size());

    // First-seen xmask order; every term (identity included) lands in
    // exactly one group, so the group-local accumulators tile a
    // numTerms-sized array via groupOffsets_.
    std::map<std::uint64_t, std::size_t> groupOf;
    for (std::size_t k = 0; k < terms.size(); ++k) {
        const PauliTerm &t = terms[k];
        coefficients_.push_back(t.coefficient);

        const std::uint64_t xmask = t.pauli.xMask();
        auto it = groupOf.find(xmask);
        if (it == groupOf.end()) {
            it = groupOf.emplace(xmask, groups_.size()).first;
            groups_.push_back(Group{xmask, {}, {}});
        }
        Group &g = groups_[it->second];

        // Pre-fold the ±i^nY phase constants through the exact op
        // sequence the legacy per-amplitude pauliPhase() executed
        // (start from ±1, multiply by i^nY), so every stored component
        // — signed zeros included — matches what the term-by-term path
        // multiplies with at run time.
        kern::PauliTermSpec spec;
        spec.zmask = t.pauli.zMask();
        Complex plus(1.0, 0.0);
        Complex minus(-1.0, 0.0);
        switch (t.pauli.countY() & 3) {
          case 0:
            break;
          case 1:
            plus *= Complex(0.0, 1.0);
            minus *= Complex(0.0, 1.0);
            break;
          case 2:
            plus *= Complex(-1.0, 0.0);
            minus *= Complex(-1.0, 0.0);
            break;
          case 3:
            plus *= Complex(0.0, -1.0);
            minus *= Complex(0.0, -1.0);
            break;
        }
        spec.phasePlus = plus;
        spec.phaseMinus = minus;
        g.specs.push_back(spec);
        g.termIndices.push_back(k);
    }

    groupOffsets_.reserve(groups_.size());
    std::size_t offset = 0;
    for (const Group &g : groups_) {
        groupOffsets_.push_back(offset);
        offset += g.specs.size();
    }

    // Sampling layout: the measurement grouping plus flat per-group
    // support-mask / coefficient tables, compiled once with the plan.
    measurementGroups_ = groupQubitWise(hamiltonian);
    samplingMasks_.resize(measurementGroups_.size());
    samplingCoefficients_.resize(measurementGroups_.size());
    for (std::size_t gi = 0; gi < measurementGroups_.size(); ++gi) {
        for (std::size_t ti : measurementGroups_[gi].termIndices) {
            samplingMasks_[gi].push_back(terms[ti].pauli.supportMask());
            samplingCoefficients_[gi].push_back(terms[ti].coefficient);
        }
    }
}

void
ExpectationPlan::termExpectations(const Statevector &state,
                                  double *out) const
{
    if (coefficients_.empty())
        return;
    if (state.numQubits() != numQubits_)
        throw std::invalid_argument(
            "ExpectationPlan::termExpectations: width mismatch");

    const auto &ampVec = state.amplitudes();
    // The group sweeps only load through the span (AmpSpan is a view
    // type without a const variant).
    const AmpSpan amps = AmpSpan::interleaved(
        const_cast<Complex *>(ampVec.data()), ampVec.size());
    const std::size_t dim = ampVec.size();
    const bool simd = simdEnabled();
    const std::size_t n = coefficients_.size();

    if (dim < intraStateParallelThreshold()) {
        // Serial path: one full-range sweep per group, exactly the
        // below-threshold branch of the legacy ordered reduction.
        std::vector<double> local(n, 0.0);
        for (std::size_t g = 0; g < groups_.size(); ++g)
            kern::pauliGroupSums(amps, groups_[g].xmask,
                                 groups_[g].specs.data(),
                                 groups_[g].specs.size(), simd, 0, dim,
                                 local.data() + groupOffsets_[g]);
        for (std::size_t g = 0; g < groups_.size(); ++g)
            for (std::size_t k = 0; k < groups_[g].termIndices.size();
                 ++k)
                out[groups_[g].termIndices[k]] =
                    local[groupOffsets_[g] + k];
        return;
    }

    // Blocked path: the fixed 16-block partition of the legacy
    // reduction, with one partial vector per block. Each block sweeps
    // every group over its own unit range; the fold below adds all 16
    // slots per term serially in block order — empty (zero) blocks
    // included — reproducing orderedBlockReduceComplex's grouping at
    // every thread count.
    std::vector<double> partials(kIntraStateBlocks * n, 0.0);
    ParallelExecutor::global().parallelFor(
        kIntraStateBlocks, [&](std::size_t b) {
            const BlockRange r = intraStateBlock(dim, b);
            if (r.begin >= r.end)
                return;
            double *slot = partials.data() + b * n;
            for (std::size_t g = 0; g < groups_.size(); ++g)
                kern::pauliGroupSums(amps, groups_[g].xmask,
                                     groups_[g].specs.data(),
                                     groups_[g].specs.size(), simd,
                                     r.begin, r.end,
                                     slot + groupOffsets_[g]);
        });
    for (std::size_t g = 0; g < groups_.size(); ++g) {
        for (std::size_t k = 0; k < groups_[g].termIndices.size(); ++k) {
            const std::size_t off = groupOffsets_[g] + k;
            double total = 0.0;
            for (std::size_t b = 0; b < kIntraStateBlocks; ++b)
                total += partials[b * n + off];
            out[groups_[g].termIndices[k]] = total;
        }
    }
}

void
ExpectationPlan::termExpectations(const DensityMatrix &rho,
                                  double *out) const
{
    if (coefficients_.empty())
        return;
    if (rho.numQubits() != numQubits_)
        throw std::invalid_argument(
            "ExpectationPlan::termExpectations: width mismatch");

    const std::size_t dim = rho.dim();
    const std::size_t n = coefficients_.size();
    std::vector<double> local(n, 0.0);
    for (std::size_t g = 0; g < groups_.size(); ++g) {
        const Group &grp = groups_[g];
        double *acc = local.data() + groupOffsets_[g];
        for (std::uint64_t i = 0; i < dim; ++i) {
            // One diagonal-band load per group instead of per term.
            const Complex r = rho.element(i, i ^ grp.xmask);
            for (std::size_t k = 0; k < grp.specs.size(); ++k) {
                const int parity =
                    std::popcount(i & grp.specs[k].zmask) & 1;
                const Complex ph = parity ? grp.specs[k].phaseMinus
                                          : grp.specs[k].phasePlus;
                // Re(ρ[i, i^x] · phase), the legacy multiply's real
                // component with its imaginary side dropped.
                acc[k] += r.real() * ph.real() - r.imag() * ph.imag();
            }
        }
    }
    for (std::size_t g = 0; g < groups_.size(); ++g)
        for (std::size_t k = 0; k < groups_[g].termIndices.size(); ++k)
            out[groups_[g].termIndices[k]] = local[groupOffsets_[g] + k];
}

double
ExpectationPlan::evaluate(const Statevector &state) const
{
    std::vector<double> sums(coefficients_.size(), 0.0);
    termExpectations(state, sums.data());
    double e = 0.0;
    for (std::size_t k = 0; k < coefficients_.size(); ++k)
        e += coefficients_[k] * sums[k];
    return e;
}

double
ExpectationPlan::evaluate(const DensityMatrix &rho) const
{
    std::vector<double> sums(coefficients_.size(), 0.0);
    termExpectations(rho, sums.data());
    double e = 0.0;
    for (std::size_t k = 0; k < coefficients_.size(); ++k)
        e += coefficients_[k] * sums[k];
    return e;
}

std::shared_ptr<const ExpectationPlan>
compileExpectationPlan(const PauliSum &hamiltonian)
{
    return std::make_shared<const ExpectationPlan>(hamiltonian);
}

std::shared_ptr<const ExpectationPlan>
ExpectationPlanCache::acquire(const PauliSum &hamiltonian,
                              std::uint64_t tenant_id)
{
    const std::pair<std::uint64_t, std::uint64_t> key{
        tenant_id, hamiltonian.fingerprint()};
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = plans_.find(key);
    if (it != plans_.end()) {
        ++hits_;
        return it->second;
    }
    ++misses_;
    auto plan = std::make_shared<const ExpectationPlan>(hamiltonian);
    plans_.emplace(key, plan);
    return plan;
}

void
ExpectationPlanCache::clear()
{
    // Swap the map out under the lock and let it destruct unlocked:
    // dropping the cache's references must not run arbitrary plan
    // destructors while holding mutex_.
    std::map<std::pair<std::uint64_t, std::uint64_t>,
             std::shared_ptr<const ExpectationPlan>>
        dropped;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        dropped.swap(plans_);
    }
}

std::size_t
ExpectationPlanCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    // The callee is std::map::size on a member container, not a
    // project method; no second project mutex is reachable from here.
    return plans_.size(); // qismet-lint: allow(lock-order)
}

std::uint64_t
ExpectationPlanCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::uint64_t
ExpectationPlanCache::misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

} // namespace qismet
