/**
 * @file
 * Tensor products of single-qubit Pauli operators.
 *
 * Hamiltonians in the VQE engine are linear combinations of these
 * strings; the measurement layer groups qubit-wise-commuting strings
 * into shared measurement bases (paper Fig. 8: "ansatz measurements
 * over different bases").
 */

#ifndef QISMET_PAULI_PAULI_STRING_HPP
#define QISMET_PAULI_PAULI_STRING_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/matrix.hpp"

namespace qismet {

/** Single-qubit Pauli axis. */
enum class PauliOp : std::uint8_t { I, X, Y, Z };

/** Tensor product of Pauli operators over a fixed register. */
class PauliString
{
  public:
    /** All-identity string over num_qubits qubits. */
    explicit PauliString(int num_qubits);

    /** From explicit per-qubit ops; ops[q] acts on qubit q. */
    explicit PauliString(std::vector<PauliOp> ops);

    /**
     * Parse a label like "XIZY". The label reads left-to-right from the
     * highest-index qubit down (Qiskit convention), so "XI" puts X on
     * qubit 1 of a 2-qubit register.
     */
    static PauliString fromLabel(const std::string &label);

    int numQubits() const { return static_cast<int>(ops_.size()); }

    /** Operator on qubit q. */
    PauliOp op(int q) const;

    /** Set the operator on qubit q. */
    void setOp(int q, PauliOp op);

    /** Number of non-identity factors. */
    int weight() const;

    /** True when every factor is the identity. */
    bool isIdentity() const { return weight() == 0; }

    /** Label in the same convention fromLabel parses. */
    std::string label() const;

    /** Bitmask of qubits with X or Y (the bit-flip part). */
    std::uint64_t xMask() const;

    /** Bitmask of qubits with Z or Y (the phase part). */
    std::uint64_t zMask() const;

    /** Bitmask of qubits with any non-identity factor. */
    std::uint64_t supportMask() const;

    /** Number of Y factors (controls the i^nY global phase). */
    int countY() const;

    /**
     * Qubit-wise commutation: on every shared qubit the factors are
     * equal or one of them is I. Sufficient condition for simultaneous
     * measurability in a single product basis.
     */
    bool qubitWiseCommutes(const PauliString &other) const;

    /** Full (anti)commutation check: true when [P, Q] = 0. */
    bool commutes(const PauliString &other) const;

    /** Dense 2^n x 2^n matrix (for exact solvers; n kept small). */
    Matrix toMatrix() const;

    bool operator==(const PauliString &other) const
    {
        return ops_ == other.ops_;
    }
    bool operator<(const PauliString &other) const
    {
        return ops_ < other.ops_;
    }

  private:
    std::vector<PauliOp> ops_;
};

} // namespace qismet

#endif // QISMET_PAULI_PAULI_STRING_HPP
