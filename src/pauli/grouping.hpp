/**
 * @file
 * Measurement-basis grouping of Hamiltonian terms.
 *
 * A VQE iteration measures the ansatz in one circuit per group of
 * qubit-wise-commuting Pauli terms (paper Fig. 8). This module builds
 * those groups greedily and emits the basis-change circuits that rotate
 * each group's axes onto Z before computational-basis measurement.
 */

#ifndef QISMET_PAULI_GROUPING_HPP
#define QISMET_PAULI_GROUPING_HPP

#include <vector>

#include "circuit/circuit.hpp"
#include "pauli/pauli_sum.hpp"

namespace qismet {

/** One measurement setting shared by several Hamiltonian terms. */
struct MeasurementGroup
{
    /**
     * Effective measurement axis per qubit. PauliOp::I means the group
     * never touches the qubit (measured in Z, result ignored).
     */
    std::vector<PauliOp> basis;

    /** Indices into the PauliSum's term list covered by this group. */
    std::vector<std::size_t> termIndices;
};

/**
 * Greedy qubit-wise-commuting grouping (first-fit).
 *
 * Identity terms are excluded from all groups (their expectation is the
 * constant 1 and needs no measurement).
 */
std::vector<MeasurementGroup> groupQubitWise(const PauliSum &hamiltonian);

/**
 * Basis-change circuit for a group: per qubit, X appends H and
 * Y appends Sdg·H, so that measuring in the computational basis
 * afterwards samples the group's product eigenbasis.
 */
Circuit basisChangeCircuit(const MeasurementGroup &group, int num_qubits);

} // namespace qismet

#endif // QISMET_PAULI_GROUPING_HPP
