#include "pauli/pauli_sum.hpp"

#include <cmath>
#include <map>
#include <sstream>
#include <stdexcept>

#include "common/atomic_file.hpp"
#include "common/serial.hpp"

namespace qismet {

PauliSum::PauliSum(int num_qubits) : numQubits_(num_qubits)
{
    if (num_qubits <= 0)
        throw std::invalid_argument("PauliSum: num_qubits must be > 0");
}

void
PauliSum::add(double coefficient, PauliString pauli)
{
    if (pauli.numQubits() != numQubits_)
        throw std::invalid_argument("PauliSum::add: width mismatch");
    terms_.emplace_back(coefficient, std::move(pauli));
}

void
PauliSum::add(double coefficient, const std::string &label)
{
    add(coefficient, PauliString::fromLabel(label));
}

void
PauliSum::simplify(double tol)
{
    std::map<PauliString, std::size_t> index;
    std::vector<PauliTerm> merged;
    for (const PauliTerm &t : terms_) {
        auto it = index.find(t.pauli);
        if (it == index.end()) {
            index.emplace(t.pauli, merged.size());
            merged.push_back(t);
        } else {
            merged[it->second].coefficient += t.coefficient;
        }
    }
    terms_.clear();
    for (auto &t : merged)
        if (std::abs(t.coefficient) > tol)
            terms_.push_back(std::move(t));
}

double
PauliSum::l1Norm() const
{
    double s = 0.0;
    for (const auto &t : terms_)
        s += std::abs(t.coefficient);
    return s;
}

double
PauliSum::identityCoefficient() const
{
    double s = 0.0;
    for (const auto &t : terms_)
        if (t.pauli.isIdentity())
            s += t.coefficient;
    return s;
}

std::uint64_t
PauliSum::fingerprint() const
{
    Encoder enc;
    enc.writeI64(numQubits_);
    enc.writeU64(terms_.size());
    for (const auto &t : terms_) {
        enc.writeF64(t.coefficient);
        for (int q = 0; q < t.pauli.numQubits(); ++q)
            enc.writeU32(static_cast<std::uint32_t>(t.pauli.op(q)));
    }
    return fnv1a64(enc.bytes());
}

Matrix
PauliSum::toMatrix() const
{
    const std::size_t dim = std::size_t{1} << numQubits_;
    Matrix m(dim, dim);
    for (const auto &t : terms_)
        m += t.pauli.toMatrix() * Complex(t.coefficient, 0.0);
    return m;
}

PauliSum
PauliSum::operator+(const PauliSum &other) const
{
    if (other.numQubits_ != numQubits_)
        throw std::invalid_argument("PauliSum::operator+: width mismatch");
    PauliSum out = *this;
    for (const auto &t : other.terms_)
        out.terms_.push_back(t);
    out.simplify();
    return out;
}

PauliSum
PauliSum::operator*(double scalar) const
{
    PauliSum out = *this;
    for (auto &t : out.terms_)
        t.coefficient *= scalar;
    return out;
}

std::string
PauliSum::toString() const
{
    std::ostringstream os;
    bool first = true;
    for (const auto &t : terms_) {
        if (!first)
            os << " + ";
        os << t.coefficient << " * " << t.pauli.label();
        first = false;
    }
    if (first)
        os << "0";
    return os.str();
}

} // namespace qismet
