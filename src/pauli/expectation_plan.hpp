/**
 * @file
 * Compiled expectation plans: the batched single-sweep Pauli-sum
 * evaluator and its cross-iteration cache.
 *
 * The legacy path walks the full 2^n amplitude array once **per term**
 * of a PauliSum. A plan compiles the sum once — grouping terms by
 * shared xmask and pre-folding each term's constant ±i^nY phase into a
 * two-entry table — and then evaluates with one sweep **per group**,
 * accumulating every term of the group from the same
 * `conj(ψ[i^xmask])·ψ[i]` amplitude loads (kern::pauliGroupSums, with
 * scalar/AVX2 runtime dispatch). The Hamiltonian is loop-invariant
 * across optimizer iterations, so EnergyEstimator compiles (or leases
 * from an ExpectationPlanCache) one plan per run and reuses it for
 * every estimate.
 *
 * Determinism contract (DESIGN.md §16): plan evaluation is
 * bit-identical to the legacy term-by-term path — same per-amplitude
 * complex-multiply op sequence, same ascending-i per-term accumulation,
 * the same fixed 16-block partition and serial block fold above the
 * intra-state parallel threshold, and a final coefficient fold in
 * original term order. A plan is a pure function of its PauliSum, so
 * cache hits and misses are indistinguishable in every output bit. The
 * legacy path stays available behind QISMET_NO_BATCHED_EXPECT /
 * setBatchedExpectationEnabled(false), mirroring the fusion escape
 * hatch.
 */

#ifndef QISMET_PAULI_EXPECTATION_PLAN_HPP
#define QISMET_PAULI_EXPECTATION_PLAN_HPP

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "pauli/grouping.hpp"
#include "pauli/pauli_sum.hpp"
#include "sim/density_matrix.hpp"
#include "sim/kernels.hpp"
#include "sim/statevector.hpp"

namespace qismet {

/**
 * The batched-evaluator dispatch switch, consulted at call time by the
 * expectation() entry points and EnergyEstimator: disabled by the
 * QISMET_NO_BATCHED_EXPECT environment variable (read once) or by
 * setBatchedExpectationEnabled(false). Mirrors fusionEnabled().
 */
bool batchedExpectationEnabled();

/** Programmatic override of the batched-expectation switch (tests,
    A/B benches); wins over the environment. */
void setBatchedExpectationEnabled(bool on);

/** Compiled form of one PauliSum, reusable across iterations. */
class ExpectationPlan
{
  public:
    /** Terms sharing one xmask, lowered to the kernel table layout. */
    struct Group
    {
        std::uint64_t xmask = 0;
        /** Per-term zmask + pre-folded ±i^nY phase constants. */
        std::vector<kern::PauliTermSpec> specs;
        /** Original term index per spec (scatter target). */
        std::vector<std::size_t> termIndices;
    };

    /** Compile `hamiltonian` as-is (no simplification is applied). */
    explicit ExpectationPlan(const PauliSum &hamiltonian);

    int numQubits() const { return numQubits_; }
    std::size_t numTerms() const { return coefficients_.size(); }
    std::size_t numGroups() const { return groups_.size(); }
    const std::vector<Group> &groups() const { return groups_; }
    /** Coefficients in original term order (the final fold order). */
    const std::vector<double> &coefficients() const
    {
        return coefficients_;
    }
    /** PauliSum::fingerprint() of the compiled sum (the cache key). */
    std::uint64_t fingerprint() const { return fingerprint_; }

    /**
     * Measurement-group sampling layout (qubit-wise-commuting groups,
     * identity excluded), compiled once with the plan: per group the
     * basis, the member terms' support masks and coefficients — the
     * constants the sampling estimator reads per shot batch.
     */
    const std::vector<MeasurementGroup> &measurementGroups() const
    {
        return measurementGroups_;
    }
    const std::vector<std::uint64_t> &samplingMasks(std::size_t g) const
    {
        return samplingMasks_[g];
    }
    const std::vector<double> &samplingCoefficients(std::size_t g) const
    {
        return samplingCoefficients_[g];
    }

    /**
     * Per-term <P_t> sums into out[numTerms()], bit-identical to the
     * legacy expectation(state, terms[t].pauli) for every t (identity
     * terms included — their sweep reproduces the legacy norm² walk).
     * @throws std::invalid_argument on a width mismatch.
     */
    void termExpectations(const Statevector &state, double *out) const;

    /** Tr(ρ P_t) per term; serial sweep, one pass per group. */
    void termExpectations(const DensityMatrix &rho, double *out) const;

    /** Σ_t c_t <P_t>, folded in original term order (== legacy sum). */
    double evaluate(const Statevector &state) const;
    double evaluate(const DensityMatrix &rho) const;

  private:
    int numQubits_ = 0;
    std::vector<double> coefficients_;
    std::vector<Group> groups_;
    std::vector<MeasurementGroup> measurementGroups_;
    std::vector<std::vector<std::uint64_t>> samplingMasks_;
    std::vector<std::vector<double>> samplingCoefficients_;
    /** Group-local accumulator offset per group (prefix sums). */
    std::vector<std::size_t> groupOffsets_;
    std::uint64_t fingerprint_ = 0;
};

/** Compile a plan behind a shared_ptr (the cache's currency). */
std::shared_ptr<const ExpectationPlan>
compileExpectationPlan(const PauliSum &hamiltonian);

/**
 * Cross-iteration / cross-run plan cache, keyed by (tenant,
 * PauliSum::fingerprint()). A plan is a pure function of its sum, so
 * hit-vs-miss cannot change any result bit; the tenant key exists for
 * the serve layer, which lease-scopes one cache per backend and clears
 * it on tenant handoff so plans never cross tenants. Thread-safe: a
 * shared cache may be hit from concurrent ensemble trials.
 */
class ExpectationPlanCache
{
  public:
    /** Return the cached plan for (tenant_id, hamiltonian), compiling
        and inserting it on a miss. */
    std::shared_ptr<const ExpectationPlan>
    acquire(const PauliSum &hamiltonian, std::uint64_t tenant_id = 0);

    /** Drop every entry (serve-layer tenant handoff). */
    void clear();

    std::size_t size() const;
    std::uint64_t hits() const;
    std::uint64_t misses() const;

  private:
    mutable std::mutex mutex_;
    std::map<std::pair<std::uint64_t, std::uint64_t>,
             std::shared_ptr<const ExpectationPlan>>
        plans_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace qismet

#endif // QISMET_PAULI_EXPECTATION_PLAN_HPP
