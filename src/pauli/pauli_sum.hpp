/**
 * @file
 * Real linear combinations of Pauli strings — the Hamiltonian
 * representation used throughout the VQE engine.
 */

#ifndef QISMET_PAULI_PAULI_SUM_HPP
#define QISMET_PAULI_PAULI_SUM_HPP

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/matrix.hpp"
#include "pauli/pauli_string.hpp"

namespace qismet {

/** One weighted term of a Hamiltonian. */
struct PauliTerm
{
    double coefficient = 0.0;
    PauliString pauli;

    PauliTerm(double coeff, PauliString p)
        : coefficient(coeff), pauli(std::move(p))
    {
    }
};

/**
 * Hermitian operator H = Σ_k c_k P_k with real coefficients c_k.
 */
class PauliSum
{
  public:
    /** Empty (zero) operator over num_qubits qubits. */
    explicit PauliSum(int num_qubits);

    int numQubits() const { return numQubits_; }
    const std::vector<PauliTerm> &terms() const { return terms_; }
    std::size_t numTerms() const { return terms_.size(); }

    /** Append coefficient * pauli. */
    void add(double coefficient, PauliString pauli);

    /** Append coefficient * fromLabel(label). */
    void add(double coefficient, const std::string &label);

    /**
     * Merge duplicate strings and drop terms with |coefficient| <= tol.
     * Keeps first-seen term order for determinism.
     */
    void simplify(double tol = 1e-12);

    /** Sum of |coefficients| (an easy operator-norm upper bound). */
    double l1Norm() const;

    /** Coefficient of the all-identity term (energy offset). */
    double identityCoefficient() const;

    /**
     * FNV-1a digest of the operator: width, term order, coefficients
     * (exact bit patterns) and per-qubit ops. Two sums share a
     * fingerprint iff they are term-for-term identical, which is what
     * the cross-iteration ExpectationPlan cache keys on.
     */
    std::uint64_t fingerprint() const;

    /** Dense 2^n x 2^n Hermitian matrix. */
    Matrix toMatrix() const;

    PauliSum operator+(const PauliSum &other) const;
    PauliSum operator*(double scalar) const;

    /** Human-readable listing, e.g. "-1.0 * ZZIIII + 0.5 * XIIIII". */
    std::string toString() const;

  private:
    int numQubits_;
    std::vector<PauliTerm> terms_;
};

} // namespace qismet

#endif // QISMET_PAULI_PAULI_SUM_HPP
