#include "pauli/pauli_string.hpp"

#include <stdexcept>

namespace qismet {

PauliString::PauliString(int num_qubits)
{
    if (num_qubits <= 0)
        throw std::invalid_argument("PauliString: num_qubits must be > 0");
    ops_.assign(static_cast<std::size_t>(num_qubits), PauliOp::I);
}

PauliString::PauliString(std::vector<PauliOp> ops) : ops_(std::move(ops))
{
    if (ops_.empty())
        throw std::invalid_argument("PauliString: empty operator list");
}

PauliString
PauliString::fromLabel(const std::string &label)
{
    if (label.empty())
        throw std::invalid_argument("PauliString::fromLabel: empty label");
    std::vector<PauliOp> ops(label.size());
    for (std::size_t i = 0; i < label.size(); ++i) {
        // label[0] is the highest-index qubit.
        const std::size_t q = label.size() - 1 - i;
        switch (label[i]) {
          case 'I': ops[q] = PauliOp::I; break;
          case 'X': ops[q] = PauliOp::X; break;
          case 'Y': ops[q] = PauliOp::Y; break;
          case 'Z': ops[q] = PauliOp::Z; break;
          default:
            throw std::invalid_argument(
                "PauliString::fromLabel: bad character '" +
                std::string(1, label[i]) + "'");
        }
    }
    return PauliString(std::move(ops));
}

PauliOp
PauliString::op(int q) const
{
    if (q < 0 || q >= numQubits())
        throw std::out_of_range("PauliString::op: qubit out of range");
    return ops_[static_cast<std::size_t>(q)];
}

void
PauliString::setOp(int q, PauliOp op)
{
    if (q < 0 || q >= numQubits())
        throw std::out_of_range("PauliString::setOp: qubit out of range");
    ops_[static_cast<std::size_t>(q)] = op;
}

int
PauliString::weight() const
{
    int w = 0;
    for (PauliOp op : ops_)
        if (op != PauliOp::I)
            ++w;
    return w;
}

std::string
PauliString::label() const
{
    std::string s;
    s.reserve(ops_.size());
    for (std::size_t i = ops_.size(); i-- > 0;) {
        switch (ops_[i]) {
          case PauliOp::I: s += 'I'; break;
          case PauliOp::X: s += 'X'; break;
          case PauliOp::Y: s += 'Y'; break;
          case PauliOp::Z: s += 'Z'; break;
        }
    }
    return s;
}

std::uint64_t
PauliString::xMask() const
{
    std::uint64_t m = 0;
    for (std::size_t q = 0; q < ops_.size(); ++q)
        if (ops_[q] == PauliOp::X || ops_[q] == PauliOp::Y)
            m |= std::uint64_t{1} << q;
    return m;
}

std::uint64_t
PauliString::zMask() const
{
    std::uint64_t m = 0;
    for (std::size_t q = 0; q < ops_.size(); ++q)
        if (ops_[q] == PauliOp::Z || ops_[q] == PauliOp::Y)
            m |= std::uint64_t{1} << q;
    return m;
}

std::uint64_t
PauliString::supportMask() const
{
    return xMask() | zMask();
}

int
PauliString::countY() const
{
    int n = 0;
    for (PauliOp op : ops_)
        if (op == PauliOp::Y)
            ++n;
    return n;
}

bool
PauliString::qubitWiseCommutes(const PauliString &other) const
{
    if (other.numQubits() != numQubits())
        throw std::invalid_argument("PauliString: width mismatch");
    for (std::size_t q = 0; q < ops_.size(); ++q) {
        const PauliOp a = ops_[q];
        const PauliOp b = other.ops_[q];
        if (a != PauliOp::I && b != PauliOp::I && a != b)
            return false;
    }
    return true;
}

bool
PauliString::commutes(const PauliString &other) const
{
    if (other.numQubits() != numQubits())
        throw std::invalid_argument("PauliString: width mismatch");
    // Two Pauli strings commute iff they anticommute on an even number
    // of qubits.
    int anti = 0;
    for (std::size_t q = 0; q < ops_.size(); ++q) {
        const PauliOp a = ops_[q];
        const PauliOp b = other.ops_[q];
        if (a != PauliOp::I && b != PauliOp::I && a != b)
            ++anti;
    }
    return (anti & 1) == 0;
}

Matrix
PauliString::toMatrix() const
{
    const Complex i(0.0, 1.0);
    auto single = [&](PauliOp op) -> Matrix {
        switch (op) {
          case PauliOp::I: return Matrix::identity(2);
          case PauliOp::X: return Matrix::fromRows({{0, 1}, {1, 0}});
          case PauliOp::Y: return Matrix::fromRows({{0, -i}, {i, 0}});
          case PauliOp::Z: return Matrix::fromRows({{1, 0}, {0, -1}});
        }
        throw std::logic_error("PauliString::toMatrix: bad op");
    };

    // Qubit n-1 is the leftmost Kronecker factor (matches the basis-index
    // convention where qubit q is bit q).
    Matrix m = single(ops_.back());
    for (std::size_t q = ops_.size() - 1; q-- > 0;)
        m = m.kron(single(ops_[q]));
    return m;
}

} // namespace qismet
