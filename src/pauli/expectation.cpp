#include "pauli/expectation.hpp"

#include <bit>
#include <stdexcept>

#include "common/block_partition.hpp"

namespace qismet {

namespace {

/**
 * Phase of P acting on basis state |i>: P|i> = phase * |i ^ xmask>.
 * For each Z or Y factor the phase picks up (-1)^bit; each Y contributes
 * an extra i. With real coefficients the total expectation is real, so
 * we track the i^nY factor explicitly.
 */
Complex
pauliPhase(std::uint64_t i, std::uint64_t zmask, int n_y)
{
    const int parity = std::popcount(i & zmask) & 1;
    Complex phase = parity ? Complex(-1.0, 0.0) : Complex(1.0, 0.0);
    switch (n_y & 3) {
      case 0: break;
      case 1: phase *= Complex(0.0, 1.0); break;
      case 2: phase *= Complex(-1.0, 0.0); break;
      case 3: phase *= Complex(0.0, -1.0); break;
    }
    return phase;
}

} // namespace

double
expectation(const Statevector &state, const PauliString &pauli)
{
    if (pauli.numQubits() != state.numQubits())
        throw std::invalid_argument("expectation: width mismatch");

    const std::uint64_t xmask = pauli.xMask();
    const std::uint64_t zmask = pauli.zMask();
    const int n_y = pauli.countY();
    const auto &amps = state.amplitudes();

    // <ψ|P|ψ> = Σ_i conj(ψ[i ^ xmask]) phase(i) ψ[i], summed as a
    // deterministic ordered block reduction (bit-identical at every
    // thread count; serial legacy order below the parallel threshold).
    return orderedBlockReduceComplex(
               amps.size(), amps.size(),
               [&](std::size_t lo, std::size_t hi) {
                   Complex acc(0.0, 0.0);
                   for (std::uint64_t i = lo; i < hi; ++i)
                       acc += std::conj(amps[i ^ xmask]) *
                              pauliPhase(i, zmask, n_y) * amps[i];
                   return acc;
               })
        .real();
}

double
expectation(const Statevector &state, const PauliSum &hamiltonian)
{
    double e = 0.0;
    for (const auto &t : hamiltonian.terms())
        e += t.coefficient * expectation(state, t.pauli);
    return e;
}

double
expectation(const DensityMatrix &rho, const PauliString &pauli)
{
    if (pauli.numQubits() != rho.numQubits())
        throw std::invalid_argument("expectation: width mismatch");

    const std::uint64_t xmask = pauli.xMask();
    const std::uint64_t zmask = pauli.zMask();
    const int n_y = pauli.countY();
    const std::size_t dim = rho.dim();

    // Tr(ρ P) = Σ_i (ρ P)[i, i] = Σ_i ρ[i, i ^ xmask] * phase(i)
    // where P[i ^ xmask, i] = phase(i).
    Complex acc(0.0, 0.0);
    for (std::uint64_t i = 0; i < dim; ++i)
        acc += rho.element(i, i ^ xmask) * pauliPhase(i, zmask, n_y);
    return acc.real();
}

double
expectation(const DensityMatrix &rho, const PauliSum &hamiltonian)
{
    double e = 0.0;
    for (const auto &t : hamiltonian.terms())
        e += t.coefficient * expectation(rho, t.pauli);
    return e;
}

double
expectationFromCounts(const Counts &counts, const PauliString &pauli)
{
    if (pauli.isIdentity())
        return 1.0;
    return countsExpectationZMask(counts, pauli.supportMask());
}

} // namespace qismet
