#include "pauli/expectation.hpp"

#include <bit>
#include <stdexcept>

#include "common/block_partition.hpp"
#include "pauli/expectation_plan.hpp"

namespace qismet {

namespace {

/**
 * Per-parity phase constants of one Pauli string: P|i> = phase(i) *
 * |i ^ xmask> with phase(i) = (-1)^popcount(i & zmask) · i^nY. The
 * i^nY factor is fixed per string, so the two possible values are
 * computed once — through the same op sequence the old per-amplitude
 * pauliPhase() switch executed, keeping every stored component
 * (signed zeros included) bit-identical — and the per-basis-state work
 * reduces to a parity-indexed select.
 */
struct PhasePair
{
    Complex plus{1.0, 0.0};
    Complex minus{-1.0, 0.0};

    explicit PhasePair(int n_y)
    {
        switch (n_y & 3) {
          case 0:
            break;
          case 1:
            plus *= Complex(0.0, 1.0);
            minus *= Complex(0.0, 1.0);
            break;
          case 2:
            plus *= Complex(-1.0, 0.0);
            minus *= Complex(-1.0, 0.0);
            break;
          case 3:
            plus *= Complex(0.0, -1.0);
            minus *= Complex(0.0, -1.0);
            break;
        }
    }

    Complex select(std::uint64_t i, std::uint64_t zmask) const
    {
        return (std::popcount(i & zmask) & 1) ? minus : plus;
    }
};

} // namespace

double
expectation(const Statevector &state, const PauliString &pauli)
{
    if (pauli.numQubits() != state.numQubits())
        throw std::invalid_argument("expectation: width mismatch");

    const std::uint64_t xmask = pauli.xMask();
    const std::uint64_t zmask = pauli.zMask();
    const PhasePair phase(pauli.countY());
    const auto &amps = state.amplitudes();

    // <ψ|P|ψ> = Σ_i conj(ψ[i ^ xmask]) phase(i) ψ[i], summed as a
    // deterministic ordered block reduction (bit-identical at every
    // thread count; serial legacy order below the parallel threshold).
    return orderedBlockReduceComplex(
               amps.size(), amps.size(),
               [&](std::size_t lo, std::size_t hi) {
                   Complex acc(0.0, 0.0);
                   for (std::uint64_t i = lo; i < hi; ++i)
                       acc += std::conj(amps[i ^ xmask]) *
                              phase.select(i, zmask) * amps[i];
                   return acc;
               })
        .real();
}

double
expectation(const Statevector &state, const PauliSum &hamiltonian)
{
    // Default: compile-and-evaluate through the batched single-sweep
    // engine (one amplitude walk per xmask group). Callers that
    // evaluate the same sum repeatedly should hold an ExpectationPlan
    // (or lease one from an ExpectationPlanCache) instead of paying
    // the compile step per call; EnergyEstimator does exactly that.
    if (batchedExpectationEnabled() && hamiltonian.numTerms() > 0) {
        const ExpectationPlan plan(hamiltonian);
        return plan.evaluate(state);
    }
    double e = 0.0;
    for (const auto &t : hamiltonian.terms())
        e += t.coefficient * expectation(state, t.pauli);
    return e;
}

double
expectation(const DensityMatrix &rho, const PauliString &pauli)
{
    if (pauli.numQubits() != rho.numQubits())
        throw std::invalid_argument("expectation: width mismatch");

    const std::uint64_t xmask = pauli.xMask();
    const std::uint64_t zmask = pauli.zMask();
    const PhasePair phase(pauli.countY());
    const std::size_t dim = rho.dim();

    // Tr(ρ P) = Σ_i (ρ P)[i, i] = Σ_i ρ[i, i ^ xmask] * phase(i)
    // where P[i ^ xmask, i] = phase(i).
    Complex acc(0.0, 0.0);
    for (std::uint64_t i = 0; i < dim; ++i)
        acc += rho.element(i, i ^ xmask) * phase.select(i, zmask);
    return acc.real();
}

double
expectation(const DensityMatrix &rho, const PauliSum &hamiltonian)
{
    if (batchedExpectationEnabled() && hamiltonian.numTerms() > 0) {
        const ExpectationPlan plan(hamiltonian);
        return plan.evaluate(rho);
    }
    double e = 0.0;
    for (const auto &t : hamiltonian.terms())
        e += t.coefficient * expectation(rho, t.pauli);
    return e;
}

double
expectationFromCounts(const Counts &counts, const PauliString &pauli)
{
    if (pauli.isIdentity())
        return 1.0;
    return countsExpectationZMask(counts, pauli.supportMask());
}

} // namespace qismet
