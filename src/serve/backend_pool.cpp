#include "serve/backend_pool.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/rng.hpp"

namespace qismet {

std::string
backendHealthName(BackendHealth health)
{
    switch (health) {
      case BackendHealth::Healthy: return "healthy";
      case BackendHealth::Degraded: return "degraded";
      case BackendHealth::Quarantined: return "quarantined";
    }
    return "?";
}

std::string
breakerStateName(BreakerState state)
{
    switch (state) {
      case BreakerState::Closed: return "closed";
      case BreakerState::Open: return "open";
      case BreakerState::HalfOpen: return "half-open";
    }
    return "?";
}

void
HealthPolicy::validate() const
{
    if (degradeAfterFaults < 1 || quarantineAfterFaults < 1 ||
        recoverAfterSuccesses < 1)
        throw std::invalid_argument(
            "HealthPolicy: hysteresis counts must be positive");
    if (degradeAfterFaults > quarantineAfterFaults)
        throw std::invalid_argument(
            "HealthPolicy: degradeAfterFaults must not exceed "
            "quarantineAfterFaults");
    if (breakerCooldownTicks == 0 || breakerMaxCooldownTicks == 0)
        throw std::invalid_argument(
            "HealthPolicy: zero breaker cooldown");
    if (breakerCooldownTicks > breakerMaxCooldownTicks)
        throw std::invalid_argument(
            "HealthPolicy: base cooldown exceeds the ceiling");
    if (breakerCooldownGrowth < 1.0)
        throw std::invalid_argument(
            "HealthPolicy: cooldown growth below 1");
    if (latencyDegradeFactor < 1.0)
        throw std::invalid_argument(
            "HealthPolicy: latency degrade factor below 1");
    if (!(latencyEwmaAlpha > 0.0) || latencyEwmaAlpha > 1.0)
        throw std::invalid_argument(
            "HealthPolicy: EWMA alpha must be in (0, 1]");
}

BackendPool::BackendPool(const std::vector<std::string> &machine_names,
                         std::uint64_t seed, HealthPolicy policy)
    : policy_(policy)
{
    policy_.validate();
    if (machine_names.empty())
        throw std::invalid_argument("BackendPool: empty fleet");
    backends_.reserve(machine_names.size());
    for (std::size_t id = 0; id < machine_names.size(); ++id) {
        Backend b;
        b.model = machineModel(machine_names[id]);
        b.streamSeed =
            deriveStreamSeed(seed, StreamDomain::kBackend, id);
        b.cooldownTicks = policy_.breakerCooldownTicks;
        backends_.push_back(std::move(b));
    }
}

bool
BackendPool::anyFree() const
{
    return freeCount() > 0;
}

std::size_t
BackendPool::freeCount() const
{
    std::size_t n = 0;
    for (const Backend &b : backends_)
        if (!b.leased)
            ++n;
    return n;
}

bool
BackendPool::leasable(std::size_t backend_id, std::uint64_t now) const
{
    const Backend &b = at(backend_id);
    if (b.leased)
        return false;
    if (b.breaker == BreakerState::Open)
        return now >= b.breakerOpenedTick + b.cooldownTicks;
    return true;
}

bool
BackendPool::anyLeasable(std::uint64_t now) const
{
    for (std::size_t id = 0; id < backends_.size(); ++id)
        if (leasable(id, now))
            return true;
    return false;
}

BackendLease
BackendPool::acquire()
{
    for (std::size_t id = 0; id < backends_.size(); ++id) {
        Backend &b = backends_[id];
        if (b.leased)
            continue;
        b.leased = true;
        ++b.epoch;
        return BackendLease{id, b.epoch};
    }
    throw std::runtime_error("BackendPool::acquire: pool exhausted");
}

std::optional<BackendLease>
BackendPool::acquireHealthAware(
    std::uint64_t now, std::vector<HealthTransition> &transitions)
{
    // Rank: Healthy (0) before Degraded (1) before a probe of an
    // elapsed Open breaker (2); lowest id within a rank. The ranking
    // is what routes work *around* a suspect machine while healthy
    // capacity exists (the DISQ detect-and-avoid move), yet still
    // probes quarantined machines under load pressure.
    int bestRank = 3;
    std::size_t bestId = 0;
    for (std::size_t id = 0; id < backends_.size(); ++id) {
        if (!leasable(id, now))
            continue;
        const Backend &b = backends_[id];
        int rank = 2;
        if (b.breaker != BreakerState::Open) {
            rank = b.health == BackendHealth::Healthy  ? 0
                   : b.health == BackendHealth::Degraded ? 1
                                                         : 2;
        }
        if (rank < bestRank) {
            bestRank = rank;
            bestId = id;
        }
    }
    if (bestRank == 3)
        return std::nullopt;

    Backend &b = backends_[bestId];
    if (b.breaker == BreakerState::Open) {
        // Cooldown elapsed: this lease is the half-open probe.
        b.breaker = BreakerState::HalfOpen;
        ++stats_.halfOpenProbes;
        transitions.push_back(transitionOf(b, bestId, now));
    }
    b.leased = true;
    ++b.epoch;
    return BackendLease{bestId, b.epoch};
}

BackendPool::Backend &
BackendPool::validateRelease(const BackendLease &lease)
{
    if (lease.backendId >= backends_.size())
        throw std::invalid_argument(
            "BackendPool::release: unknown backend " +
            std::to_string(lease.backendId));
    Backend &b = backends_[lease.backendId];
    if (!b.leased)
        throw std::invalid_argument(
            "BackendPool::release: backend " +
            std::to_string(lease.backendId) +
            " is not leased (double release?)");
    if (b.epoch != lease.epoch)
        throw std::invalid_argument(
            "BackendPool::release: stale lease epoch " +
            std::to_string(lease.epoch) + " for backend " +
            std::to_string(lease.backendId) + " (current " +
            std::to_string(b.epoch) + ")");
    return b;
}

void
BackendPool::release(const BackendLease &lease)
{
    // Legacy health-blind form: a nominal-latency success at tick 0,
    // transitions discarded — direct pool users exercise the same
    // hysteresis arithmetic as the scheduler.
    releaseSuccess(lease, 1.0, 0);
}

std::vector<HealthTransition>
BackendPool::releaseSuccess(const BackendLease &lease,
                            double latency_factor, std::uint64_t now)
{
    if (latency_factor < 0.0)
        throw std::invalid_argument(
            "BackendPool::releaseSuccess: negative latency");
    std::vector<HealthTransition> transitions;
    Backend &b = validateRelease(lease);
    const Backend before = b;
    b.leased = false;
    ++b.completedLeases;
    b.calibrationDigest ^= deriveStreamSeed(
        b.streamSeed, StreamDomain::kBackendLease, lease.epoch);

    b.consecSuccesses += 1;
    b.consecFaults = 0;
    b.latencyEwma = policy_.latencyEwmaAlpha * latency_factor +
                    (1.0 - policy_.latencyEwmaAlpha) * b.latencyEwma;

    if (b.breaker == BreakerState::HalfOpen) {
        // Probe succeeded: close, but land on Degraded — the recovery
        // hysteresis (consecutive clean successes) earns Healthy back.
        b.breaker = BreakerState::Closed;
        b.cooldownTicks = policy_.breakerCooldownTicks;
        b.health = BackendHealth::Degraded;
        b.consecSuccesses = 1;
    }

    if (b.latencyEwma > policy_.latencyDegradeFactor) {
        if (b.health == BackendHealth::Healthy)
            b.health = BackendHealth::Degraded;
        // A slow success is not a *clean* success for recovery.
        b.consecSuccesses = 0;
    }
    else if (b.health == BackendHealth::Degraded &&
             b.consecSuccesses >= static_cast<std::uint32_t>(
                                      policy_.recoverAfterSuccesses)) {
        b.health = BackendHealth::Healthy;
    }

    recordIfChanged(before, b, lease.backendId, now, transitions);
    return transitions;
}

std::vector<HealthTransition>
BackendPool::releaseFaulted(const BackendLease &lease,
                            std::uint64_t now)
{
    std::vector<HealthTransition> transitions;
    Backend &b = validateRelease(lease);
    const Backend before = b;
    // The machine did no work: no calibration advance, no completed
    // lease — the faulted lease is its own ledger line.
    b.leased = false;
    ++b.faultedLeases;
    ++stats_.faultsObserved;

    b.consecFaults += 1;
    b.consecSuccesses = 0;

    if (b.breaker == BreakerState::HalfOpen) {
        // Failed probe: reopen with a multiplied, bounded cooldown.
        b.breaker = BreakerState::Open;
        b.breakerOpenedTick = now;
        const double grown = static_cast<double>(b.cooldownTicks) *
                             policy_.breakerCooldownGrowth;
        b.cooldownTicks = std::min(
            policy_.breakerMaxCooldownTicks,
            static_cast<std::uint64_t>(grown));
        b.health = BackendHealth::Quarantined;
        ++stats_.breakerReopens;
    }
    else if (b.consecFaults >= static_cast<std::uint32_t>(
                                   policy_.quarantineAfterFaults)) {
        if (b.breaker == BreakerState::Closed) {
            b.breaker = BreakerState::Open;
            b.breakerOpenedTick = now;
            b.cooldownTicks = policy_.breakerCooldownTicks;
            ++stats_.breakerTrips;
        }
        b.health = BackendHealth::Quarantined;
    }
    else if (b.consecFaults >= static_cast<std::uint32_t>(
                                   policy_.degradeAfterFaults) &&
             b.health == BackendHealth::Healthy) {
        b.health = BackendHealth::Degraded;
    }

    recordIfChanged(before, b, lease.backendId, now, transitions);
    return transitions;
}

std::vector<HealthTransition>
BackendPool::applyCalibrationStorm(std::size_t backend_id,
                                   std::uint64_t draws,
                                   std::uint64_t now)
{
    std::vector<HealthTransition> transitions;
    at(backend_id); // bounds check
    Backend &b = backends_[backend_id];
    const Backend before = b;
    for (std::uint64_t i = 0; i < draws; ++i) {
        ++b.stormDraws;
        b.calibrationDigest ^= deriveStreamSeed(
            b.streamSeed, StreamDomain::kChaosStorm, b.stormDraws);
    }
    ++stats_.stormsApplied;
    // Drift is a health observation: the machine is suspect until the
    // recovery hysteresis clears it.
    if (b.health == BackendHealth::Healthy)
        b.health = BackendHealth::Degraded;
    b.consecSuccesses = 0;
    recordIfChanged(before, b, backend_id, now, transitions);
    return transitions;
}

std::optional<std::uint64_t>
BackendPool::earliestProbeTick() const
{
    std::optional<std::uint64_t> earliest;
    for (const Backend &b : backends_) {
        if (b.breaker != BreakerState::Open)
            continue;
        const std::uint64_t at_tick =
            b.breakerOpenedTick + b.cooldownTicks;
        if (!earliest || at_tick < *earliest)
            earliest = at_tick;
    }
    return earliest;
}

void
BackendPool::restoreHealth(const HealthTransition &transition)
{
    at(transition.backendId); // bounds check
    Backend &b = backends_[transition.backendId];
    b.health = transition.health;
    // A HalfOpen probe was in flight when the process died; the lease
    // is gone, so the breaker resumes Open and re-probes after its
    // recorded cooldown.
    b.breaker = transition.breaker == BreakerState::HalfOpen
                    ? BreakerState::Open
                    : transition.breaker;
    b.cooldownTicks = transition.cooldownTicks != 0
                          ? transition.cooldownTicks
                          : policy_.breakerCooldownTicks;
    b.breakerOpenedTick = transition.breakerOpenedTick;
    b.consecFaults = transition.consecutiveFaults;
    b.consecSuccesses = transition.consecutiveSuccesses;
}

HealthTransition
BackendPool::transitionOf(const Backend &b, std::size_t id,
                          std::uint64_t now) const
{
    HealthTransition t;
    t.backendId = id;
    t.tick = now;
    t.health = b.health;
    t.breaker = b.breaker;
    t.cooldownTicks = b.cooldownTicks;
    t.breakerOpenedTick = b.breakerOpenedTick;
    t.consecutiveFaults = b.consecFaults;
    t.consecutiveSuccesses = b.consecSuccesses;
    return t;
}

void
BackendPool::recordIfChanged(const Backend &before, const Backend &after,
                             std::size_t id, std::uint64_t now,
                             std::vector<HealthTransition> &out) const
{
    if (before.health != after.health ||
        before.breaker != after.breaker)
        out.push_back(transitionOf(after, id, now));
}

const BackendPool::Backend &
BackendPool::at(std::size_t backend_id) const
{
    if (backend_id >= backends_.size())
        throw std::invalid_argument("BackendPool: unknown backend " +
                                    std::to_string(backend_id));
    return backends_[backend_id];
}

const MachineModel &
BackendPool::machine(std::size_t backend_id) const
{
    return at(backend_id).model;
}

std::uint64_t
BackendPool::leasesCompleted(std::size_t backend_id) const
{
    return at(backend_id).completedLeases;
}

std::uint64_t
BackendPool::leasesFaulted(std::size_t backend_id) const
{
    return at(backend_id).faultedLeases;
}

std::uint64_t
BackendPool::calibrationDigest(std::size_t backend_id) const
{
    return at(backend_id).calibrationDigest;
}

BackendHealth
BackendPool::health(std::size_t backend_id) const
{
    return at(backend_id).health;
}

BreakerState
BackendPool::breaker(std::size_t backend_id) const
{
    return at(backend_id).breaker;
}

std::uint32_t
BackendPool::consecutiveFaults(std::size_t backend_id) const
{
    return at(backend_id).consecFaults;
}

double
BackendPool::latencyEwma(std::size_t backend_id) const
{
    return at(backend_id).latencyEwma;
}

} // namespace qismet
