#include "serve/backend_pool.hpp"

#include <stdexcept>

#include "common/rng.hpp"

namespace qismet {

BackendPool::BackendPool(const std::vector<std::string> &machine_names,
                         std::uint64_t seed)
{
    if (machine_names.empty())
        throw std::invalid_argument("BackendPool: empty fleet");
    backends_.reserve(machine_names.size());
    for (std::size_t id = 0; id < machine_names.size(); ++id) {
        Backend b;
        b.model = machineModel(machine_names[id]);
        b.streamSeed =
            deriveStreamSeed(seed, StreamDomain::kBackend, id);
        backends_.push_back(std::move(b));
    }
}

bool
BackendPool::anyFree() const
{
    return freeCount() > 0;
}

std::size_t
BackendPool::freeCount() const
{
    std::size_t n = 0;
    for (const Backend &b : backends_)
        if (!b.leased)
            ++n;
    return n;
}

BackendLease
BackendPool::acquire()
{
    for (std::size_t id = 0; id < backends_.size(); ++id) {
        Backend &b = backends_[id];
        if (b.leased)
            continue;
        b.leased = true;
        ++b.epoch;
        return BackendLease{id, b.epoch};
    }
    throw std::runtime_error("BackendPool::acquire: pool exhausted");
}

void
BackendPool::release(const BackendLease &lease)
{
    if (lease.backendId >= backends_.size())
        throw std::invalid_argument(
            "BackendPool::release: unknown backend " +
            std::to_string(lease.backendId));
    Backend &b = backends_[lease.backendId];
    if (!b.leased)
        throw std::invalid_argument(
            "BackendPool::release: backend " +
            std::to_string(lease.backendId) +
            " is not leased (double release?)");
    if (b.epoch != lease.epoch)
        throw std::invalid_argument(
            "BackendPool::release: stale lease epoch " +
            std::to_string(lease.epoch) + " for backend " +
            std::to_string(lease.backendId) + " (current " +
            std::to_string(b.epoch) + ")");
    b.leased = false;
    ++b.completedLeases;
    b.calibrationDigest ^= deriveStreamSeed(
        b.streamSeed, StreamDomain::kBackendLease, lease.epoch);
}

const BackendPool::Backend &
BackendPool::at(std::size_t backend_id) const
{
    if (backend_id >= backends_.size())
        throw std::invalid_argument("BackendPool: unknown backend " +
                                    std::to_string(backend_id));
    return backends_[backend_id];
}

const MachineModel &
BackendPool::machine(std::size_t backend_id) const
{
    return at(backend_id).model;
}

std::uint64_t
BackendPool::leasesCompleted(std::size_t backend_id) const
{
    return at(backend_id).completedLeases;
}

std::uint64_t
BackendPool::calibrationDigest(std::size_t backend_id) const
{
    return at(backend_id).calibrationDigest;
}

} // namespace qismet
