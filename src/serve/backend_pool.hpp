/**
 * @file
 * BackendPool: a fleet of simulated machines leased to serve-layer
 * runs, one run per machine at a time.
 *
 * Isolation invariants (tests/serve/test_backend_pool.cpp):
 *  - a backend is leased to at most one run at a time; double-acquire
 *    of an exhausted pool and double-release both throw;
 *  - every lease carries the backend's monotonically increasing epoch,
 *    so a stale lease (released, re-acquired by someone else) can never
 *    release the backend out from under its new holder;
 *  - per-machine calibration state advances by one splitStream draw per
 *    completed lease, derived from (pool seed, backend id, epoch) via
 *    the StreamDomain convention — machines never share or cross-feed
 *    their streams.
 *
 * Determinism note: a lease models *capacity and machine state*, not
 * run physics. Serve-layer runs draw every bit of their randomness from
 * their own spec (see job_spec.hpp), never from the leased backend —
 * that is what makes a multiplexed run bit-identical to its solo
 * execution regardless of which backend it landed on.
 */

#ifndef QISMET_SERVE_BACKEND_POOL_HPP
#define QISMET_SERVE_BACKEND_POOL_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "noise/machine_model.hpp"

namespace qismet {

/** Proof of exclusive ownership of one backend for one run leg. */
struct BackendLease
{
    std::size_t backendId = 0;
    std::uint64_t epoch = 0;
};

/**
 * Fixed fleet of simulated machines with exclusive leasing.
 * Not thread-safe; the scheduler serializes access under its mutex.
 */
class BackendPool
{
  public:
    /**
     * @param machine_names One machine per backend (names may repeat —
     *        a fleet of identical machines is the common soak setup).
     * @param seed Root of the per-machine calibration streams.
     * @throws std::invalid_argument on an empty fleet or unknown name.
     */
    BackendPool(const std::vector<std::string> &machine_names,
                std::uint64_t seed);

    std::size_t size() const { return backends_.size(); }

    /** True when at least one backend is free. */
    bool anyFree() const;

    /** Free-backend count. */
    std::size_t freeCount() const;

    /**
     * Lease the lowest-id free backend (deterministic selection).
     * @throws std::runtime_error when the pool is exhausted.
     */
    BackendLease acquire();

    /**
     * Return a leased backend and advance its calibration stream.
     * @throws std::invalid_argument on an unknown id, a stale epoch, or
     *         a backend that is not currently leased (double release).
     */
    void release(const BackendLease &lease);

    /** The machine model of one backend. */
    const MachineModel &machine(std::size_t backend_id) const;

    /** Completed-lease count of one backend. */
    std::uint64_t leasesCompleted(std::size_t backend_id) const;

    /**
     * Rolling digest of the backend's calibration stream: one
     * deriveStreamSeed draw folded in per completed lease. Equal
     * histories give equal digests; leases on other machines never
     * change it (the isolation regression test).
     */
    std::uint64_t calibrationDigest(std::size_t backend_id) const;

  private:
    struct Backend
    {
        MachineModel model;
        std::uint64_t streamSeed = 0; ///< per-machine stream root
        bool leased = false;
        std::uint64_t epoch = 0; ///< increments on each acquire
        std::uint64_t completedLeases = 0;
        std::uint64_t calibrationDigest = 0;
    };

    const Backend &at(std::size_t backend_id) const;

    std::vector<Backend> backends_;
};

} // namespace qismet

#endif // QISMET_SERVE_BACKEND_POOL_HPP
