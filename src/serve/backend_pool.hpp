/**
 * @file
 * BackendPool: a fleet of simulated machines leased to serve-layer
 * runs, one run per machine at a time — now with a per-backend health
 * model and circuit breaker (DESIGN.md §15).
 *
 * Isolation invariants (tests/serve/test_backend_pool.cpp):
 *  - a backend is leased to at most one run at a time; double-acquire
 *    of an exhausted pool and double-release both throw;
 *  - every lease carries the backend's monotonically increasing epoch,
 *    so a stale lease (released, re-acquired by someone else) can never
 *    release the backend out from under its new holder;
 *  - per-machine calibration state advances by one splitStream draw per
 *    completed lease, derived from (pool seed, backend id, epoch) via
 *    the StreamDomain convention — machines never share or cross-feed
 *    their streams.
 *
 * Health model (tests/serve/test_backend_health.cpp): each backend
 * carries a three-state health (healthy → degraded → quarantined)
 * driven by deterministic fault/latency observations with hysteresis,
 * and a circuit breaker that trips Open after
 * `HealthPolicy::quarantineAfterFaults` consecutive backend faults and
 * half-opens on a simulated-tick schedule (one probe lease; a failed
 * probe reopens with a bounded, multiplied cooldown). Observations are
 * reported by the caller (ServeCore) — the pool never reads a clock of
 * its own. Every health/breaker change is returned as a
 * HealthTransition so the scheduler can journal it; resume replays the
 * transitions through restoreHealth() to rebuild breaker state.
 *
 * Determinism note: a lease models *capacity and machine state*, not
 * run physics. Serve-layer runs draw every bit of their randomness from
 * their own spec (see job_spec.hpp), never from the leased backend —
 * that is what makes a multiplexed run bit-identical to its solo
 * execution regardless of which backend it landed on, and what lets
 * health state be interleaving-dependent without ever touching
 * results.
 */

#ifndef QISMET_SERVE_BACKEND_POOL_HPP
#define QISMET_SERVE_BACKEND_POOL_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "noise/machine_model.hpp"

namespace qismet {

/** Proof of exclusive ownership of one backend for one run leg. */
struct BackendLease
{
    std::size_t backendId = 0;
    std::uint64_t epoch = 0;
};

/** Three-state backend health. */
enum class BackendHealth : std::uint8_t
{
    Healthy = 0,
    Degraded = 1,   ///< suspect: deprioritized, still leasable
    Quarantined = 2 ///< breaker tripped: leasable only as a probe
};

std::string backendHealthName(BackendHealth health);

/** Circuit-breaker state. */
enum class BreakerState : std::uint8_t
{
    Closed = 0,  ///< normal service
    Open = 1,    ///< no leases until the cooldown elapses
    HalfOpen = 2 ///< one probe lease in flight decides the verdict
};

std::string breakerStateName(BreakerState state);

/**
 * Hysteresis and breaker-timing knobs of the health model. Counts are
 * consecutive observations; ticks are fleet SimClock ticks.
 */
struct HealthPolicy
{
    /** Consecutive faults before Healthy degrades. */
    int degradeAfterFaults = 2;
    /** Consecutive faults before quarantine + breaker trip. */
    int quarantineAfterFaults = 4;
    /** Consecutive clean successes before Degraded recovers. */
    int recoverAfterSuccesses = 3;
    /** First breaker cooldown (ticks until half-open). */
    std::uint64_t breakerCooldownTicks = 8;
    /** Cooldown multiplier after a failed half-open probe. */
    double breakerCooldownGrowth = 2.0;
    /** Cooldown ceiling. */
    std::uint64_t breakerMaxCooldownTicks = 64;
    /** Latency EWMA above this factor marks the backend Degraded. */
    double latencyDegradeFactor = 2.0;
    /** EWMA smoothing of latency observations. */
    double latencyEwmaAlpha = 0.25;

    /** @throws std::invalid_argument on malformed fields. */
    void validate() const;
};

/**
 * One recorded health/breaker change: the backend's full post-change
 * state, so replaying transitions in order reconstructs it exactly.
 * Journaled by the scheduler (manifest health frames).
 */
struct HealthTransition
{
    std::size_t backendId = 0;
    /** Fleet tick at which the change was observed. */
    std::uint64_t tick = 0;
    BackendHealth health = BackendHealth::Healthy;
    BreakerState breaker = BreakerState::Closed;
    /** Cooldown the (re)opened breaker is serving. */
    std::uint64_t cooldownTicks = 0;
    /** Tick the breaker last opened at. */
    std::uint64_t breakerOpenedTick = 0;
    std::uint32_t consecutiveFaults = 0;
    std::uint32_t consecutiveSuccesses = 0;
};

/** Pool-wide resilience counters (fleet telemetry). */
struct BackendPoolStats
{
    std::uint64_t faultsObserved = 0;
    std::uint64_t breakerTrips = 0;
    std::uint64_t breakerReopens = 0;
    std::uint64_t halfOpenProbes = 0;
    std::uint64_t stormsApplied = 0;
};

/**
 * Fixed fleet of simulated machines with exclusive leasing.
 * Not thread-safe; the scheduler serializes access under its mutex.
 */
class BackendPool
{
  public:
    /**
     * @param machine_names One machine per backend (names may repeat —
     *        a fleet of identical machines is the common soak setup).
     * @param seed Root of the per-machine calibration streams.
     * @param policy Health-model knobs.
     * @throws std::invalid_argument on an empty fleet, unknown name,
     *         or malformed policy.
     */
    BackendPool(const std::vector<std::string> &machine_names,
                std::uint64_t seed, HealthPolicy policy = {});

    std::size_t size() const { return backends_.size(); }

    /** True when at least one backend is free (health-blind). */
    bool anyFree() const;

    /** Free-backend count (health-blind). */
    std::size_t freeCount() const;

    /**
     * True when `backend_id` may be leased at tick `now`: free, and
     * its breaker is Closed, HalfOpen, or Open with an elapsed
     * cooldown (probe-eligible).
     */
    bool leasable(std::size_t backend_id, std::uint64_t now) const;

    /** True when any backend is leasable at tick `now`. */
    bool anyLeasable(std::uint64_t now) const;

    /**
     * Lease the lowest-id free backend (deterministic selection,
     * health-blind — the pre-health API, kept for direct pool use).
     * @throws std::runtime_error when the pool is exhausted.
     */
    BackendLease acquire();

    /**
     * Health-aware lease at tick `now`: prefers Healthy over Degraded
     * backends (lowest id within a rank); a quarantined backend whose
     * cooldown has elapsed is chosen last, as the breaker's half-open
     * probe (recorded in `transitions`). Returns nullopt when nothing
     * is leasable.
     */
    std::optional<BackendLease>
    acquireHealthAware(std::uint64_t now,
                       std::vector<HealthTransition> &transitions);

    /**
     * Return a leased backend and advance its calibration stream
     * (success path, health-blind legacy form: latency 1, tick 0).
     * @throws std::invalid_argument on an unknown id, a stale epoch, or
     *         a backend that is not currently leased (double release).
     */
    void release(const BackendLease &lease);

    /**
     * Success release with a health observation: advances the
     * calibration stream, feeds `latency_factor` (1.0 = nominal) into
     * the latency EWMA, closes a half-open breaker, and applies the
     * recovery hysteresis. Returns the transitions (possibly empty).
     */
    std::vector<HealthTransition>
    releaseSuccess(const BackendLease &lease, double latency_factor,
                   std::uint64_t now);

    /**
     * Fault release: the backend did no work (outage), so the
     * calibration stream does NOT advance and the lease does not count
     * as completed. Feeds the consecutive-fault hysteresis; trips or
     * reopens the breaker when the threshold is crossed.
     */
    std::vector<HealthTransition>
    releaseFaulted(const BackendLease &lease, std::uint64_t now);

    /**
     * Calibration-drift storm: fold `draws` extra stream draws into
     * the backend's calibration digest (the drift is real machine
     * state) and mark it Degraded.
     */
    std::vector<HealthTransition>
    applyCalibrationStorm(std::size_t backend_id, std::uint64_t draws,
                          std::uint64_t now);

    /**
     * Earliest tick at which an Open breaker becomes probe-eligible,
     * or nullopt when no breaker is Open. The idle-fleet time skip
     * (ServeCore) advances the clock here so a fully quarantined
     * fleet cannot deadlock.
     */
    std::optional<std::uint64_t> earliestProbeTick() const;

    /**
     * Resume path: restore one backend's recorded health/breaker
     * state (manifest health frames, replayed in order — the last
     * frame per backend wins).
     */
    void restoreHealth(const HealthTransition &transition);

    /** The machine model of one backend. */
    const MachineModel &machine(std::size_t backend_id) const;

    /** Completed-lease count of one backend. */
    std::uint64_t leasesCompleted(std::size_t backend_id) const;

    /** Faulted-lease count of one backend. */
    std::uint64_t leasesFaulted(std::size_t backend_id) const;

    /**
     * Rolling digest of the backend's calibration stream: one
     * deriveStreamSeed draw folded in per completed lease (plus storm
     * drift draws). Equal histories give equal digests; leases on
     * other machines never change it (the isolation regression test).
     */
    std::uint64_t calibrationDigest(std::size_t backend_id) const;

    BackendHealth health(std::size_t backend_id) const;
    BreakerState breaker(std::size_t backend_id) const;
    std::uint32_t consecutiveFaults(std::size_t backend_id) const;
    double latencyEwma(std::size_t backend_id) const;

    const HealthPolicy &policy() const { return policy_; }
    const BackendPoolStats &stats() const { return stats_; }

  private:
    struct Backend
    {
        MachineModel model;
        std::uint64_t streamSeed = 0; ///< per-machine stream root
        bool leased = false;
        std::uint64_t epoch = 0; ///< increments on each acquire
        std::uint64_t completedLeases = 0;
        std::uint64_t faultedLeases = 0;
        std::uint64_t calibrationDigest = 0;
        /** Storm drift draws folded so far (storm stream counter). */
        std::uint64_t stormDraws = 0;

        BackendHealth health = BackendHealth::Healthy;
        BreakerState breaker = BreakerState::Closed;
        std::uint32_t consecFaults = 0;
        std::uint32_t consecSuccesses = 0;
        std::uint64_t cooldownTicks = 0;
        std::uint64_t breakerOpenedTick = 0;
        double latencyEwma = 1.0;
    };

    const Backend &at(std::size_t backend_id) const;
    Backend &validateRelease(const BackendLease &lease);
    /** Snapshot b's state as a transition stamped at `now`. */
    HealthTransition transitionOf(const Backend &b, std::size_t id,
                                  std::uint64_t now) const;
    void recordIfChanged(const Backend &before, const Backend &after,
                         std::size_t id, std::uint64_t now,
                         std::vector<HealthTransition> &out) const;

    HealthPolicy policy_;
    BackendPoolStats stats_;
    std::vector<Backend> backends_;
};

} // namespace qismet

#endif // QISMET_SERVE_BACKEND_POOL_HPP
