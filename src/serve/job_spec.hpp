/**
 * @file
 * Serve-layer job specification: everything that determines one
 * multiplexed VQA run, and nothing else.
 *
 * The determinism contract of the serve layer is stated over this
 * struct: a run's trajectory is a pure function of its spec. Scheduling
 * artifacts — which backend lease the run received, which worker thread
 * executed it, how many crash/resume legs it took — never feed the
 * run's randomness, so the digest of a run served among hundreds of
 * tenants equals the digest of the same spec executed solo
 * (tests/serve/test_serve_golden.cpp pins this against the golden
 * traces).
 */

#ifndef QISMET_SERVE_JOB_SPEC_HPP
#define QISMET_SERVE_JOB_SPEC_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/serial.hpp"
#include "core/qismet_vqe.hpp"

namespace qismet {

/** Workload families the serve layer can materialize. */
enum class WorkloadKind : std::uint8_t
{
    H2Vqe = 0,   ///< H2 molecule VQE (the h2-vqe golden construction)
    TfimApp = 1, ///< Table-1 TFIM application (appIndex selects the row)
    QaoaRing = 2 ///< QAOA MaxCut on the 6-ring (qaoa-maxcut golden)
};

/** Name for diagnostics ("h2-vqe", "tfim-app", "qaoa-ring"). */
std::string workloadKindName(WorkloadKind kind);

/** One tenant-submitted run request. */
struct ServeJobSpec
{
    /** Owning tenant (fair-share accounting key). */
    std::uint64_t tenantId = 0;
    /** Higher dispatches first, strictly (fair share applies within). */
    int priority = 0;
    WorkloadKind kind = WorkloadKind::TfimApp;
    /** Table-1 application index (TfimApp only, 1..6). */
    int appIndex = 1;
    /** Run seed — the sole source of the run's randomness. */
    std::uint64_t seed = 7;
    /** Machine-job budget of the run. */
    std::size_t totalJobs = 200;
    Scheme scheme = Scheme::Qismet;
    /** Enable the golden 6% mixed fault load inside the run. */
    bool withFaults = false;
    /** Snapshot cadence when the scheduler checkpoints the run. */
    std::size_t snapshotEveryIters = 1;
    /**
     * Planned in-process crashes: strictly increasing optimizer
     * iteration boundaries at which the run throws SimulatedCrash and
     * is requeued for a resume leg. Requires a durable scheduler
     * (stateDir set). Empty = run to completion in one leg.
     */
    std::vector<std::uint64_t> crashPlan;
    /**
     * Deadline budget in the run's own simulated seconds (job slots +
     * fault-retry backoff); 0 = none. The run stops cleanly at the
     * first optimizer-iteration boundary past the budget. Because the
     * run's simulated time is a pure function of this spec, the
     * deadline truncates at the same iteration on every worker count,
     * resume lineage and backend — deterministically.
     */
    double deadlineSimSeconds = 0.0;
    /**
     * Backend-fault migrations the job tolerates before it is marked
     * Failed; 0 = unlimited. Each migration re-queues the same leg
     * (RNG stream and checkpoint intact), so the budget bounds wasted
     * dispatches, not correctness.
     */
    std::uint64_t migrationBudget = 0;

    /** @throws std::invalid_argument on malformed fields. */
    void validate() const;

    void encode(Encoder &enc) const;
    static ServeJobSpec decode(Decoder &dec);

    /** FNV-1a digest of the encoded spec (manifest integrity checks). */
    std::uint64_t digest() const;
};

/**
 * Materialize the runner for a spec. Constructions mirror the golden
 * tests byte for byte, so serve-layer equivalence can be asserted
 * against the pinned golden digests.
 */
QismetVqe buildRunner(const ServeJobSpec &spec);

/**
 * The run configuration for a spec, durability fields unset. The
 * scheduler fills checkpointDir/resume/crashAfterIters per leg; none
 * of those enter runConfigDigest, so every leg of a job recovers the
 * same checkpoint lineage.
 */
QismetVqeConfig buildRunConfig(const ServeJobSpec &spec);

} // namespace qismet

#endif // QISMET_SERVE_JOB_SPEC_HPP
