#include "serve/job_spec.hpp"

#include <stdexcept>

#include "apps/applications.hpp"
#include "common/atomic_file.hpp"
#include "hamiltonian/h2_molecule.hpp"
#include "noise/machine_model.hpp"
#include "qaoa/maxcut.hpp"
#include "qaoa/qaoa_ansatz.hpp"

namespace qismet {

std::string
workloadKindName(WorkloadKind kind)
{
    switch (kind) {
      case WorkloadKind::H2Vqe: return "h2-vqe";
      case WorkloadKind::TfimApp: return "tfim-app";
      case WorkloadKind::QaoaRing: return "qaoa-ring";
    }
    return "?";
}

void
ServeJobSpec::validate() const
{
    if (totalJobs == 0)
        throw std::invalid_argument("ServeJobSpec: zero job budget");
    if (snapshotEveryIters == 0)
        throw std::invalid_argument(
            "ServeJobSpec: zero snapshot cadence");
    if (kind == WorkloadKind::TfimApp && (appIndex < 1 || appIndex > 6))
        throw std::invalid_argument(
            "ServeJobSpec: appIndex must be in 1..6");
    for (std::size_t i = 0; i < crashPlan.size(); ++i) {
        if (crashPlan[i] == 0)
            throw std::invalid_argument(
                "ServeJobSpec: crashPlan entries must be positive");
        if (i > 0 && crashPlan[i] <= crashPlan[i - 1])
            throw std::invalid_argument(
                "ServeJobSpec: crashPlan must be strictly increasing");
    }
    if (deadlineSimSeconds < 0.0)
        throw std::invalid_argument(
            "ServeJobSpec: negative deadline budget");
}

void
ServeJobSpec::encode(Encoder &enc) const
{
    enc.writeU64(tenantId);
    enc.writeI64(priority);
    enc.writeU8(static_cast<std::uint8_t>(kind));
    enc.writeI64(appIndex);
    enc.writeU64(seed);
    enc.writeU64(totalJobs);
    enc.writeU32(static_cast<std::uint32_t>(scheme));
    enc.writeBool(withFaults);
    enc.writeU64(snapshotEveryIters);
    enc.writeU64(crashPlan.size());
    for (std::uint64_t it : crashPlan)
        enc.writeU64(it);
    enc.writeF64(deadlineSimSeconds);
    enc.writeU64(migrationBudget);
}

ServeJobSpec
ServeJobSpec::decode(Decoder &dec)
{
    ServeJobSpec spec;
    spec.tenantId = dec.readU64();
    spec.priority = static_cast<int>(dec.readI64());
    spec.kind = static_cast<WorkloadKind>(dec.readU8());
    spec.appIndex = static_cast<int>(dec.readI64());
    spec.seed = dec.readU64();
    spec.totalJobs = static_cast<std::size_t>(dec.readU64());
    spec.scheme = static_cast<Scheme>(dec.readU32());
    spec.withFaults = dec.readBool();
    spec.snapshotEveryIters = static_cast<std::size_t>(dec.readU64());
    const std::uint64_t n = dec.readU64();
    spec.crashPlan.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i)
        spec.crashPlan.push_back(dec.readU64());
    spec.deadlineSimSeconds = dec.readF64();
    spec.migrationBudget = dec.readU64();
    spec.validate();
    return spec;
}

std::uint64_t
ServeJobSpec::digest() const
{
    Encoder enc;
    encode(enc);
    return fnv1a64(enc.bytes());
}

QismetVqe
buildRunner(const ServeJobSpec &spec)
{
    spec.validate();
    switch (spec.kind) {
      case WorkloadKind::H2Vqe: {
        const H2Problem prob = h2Problem(0.735);
        return QismetVqe(prob.hamiltonian,
                         makeAnsatz("SU2", 4, 3)->build(),
                         machineModel("guadalupe"), prob.fciEnergy);
      }
      case WorkloadKind::TfimApp:
        return application(spec.appIndex).makeRunner();
      case WorkloadKind::QaoaRing: {
        const MaxCutProblem problem = MaxCutProblem::ring(6);
        const QaoaAnsatz ansatz(problem, 3);
        return QismetVqe(problem.costHamiltonian(), ansatz.build(),
                         machineModel("guadalupe"),
                         -problem.maxCutValue());
      }
    }
    throw std::invalid_argument("buildRunner: unknown workload kind");
}

QismetVqeConfig
buildRunConfig(const ServeJobSpec &spec)
{
    spec.validate();
    QismetVqeConfig cfg;
    cfg.totalJobs = spec.totalJobs;
    cfg.seed = spec.seed;
    cfg.scheme = spec.scheme;
    cfg.snapshotEveryIters = spec.snapshotEveryIters;
    if (spec.kind == WorkloadKind::QaoaRing) {
        // QAOA wants small positive angles and gentler SPSA gains; the
        // values are the qaoa-maxcut golden construction.
        cfg.initialTheta = {1.2, 2.2, 2.0, 0.5, 1.2, 2.0};
        cfg.spsaInitialStep = 0.10;
        cfg.spsaPerturbation = 0.05;
    }
    if (spec.withFaults) {
        // The tfim-vqe-faults golden's mixed 6% fault load.
        cfg.faults.timeoutRate = 0.02;
        cfg.faults.errorRate = 0.01;
        cfg.faults.partialRate = 0.02;
        cfg.faults.referenceLossRate = 0.01;
        cfg.faults.burstCoupling = 1.0;
    }
    cfg.deadlineSimSeconds = spec.deadlineSimSeconds;
    return cfg;
}

} // namespace qismet
