#include "serve/manifest.hpp"

#include <algorithm>

namespace qismet {

namespace {

constexpr char kMagic[4] = {'Q', 'S', 'V', 'M'};
constexpr std::uint64_t kHeaderSize = 24;
/** type(1) + len(4) + checksum(8). */
constexpr std::uint64_t kFrameOverhead = 13;
constexpr std::uint32_t kMaxFrameLen = 1u << 20;

constexpr std::uint8_t kFrameSubmit = 1;
constexpr std::uint8_t kFrameCancel = 2;
constexpr std::uint8_t kFrameComplete = 3;
constexpr std::uint8_t kFrameShed = 4;
constexpr std::uint8_t kFrameFailed = 5;
constexpr std::uint8_t kFrameHealth = 6;

bool
validFrameType(std::uint8_t type)
{
    return type >= kFrameSubmit && type <= kFrameHealth;
}

std::uint64_t
frameChecksum(std::uint8_t type, std::string_view payload)
{
    std::uint64_t hash = fnv1a64(&type, 1);
    return fnv1a64(payload, hash);
}

std::string
encodeHeader(std::uint64_t fleet_digest)
{
    Encoder enc;
    for (char c : kMagic)
        enc.writeU8(static_cast<std::uint8_t>(c));
    enc.writeU32(kManifestVersion);
    enc.writeU64(fleet_digest);
    const std::uint64_t checksum = fnv1a64(enc.bytes());
    enc.writeU64(checksum);
    return enc.take();
}

} // namespace

ManifestScan
scanManifest(const std::string &path)
{
    const std::string bytes = readFile(path);
    if (bytes.size() < kHeaderSize)
        throw ManifestError("manifest '" + path +
                            "' is shorter than its header");

    Decoder header(std::string_view(bytes).substr(0, kHeaderSize));
    char magic[4];
    for (char &c : magic)
        c = static_cast<char>(header.readU8());
    if (magic[0] != kMagic[0] || magic[1] != kMagic[1] ||
        magic[2] != kMagic[2] || magic[3] != kMagic[3])
        throw ManifestError("manifest '" + path + "' has bad magic");
    const std::uint32_t version = header.readU32();
    if (version != kManifestVersion)
        throw ManifestError("manifest '" + path +
                            "' has unsupported version " +
                            std::to_string(version));
    ManifestScan result;
    result.fleetDigest = header.readU64();
    const std::uint64_t stored = header.readU64();
    if (stored != fnv1a64(std::string_view(bytes).substr(0, 16)))
        throw ManifestError("manifest '" + path +
                            "' header checksum mismatch");
    result.cleanOffset = kHeaderSize;

    std::uint64_t offset = kHeaderSize;
    const std::uint64_t size = bytes.size();
    while (offset < size) {
        const std::uint64_t rem = size - offset;
        if (rem < kFrameOverhead) {
            result.tornTail = true;
            result.diagnostic =
                "torn tail: " + std::to_string(rem) +
                " trailing bytes shorter than a frame; discarded";
            break;
        }
        Decoder dec(std::string_view(bytes).substr(
            static_cast<std::size_t>(offset),
            static_cast<std::size_t>(rem)));
        const std::uint8_t type = dec.readU8();
        if (!validFrameType(type))
            throw ManifestError("manifest '" + path +
                                "' has invalid frame type " +
                                std::to_string(type) + " at offset " +
                                std::to_string(offset));
        const std::uint32_t len = dec.readU32();
        if (len > kMaxFrameLen)
            throw ManifestError("manifest '" + path +
                                "' has implausible frame length " +
                                std::to_string(len) + " at offset " +
                                std::to_string(offset));
        const std::uint64_t frameSize = kFrameOverhead + len;
        if (frameSize > rem) {
            result.tornTail = true;
            result.diagnostic =
                "torn tail: partial frame at offset " +
                std::to_string(offset) + "; discarded";
            break;
        }
        const std::string_view payload = std::string_view(bytes).substr(
            static_cast<std::size_t>(offset) + 5, len);
        Decoder tail(std::string_view(bytes).substr(
            static_cast<std::size_t>(offset) + 5 + len, 8));
        if (tail.readU64() != frameChecksum(type, payload)) {
            if (offset + frameSize == size) {
                result.tornTail = true;
                result.diagnostic =
                    "torn tail: final frame at offset " +
                    std::to_string(offset) +
                    " failed its checksum; discarded";
                break;
            }
            throw ManifestError(
                "manifest '" + path +
                "' has a corrupt frame (checksum mismatch) at offset " +
                std::to_string(offset) +
                " with valid data after it — refusing to skip");
        }

        try {
            Decoder body(payload);
            if (type == kFrameSubmit) {
                const std::uint64_t jobId = body.readU64();
                ServeJobSpec spec = ServeJobSpec::decode(body);
                result.submitted.emplace_back(jobId, std::move(spec));
            }
            else if (type == kFrameCancel) {
                result.cancelled.insert(body.readU64());
            }
            else if (type == kFrameShed) {
                result.shed.insert(body.readU64());
            }
            else if (type == kFrameFailed) {
                result.failed.insert(body.readU64());
            }
            else if (type == kFrameHealth) {
                HealthTransition t;
                t.backendId =
                    static_cast<std::size_t>(body.readU64());
                t.tick = body.readU64();
                t.health = static_cast<BackendHealth>(body.readU8());
                t.breaker = static_cast<BreakerState>(body.readU8());
                t.cooldownTicks = body.readU64();
                t.breakerOpenedTick = body.readU64();
                t.consecutiveFaults = body.readU32();
                t.consecutiveSuccesses = body.readU32();
                result.lastTick = std::max(result.lastTick, t.tick);
                result.health.push_back(t);
            }
            else {
                const std::uint64_t jobId = body.readU64();
                ManifestCompletion c;
                c.trajectoryDigest = body.readString();
                c.finalEstimate = body.readF64();
                c.jobsUsed = body.readU64();
                c.tick = body.readU64();
                c.deadlineExpired = body.readBool();
                c.retriesUsed = body.readU64();
                c.faultRetries = body.readU64();
                c.backoffSeconds = body.readF64();
                c.simTimeSeconds = body.readF64();
                result.lastTick = std::max(result.lastTick, c.tick);
                result.completed.emplace(jobId, std::move(c));
            }
        }
        catch (const SerialError &err) {
            throw ManifestError("manifest '" + path +
                                "' has a checksum-valid but "
                                "undecodable frame at offset " +
                                std::to_string(offset) + ": " +
                                err.what());
        }
        offset += frameSize;
        result.cleanOffset = offset;
    }
    return result;
}

ServeManifest::ServeManifest(const std::string &path,
                             std::uint64_t fleet_digest,
                             DurableFile::Mode mode, std::uint64_t offset)
    : file_(path, mode)
{
    if (mode == DurableFile::Mode::Truncate) {
        file_.append(encodeHeader(fleet_digest));
        file_.sync();
    }
    else {
        file_.truncateTo(offset);
        file_.sync();
    }
}

void
ServeManifest::appendFrame(std::uint8_t type, const std::string &payload)
{
    Encoder enc;
    enc.writeU8(type);
    enc.writeU32(static_cast<std::uint32_t>(payload.size()));
    std::string frame = enc.take();
    frame += payload;
    Encoder sum;
    sum.writeU64(frameChecksum(type, payload));
    frame += sum.bytes();
    file_.append(frame);
    file_.sync();
}

void
ServeManifest::appendSubmit(std::uint64_t job_id,
                            const ServeJobSpec &spec)
{
    Encoder enc;
    enc.writeU64(job_id);
    spec.encode(enc);
    appendFrame(kFrameSubmit, enc.bytes());
}

void
ServeManifest::appendCancel(std::uint64_t job_id)
{
    Encoder enc;
    enc.writeU64(job_id);
    appendFrame(kFrameCancel, enc.bytes());
}

void
ServeManifest::appendComplete(std::uint64_t job_id,
                              const ManifestCompletion &completion)
{
    Encoder enc;
    enc.writeU64(job_id);
    enc.writeString(completion.trajectoryDigest);
    enc.writeF64(completion.finalEstimate);
    enc.writeU64(completion.jobsUsed);
    enc.writeU64(completion.tick);
    enc.writeBool(completion.deadlineExpired);
    enc.writeU64(completion.retriesUsed);
    enc.writeU64(completion.faultRetries);
    enc.writeF64(completion.backoffSeconds);
    enc.writeF64(completion.simTimeSeconds);
    appendFrame(kFrameComplete, enc.bytes());
}

void
ServeManifest::appendShed(std::uint64_t job_id)
{
    Encoder enc;
    enc.writeU64(job_id);
    appendFrame(kFrameShed, enc.bytes());
}

void
ServeManifest::appendFailed(std::uint64_t job_id)
{
    Encoder enc;
    enc.writeU64(job_id);
    appendFrame(kFrameFailed, enc.bytes());
}

void
ServeManifest::appendHealth(const HealthTransition &transition)
{
    Encoder enc;
    enc.writeU64(static_cast<std::uint64_t>(transition.backendId));
    enc.writeU64(transition.tick);
    enc.writeU8(static_cast<std::uint8_t>(transition.health));
    enc.writeU8(static_cast<std::uint8_t>(transition.breaker));
    enc.writeU64(transition.cooldownTicks);
    enc.writeU64(transition.breakerOpenedTick);
    enc.writeU32(transition.consecutiveFaults);
    enc.writeU32(transition.consecutiveSuccesses);
    appendFrame(kFrameHealth, enc.bytes());
}

} // namespace qismet
