/**
 * @file
 * ServeManifest: the scheduler's own write-ahead journal, recording
 * job submissions, cancellations, completions, admission sheds,
 * migration failures and backend health/breaker transitions so a
 * killed serve process (exit 43 mid-soak) can rebuild its job table,
 * its fleet health state and its fleet clock, and resume every
 * in-flight run from its per-run checkpoint.
 *
 * File layout mirrors the run journal (persist/journal.hpp):
 *
 *     header := magic "QSVM" | u32 version | u64 fleetDigest
 *               | u64 fnv1a(preceding 16 bytes)
 *     frame  := u8 type | u32 payloadLen | payload
 *               | u64 fnv1a(type byte + payload)
 *
 * and the reader applies the same fail-closed torn-tail policy: a
 * partial trailing frame is provably a crash artifact and is dropped;
 * any mid-file corruption throws. The manifest stores *facts about
 * jobs* (spec, outcome digest) — never scheduling state like tenant
 * passes or leases, which are recomputed live so recovery can never
 * disagree with the scheduler's own arithmetic.
 */

#ifndef QISMET_SERVE_MANIFEST_HPP
#define QISMET_SERVE_MANIFEST_HPP

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/atomic_file.hpp"
#include "serve/backend_pool.hpp"
#include "serve/job_spec.hpp"

namespace qismet {

/** Raised when a manifest is structurally invalid (not merely torn). */
class ManifestError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Version 2 adds the fleet-resilience frames: admission sheds,
 * migration-budget failures and backend health/breaker transitions,
 * plus the fleet tick + deadline flag on completions. A v1 manifest is
 * rejected (the serve layer has no long-lived stores to migrate; a
 * fresh soak starts a fresh manifest).
 */
inline constexpr std::uint32_t kManifestVersion = 2;

/** Recorded outcome of one completed job. */
struct ManifestCompletion
{
    std::string trajectoryDigest;
    double finalEstimate = 0.0;
    std::uint64_t jobsUsed = 0;
    /** Fleet tick when the completion was recorded (clock restore). */
    std::uint64_t tick = 0;
    /** The run stopped at its simulated-time deadline budget. */
    bool deadlineExpired = false;
    /** Retry/backoff telemetry, preserved so poll() after a resume
     * reports the same degradation counters as the original process. */
    std::uint64_t retriesUsed = 0;
    std::uint64_t faultRetries = 0;
    double backoffSeconds = 0.0;
    double simTimeSeconds = 0.0;
};

/** Everything a scan recovers from a manifest file. */
struct ManifestScan
{
    std::uint64_t fleetDigest = 0;
    /** (jobId, spec) in submission order. */
    std::vector<std::pair<std::uint64_t, ServeJobSpec>> submitted;
    std::map<std::uint64_t, ManifestCompletion> completed;
    std::set<std::uint64_t> cancelled;
    /** Jobs dropped by admission control (queue bound). */
    std::set<std::uint64_t> shed;
    /** Jobs failed by migration-budget exhaustion. */
    std::set<std::uint64_t> failed;
    /** Health/breaker transitions in record order; replaying them in
     * order reconstructs the fleet's health state at the crash. */
    std::vector<HealthTransition> health;
    /** Highest fleet tick recorded by any frame (clock restore). */
    std::uint64_t lastTick = 0;
    std::uint64_t cleanOffset = 0;
    bool tornTail = false;
    std::string diagnostic;
};

/**
 * Scan a manifest file.
 * @throws ManifestError on structural corruption or a bad header.
 */
ManifestScan scanManifest(const std::string &path);

/** Append side; every record is fsynced before the call returns. */
class ServeManifest
{
  public:
    /**
     * Truncate mode starts a fresh manifest; Append continues an
     * existing one from `offset` (recovery truncates the torn tail).
     */
    ServeManifest(const std::string &path, std::uint64_t fleet_digest,
                  DurableFile::Mode mode, std::uint64_t offset = 0);

    void appendSubmit(std::uint64_t job_id, const ServeJobSpec &spec);
    void appendCancel(std::uint64_t job_id);
    void appendComplete(std::uint64_t job_id,
                        const ManifestCompletion &completion);
    void appendShed(std::uint64_t job_id);
    void appendFailed(std::uint64_t job_id);
    void appendHealth(const HealthTransition &transition);

  private:
    void appendFrame(std::uint8_t type, const std::string &payload);

    DurableFile file_;
};

} // namespace qismet

#endif // QISMET_SERVE_MANIFEST_HPP
