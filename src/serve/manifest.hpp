/**
 * @file
 * ServeManifest: the scheduler's own write-ahead journal, recording
 * job submissions, cancellations and completions so a killed serve
 * process (exit 43 mid-soak) can rebuild its job table and resume
 * every in-flight run from its per-run checkpoint.
 *
 * File layout mirrors the run journal (persist/journal.hpp):
 *
 *     header := magic "QSVM" | u32 version | u64 fleetDigest
 *               | u64 fnv1a(preceding 16 bytes)
 *     frame  := u8 type | u32 payloadLen | payload
 *               | u64 fnv1a(type byte + payload)
 *
 * and the reader applies the same fail-closed torn-tail policy: a
 * partial trailing frame is provably a crash artifact and is dropped;
 * any mid-file corruption throws. The manifest stores *facts about
 * jobs* (spec, outcome digest) — never scheduling state like tenant
 * passes or leases, which are recomputed live so recovery can never
 * disagree with the scheduler's own arithmetic.
 */

#ifndef QISMET_SERVE_MANIFEST_HPP
#define QISMET_SERVE_MANIFEST_HPP

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/atomic_file.hpp"
#include "serve/job_spec.hpp"

namespace qismet {

/** Raised when a manifest is structurally invalid (not merely torn). */
class ManifestError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

inline constexpr std::uint32_t kManifestVersion = 1;

/** Recorded outcome of one completed job. */
struct ManifestCompletion
{
    std::string trajectoryDigest;
    double finalEstimate = 0.0;
    std::uint64_t jobsUsed = 0;
};

/** Everything a scan recovers from a manifest file. */
struct ManifestScan
{
    std::uint64_t fleetDigest = 0;
    /** (jobId, spec) in submission order. */
    std::vector<std::pair<std::uint64_t, ServeJobSpec>> submitted;
    std::map<std::uint64_t, ManifestCompletion> completed;
    std::set<std::uint64_t> cancelled;
    std::uint64_t cleanOffset = 0;
    bool tornTail = false;
    std::string diagnostic;
};

/**
 * Scan a manifest file.
 * @throws ManifestError on structural corruption or a bad header.
 */
ManifestScan scanManifest(const std::string &path);

/** Append side; every record is fsynced before the call returns. */
class ServeManifest
{
  public:
    /**
     * Truncate mode starts a fresh manifest; Append continues an
     * existing one from `offset` (recovery truncates the torn tail).
     */
    ServeManifest(const std::string &path, std::uint64_t fleet_digest,
                  DurableFile::Mode mode, std::uint64_t offset = 0);

    void appendSubmit(std::uint64_t job_id, const ServeJobSpec &spec);
    void appendCancel(std::uint64_t job_id);
    void appendComplete(std::uint64_t job_id,
                        const ManifestCompletion &completion);

  private:
    void appendFrame(std::uint8_t type, const std::string &payload);

    DurableFile file_;
};

} // namespace qismet

#endif // QISMET_SERVE_MANIFEST_HPP
