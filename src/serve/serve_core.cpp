#include "serve/serve_core.hpp"

#include <stdexcept>

namespace qismet {

std::string
serveJobStateName(ServeJobState state)
{
    switch (state) {
      case ServeJobState::Queued: return "queued";
      case ServeJobState::Running: return "running";
      case ServeJobState::Completed: return "completed";
      case ServeJobState::Cancelled: return "cancelled";
    }
    return "?";
}

ServeCore::ServeCore(BackendPool &pool) : pool_(pool) {}

ServeCore::TenantState &
ServeCore::tenant(std::uint64_t tenant_id)
{
    auto it = tenants_.find(tenant_id);
    if (it == tenants_.end()) {
        TenantState fresh;
        // A tenant joining mid-flight starts at the current virtual
        // time: it competes fairly from now on instead of burning its
        // accumulated "absence credit" to monopolize the fleet.
        fresh.pass = virtualTime_;
        it = tenants_.emplace(tenant_id, fresh).first;
    }
    return it->second;
}

void
ServeCore::setTenantWeight(std::uint64_t tenant_id, double weight)
{
    if (!(weight > 0.0))
        throw std::invalid_argument(
            "ServeCore::setTenantWeight: weight must be positive");
    tenant(tenant_id).weight = weight;
}

std::uint64_t
ServeCore::submit(ServeJobSpec spec)
{
    spec.validate();
    const std::uint64_t id = nextJobId_++;
    ServeJobInfo info;
    info.jobId = id;
    info.spec = std::move(spec);
    tenant(info.spec.tenantId); // materialize fair-share state
    jobs_.emplace(id, std::move(info));
    ++queued_;
    return id;
}

void
ServeCore::replaySubmit(std::uint64_t job_id, ServeJobSpec spec)
{
    spec.validate();
    if (job_id < nextJobId_)
        throw std::invalid_argument(
            "ServeCore::replaySubmit: job id " +
            std::to_string(job_id) + " is not monotonically fresh");
    nextJobId_ = job_id + 1;
    ServeJobInfo info;
    info.jobId = job_id;
    info.spec = std::move(spec);
    // The pre-crash process may have run any number of this job's legs;
    // whatever checkpoint survived is the resume point. A job that
    // never started has no checkpoint and recovery degrades to a fresh
    // start — both end at the solo digest.
    info.resumeNextLeg = true;
    tenant(info.spec.tenantId);
    jobs_.emplace(job_id, std::move(info));
    ++queued_;
}

void
ServeCore::replayComplete(std::uint64_t job_id, std::string digest,
                          double final_estimate, std::uint64_t jobs_used)
{
    auto it = jobs_.find(job_id);
    if (it == jobs_.end() ||
        it->second.state != ServeJobState::Queued)
        throw std::invalid_argument(
            "ServeCore::replayComplete: job " + std::to_string(job_id) +
            " is not a replayed queued job");
    ServeJobInfo &info = it->second;
    info.state = ServeJobState::Completed;
    info.trajectoryDigest = std::move(digest);
    info.finalEstimate = final_estimate;
    info.jobsUsed = jobs_used;
    --queued_;
    ++completed_;
}

bool
ServeCore::cancel(std::uint64_t job_id)
{
    auto it = jobs_.find(job_id);
    if (it == jobs_.end() ||
        it->second.state != ServeJobState::Queued)
        return false;
    it->second.state = ServeJobState::Cancelled;
    --queued_;
    ++cancelled_;
    return true;
}

std::optional<ServeDispatch>
ServeCore::nextDispatch()
{
    if (queued_ == 0 || !pool_.anyFree())
        return std::nullopt;

    // Pick: highest priority, then lowest tenant pass, then lowest id.
    // std::map iteration is id-ascending, so the first job seen wins
    // all ties deterministically.
    ServeJobInfo *best = nullptr;
    double bestPass = 0.0;
    for (auto &[id, info] : jobs_) {
        if (info.state != ServeJobState::Queued)
            continue;
        const double pass = tenant(info.spec.tenantId).pass;
        if (best == nullptr ||
            info.spec.priority > best->spec.priority ||
            (info.spec.priority == best->spec.priority &&
             pass < bestPass)) {
            best = &info;
            bestPass = pass;
        }
    }
    if (best == nullptr)
        return std::nullopt;

    TenantState &t = tenant(best->spec.tenantId);
    virtualTime_ = t.pass;
    t.pass += 1.0 / t.weight;
    ++t.dispatches;
    ++totalDispatches_;

    best->state = ServeJobState::Running;
    --queued_;
    ++running_;
    ++best->legsDispatched;

    ServeDispatch d;
    d.jobId = best->jobId;
    d.spec = best->spec;
    d.leg = best->leg;
    d.resume = best->resumeNextLeg;
    d.crashAfterIters = best->leg < best->spec.crashPlan.size()
                            ? best->spec.crashPlan[best->leg]
                            : 0;
    d.lease = pool_.acquire();
    return d;
}

void
ServeCore::onRunFinished(const ServeDispatch &dispatch,
                         std::string digest, double final_estimate,
                         std::uint64_t jobs_used)
{
    auto it = jobs_.find(dispatch.jobId);
    if (it == jobs_.end() ||
        it->second.state != ServeJobState::Running)
        throw std::invalid_argument(
            "ServeCore::onRunFinished: job " +
            std::to_string(dispatch.jobId) + " is not running");
    pool_.release(dispatch.lease);
    ServeJobInfo &info = it->second;
    info.state = ServeJobState::Completed;
    info.trajectoryDigest = std::move(digest);
    info.finalEstimate = final_estimate;
    info.jobsUsed = jobs_used;
    --running_;
    ++completed_;
}

void
ServeCore::onRunCrashed(const ServeDispatch &dispatch)
{
    auto it = jobs_.find(dispatch.jobId);
    if (it == jobs_.end() ||
        it->second.state != ServeJobState::Running)
        throw std::invalid_argument(
            "ServeCore::onRunCrashed: job " +
            std::to_string(dispatch.jobId) + " is not running");
    pool_.release(dispatch.lease);
    ServeJobInfo &info = it->second;
    info.state = ServeJobState::Queued;
    ++info.leg;
    info.resumeNextLeg = true;
    --running_;
    ++queued_;
}

std::optional<ServeJobInfo>
ServeCore::find(std::uint64_t job_id) const
{
    auto it = jobs_.find(job_id);
    if (it == jobs_.end())
        return std::nullopt;
    return it->second;
}

std::uint64_t
ServeCore::tenantDispatches(std::uint64_t tenant_id) const
{
    auto it = tenants_.find(tenant_id);
    return it == tenants_.end() ? 0 : it->second.dispatches;
}

std::vector<std::uint64_t>
ServeCore::jobIds() const
{
    std::vector<std::uint64_t> ids;
    ids.reserve(jobs_.size());
    for (const auto &[id, info] : jobs_)
        ids.push_back(id);
    return ids;
}

} // namespace qismet
