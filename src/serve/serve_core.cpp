#include "serve/serve_core.hpp"

#include <stdexcept>
#include <utility>

namespace qismet {

std::string
serveJobStateName(ServeJobState state)
{
    switch (state) {
      case ServeJobState::Queued: return "queued";
      case ServeJobState::Running: return "running";
      case ServeJobState::Completed: return "completed";
      case ServeJobState::Cancelled: return "cancelled";
      case ServeJobState::Shed: return "shed";
      case ServeJobState::Failed: return "failed";
    }
    return "?";
}

ServeCore::ServeCore(BackendPool &pool) : ServeCore(pool, {}) {}

ServeCore::ServeCore(BackendPool &pool, ServeCoreConfig config)
    : pool_(pool), config_(config)
{
}

ServeCore::TenantState &
ServeCore::tenant(std::uint64_t tenant_id)
{
    auto it = tenants_.find(tenant_id);
    if (it == tenants_.end()) {
        TenantState fresh;
        // A tenant joining mid-flight starts at the current virtual
        // time: it competes fairly from now on instead of burning its
        // accumulated "absence credit" to monopolize the fleet.
        fresh.pass = virtualTime_;
        it = tenants_.emplace(tenant_id, fresh).first;
    }
    return it->second;
}

void
ServeCore::setTenantWeight(std::uint64_t tenant_id, double weight)
{
    if (!(weight > 0.0))
        throw std::invalid_argument(
            "ServeCore::setTenantWeight: weight must be positive");
    tenant(tenant_id).weight = weight;
}

void
ServeCore::enforceQueueBound()
{
    if (config_.queueBound == 0)
        return;
    while (queued_ > config_.queueBound) {
        // Victim: lowest priority among queued jobs; newest (highest
        // id) within a priority, so older admitted work is protected.
        // std::map iterates id-ascending — the last candidate seen at
        // the minimum priority is the newest.
        ServeJobInfo *victim = nullptr;
        for (auto &[id, info] : jobs_) {
            if (info.state != ServeJobState::Queued)
                continue;
            if (victim == nullptr ||
                info.spec.priority <= victim->spec.priority)
                victim = &info;
        }
        if (victim == nullptr)
            return; // unreachable: queued_ > 0 implies a queued job
        victim->state = ServeJobState::Shed;
        --queued_;
        ++shed_;
        pendingSheds_.push_back(victim->jobId);
    }
}

std::uint64_t
ServeCore::submit(ServeJobSpec spec)
{
    spec.validate();
    const std::uint64_t id = nextJobId_++;
    ServeJobInfo info;
    info.jobId = id;
    info.spec = std::move(spec);
    tenant(info.spec.tenantId); // materialize fair-share state
    jobs_.emplace(id, std::move(info));
    ++queued_;
    enforceQueueBound();
    return id;
}

void
ServeCore::replaySubmit(std::uint64_t job_id, ServeJobSpec spec)
{
    spec.validate();
    if (job_id < nextJobId_)
        throw std::invalid_argument(
            "ServeCore::replaySubmit: job id " +
            std::to_string(job_id) + " is not monotonically fresh");
    nextJobId_ = job_id + 1;
    ServeJobInfo info;
    info.jobId = job_id;
    info.spec = std::move(spec);
    // The pre-crash process may have run any number of this job's legs;
    // whatever checkpoint survived is the resume point. A job that
    // never started has no checkpoint and recovery degrades to a fresh
    // start — both end at the solo digest.
    info.resumeNextLeg = true;
    tenant(info.spec.tenantId);
    jobs_.emplace(job_id, std::move(info));
    ++queued_;
    // No bound enforcement here: replayed sheds are recorded facts,
    // re-applied through replayShed, never re-decided.
}

void
ServeCore::recordOutcome(ServeJobInfo &info, ServeRunOutcome outcome)
{
    info.trajectoryDigest = std::move(outcome.trajectoryDigest);
    info.finalEstimate = outcome.finalEstimate;
    info.jobsUsed = outcome.jobsUsed;
    info.deadlineExpired = outcome.deadlineExpired;
    info.retriesUsed = outcome.retriesUsed;
    info.faultRetries = outcome.faultRetries;
    info.backoffSeconds = outcome.backoffSeconds;
    info.simTimeSeconds = outcome.simTimeSeconds;
    if (outcome.deadlineExpired)
        ++deadlineExpirations_;
}

void
ServeCore::replayComplete(std::uint64_t job_id, ServeRunOutcome outcome)
{
    auto it = jobs_.find(job_id);
    if (it == jobs_.end() ||
        it->second.state != ServeJobState::Queued)
        throw std::invalid_argument(
            "ServeCore::replayComplete: job " + std::to_string(job_id) +
            " is not a replayed queued job");
    ServeJobInfo &info = it->second;
    info.state = ServeJobState::Completed;
    recordOutcome(info, std::move(outcome));
    --queued_;
    ++completed_;
}

void
ServeCore::replayComplete(std::uint64_t job_id, std::string digest,
                          double final_estimate, std::uint64_t jobs_used)
{
    ServeRunOutcome outcome;
    outcome.trajectoryDigest = std::move(digest);
    outcome.finalEstimate = final_estimate;
    outcome.jobsUsed = jobs_used;
    replayComplete(job_id, std::move(outcome));
}

void
ServeCore::replayShed(std::uint64_t job_id)
{
    auto it = jobs_.find(job_id);
    if (it == jobs_.end() ||
        it->second.state != ServeJobState::Queued)
        throw std::invalid_argument(
            "ServeCore::replayShed: job " + std::to_string(job_id) +
            " is not a replayed queued job");
    it->second.state = ServeJobState::Shed;
    --queued_;
    ++shed_;
}

void
ServeCore::replayFailed(std::uint64_t job_id)
{
    auto it = jobs_.find(job_id);
    if (it == jobs_.end() ||
        it->second.state != ServeJobState::Queued)
        throw std::invalid_argument(
            "ServeCore::replayFailed: job " + std::to_string(job_id) +
            " is not a replayed queued job");
    it->second.state = ServeJobState::Failed;
    --queued_;
    ++failed_;
}

bool
ServeCore::cancel(std::uint64_t job_id)
{
    auto it = jobs_.find(job_id);
    if (it == jobs_.end() ||
        it->second.state != ServeJobState::Queued)
        return false;
    it->second.state = ServeJobState::Cancelled;
    --queued_;
    ++cancelled_;
    return true;
}

void
ServeCore::applyStorms(std::size_t backend_id)
{
    if (config_.chaos == nullptr)
        return;
    for (std::size_t idx :
         config_.chaos->stormsAt(backend_id, clock_.now())) {
        if (!appliedStorms_.insert(idx).second)
            continue; // a storm drifts the calibration exactly once
        const ChaosEvent &storm = config_.chaos->events()[idx];
        auto transitions = pool_.applyCalibrationStorm(
            backend_id, storm.count, clock_.now());
        pendingTransitions_.insert(pendingTransitions_.end(),
                                   transitions.begin(),
                                   transitions.end());
    }
}

std::optional<ServeDispatch>
ServeCore::nextDispatch()
{
    if (queued_ == 0)
        return std::nullopt;

    if (!pool_.anyLeasable(clock_.now())) {
        // Idle-fleet time skip: with work queued, nothing running and
        // every free backend behind an Open breaker, no leg completion
        // will ever advance the clock — fast-forward to the earliest
        // probe tick (discrete-event style) so the fleet wakes itself.
        if (running_ != 0)
            return std::nullopt;
        const auto probeAt = pool_.earliestProbeTick();
        if (!probeAt || *probeAt <= clock_.now())
            return std::nullopt;
        clock_.advanceTo(*probeAt);
        ++timeSkips_;
        if (!pool_.anyLeasable(clock_.now()))
            return std::nullopt;
    }

    // Pick: highest priority, then lowest tenant pass, then lowest id.
    // std::map iteration is id-ascending, so the first job seen wins
    // all ties deterministically.
    ServeJobInfo *best = nullptr;
    double bestPass = 0.0;
    for (auto &[id, info] : jobs_) {
        if (info.state != ServeJobState::Queued)
            continue;
        const double pass = tenant(info.spec.tenantId).pass;
        if (best == nullptr ||
            info.spec.priority > best->spec.priority ||
            (info.spec.priority == best->spec.priority &&
             pass < bestPass)) {
            best = &info;
            bestPass = pass;
        }
    }
    if (best == nullptr)
        return std::nullopt;

    auto lease =
        pool_.acquireHealthAware(clock_.now(), pendingTransitions_);
    if (!lease)
        return std::nullopt; // raced the time-skip check; try later

    // An active calibration storm on the chosen machine drifts its
    // calibration stream the moment the fleet touches it.
    applyStorms(lease->backendId);

    TenantState &t = tenant(best->spec.tenantId);
    virtualTime_ = t.pass;
    t.pass += 1.0 / t.weight;
    ++t.dispatches;
    ++totalDispatches_;

    best->state = ServeJobState::Running;
    --queued_;
    ++running_;
    ++best->legsDispatched;

    ServeDispatch d;
    d.jobId = best->jobId;
    d.spec = best->spec;
    d.leg = best->leg;
    d.resume = best->resumeNextLeg;
    d.crashAfterIters = best->leg < best->spec.crashPlan.size()
                            ? best->spec.crashPlan[best->leg]
                            : 0;
    d.lease = *lease;
    return d;
}

void
ServeCore::onRunFinished(const ServeDispatch &dispatch,
                         ServeRunOutcome outcome)
{
    auto it = jobs_.find(dispatch.jobId);
    if (it == jobs_.end() ||
        it->second.state != ServeJobState::Running)
        throw std::invalid_argument(
            "ServeCore::onRunFinished: job " +
            std::to_string(dispatch.jobId) + " is not running");
    clock_.advanceTicks(1);
    auto transitions = pool_.releaseSuccess(
        dispatch.lease, backendSlowdown(dispatch.lease.backendId),
        clock_.now());
    pendingTransitions_.insert(pendingTransitions_.end(),
                               transitions.begin(), transitions.end());
    ServeJobInfo &info = it->second;
    info.state = ServeJobState::Completed;
    recordOutcome(info, std::move(outcome));
    --running_;
    ++completed_;
}

void
ServeCore::onRunFinished(const ServeDispatch &dispatch,
                         std::string digest, double final_estimate,
                         std::uint64_t jobs_used)
{
    ServeRunOutcome outcome;
    outcome.trajectoryDigest = std::move(digest);
    outcome.finalEstimate = final_estimate;
    outcome.jobsUsed = jobs_used;
    onRunFinished(dispatch, std::move(outcome));
}

void
ServeCore::onRunCrashed(const ServeDispatch &dispatch)
{
    auto it = jobs_.find(dispatch.jobId);
    if (it == jobs_.end() ||
        it->second.state != ServeJobState::Running)
        throw std::invalid_argument(
            "ServeCore::onRunCrashed: job " +
            std::to_string(dispatch.jobId) + " is not running");
    clock_.advanceTicks(1);
    // A planned client-side crash is not a backend fault: the machine
    // did its work, so the lease completes (calibration advances) and
    // counts as a success observation.
    auto transitions = pool_.releaseSuccess(
        dispatch.lease, backendSlowdown(dispatch.lease.backendId),
        clock_.now());
    pendingTransitions_.insert(pendingTransitions_.end(),
                               transitions.begin(), transitions.end());
    ServeJobInfo &info = it->second;
    info.state = ServeJobState::Queued;
    ++info.leg;
    info.resumeNextLeg = true;
    --running_;
    ++queued_;
}

void
ServeCore::onBackendFault(const ServeDispatch &dispatch)
{
    auto it = jobs_.find(dispatch.jobId);
    if (it == jobs_.end() ||
        it->second.state != ServeJobState::Running)
        throw std::invalid_argument(
            "ServeCore::onBackendFault: job " +
            std::to_string(dispatch.jobId) + " is not running");
    clock_.advanceTicks(1);
    auto transitions =
        pool_.releaseFaulted(dispatch.lease, clock_.now());
    pendingTransitions_.insert(pendingTransitions_.end(),
                               transitions.begin(), transitions.end());
    ServeJobInfo &info = it->second;
    ++info.migrations;
    ++migrations_;
    ++backendFaults_;
    --running_;
    // Migration keeps the job's leg, resume flag and (therefore) its
    // RNG lineage and checkpoint intact: the next dispatch re-runs the
    // exact same leg on whichever backend is healthy, which is what
    // keeps the migrated digest equal to the solo digest.
    if (info.spec.migrationBudget > 0 &&
        info.migrations > info.spec.migrationBudget) {
        info.state = ServeJobState::Failed;
        ++failed_;
        pendingFailed_.push_back(info.jobId);
        return;
    }
    info.state = ServeJobState::Queued;
    ++queued_;
}

bool
ServeCore::backendDown(std::size_t backend_id) const
{
    return config_.chaos != nullptr &&
           config_.chaos->outageAt(backend_id, clock_.now());
}

double
ServeCore::backendSlowdown(std::size_t backend_id) const
{
    return config_.chaos == nullptr
               ? 1.0
               : config_.chaos->slowdownAt(backend_id, clock_.now());
}

void
ServeCore::advanceClock(std::uint64_t ticks)
{
    clock_.advanceTicks(ticks);
}

void
ServeCore::restoreClock(std::uint64_t ticks)
{
    clock_.restoreTicks(ticks);
}

std::optional<ServeJobInfo>
ServeCore::find(std::uint64_t job_id) const
{
    auto it = jobs_.find(job_id);
    if (it == jobs_.end())
        return std::nullopt;
    return it->second;
}

ServeFleetStats
ServeCore::fleetStats() const
{
    ServeFleetStats s;
    s.shed = shed_;
    s.failed = failed_;
    s.migrations = migrations_;
    s.backendFaults = backendFaults_;
    s.deadlineExpirations = deadlineExpirations_;
    s.timeSkips = timeSkips_;
    s.clockTicks = clock_.now();
    const BackendPoolStats &p = pool_.stats();
    s.breakerTrips = p.breakerTrips;
    s.breakerReopens = p.breakerReopens;
    s.halfOpenProbes = p.halfOpenProbes;
    s.stormsApplied = p.stormsApplied;
    return s;
}

std::uint64_t
ServeCore::tenantDispatches(std::uint64_t tenant_id) const
{
    auto it = tenants_.find(tenant_id);
    return it == tenants_.end() ? 0 : it->second.dispatches;
}

std::vector<std::uint64_t>
ServeCore::jobIds() const
{
    std::vector<std::uint64_t> ids;
    ids.reserve(jobs_.size());
    for (const auto &[id, info] : jobs_)
        ids.push_back(id);
    return ids;
}

std::vector<std::uint64_t>
ServeCore::drainShedJobs()
{
    return std::exchange(pendingSheds_, {});
}

std::vector<std::uint64_t>
ServeCore::drainFailedJobs()
{
    return std::exchange(pendingFailed_, {});
}

std::vector<HealthTransition>
ServeCore::drainHealthTransitions()
{
    return std::exchange(pendingTransitions_, {});
}

} // namespace qismet
