#include "serve/scheduler.hpp"

#include <filesystem>
#include <stdexcept>

#include "fault/crash_point.hpp"
#include "vqe/run_digest.hpp"

namespace qismet {

namespace {

/** Digest of the fleet configuration, stamped into the manifest so a
 * resume under a different fleet is rejected loudly. */
std::uint64_t
fleetDigest(const ServeSchedulerConfig &config)
{
    Encoder enc;
    enc.writeU64(config.backendSeed);
    enc.writeU64(config.backends.size());
    for (const std::string &name : config.backends)
        enc.writeString(name);
    enc.writeU64(config.queueBound);
    enc.writeU64(config.chaos != nullptr ? config.chaos->digest() : 0);
    enc.writeI64(config.health.degradeAfterFaults);
    enc.writeI64(config.health.quarantineAfterFaults);
    enc.writeI64(config.health.recoverAfterSuccesses);
    enc.writeU64(config.health.breakerCooldownTicks);
    enc.writeF64(config.health.breakerCooldownGrowth);
    enc.writeU64(config.health.breakerMaxCooldownTicks);
    enc.writeF64(config.health.latencyDegradeFactor);
    enc.writeF64(config.health.latencyEwmaAlpha);
    return fnv1a64(enc.bytes());
}

} // namespace

namespace {

ServeCoreConfig
coreConfig(const ServeSchedulerConfig &config)
{
    ServeCoreConfig core;
    core.queueBound = config.queueBound;
    core.chaos = config.chaos;
    return core;
}

} // namespace

ServeScheduler::ServeScheduler(ServeSchedulerConfig config)
    : config_(std::move(config)),
      backendPool_(config_.backends, config_.backendSeed,
                   config_.health),
      core_(backendPool_, coreConfig(config_)),
      paused_(config_.startPaused)
{
    if (config_.workers == 0)
        throw std::invalid_argument("ServeScheduler: zero workers");
    if (config_.resume && config_.stateDir.empty())
        throw std::invalid_argument(
            "ServeScheduler: resume without a stateDir");

    planCacheSlots_.reserve(backendPool_.size());
    for (std::size_t b = 0; b < backendPool_.size(); ++b)
        planCacheSlots_.push_back(std::make_unique<PlanCacheSlot>());

    if (!config_.stateDir.empty()) {
        std::filesystem::create_directories(config_.stateDir);
        const std::string path = config_.stateDir + "/manifest.qsvm";
        const std::uint64_t digest = fleetDigest(config_);
        if (config_.resume && fileExists(path)) {
            const ManifestScan scan = scanManifest(path);
            if (scan.fleetDigest != digest)
                throw ManifestError(
                    "manifest '" + path +
                    "' was written by a different fleet "
                    "configuration — refusing to resume");
            manifest_.emplace(path, digest, DurableFile::Mode::Append,
                              scan.cleanOffset);
            // Health frames replay in record order: each carries the
            // full post-change state, so the last one per backend wins
            // and the breaker clocks line up with the restored tick.
            for (const HealthTransition &t : scan.health)
                backendPool_.restoreHealth(t);
            core_.restoreClock(scan.lastTick);
            for (const auto &[jobId, spec] : scan.submitted) {
                core_.replaySubmit(jobId, spec);
                if (scan.cancelled.count(jobId) != 0) {
                    core_.cancel(jobId);
                    continue;
                }
                if (scan.shed.count(jobId) != 0) {
                    core_.replayShed(jobId);
                    continue;
                }
                if (scan.failed.count(jobId) != 0) {
                    core_.replayFailed(jobId);
                    continue;
                }
                auto done = scan.completed.find(jobId);
                if (done != scan.completed.end()) {
                    const ManifestCompletion &c = done->second;
                    ServeRunOutcome outcome;
                    outcome.trajectoryDigest = c.trajectoryDigest;
                    outcome.finalEstimate = c.finalEstimate;
                    outcome.jobsUsed = c.jobsUsed;
                    outcome.deadlineExpired = c.deadlineExpired;
                    outcome.retriesUsed = c.retriesUsed;
                    outcome.faultRetries = c.faultRetries;
                    outcome.backoffSeconds = c.backoffSeconds;
                    outcome.simTimeSeconds = c.simTimeSeconds;
                    core_.replayComplete(jobId, std::move(outcome));
                    ++replayedCompletions_;
                }
            }
        }
        else {
            manifest_.emplace(path, digest,
                              DurableFile::Mode::Truncate);
        }
    }

    pool_ = std::make_unique<ThreadPool>(config_.workers);
    std::vector<ServeDispatch> batch;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        batch = collectDispatchesLocked();
        flushCoreEventsLocked();
    }
    dispatchBatch(std::move(batch));
}

ServeScheduler::~ServeScheduler()
{
    drain();
    // ThreadPool's destructor joins the (now idle) workers before the
    // core, manifest and backend pool go away.
}

void
ServeScheduler::setTenantWeight(std::uint64_t tenant_id, double weight)
{
    std::lock_guard<std::mutex> lock(mutex_);
    core_.setTenantWeight(tenant_id, weight);
}

std::string
ServeScheduler::runDir(std::uint64_t job_id) const
{
    return config_.stateDir + "/run-" + std::to_string(job_id);
}

std::uint64_t
ServeScheduler::submit(const ServeJobSpec &spec)
{
    spec.validate();
    if (!spec.crashPlan.empty() && config_.stateDir.empty())
        throw std::invalid_argument(
            "ServeScheduler::submit: a crash plan needs a durable "
            "scheduler (stateDir) to recover from");
    std::uint64_t id = 0;
    std::vector<ServeDispatch> batch;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        id = core_.submit(spec);
        if (manifest_)
            manifest_->appendSubmit(id, spec);
        flushCoreEventsLocked();
        batch = collectDispatchesLocked();
        flushCoreEventsLocked();
        // Admission control may have shed the arriving job itself; a
        // drain() waiting on an otherwise-idle scheduler must see it.
        if (core_.pendingCount() == 0)
            idle_.notify_all();
    }
    dispatchBatch(std::move(batch));
    return id;
}

bool
ServeScheduler::cancel(std::uint64_t job_id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const bool cancelled = core_.cancel(job_id);
    if (cancelled && manifest_)
        manifest_->appendCancel(job_id);
    // Cancelling the last pending job must wake a concurrent drain():
    // no worker completion is coming to do it.
    if (cancelled && core_.pendingCount() == 0)
        idle_.notify_all();
    return cancelled;
}

void
ServeScheduler::setPaused(bool paused)
{
    std::vector<ServeDispatch> batch;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        paused_ = paused;
        if (!paused_) {
            batch = collectDispatchesLocked();
            flushCoreEventsLocked();
        }
        if (core_.pendingCount() == 0)
            idle_.notify_all();
    }
    dispatchBatch(std::move(batch));
}

bool
ServeScheduler::paused() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return paused_;
}

std::optional<ServeJobInfo>
ServeScheduler::poll(std::uint64_t job_id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return core_.find(job_id);
}

void
ServeScheduler::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return core_.pendingCount() == 0; });
}

std::vector<std::uint64_t>
ServeScheduler::jobIds() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return core_.jobIds();
}

std::uint64_t
ServeScheduler::backendLeases(std::size_t backend_id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return backendPool_.leasesCompleted(backend_id);
}

std::uint64_t
ServeScheduler::backendCalibrationDigest(std::size_t backend_id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return backendPool_.calibrationDigest(backend_id);
}

std::uint64_t
ServeScheduler::tenantDispatches(std::uint64_t tenant_id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return core_.tenantDispatches(tenant_id);
}

ServeFleetStats
ServeScheduler::fleetStats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return core_.fleetStats();
}

BackendHealth
ServeScheduler::backendHealth(std::size_t backend_id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return backendPool_.health(backend_id);
}

BreakerState
ServeScheduler::backendBreaker(std::size_t backend_id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return backendPool_.breaker(backend_id);
}

// The plan-cache counter reads don't take the scheduler mutex: the
// cache has its own lock, and these are telemetry snapshots (tests
// call them only after drain(), when no leg is running).
std::uint64_t
ServeScheduler::backendPlanCacheHits(std::size_t backend_id) const
{
    return planCacheSlots_.at(backend_id)->cache.hits();
}

std::uint64_t
ServeScheduler::backendPlanCacheMisses(std::size_t backend_id) const
{
    return planCacheSlots_.at(backend_id)->cache.misses();
}

std::size_t
ServeScheduler::backendPlanCacheSize(std::size_t backend_id) const
{
    return planCacheSlots_.at(backend_id)->cache.size();
}

std::uint64_t
ServeScheduler::clockNow() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return core_.clockNow();
}

void
ServeScheduler::advanceClock(std::uint64_t ticks)
{
    std::vector<ServeDispatch> batch;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        core_.advanceClock(ticks);
        batch = collectDispatchesLocked();
        flushCoreEventsLocked();
    }
    dispatchBatch(std::move(batch));
}

std::vector<ServeDispatch>
ServeScheduler::collectDispatchesLocked()
{
    std::vector<ServeDispatch> batch;
    if (paused_)
        return batch;
    while (auto dispatch = core_.nextDispatch())
        batch.push_back(*dispatch);
    return batch;
}

void
ServeScheduler::flushCoreEventsLocked()
{
    // Drain unconditionally so the event queues stay bounded even
    // in-memory; journal write-ahead when durable.
    for (std::uint64_t id : core_.drainShedJobs())
        if (manifest_)
            manifest_->appendShed(id);
    for (std::uint64_t id : core_.drainFailedJobs())
        if (manifest_)
            manifest_->appendFailed(id);
    for (const HealthTransition &t : core_.drainHealthTransitions())
        if (manifest_)
            manifest_->appendHealth(t);
}

std::vector<ServeDispatch>
ServeScheduler::faultLegLocked(const ServeDispatch &dispatch)
{
    core_.onBackendFault(dispatch);
    flushCoreEventsLocked();
    std::vector<ServeDispatch> batch = collectDispatchesLocked();
    flushCoreEventsLocked();
    if (core_.pendingCount() == 0)
        idle_.notify_all();
    return batch;
}

void
ServeScheduler::dispatchBatch(std::vector<ServeDispatch> batch)
{
    for (ServeDispatch &dispatch : batch) {
        // The worker gets its own copy of the dispatch; the lambda is
        // the only owner, so the leg's identity can't be raced.
        pool_->submit(
            [this, d = std::move(dispatch)]() mutable { runLeg(d); });
    }
}

void
ServeScheduler::runLeg(const ServeDispatch &dispatch)
{
    // An outage that opened before the leg starts: the backend does no
    // work and no run randomness is consumed — fault and migrate. The
    // re-dispatch happens outside the guard's scope (lock-order rule:
    // never hold the scheduler lock across a pool submit).
    {
        bool down = false;
        std::vector<ServeDispatch> faulted;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (core_.backendDown(dispatch.lease.backendId)) {
                down = true;
                faulted = faultLegLocked(dispatch);
            }
        }
        if (down) {
            dispatchBatch(std::move(faulted));
            return;
        }
    }

    // Heavy section — no scheduler lock held. Everything the run
    // consumes derives from the spec (and its checkpoint directory),
    // which is what keeps it bit-identical to a solo execution.
    bool crashed = false;
    ServeRunOutcome outcome;
    QismetVqeConfig cfg = buildRunConfig(dispatch.spec);

    // Lease-scoped ExpectationPlan cache: the lease grants this leg
    // the backend exclusively, so its slot is touched without the
    // scheduler lock (handoff between legs synchronizes through the
    // mutex that granted the lease). Clearing on tenant change keeps
    // compiled plans from ever crossing tenants; within a tenant the
    // cache persists across legs and jobs, so resubmissions of one
    // Hamiltonian skip the compile step. Cache state is excluded from
    // the run-config digest — a plan is bit-pure, hit or miss.
    {
        PlanCacheSlot &slot = *planCacheSlots_[dispatch.lease.backendId];
        if (slot.used && slot.lastTenant != dispatch.spec.tenantId)
            slot.cache.clear();
        slot.lastTenant = dispatch.spec.tenantId;
        slot.used = true;
        cfg.estimator.planCache = &slot.cache;
        cfg.estimator.planCacheTenant = dispatch.spec.tenantId;
    }
    if (!config_.stateDir.empty()) {
        cfg.checkpointDir = runDir(dispatch.jobId);
        cfg.resume = dispatch.resume;
        cfg.crashAfterIters = dispatch.crashAfterIters;
    }
    try {
        const QismetVqe runner = buildRunner(dispatch.spec);
        const QismetVqeResult result = runner.run(cfg);
        outcome.trajectoryDigest = trajectoryDigest(result.run);
        outcome.finalEstimate = result.run.finalEstimate;
        outcome.jobsUsed = result.run.jobsUsed;
        outcome.deadlineExpired = result.run.deadlineExpired;
        outcome.retriesUsed = result.run.retriesUsed;
        outcome.faultRetries = result.run.faultRetries;
        outcome.backoffSeconds = result.run.backoffSeconds;
        outcome.simTimeSeconds = result.run.simTimeSeconds;
    }
    catch (const SimulatedCrash &) {
        crashed = true;
    }

    std::vector<ServeDispatch> batch;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (crashed) {
            core_.onRunCrashed(dispatch);
        }
        else if (core_.backendDown(dispatch.lease.backendId)) {
            // The run finished but its backend entered an outage window
            // meanwhile: the result is lost in transit. Migrating is
            // digest-safe — the re-run recomputes (or recovers from the
            // job's checkpoint) the identical trajectory, because the
            // trajectory is a pure function of the spec.
            core_.onBackendFault(dispatch);
        }
        else {
            // Write-ahead: the outcome is durable before the job table
            // flips to Completed, so a kill between the two re-runs the
            // leg (deterministic) instead of losing the result.
            if (manifest_) {
                ManifestCompletion completion;
                completion.trajectoryDigest = outcome.trajectoryDigest;
                completion.finalEstimate = outcome.finalEstimate;
                completion.jobsUsed = outcome.jobsUsed;
                completion.tick = core_.clockNow();
                completion.deadlineExpired = outcome.deadlineExpired;
                completion.retriesUsed = outcome.retriesUsed;
                completion.faultRetries = outcome.faultRetries;
                completion.backoffSeconds = outcome.backoffSeconds;
                completion.simTimeSeconds = outcome.simTimeSeconds;
                manifest_->appendComplete(dispatch.jobId, completion);
            }
            core_.onRunFinished(dispatch, std::move(outcome));
        }
        flushCoreEventsLocked();
        // The soak harness arms this point in Exit mode (std::_Exit(43)):
        // a genuine whole-process death at a job boundary, serialized
        // under the scheduler lock so the countdown is exact.
        CrashPoints::hit(kCrashServeJobBoundary);
        batch = collectDispatchesLocked();
        flushCoreEventsLocked();
        if (core_.pendingCount() == 0)
            idle_.notify_all();
    }
    dispatchBatch(std::move(batch));
}

} // namespace qismet
