#include "serve/scheduler.hpp"

#include <filesystem>
#include <stdexcept>

#include "fault/crash_point.hpp"
#include "vqe/run_digest.hpp"

namespace qismet {

namespace {

/** Digest of the fleet configuration, stamped into the manifest so a
 * resume under a different fleet is rejected loudly. */
std::uint64_t
fleetDigest(const ServeSchedulerConfig &config)
{
    Encoder enc;
    enc.writeU64(config.backendSeed);
    enc.writeU64(config.backends.size());
    for (const std::string &name : config.backends)
        enc.writeString(name);
    return fnv1a64(enc.bytes());
}

} // namespace

ServeScheduler::ServeScheduler(ServeSchedulerConfig config)
    : config_(std::move(config)),
      backendPool_(config_.backends, config_.backendSeed),
      core_(backendPool_)
{
    if (config_.workers == 0)
        throw std::invalid_argument("ServeScheduler: zero workers");
    if (config_.resume && config_.stateDir.empty())
        throw std::invalid_argument(
            "ServeScheduler: resume without a stateDir");

    if (!config_.stateDir.empty()) {
        std::filesystem::create_directories(config_.stateDir);
        const std::string path = config_.stateDir + "/manifest.qsvm";
        const std::uint64_t digest = fleetDigest(config_);
        if (config_.resume && fileExists(path)) {
            const ManifestScan scan = scanManifest(path);
            if (scan.fleetDigest != digest)
                throw ManifestError(
                    "manifest '" + path +
                    "' was written by a different fleet "
                    "configuration — refusing to resume");
            manifest_.emplace(path, digest, DurableFile::Mode::Append,
                              scan.cleanOffset);
            for (const auto &[jobId, spec] : scan.submitted) {
                core_.replaySubmit(jobId, spec);
                if (scan.cancelled.count(jobId) != 0) {
                    core_.cancel(jobId);
                    continue;
                }
                auto done = scan.completed.find(jobId);
                if (done != scan.completed.end()) {
                    core_.replayComplete(
                        jobId, done->second.trajectoryDigest,
                        done->second.finalEstimate,
                        done->second.jobsUsed);
                    ++replayedCompletions_;
                }
            }
        }
        else {
            manifest_.emplace(path, digest,
                              DurableFile::Mode::Truncate);
        }
    }

    pool_ = std::make_unique<ThreadPool>(config_.workers);
    std::vector<ServeDispatch> batch;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        batch = collectDispatchesLocked();
    }
    dispatchBatch(std::move(batch));
}

ServeScheduler::~ServeScheduler()
{
    drain();
    // ThreadPool's destructor joins the (now idle) workers before the
    // core, manifest and backend pool go away.
}

void
ServeScheduler::setTenantWeight(std::uint64_t tenant_id, double weight)
{
    std::lock_guard<std::mutex> lock(mutex_);
    core_.setTenantWeight(tenant_id, weight);
}

std::string
ServeScheduler::runDir(std::uint64_t job_id) const
{
    return config_.stateDir + "/run-" + std::to_string(job_id);
}

std::uint64_t
ServeScheduler::submit(const ServeJobSpec &spec)
{
    spec.validate();
    if (!spec.crashPlan.empty() && config_.stateDir.empty())
        throw std::invalid_argument(
            "ServeScheduler::submit: a crash plan needs a durable "
            "scheduler (stateDir) to recover from");
    std::uint64_t id = 0;
    std::vector<ServeDispatch> batch;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        id = core_.submit(spec);
        if (manifest_)
            manifest_->appendSubmit(id, spec);
        batch = collectDispatchesLocked();
    }
    dispatchBatch(std::move(batch));
    return id;
}

bool
ServeScheduler::cancel(std::uint64_t job_id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const bool cancelled = core_.cancel(job_id);
    if (cancelled && manifest_)
        manifest_->appendCancel(job_id);
    return cancelled;
}

std::optional<ServeJobInfo>
ServeScheduler::poll(std::uint64_t job_id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return core_.find(job_id);
}

void
ServeScheduler::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return core_.pendingCount() == 0; });
}

std::vector<std::uint64_t>
ServeScheduler::jobIds() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return core_.jobIds();
}

std::uint64_t
ServeScheduler::backendLeases(std::size_t backend_id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return backendPool_.leasesCompleted(backend_id);
}

std::uint64_t
ServeScheduler::backendCalibrationDigest(std::size_t backend_id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return backendPool_.calibrationDigest(backend_id);
}

std::uint64_t
ServeScheduler::tenantDispatches(std::uint64_t tenant_id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return core_.tenantDispatches(tenant_id);
}

std::vector<ServeDispatch>
ServeScheduler::collectDispatchesLocked()
{
    std::vector<ServeDispatch> batch;
    while (auto dispatch = core_.nextDispatch())
        batch.push_back(*dispatch);
    return batch;
}

void
ServeScheduler::dispatchBatch(std::vector<ServeDispatch> batch)
{
    for (ServeDispatch &dispatch : batch) {
        // The worker gets its own copy of the dispatch; the lambda is
        // the only owner, so the leg's identity can't be raced.
        pool_->submit(
            [this, d = std::move(dispatch)]() mutable { runLeg(d); });
    }
}

void
ServeScheduler::runLeg(const ServeDispatch &dispatch)
{
    // Heavy section — no scheduler lock held. Everything the run
    // consumes derives from the spec (and its checkpoint directory),
    // which is what keeps it bit-identical to a solo execution.
    bool crashed = false;
    ManifestCompletion completion;
    QismetVqeConfig cfg = buildRunConfig(dispatch.spec);
    if (!config_.stateDir.empty()) {
        cfg.checkpointDir = runDir(dispatch.jobId);
        cfg.resume = dispatch.resume;
        cfg.crashAfterIters = dispatch.crashAfterIters;
    }
    try {
        const QismetVqe runner = buildRunner(dispatch.spec);
        const QismetVqeResult result = runner.run(cfg);
        completion.trajectoryDigest = trajectoryDigest(result.run);
        completion.finalEstimate = result.run.finalEstimate;
        completion.jobsUsed = result.run.jobsUsed;
    }
    catch (const SimulatedCrash &) {
        crashed = true;
    }

    std::vector<ServeDispatch> batch;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (crashed) {
            core_.onRunCrashed(dispatch);
        }
        else {
            // Write-ahead: the outcome is durable before the job table
            // flips to Completed, so a kill between the two re-runs the
            // leg (deterministic) instead of losing the result.
            if (manifest_)
                manifest_->appendComplete(dispatch.jobId, completion);
            core_.onRunFinished(dispatch, completion.trajectoryDigest,
                                completion.finalEstimate,
                                completion.jobsUsed);
        }
        // The soak harness arms this point in Exit mode (std::_Exit(43)):
        // a genuine whole-process death at a job boundary, serialized
        // under the scheduler lock so the countdown is exact.
        CrashPoints::hit(kCrashServeJobBoundary);
        batch = collectDispatchesLocked();
        if (core_.pendingCount() == 0)
            idle_.notify_all();
    }
    dispatchBatch(std::move(batch));
}

} // namespace qismet
