/**
 * @file
 * ServeScheduler: the multi-tenant serve layer's public face — async
 * submit/poll/cancel over a worker pool, with per-run checkpoint
 * isolation and whole-process kill recovery.
 *
 * Architecture (DESIGN.md §12): one mutex guards a deterministic
 * ServeCore (job table + fair-share queue + backend leases); a
 * qismet::ThreadPool executes run legs. Workers take the lock only at
 * leg boundaries (dispatch, completion, crash), so the serialized
 * section is a few map updates per leg while the heavy VQA simulation
 * runs lock-free.
 *
 * Determinism argument, in full:
 *  1. A run's trajectory is a pure function of its ServeJobSpec
 *     (job_spec.hpp): the lease, worker thread, and interleaving never
 *     feed its randomness.
 *  2. Crash/resume legs recover through src/persist, whose contract is
 *     bit-identical continuation; crashAfterIters is excluded from the
 *     run-config digest, so every leg joins the same checkpoint
 *     lineage.
 *  3. Therefore every job's final digest equals its solo-execution
 *     digest at any worker count, any backlog of filler tenants, and
 *     any crash pattern — which the soak harness verifies job by job.
 *  Dispatch *order* is deterministic only single-threaded (property
 *  tests); under threads it depends on completion timing, and nothing
 *  downstream of it is allowed to matter.
 *
 * Durability: with a stateDir, every job directory stateDir/run-<id>
 * holds the run's own journal+snapshot, and stateDir/manifest.qsvm
 * records submissions/outcomes write-ahead — including admission
 * sheds, migration failures and backend health/breaker transitions.
 * Killing the process (CrashPoints Exit at kCrashServeJobBoundary,
 * exit 43) and constructing a scheduler with resume=true rebuilds the
 * job table, the fleet health state and the fleet clock, keeps
 * completed results, and resumes in-flight runs from their
 * checkpoints — even mid-way through a chaos outage window.
 *
 * Fleet resilience (DESIGN.md §15): a leg whose backend is inside a
 * chaos outage window faults without consuming any run randomness; the
 * job migrates (same leg, same RNG lineage, same checkpoint) to the
 * next leasable backend. Breaker trips and probes run on the core's
 * fleet tick clock; run deadlines run on each run's own simulated
 * seconds. Neither feeds run randomness, so every completed job's
 * digest still equals its solo digest.
 */

#ifndef QISMET_SERVE_SCHEDULER_HPP
#define QISMET_SERVE_SCHEDULER_HPP

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "pauli/expectation_plan.hpp"
#include "serve/manifest.hpp"
#include "serve/serve_core.hpp"

namespace qismet {

/** Scheduler configuration. */
struct ServeSchedulerConfig
{
    /** Worker threads executing run legs (>= 1). */
    std::size_t workers = 1;
    /** Machine name per backend; fleet size = list size. */
    std::vector<std::string> backends = {"guadalupe"};
    /**
     * Durability root: per-run checkpoints in stateDir/run-<id>, the
     * manifest at stateDir/manifest.qsvm. Empty = fully in-memory
     * (no crash plans allowed, nothing survives the process).
     */
    std::string stateDir;
    /** Recover from stateDir's manifest if one exists. */
    bool resume = false;
    /** Root seed of the backend calibration streams. */
    std::uint64_t backendSeed = 0x5EbfE5eed;
    /**
     * Admission bound on the queued-job count; 0 = unbounded. Past the
     * bound the lowest-priority queued job is shed (ServeJobState::Shed,
     * journaled). With `startPaused`, the shed *set* is deterministic:
     * queue depth evolves purely with submission order, independent of
     * worker timing.
     */
    std::size_t queueBound = 0;
    /**
     * Chaos schedule driving backend outages, slowdowns, calibration
     * storms (fault/chaos.hpp). Not owned; must outlive the scheduler.
     * Null = no chaos. Folded into the fleet digest: a manifest written
     * under one schedule refuses to resume under another.
     */
    const ChaosSchedule *chaos = nullptr;
    /** Health/breaker hysteresis knobs (backend_pool.hpp). */
    HealthPolicy health;
    /**
     * Construct with dispatch paused: submissions queue (and shed)
     * without running until setPaused(false). The chaos harness uses
     * this to make admission-control decisions independent of worker
     * completion timing.
     */
    bool startPaused = false;
};

class ServeScheduler
{
  public:
    /** @throws std::invalid_argument on a bad config;
     *  ManifestError/CheckpointError on corrupt recovery state. */
    explicit ServeScheduler(ServeSchedulerConfig config);

    /** Drains all pending work, then joins the workers. */
    ~ServeScheduler();

    ServeScheduler(const ServeScheduler &) = delete;
    ServeScheduler &operator=(const ServeScheduler &) = delete;

    /** Set a tenant's fair-share weight (>0). */
    void setTenantWeight(std::uint64_t tenant_id, double weight);

    /**
     * Enqueue a job and return its id immediately; the run executes
     * asynchronously on the worker pool.
     * @throws std::invalid_argument on an invalid spec, or a crash
     *         plan without a stateDir to recover from.
     */
    std::uint64_t submit(const ServeJobSpec &spec);

    /** Cancel a queued job (running legs are never preempted). */
    bool cancel(std::uint64_t job_id);

    /**
     * Pause/unpause dispatch. Pausing never preempts running legs;
     * unpausing dispatches everything runnable.
     */
    void setPaused(bool paused);

    bool paused() const;

    /** Snapshot of one job's state, or nullopt for an unknown id. */
    std::optional<ServeJobInfo> poll(std::uint64_t job_id) const;

    /** Block until every submitted job is terminal. */
    void drain();

    /** Jobs recovered as already-completed from the manifest. */
    std::size_t replayedCompletions() const
    {
        return replayedCompletions_;
    }

    /** All job ids in submission order. */
    std::vector<std::uint64_t> jobIds() const;

    std::size_t workerCount() const { return pool_->size(); }
    std::size_t backendCount() const { return backendPool_.size(); }

    /** Completed-lease count of one backend (soak telemetry). */
    std::uint64_t backendLeases(std::size_t backend_id) const;

    /** Per-machine calibration digest (isolation telemetry). */
    std::uint64_t backendCalibrationDigest(std::size_t backend_id) const;

    /** Legs dispatched for one tenant (fairness telemetry). */
    std::uint64_t tenantDispatches(std::uint64_t tenant_id) const;

    /** Fleet resilience counters (sheds, migrations, breaker trips…). */
    ServeFleetStats fleetStats() const;

    /** Health / breaker state of one backend. */
    BackendHealth backendHealth(std::size_t backend_id) const;
    BreakerState backendBreaker(std::size_t backend_id) const;

    /**
     * ExpectationPlan-cache counters of one backend's lease-scoped
     * slot (telemetry; the isolation tests assert that a tenant
     * handoff empties the slot).
     */
    std::uint64_t backendPlanCacheHits(std::size_t backend_id) const;
    std::uint64_t backendPlanCacheMisses(std::size_t backend_id) const;
    std::size_t backendPlanCacheSize(std::size_t backend_id) const;

    /** Fleet clock, in ticks. */
    std::uint64_t clockNow() const;

    /**
     * Chaos-harness hook: advance the fleet clock (e.g. past an outage
     * window) and dispatch anything that became runnable.
     */
    void advanceClock(std::uint64_t ticks);

  private:
    void recoverLocked();
    /**
     * Drain every runnable leg out of the core (lock held). The caller
     * releases the lock and hands the batch to dispatchBatch(): leg
     * *identity* (backend lease, spec, resume point) is fixed here
     * under the mutex, while the ThreadPool submission happens outside
     * it so the scheduler lock is never held across pool dispatch
     * (lock-order rule).
     */
    std::vector<ServeDispatch> collectDispatchesLocked();
    /** Submit a collected batch to the pool. Call with no lock held. */
    void dispatchBatch(std::vector<ServeDispatch> batch);
    /** Execute one leg on a worker thread. */
    void runLeg(const ServeDispatch &dispatch);
    /** Journal shed/failed/health events drained from the core. */
    void flushCoreEventsLocked();
    /** Migrate a backend-faulted leg; returns the follow-up batch. */
    std::vector<ServeDispatch> faultLegLocked(
        const ServeDispatch &dispatch);
    std::string runDir(std::uint64_t job_id) const;

    /**
     * Lease-scoped ExpectationPlan cache, one slot per backend. A
     * backend is leased to exactly one running leg at a time, so only
     * the worker holding the lease touches its slot; handoff between
     * legs synchronizes through the scheduler mutex that grants
     * leases. Whenever the tenant changes hands the slot is cleared
     * before use, so compiled plans — though bit-pure — never survive
     * across tenants (multi-tenant isolation rule: no shared state,
     * not even caches, between tenants on one backend).
     */
    struct PlanCacheSlot
    {
        ExpectationPlanCache cache;
        std::uint64_t lastTenant = 0;
        bool used = false;
    };

    ServeSchedulerConfig config_;
    BackendPool backendPool_;
    /** unique_ptr per slot: the mutex inside the cache pins it. */
    std::vector<std::unique_ptr<PlanCacheSlot>> planCacheSlots_;
    mutable std::mutex mutex_;
    std::condition_variable idle_;
    ServeCore core_;
    std::optional<ServeManifest> manifest_;
    std::size_t replayedCompletions_ = 0;
    bool paused_ = false;
    /** Created last, destroyed first: workers must die before state. */
    std::unique_ptr<ThreadPool> pool_;
};

} // namespace qismet

#endif // QISMET_SERVE_SCHEDULER_HPP
