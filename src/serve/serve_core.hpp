/**
 * @file
 * ServeCore: the scheduler's deterministic heart — job table, stride
 * fair-share queue, and backend leasing — as a single-threaded state
 * machine with no clocks, no I/O and no randomness of its own.
 *
 * The threaded ServeScheduler drives this object under one mutex; the
 * property-test suite drives it directly with randomized
 * submit/cancel/crash sequences. Because every transition is a pure
 * function of the call sequence, "deterministic dispatch order under a
 * fixed seed" is testable without threads, and the threaded wrapper
 * inherits per-run determinism from the job-spec purity argument
 * (job_spec.hpp) rather than from dispatch-order stability.
 *
 * Scheduling model (DESIGN.md §12): strict priority first, stride
 * fair-share within a priority level. Each tenant carries a `pass`
 * that advances by 1/weight per dispatched leg; the queued job with the
 * (highest priority, lowest tenant pass, lowest job id) dispatches
 * next. Stride scheduling bounds any backlogged tenant's lag behind its
 * weighted share by one dispatch, which gives both the fairness bound
 * and starvation-freedom the property suite asserts.
 */

#ifndef QISMET_SERVE_SERVE_CORE_HPP
#define QISMET_SERVE_SERVE_CORE_HPP

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "serve/backend_pool.hpp"
#include "serve/job_spec.hpp"

namespace qismet {

/** Lifecycle of one serve job. */
enum class ServeJobState : std::uint8_t
{
    Queued = 0,   ///< waiting for a backend (first leg or resume leg)
    Running = 1,  ///< a leg is executing on a leased backend
    Completed = 2,///< final leg finished; digest recorded
    Cancelled = 3 ///< cancelled while queued (never dispatched again)
};

std::string serveJobStateName(ServeJobState state);

/** Everything the scheduler knows about one job (poll() view). */
struct ServeJobInfo
{
    std::uint64_t jobId = 0;
    ServeJobSpec spec;
    ServeJobState state = ServeJobState::Queued;
    /** Crash-plan leg to run next (== crashes survived so far). */
    std::size_t leg = 0;
    /** Next leg resumes from the job's checkpoint directory. */
    bool resumeNextLeg = false;
    /** Legs dispatched (completed or crashed) so far. */
    std::uint64_t legsDispatched = 0;
    /** Filled when Completed. */
    std::string trajectoryDigest;
    double finalEstimate = 0.0;
    std::uint64_t jobsUsed = 0;
};

/** One dispatch decision: run this job's next leg on this lease. */
struct ServeDispatch
{
    std::uint64_t jobId = 0;
    ServeJobSpec spec;
    std::size_t leg = 0;
    bool resume = false;
    /** 0 = run to completion; else SimulatedCrash at this iteration. */
    std::uint64_t crashAfterIters = 0;
    BackendLease lease;
};

class ServeCore
{
  public:
    /** @param pool Backend fleet; not owned, must outlive the core. */
    explicit ServeCore(BackendPool &pool);

    /**
     * Set a tenant's fair-share weight (> 0; default 1.0). Takes
     * effect from the tenant's next dispatch.
     */
    void setTenantWeight(std::uint64_t tenant_id, double weight);

    /** Enqueue a job; returns its id (dense, starting at 1). */
    std::uint64_t submit(ServeJobSpec spec);

    /**
     * Manifest replay: re-create a job under its original id.
     * The job is queued with resumeNextLeg set — an interrupted leg
     * recovers from its checkpoint, a never-started one begins fresh.
     * @throws std::invalid_argument on id reuse or non-monotonic ids.
     */
    void replaySubmit(std::uint64_t job_id, ServeJobSpec spec);

    /** Manifest replay: mark a replayed job done with its recorded
     * result (it will not be re-run). */
    void replayComplete(std::uint64_t job_id, std::string digest,
                        double final_estimate, std::uint64_t jobs_used);

    /**
     * Cancel a queued job. Returns true when the job was queued (now
     * Cancelled); false when unknown, running, or already terminal —
     * running legs are never preempted.
     */
    bool cancel(std::uint64_t job_id);

    /**
     * Pick and lease the next leg to run, or nullopt when no job is
     * queued or no backend is free. Advances the chosen tenant's pass.
     */
    std::optional<ServeDispatch> nextDispatch();

    /** A dispatched leg finished its run (final leg). */
    void onRunFinished(const ServeDispatch &dispatch, std::string digest,
                       double final_estimate, std::uint64_t jobs_used);

    /** A dispatched leg died at its planned crash; requeue the job. */
    void onRunCrashed(const ServeDispatch &dispatch);

    /** Job view, or nullopt for an unknown id. */
    std::optional<ServeJobInfo> find(std::uint64_t job_id) const;

    std::size_t queuedCount() const { return queued_; }
    std::size_t runningCount() const { return running_; }
    std::size_t completedCount() const { return completed_; }
    std::size_t cancelledCount() const { return cancelled_; }
    /** Jobs not yet terminal (queued + running). */
    std::size_t pendingCount() const { return queued_ + running_; }

    /** Legs dispatched for a tenant (fairness accounting). */
    std::uint64_t tenantDispatches(std::uint64_t tenant_id) const;

    /** Total legs dispatched. */
    std::uint64_t totalDispatches() const { return totalDispatches_; }

    /** All job ids in submission order (tests iterate results). */
    std::vector<std::uint64_t> jobIds() const;

  private:
    struct TenantState
    {
        double weight = 1.0;
        double pass = 0.0;
        std::uint64_t dispatches = 0;
    };

    TenantState &tenant(std::uint64_t tenant_id);

    BackendPool &pool_;
    std::map<std::uint64_t, ServeJobInfo> jobs_;
    std::map<std::uint64_t, TenantState> tenants_;
    /** Virtual time: pass of the most recently dispatched tenant. */
    double virtualTime_ = 0.0;
    std::uint64_t nextJobId_ = 1;
    std::size_t queued_ = 0;
    std::size_t running_ = 0;
    std::size_t completed_ = 0;
    std::size_t cancelled_ = 0;
    std::uint64_t totalDispatches_ = 0;
};

} // namespace qismet

#endif // QISMET_SERVE_SERVE_CORE_HPP
