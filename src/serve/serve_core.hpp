/**
 * @file
 * ServeCore: the scheduler's deterministic heart — job table, stride
 * fair-share queue, backend leasing, admission control and the fleet
 * clock — as a single-threaded state machine with no wall clocks, no
 * I/O and no randomness of its own.
 *
 * The threaded ServeScheduler drives this object under one mutex; the
 * property-test suite drives it directly with randomized
 * submit/cancel/crash sequences. Because every transition is a pure
 * function of the call sequence, "deterministic dispatch order under a
 * fixed seed" is testable without threads, and the threaded wrapper
 * inherits per-run determinism from the job-spec purity argument
 * (job_spec.hpp) rather than from dispatch-order stability.
 *
 * Scheduling model (DESIGN.md §12): strict priority first, stride
 * fair-share within a priority level. Each tenant carries a `pass`
 * that advances by 1/weight per dispatched leg; the queued job with the
 * (highest priority, lowest tenant pass, lowest job id) dispatches
 * next. Stride scheduling bounds any backlogged tenant's lag behind its
 * weighted share by one dispatch, which gives both the fairness bound
 * and starvation-freedom the property suite asserts.
 *
 * Fleet resilience (DESIGN.md §15): dispatch is health-aware (healthy
 * backends before degraded, quarantined only as breaker probes), the
 * queue is bounded by `ServeCoreConfig::queueBound` with
 * lowest-priority shedding, a backend fault re-queues the job with its
 * leg, RNG lineage and checkpoint intact (deterministic migration),
 * and the core owns the fleet SimClock that breaker cooldowns and
 * chaos windows are expressed in. When every backend is breaker-blocked
 * and nothing is running, nextDispatch() performs a discrete-event
 * time skip to the earliest probe tick, so a fully quarantined fleet
 * wakes itself instead of deadlocking.
 */

#ifndef QISMET_SERVE_SERVE_CORE_HPP
#define QISMET_SERVE_SERVE_CORE_HPP

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "common/sim_clock.hpp"
#include "fault/chaos.hpp"
#include "serve/backend_pool.hpp"
#include "serve/job_spec.hpp"

namespace qismet {

/** Lifecycle of one serve job. */
enum class ServeJobState : std::uint8_t
{
    Queued = 0,   ///< waiting for a backend (first leg or resume leg)
    Running = 1,  ///< a leg is executing on a leased backend
    Completed = 2,///< final leg finished; digest recorded
    Cancelled = 3,///< cancelled while queued (never dispatched again)
    Shed = 4,     ///< dropped by admission control (queue bound)
    Failed = 5    ///< migration budget exhausted by backend faults
};

std::string serveJobStateName(ServeJobState state);

/**
 * Result payload of a finished run — live or manifest-replayed. The
 * telemetry tail (retries, backoff, simulated time) rides along so
 * poll() callers can observe degradation directly instead of inferring
 * it from latency.
 */
struct ServeRunOutcome
{
    std::string trajectoryDigest;
    double finalEstimate = 0.0;
    std::uint64_t jobsUsed = 0;
    /** The run stopped at its simulated-time deadline budget. */
    bool deadlineExpired = false;
    /** Retries consumed (policy rejects + fault retries). */
    std::uint64_t retriesUsed = 0;
    /** Retries forced by faulted jobs alone. */
    std::uint64_t faultRetries = 0;
    /** Simulated seconds spent in fault-retry backoff. */
    double backoffSeconds = 0.0;
    /** Total simulated seconds of the run. */
    double simTimeSeconds = 0.0;
};

/** Everything the scheduler knows about one job (poll() view). */
struct ServeJobInfo
{
    std::uint64_t jobId = 0;
    ServeJobSpec spec;
    ServeJobState state = ServeJobState::Queued;
    /** Crash-plan leg to run next (== crashes survived so far). */
    std::size_t leg = 0;
    /** Next leg resumes from the job's checkpoint directory. */
    bool resumeNextLeg = false;
    /** Legs dispatched (completed or crashed) so far. */
    std::uint64_t legsDispatched = 0;
    /** Backend-fault migrations suffered so far. */
    std::uint64_t migrations = 0;
    /** Filled when Completed. */
    std::string trajectoryDigest;
    double finalEstimate = 0.0;
    std::uint64_t jobsUsed = 0;
    /** The run stopped at its simulated-time deadline budget. */
    bool deadlineExpired = false;
    /** Retries consumed by the run (policy rejects + fault retries). */
    std::uint64_t retriesUsed = 0;
    /** Retries forced by faulted jobs alone. */
    std::uint64_t faultRetries = 0;
    /** Simulated seconds the run spent in fault-retry backoff. */
    double backoffSeconds = 0.0;
    /** Total simulated seconds of the run. */
    double simTimeSeconds = 0.0;
};

/** One dispatch decision: run this job's next leg on this lease. */
struct ServeDispatch
{
    std::uint64_t jobId = 0;
    ServeJobSpec spec;
    std::size_t leg = 0;
    bool resume = false;
    /** 0 = run to completion; else SimulatedCrash at this iteration. */
    std::uint64_t crashAfterIters = 0;
    BackendLease lease;
};

/** Resilience knobs of the core (all defaults = pre-chaos behavior). */
struct ServeCoreConfig
{
    /**
     * Admission bound on the queued-job count; 0 = unbounded. When a
     * submit pushes the queue past the bound, the lowest-priority
     * queued job (newest within a priority) is shed — possibly the
     * arriving job itself.
     */
    std::size_t queueBound = 0;
    /** Chaos schedule consulted by dispatch/outage queries; not owned,
     * may be null (no chaos). */
    const ChaosSchedule *chaos = nullptr;
};

/** Fleet-level resilience counters (ServeScheduler::fleetStats). */
struct ServeFleetStats
{
    std::uint64_t shed = 0;
    std::uint64_t failed = 0;
    std::uint64_t migrations = 0;
    std::uint64_t backendFaults = 0;
    std::uint64_t deadlineExpirations = 0;
    std::uint64_t timeSkips = 0;
    std::uint64_t clockTicks = 0;
    std::uint64_t breakerTrips = 0;
    std::uint64_t breakerReopens = 0;
    std::uint64_t halfOpenProbes = 0;
    std::uint64_t stormsApplied = 0;
};

class ServeCore
{
  public:
    /** @param pool Backend fleet; not owned, must outlive the core. */
    explicit ServeCore(BackendPool &pool);
    ServeCore(BackendPool &pool, ServeCoreConfig config);

    /**
     * Set a tenant's fair-share weight (> 0; default 1.0). Takes
     * effect from the tenant's next dispatch.
     */
    void setTenantWeight(std::uint64_t tenant_id, double weight);

    /**
     * Enqueue a job; returns its id (dense, starting at 1). May shed
     * jobs (including this one) to honor the queue bound; shed ids are
     * reported through drainShedJobs().
     */
    std::uint64_t submit(ServeJobSpec spec);

    /**
     * Manifest replay: re-create a job under its original id.
     * The job is queued with resumeNextLeg set — an interrupted leg
     * recovers from its checkpoint, a never-started one begins fresh.
     * @throws std::invalid_argument on id reuse or non-monotonic ids.
     */
    void replaySubmit(std::uint64_t job_id, ServeJobSpec spec);

    /** Manifest replay: mark a replayed job done with its recorded
     * result (it will not be re-run). */
    void replayComplete(std::uint64_t job_id, ServeRunOutcome outcome);

    /** Convenience overload (tests): digest/estimate/jobs only. */
    void replayComplete(std::uint64_t job_id, std::string digest,
                        double final_estimate, std::uint64_t jobs_used);

    /** Manifest replay: re-apply a recorded admission shed. */
    void replayShed(std::uint64_t job_id);

    /** Manifest replay: re-apply a recorded migration-budget failure. */
    void replayFailed(std::uint64_t job_id);

    /**
     * Cancel a queued job. Returns true when the job was queued (now
     * Cancelled); false when unknown, running, or already terminal —
     * running legs are never preempted.
     */
    bool cancel(std::uint64_t job_id);

    /**
     * Pick and lease the next leg to run, or nullopt when no job is
     * queued or no backend is leasable. Advances the chosen tenant's
     * pass. Health-aware: healthy backends are preferred, quarantined
     * ones are leased only as breaker probes; active calibration
     * storms are applied to the chosen backend. Performs the
     * idle-fleet time skip when the fleet is wedged behind breaker
     * cooldowns.
     */
    std::optional<ServeDispatch> nextDispatch();

    /** A dispatched leg finished its run (final leg). */
    void onRunFinished(const ServeDispatch &dispatch,
                       ServeRunOutcome outcome);

    /** Convenience overload (tests): digest/estimate/jobs only. */
    void onRunFinished(const ServeDispatch &dispatch, std::string digest,
                       double final_estimate, std::uint64_t jobs_used);

    /** A dispatched leg died at its planned crash; requeue the job. */
    void onRunCrashed(const ServeDispatch &dispatch);

    /**
     * A dispatched leg found its backend faulted (outage window): the
     * backend did no work, the job's leg/RNG lineage is untouched, and
     * the job re-queues for migration to another backend — unless its
     * migration budget is exhausted, in which case it Fails (reported
     * through drainFailedJobs()).
     */
    void onBackendFault(const ServeDispatch &dispatch);

    /** True when chaos has `backend_id` in an outage window now. */
    bool backendDown(std::size_t backend_id) const;

    /** Chaos slowdown factor for `backend_id` at the current tick. */
    double backendSlowdown(std::size_t backend_id) const;

    /** Fleet clock (ticks). */
    std::uint64_t clockNow() const { return clock_.now(); }

    /** Chaos-harness hook: advance the fleet clock by `ticks`. */
    void advanceClock(std::uint64_t ticks);

    /** Resume path: restore the fleet clock. */
    void restoreClock(std::uint64_t ticks);

    /** Job view, or nullopt for an unknown id. */
    std::optional<ServeJobInfo> find(std::uint64_t job_id) const;

    std::size_t queuedCount() const { return queued_; }
    std::size_t runningCount() const { return running_; }
    std::size_t completedCount() const { return completed_; }
    std::size_t cancelledCount() const { return cancelled_; }
    std::size_t shedCount() const { return shed_; }
    std::size_t failedCount() const { return failed_; }
    /** Jobs not yet terminal (queued + running). */
    std::size_t pendingCount() const { return queued_ + running_; }

    /** Fleet resilience counters (includes the pool's breaker stats). */
    ServeFleetStats fleetStats() const;

    /** Legs dispatched for a tenant (fairness accounting). */
    std::uint64_t tenantDispatches(std::uint64_t tenant_id) const;

    /** Total legs dispatched. */
    std::uint64_t totalDispatches() const { return totalDispatches_; }

    /** All job ids in submission order (tests iterate results). */
    std::vector<std::uint64_t> jobIds() const;

    /** Admission sheds since the last drain (scheduler journaling). */
    std::vector<std::uint64_t> drainShedJobs();

    /** Migration failures since the last drain. */
    std::vector<std::uint64_t> drainFailedJobs();

    /** Health/breaker transitions since the last drain. */
    std::vector<HealthTransition> drainHealthTransitions();

  private:
    struct TenantState
    {
        double weight = 1.0;
        double pass = 0.0;
        std::uint64_t dispatches = 0;
    };

    TenantState &tenant(std::uint64_t tenant_id);
    /** Copy an outcome into a job entry (completion bookkeeping). */
    void recordOutcome(ServeJobInfo &info, ServeRunOutcome outcome);
    /** Shed lowest-priority queued jobs until the bound holds. */
    void enforceQueueBound();
    void applyStorms(std::size_t backend_id);

    BackendPool &pool_;
    ServeCoreConfig config_;
    SimClock clock_;
    std::map<std::uint64_t, ServeJobInfo> jobs_;
    std::map<std::uint64_t, TenantState> tenants_;
    /** Virtual time: pass of the most recently dispatched tenant. */
    double virtualTime_ = 0.0;
    std::uint64_t nextJobId_ = 1;
    std::size_t queued_ = 0;
    std::size_t running_ = 0;
    std::size_t completed_ = 0;
    std::size_t cancelled_ = 0;
    std::size_t shed_ = 0;
    std::size_t failed_ = 0;
    std::uint64_t totalDispatches_ = 0;
    std::uint64_t migrations_ = 0;
    std::uint64_t backendFaults_ = 0;
    std::uint64_t deadlineExpirations_ = 0;
    std::uint64_t timeSkips_ = 0;
    /** Storm event indices already folded into calibration state. */
    std::set<std::size_t> appliedStorms_;
    std::vector<std::uint64_t> pendingSheds_;
    std::vector<std::uint64_t> pendingFailed_;
    std::vector<HealthTransition> pendingTransitions_;
};

} // namespace qismet

#endif // QISMET_SERVE_SERVE_CORE_HPP
