#include "fault/fault_policy.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qismet {

std::string
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::None: return "none";
      case FaultKind::JobTimeout: return "timeout";
      case FaultKind::JobError: return "error";
      case FaultKind::PartialResult: return "partial";
      case FaultKind::ReferenceLoss: return "reference-loss";
    }
    return "?";
}

bool
FaultPolicy::enabled() const
{
    return totalBaseRate() > 0.0;
}

double
FaultPolicy::totalBaseRate() const
{
    return timeoutRate + errorRate + partialRate + referenceLossRate;
}

void
FaultPolicy::validate() const
{
    const double rates[] = {timeoutRate, errorRate, partialRate,
                            referenceLossRate};
    for (double r : rates)
        if (!(r >= 0.0 && r <= 1.0))
            throw std::invalid_argument(
                "FaultPolicy: fault rates must lie in [0, 1]");
    if (burstCoupling < 0.0)
        throw std::invalid_argument(
            "FaultPolicy: negative burst coupling");
    if (burstScale <= 0.0)
        throw std::invalid_argument(
            "FaultPolicy: burst scale must be positive");
    if (!(minShotFraction > 0.0 && minShotFraction <= 1.0))
        throw std::invalid_argument(
            "FaultPolicy: minShotFraction must lie in (0, 1]");
    if (!(maxFaultProbability > 0.0 && maxFaultProbability < 1.0))
        throw std::invalid_argument(
            "FaultPolicy: maxFaultProbability must lie in (0, 1)");
}

double
RetryPolicy::backoffSecondsFor(int attempt) const
{
    if (attempt < 0)
        throw std::invalid_argument("RetryPolicy: negative attempt");
    const double raw =
        baseBackoffSeconds *
        std::pow(backoffMultiplier, static_cast<double>(attempt));
    return std::min(maxBackoffSeconds, raw);
}

void
RetryPolicy::validate() const
{
    if (maxRetries < 1)
        throw std::invalid_argument("RetryPolicy: retry budget < 1");
    if (baseBackoffSeconds < 0.0 || maxBackoffSeconds < 0.0)
        throw std::invalid_argument("RetryPolicy: negative backoff");
    if (backoffMultiplier < 1.0)
        throw std::invalid_argument(
            "RetryPolicy: backoff multiplier must be >= 1");
    if (maxBackoffSeconds < baseBackoffSeconds)
        throw std::invalid_argument(
            "RetryPolicy: backoff ceiling below base");
}

} // namespace qismet
