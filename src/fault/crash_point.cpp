#include "fault/crash_point.hpp"

#include <atomic>
#include <cstdlib>

namespace qismet {

namespace {

struct Armed
{
    std::string point;
    int countdown = 0;
    CrashPoints::Action action = CrashPoints::Action::Throw;
};

std::atomic<bool> g_armed{false};
Armed g_state;

} // namespace

void
CrashPoints::arm(const std::string &point, int countdown, Action action)
{
    g_state.point = point;
    g_state.countdown = countdown;
    g_state.action = action;
    g_armed.store(true, std::memory_order_release);
}

void
CrashPoints::disarm()
{
    g_armed.store(false, std::memory_order_release);
}

bool
CrashPoints::armed()
{
    return g_armed.load(std::memory_order_acquire);
}

bool
CrashPoints::fires(const char *point)
{
    if (!g_armed.load(std::memory_order_acquire))
        return false;
    if (g_state.point != point)
        return false;
    if (--g_state.countdown > 0)
        return false;
    // Disarm before dying so recovery code running in the same process
    // (the in-process harness) does not re-fire on its own writes.
    g_armed.store(false, std::memory_order_release);
    return true;
}

void
CrashPoints::crash(const char *point)
{
    if (g_state.action == Action::Exit) {
        // A real crash: no stack unwinding, no stream flushing, no
        // atexit handlers — exactly what kill -9 recovery must survive.
        std::_Exit(kCrashExitCode);
    }
    throw SimulatedCrash(point);
}

} // namespace qismet
