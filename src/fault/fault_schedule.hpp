/**
 * @file
 * Realized fault schedules: which fault (if any) hits each job index.
 *
 * A FaultSchedule is the fault analogue of a TransientTrace — a citable
 * per-job artifact that analysis, tests and benches can inspect and
 * checksum. The FaultInjector produces schedules ahead of time and
 * guarantees (by construction, via counter-based Rng::splitAt streams)
 * that its live per-job decisions match the precomputed schedule
 * exactly, at every thread count.
 */

#ifndef QISMET_FAULT_FAULT_SCHEDULE_HPP
#define QISMET_FAULT_FAULT_SCHEDULE_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "fault/fault_policy.hpp"

namespace qismet {

/** The fault (or lack of one) realized for a single job. */
struct FaultEvent
{
    FaultKind kind = FaultKind::None;
    /** Retained shot fraction; < 1 only for PartialResult faults. */
    double shotFraction = 1.0;

    bool operator==(const FaultEvent &other) const
    {
        return kind == other.kind && shotFraction == other.shotFraction;
    }
};

/** A realized fault schedule: one FaultEvent per job index. */
class FaultSchedule
{
  public:
    /** Empty schedule (fault-free on demand). */
    FaultSchedule() = default;

    /** Wrap explicit per-job events. */
    explicit FaultSchedule(std::vector<FaultEvent> events);

    /** Event for the job with the given index (None past the end). */
    const FaultEvent &at(std::size_t job_index) const;

    std::size_t size() const { return events_.size(); }
    const std::vector<FaultEvent> &events() const { return events_; }

    /** Number of jobs hit by the given fault kind. */
    std::size_t count(FaultKind kind) const;

    /** Fraction of jobs hit by any fault. */
    double faultFraction() const;

    /**
     * Deterministic 64-bit FNV-1a digest over the schedule's bytes
     * (kinds and shot fractions), rendered as 16 hex characters. Two
     * schedules digest equal iff they are event-for-event identical —
     * the byte-identity check the cross-thread-count tests assert.
     */
    std::string digest() const;

  private:
    std::vector<FaultEvent> events_;
};

} // namespace qismet

#endif // QISMET_FAULT_FAULT_SCHEDULE_HPP
