#include "fault/fault_schedule.hpp"

#include <cstdint>
#include <cstring>
#include <utility>

namespace qismet {

namespace {

/** The canonical fault-free event returned past the schedule's end. */
const FaultEvent kNoFault{};

void
fnv1aMix(std::uint64_t &hash, const void *data, std::size_t size)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= 0x100000001B3ull;
    }
}

} // namespace

FaultSchedule::FaultSchedule(std::vector<FaultEvent> events)
    : events_(std::move(events))
{
}

const FaultEvent &
FaultSchedule::at(std::size_t job_index) const
{
    if (job_index >= events_.size())
        return kNoFault;
    return events_[job_index];
}

std::size_t
FaultSchedule::count(FaultKind kind) const
{
    std::size_t n = 0;
    for (const auto &ev : events_)
        if (ev.kind == kind)
            ++n;
    return n;
}

double
FaultSchedule::faultFraction() const
{
    if (events_.empty())
        return 0.0;
    return 1.0 - static_cast<double>(count(FaultKind::None)) /
                     static_cast<double>(events_.size());
}

std::string
FaultSchedule::digest() const
{
    std::uint64_t hash = 0xCBF29CE484222325ull;
    for (const auto &ev : events_) {
        const auto kind = static_cast<std::uint32_t>(ev.kind);
        fnv1aMix(hash, &kind, sizeof(kind));
        std::uint64_t bits = 0;
        static_assert(sizeof(bits) == sizeof(ev.shotFraction));
        std::memcpy(&bits, &ev.shotFraction, sizeof(bits));
        fnv1aMix(hash, &bits, sizeof(bits));
    }
    static const char *hex = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = hex[hash & 0xF];
        hash >>= 4;
    }
    return out;
}

} // namespace qismet
