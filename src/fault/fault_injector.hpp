/**
 * @file
 * Deterministic fault injection for the job-execution path.
 *
 * Determinism contract (DESIGN.md "Parallel execution & determinism
 * model"): the fault hitting job i is a pure function of
 * (injector seed, i, tau(i)) — drawn from the counter-based sub-stream
 * Rng::splitAt(i) of a root generator that is never advanced. Fault
 * decisions therefore do not perturb any other component's randomness,
 * are independent of thread scheduling, and can be precomputed into a
 * FaultSchedule that matches the live decisions event for event.
 */

#ifndef QISMET_FAULT_FAULT_INJECTOR_HPP
#define QISMET_FAULT_FAULT_INJECTOR_HPP

#include <cstddef>
#include <cstdint>

#include "common/rng.hpp"
#include "fault/fault_policy.hpp"
#include "fault/fault_schedule.hpp"
#include "noise/transient_trace.hpp"

namespace qismet {

/** Draws per-job fault events from a FaultPolicy. */
class FaultInjector
{
  public:
    /**
     * @param policy Failure process (validated here).
     * @param seed Root seed of the injector's counter-based streams.
     * @throws std::invalid_argument when the policy is malformed.
     */
    FaultInjector(FaultPolicy policy, std::uint64_t seed);

    /**
     * The fault event for one job. Pure in (seed, job_index,
     * transient_intensity): calling it any number of times, from any
     * thread count, yields the same event.
     *
     * @param job_index The executor's global job counter.
     * @param transient_intensity tau(job), for burst correlation.
     */
    FaultEvent eventFor(std::size_t job_index,
                        double transient_intensity) const;

    /**
     * Precompute the schedule for the first `num_jobs` jobs of a run
     * over the given transient trace. Matches the live eventFor
     * decisions exactly.
     */
    FaultSchedule schedule(const TransientTrace &trace,
                           std::size_t num_jobs) const;

    const FaultPolicy &policy() const { return policy_; }

  private:
    FaultPolicy policy_;
    /** Root stream; only splitAt (non-advancing) is ever called. */
    Rng root_;
};

} // namespace qismet

#endif // QISMET_FAULT_FAULT_INJECTOR_HPP
