/**
 * @file
 * Crash-point hooks: deterministic simulated process death for the
 * crash-resume test harness.
 *
 * Durability code (driver loop, journal writer, snapshot writer) calls
 * CrashPoints::hit("name") at the instants where a real crash would be
 * most damaging. In production nothing is armed and the call is a
 * single relaxed-load branch. Tests arm exactly one point with a
 * countdown; when the countdown expires the process "dies" — either by
 * throwing SimulatedCrash (in-process tests catch it at the run()
 * boundary) or by std::_Exit (CI kill-mid-run smoke test: a genuine
 * no-destructor, no-flush death).
 *
 * Lives in the fault layer beside the fault injector: both exist to
 * make failure deterministic enough to test against.
 */

#ifndef QISMET_FAULT_CRASH_POINT_HPP
#define QISMET_FAULT_CRASH_POINT_HPP

#include <stdexcept>
#include <string>

namespace qismet {

/** Well-known crash-point names used by the durability layer. */
inline constexpr const char *kCrashIterationBoundary =
    "driver:iteration-boundary";
inline constexpr const char *kCrashJournalTornWrite =
    "journal:torn-write";
inline constexpr const char *kCrashBeforeSnapshot =
    "snapshot:before-write";
inline constexpr const char *kCrashServeJobBoundary =
    "serve:job-boundary";

/** Thrown by an armed crash point in Action::Throw mode. */
class SimulatedCrash : public std::runtime_error
{
  public:
    explicit SimulatedCrash(const std::string &point)
        : std::runtime_error("simulated crash at " + point),
          point_(point)
    {
    }

    const std::string &point() const { return point_; }

  private:
    std::string point_;
};

/**
 * Process-wide crash-point registry. At most one point is armed at a
 * time (tests are sequential); arming is not thread-safe but hit() is
 * safe to call from any thread when nothing is armed.
 */
class CrashPoints
{
  public:
    enum class Action
    {
        Throw, ///< throw SimulatedCrash (in-process harness)
        Exit,  ///< std::_Exit(kCrashExitCode) — real process death
    };

    /** Exit status used by Action::Exit, checked by the CI smoke test. */
    static constexpr int kCrashExitCode = 43;

    /**
     * Arm `point` to fire on its `countdown`-th hit (1 = next hit).
     * Replaces any previously armed point.
     */
    static void arm(const std::string &point, int countdown,
                    Action action = Action::Throw);

    /** Disarm whatever is armed (no-op when nothing is). */
    static void disarm();

    /** True when any point is armed. */
    static bool armed();

    /**
     * Countdown-and-check without dying: returns true when this call
     * expired the armed countdown for `point`. The caller is expected
     * to finish its "torn" side effect and then call crash().
     */
    static bool fires(const char *point);

    /** Die according to the armed action (Throw by default). */
    [[noreturn]] static void crash(const char *point);

    /** fires() + crash() — the common single-call form. */
    static void hit(const char *point)
    {
        if (fires(point))
            crash(point);
    }
};

/** RAII: disarm on scope exit so a failing test cannot leak an armed point. */
class CrashPointGuard
{
  public:
    CrashPointGuard(const std::string &point, int countdown,
                    CrashPoints::Action action = CrashPoints::Action::Throw)
    {
        CrashPoints::arm(point, countdown, action);
    }
    ~CrashPointGuard() { CrashPoints::disarm(); }

    CrashPointGuard(const CrashPointGuard &) = delete;
    CrashPointGuard &operator=(const CrashPointGuard &) = delete;
};

} // namespace qismet

#endif // QISMET_FAULT_CRASH_POINT_HPP
