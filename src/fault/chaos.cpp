#include "fault/chaos.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/atomic_file.hpp"
#include "common/rng.hpp"
#include "common/serial.hpp"

namespace qismet {

std::string
chaosKindName(ChaosKind kind)
{
    switch (kind) {
      case ChaosKind::BackendOutage: return "backend-outage";
      case ChaosKind::BackendSlowdown: return "backend-slowdown";
      case ChaosKind::CalibrationStorm: return "calibration-storm";
      case ChaosKind::TenantFlood: return "tenant-flood";
    }
    return "?";
}

void
ChaosConfig::validate() const
{
    if (backends == 0)
        throw std::invalid_argument("ChaosConfig: empty fleet");
    if (tenants == 0)
        throw std::invalid_argument("ChaosConfig: zero tenant space");
    if (horizonTicks < 16)
        throw std::invalid_argument(
            "ChaosConfig: horizonTicks must be at least 16");
    if (outagesPerBackend < 0.0 || slowdownsPerBackend < 0.0 ||
        stormsPerBackend < 0.0)
        throw std::invalid_argument(
            "ChaosConfig: negative event rate");
}

ChaosSchedule::ChaosSchedule(std::vector<ChaosEvent> events)
    : events_(std::move(events))
{
    for (const ChaosEvent &e : events_) {
        if (e.endTick <= e.startTick)
            throw std::invalid_argument(
                "ChaosSchedule: empty or inverted window for " +
                chaosKindName(e.kind));
        if (e.magnitude < 1.0)
            throw std::invalid_argument(
                "ChaosSchedule: magnitude below 1 for " +
                chaosKindName(e.kind));
    }
    std::sort(events_.begin(), events_.end(),
              [](const ChaosEvent &a, const ChaosEvent &b) {
                  if (a.startTick != b.startTick)
                      return a.startTick < b.startTick;
                  if (a.kind != b.kind)
                      return static_cast<std::uint8_t>(a.kind) <
                             static_cast<std::uint8_t>(b.kind);
                  return a.target < b.target;
              });
}

namespace {

bool
covers(const ChaosEvent &e, std::uint64_t tick)
{
    return tick >= e.startTick && tick < e.endTick;
}

} // namespace

bool
ChaosSchedule::outageAt(std::uint64_t backend_id,
                        std::uint64_t tick) const
{
    for (const ChaosEvent &e : events_)
        if (e.kind == ChaosKind::BackendOutage &&
            e.target == backend_id && covers(e, tick))
            return true;
    return false;
}

double
ChaosSchedule::slowdownAt(std::uint64_t backend_id,
                          std::uint64_t tick) const
{
    double factor = 1.0;
    for (const ChaosEvent &e : events_)
        if (e.kind == ChaosKind::BackendSlowdown &&
            e.target == backend_id && covers(e, tick))
            factor *= e.magnitude;
    return factor;
}

std::vector<std::size_t>
ChaosSchedule::stormsAt(std::uint64_t backend_id,
                        std::uint64_t tick) const
{
    std::vector<std::size_t> open;
    for (std::size_t i = 0; i < events_.size(); ++i) {
        const ChaosEvent &e = events_[i];
        if (e.kind == ChaosKind::CalibrationStorm &&
            e.target == backend_id && covers(e, tick))
            open.push_back(i);
    }
    return open;
}

std::vector<ChaosEvent>
ChaosSchedule::floods() const
{
    std::vector<ChaosEvent> out;
    for (const ChaosEvent &e : events_)
        if (e.kind == ChaosKind::TenantFlood)
            out.push_back(e);
    return out;
}

std::uint64_t
ChaosSchedule::horizon() const
{
    std::uint64_t h = 0;
    for (const ChaosEvent &e : events_)
        h = std::max(h, e.endTick);
    return h;
}

std::uint64_t
ChaosSchedule::digest() const
{
    Encoder enc;
    enc.writeU64(events_.size());
    for (const ChaosEvent &e : events_) {
        enc.writeU8(static_cast<std::uint8_t>(e.kind));
        enc.writeU64(e.target);
        enc.writeU64(e.startTick);
        enc.writeU64(e.endTick);
        enc.writeF64(e.magnitude);
        enc.writeU64(e.count);
    }
    return fnv1a64(enc.bytes());
}

namespace {

/** Window wholly inside [0, horizon), at least one tick long. */
void
drawWindow(Rng &rng, std::uint64_t horizon, std::uint64_t min_len,
           std::uint64_t max_len, ChaosEvent &event)
{
    const std::uint64_t len =
        min_len + rng.uniformInt(max_len - min_len + 1);
    const std::uint64_t latestStart =
        horizon > len ? horizon - len : 1;
    event.startTick = rng.uniformInt(latestStart);
    event.endTick = event.startTick + len;
}

} // namespace

ChaosSchedule
generateChaosSchedule(const ChaosConfig &config, std::uint64_t seed)
{
    config.validate();
    std::vector<ChaosEvent> events;

    // Window lengths scale with the horizon so denser schedules stay
    // escapable: outages at most a quarter of the horizon, slowdowns
    // and storms at most half.
    const std::uint64_t quarter =
        std::max<std::uint64_t>(2, config.horizonTicks / 4);
    const std::uint64_t half =
        std::max<std::uint64_t>(2, config.horizonTicks / 2);

    for (std::uint64_t b = 0; b < config.backends; ++b) {
        Rng outageRng(
            deriveStreamSeed(seed, StreamDomain::kChaosOutage, b));
        const std::uint64_t outages =
            outageRng.poisson(config.outagesPerBackend);
        for (std::uint64_t i = 0; i < outages; ++i) {
            ChaosEvent e;
            e.kind = ChaosKind::BackendOutage;
            e.target = b;
            drawWindow(outageRng, config.horizonTicks, 2, quarter, e);
            events.push_back(e);
        }

        Rng slowRng(
            deriveStreamSeed(seed, StreamDomain::kChaosSlowdown, b));
        const std::uint64_t slowdowns =
            slowRng.poisson(config.slowdownsPerBackend);
        for (std::uint64_t i = 0; i < slowdowns; ++i) {
            ChaosEvent e;
            e.kind = ChaosKind::BackendSlowdown;
            e.target = b;
            drawWindow(slowRng, config.horizonTicks, 2, half, e);
            e.magnitude = slowRng.uniform(2.0, 8.0);
            events.push_back(e);
        }

        Rng stormRng(
            deriveStreamSeed(seed, StreamDomain::kChaosStorm, b));
        const std::uint64_t storms =
            stormRng.poisson(config.stormsPerBackend);
        for (std::uint64_t i = 0; i < storms; ++i) {
            ChaosEvent e;
            e.kind = ChaosKind::CalibrationStorm;
            e.target = b;
            drawWindow(stormRng, config.horizonTicks, 2, half, e);
            e.count = 1 + stormRng.uniformInt(4);
            events.push_back(e);
        }
    }

    for (std::size_t f = 0; f < config.floods; ++f) {
        Rng floodRng(
            deriveStreamSeed(seed, StreamDomain::kChaosFlood, f));
        ChaosEvent e;
        e.kind = ChaosKind::TenantFlood;
        e.target = floodRng.uniformInt(config.tenants);
        drawWindow(floodRng, config.horizonTicks, 2, quarter, e);
        e.count = 4 + floodRng.uniformInt(13);
        events.push_back(e);
    }

    return ChaosSchedule(std::move(events));
}

} // namespace qismet
