#include "fault/fault_injector.hpp"

#include <algorithm>
#include <vector>

namespace qismet {

FaultInjector::FaultInjector(FaultPolicy policy, std::uint64_t seed)
    : policy_(policy), root_(seed)
{
    policy_.validate();
}

FaultEvent
FaultInjector::eventFor(std::size_t job_index,
                        double transient_intensity) const
{
    FaultEvent event;
    if (!policy_.enabled())
        return event;

    // Burst correlation: a machine in a bad noise phase also drops jobs
    // more often. The boost is a deterministic function of tau, which is
    // itself a deterministic function of (trace seed, job index).
    const double boost =
        1.0 + policy_.burstCoupling *
                  std::max(0.0, transient_intensity) / policy_.burstScale;
    double p_timeout = policy_.timeoutRate * boost;
    double p_error = policy_.errorRate * boost;
    double p_partial = policy_.partialRate * boost;
    double p_refloss = policy_.referenceLossRate * boost;
    const double total = p_timeout + p_error + p_partial + p_refloss;
    if (total > policy_.maxFaultProbability) {
        const double rescale = policy_.maxFaultProbability / total;
        p_timeout *= rescale;
        p_error *= rescale;
        p_partial *= rescale;
        p_refloss *= rescale;
    }

    Rng draw = root_.splitAt(job_index);
    const double u = draw.uniform();
    if (u < p_timeout) {
        event.kind = FaultKind::JobTimeout;
    } else if (u < p_timeout + p_error) {
        event.kind = FaultKind::JobError;
    } else if (u < p_timeout + p_error + p_partial) {
        event.kind = FaultKind::PartialResult;
        event.shotFraction =
            draw.uniform(policy_.minShotFraction, 1.0);
    } else if (u < p_timeout + p_error + p_partial + p_refloss) {
        event.kind = FaultKind::ReferenceLoss;
    }
    return event;
}

FaultSchedule
FaultInjector::schedule(const TransientTrace &trace,
                        std::size_t num_jobs) const
{
    std::vector<FaultEvent> events;
    events.reserve(num_jobs);
    for (std::size_t i = 0; i < num_jobs; ++i)
        events.push_back(eventFor(i, trace.at(i)));
    return FaultSchedule(std::move(events));
}

} // namespace qismet
