/**
 * @file
 * Fleet-scoped chaos schedules: deterministic backend outage windows,
 * slowdown multipliers, calibration-drift storms and tenant burst
 * floods for the serve layer.
 *
 * A ChaosSchedule is the fleet analogue of a FaultSchedule — a citable
 * artifact drawn ahead of time from dedicated Rng::splitStream domains
 * (StreamDomain::kChaosOutage/kChaosSlowdown/kChaosStorm/kChaosFlood),
 * never from live scheduler state. Two processes given the same seed
 * and ChaosConfig derive byte-identical schedules, which is what makes
 * a chaos replay comparable across worker counts and across a
 * kill(43)+resume boundary (the resumed process re-derives the same
 * schedule from the same CLI arguments).
 *
 * Event windows are expressed in fleet ticks (ServeCore's SimClock):
 * [startTick, endTick). Fleet ticks are interleaving-dependent under
 * threads, so *which* leg collides with a window may vary with worker
 * count — by design. The determinism contract of chaos replay is
 * outcome purity, not collision identity: every job's final digest is a
 * pure function of its spec regardless of how many backend faults and
 * migrations it suffered along the way (DESIGN.md §15).
 */

#ifndef QISMET_FAULT_CHAOS_HPP
#define QISMET_FAULT_CHAOS_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace qismet {

/** Fleet-scoped chaos event families. */
enum class ChaosKind : std::uint8_t
{
    /** Backend refuses work: legs dispatched to it fault immediately,
     * completions inside the window are lost in transit. */
    BackendOutage = 0,
    /** Backend responds slowly: success latency observations are
     * multiplied by `magnitude` while the window is open. */
    BackendSlowdown = 1,
    /** Calibration drifts: `count` extra draws fold into the backend's
     * calibration stream when the storm is first observed. */
    CalibrationStorm = 2,
    /** A tenant floods the queue with `count` lowest-priority jobs
     * (materialized by the chaos driver, not the scheduler). */
    TenantFlood = 3
};

std::string chaosKindName(ChaosKind kind);

/** One scheduled chaos event. */
struct ChaosEvent
{
    ChaosKind kind = ChaosKind::BackendOutage;
    /** Backend id (outage/slowdown/storm) or tenant id (flood). */
    std::uint64_t target = 0;
    /** Window in fleet ticks, [startTick, endTick). */
    std::uint64_t startTick = 0;
    std::uint64_t endTick = 0;
    /** Slowdown multiplier (>= 1) for BackendSlowdown; unused else. */
    double magnitude = 1.0;
    /** Storm drift draws / flood burst size; unused else. */
    std::uint64_t count = 0;
};

/** Generation knobs for generateChaosSchedule. */
struct ChaosConfig
{
    /** Fleet size the schedule targets (>= 1). */
    std::size_t backends = 2;
    /** Tenant-id space floods draw from (>= 1). */
    std::uint64_t tenants = 4;
    /** Tick horizon all windows fall inside (>= 16). */
    std::uint64_t horizonTicks = 256;
    /** Mean outage windows per backend. */
    double outagesPerBackend = 1.0;
    /** Mean slowdown windows per backend. */
    double slowdownsPerBackend = 1.0;
    /** Mean calibration storms per backend. */
    double stormsPerBackend = 0.5;
    /** Tenant flood events across the whole schedule. */
    std::size_t floods = 1;

    /** @throws std::invalid_argument on malformed fields. */
    void validate() const;
};

/**
 * An immutable, query-friendly chaos schedule. Events are kept sorted
 * by (startTick, kind, target) so equal event sets digest equal.
 */
class ChaosSchedule
{
  public:
    /** Empty schedule: no chaos, every query is benign. */
    ChaosSchedule() = default;

    /** Wrap explicit events (sorted internally). */
    explicit ChaosSchedule(std::vector<ChaosEvent> events);

    std::size_t size() const { return events_.size(); }
    const std::vector<ChaosEvent> &events() const { return events_; }

    /** True when an outage window covers (backend, tick). */
    bool outageAt(std::uint64_t backend_id, std::uint64_t tick) const;

    /**
     * Combined slowdown multiplier at (backend, tick): the product of
     * all open slowdown windows, 1.0 when none is open.
     */
    double slowdownAt(std::uint64_t backend_id, std::uint64_t tick) const;

    /**
     * Indices (into events()) of calibration storms open at
     * (backend, tick). The consumer tracks which it already applied —
     * a storm folds into the calibration stream exactly once.
     */
    std::vector<std::size_t> stormsAt(std::uint64_t backend_id,
                                      std::uint64_t tick) const;

    /** All tenant-flood events, in schedule order. */
    std::vector<ChaosEvent> floods() const;

    /** Last endTick across all events (0 for an empty schedule). */
    std::uint64_t horizon() const;

    /**
     * Deterministic FNV-1a digest over the encoded events. Stamped
     * into the serve manifest's fleet digest so a resume under a
     * different chaos schedule is rejected loudly.
     */
    std::uint64_t digest() const;

  private:
    std::vector<ChaosEvent> events_;
};

/**
 * Draw a chaos schedule from (config, seed) via the dedicated
 * StreamDomain chaos streams. Pure: equal inputs give byte-identical
 * schedules in any process, at any thread count.
 */
ChaosSchedule generateChaosSchedule(const ChaosConfig &config,
                                    std::uint64_t seed);

} // namespace qismet

#endif // QISMET_FAULT_CHAOS_HPP
