/**
 * @file
 * Fault-model configuration for the job pipeline.
 *
 * QISMET's premise is that quantum jobs misbehave: besides the noisy
 * *results* the transient model covers, real fleets routinely produce
 * failed or degraded *jobs* — queue timeouts, aborted executions,
 * partial (shot-truncated) results, and dropped circuits within a
 * batch. This module describes the failure process (FaultPolicy) and
 * the recovery behavior (RetryPolicy) that the FaultInjector and the
 * VQE driver implement. Fault rates of zero (the default) disable
 * injection entirely, so every existing experiment is unchanged unless
 * it opts in.
 */

#ifndef QISMET_FAULT_FAULT_POLICY_HPP
#define QISMET_FAULT_FAULT_POLICY_HPP

#include <string>

namespace qismet {

/** What went wrong with a job (or nothing, the common case). */
enum class FaultKind
{
    None,          ///< The job executes normally.
    JobTimeout,    ///< The job expired in the queue; no results.
    JobError,      ///< The backend aborted the job; no results.
    PartialResult, ///< The job returned shot-truncated (noisier) results.
    ReferenceLoss, ///< The batch's reference-rerun circuits were dropped.
};

/** Display name of a fault kind. */
std::string faultKindName(FaultKind kind);

/**
 * The failure process of the simulated fleet.
 *
 * Each job independently suffers at most one fault. The per-kind
 * probabilities below are *base* rates; when `burstCoupling > 0` every
 * rate is additionally multiplied by
 *
 *   1 + burstCoupling * max(tau, 0) / burstScale
 *
 * where tau is the job's transient intensity — modeling the empirical
 * correlation between device-level noise bursts and job failures (a
 * machine in a bad phase both distorts *and* drops jobs). The combined
 * probability is capped at `maxFaultProbability` (uniformly rescaled)
 * so no configuration can starve the pipeline completely.
 */
struct FaultPolicy
{
    /** Base probability a job times out in the queue. */
    double timeoutRate = 0.0;
    /** Base probability the backend errors the job out. */
    double errorRate = 0.0;
    /** Base probability the job returns shot-truncated results. */
    double partialRate = 0.0;
    /** Base probability the reference-rerun circuits are lost. */
    double referenceLossRate = 0.0;
    /** Strength of the burst-correlated failure boost (0 = none). */
    double burstCoupling = 0.0;
    /** Transient intensity at which the boost adds one full multiple. */
    double burstScale = 0.3;
    /** Partial results keep at least this fraction of the shots. */
    double minShotFraction = 0.25;
    /** Hard cap on the per-job combined fault probability. */
    double maxFaultProbability = 0.9;

    /** True when any base rate is positive. */
    bool enabled() const;

    /** Sum of the base rates (before burst boost and cap). */
    double totalBaseRate() const;

    /** @throws std::invalid_argument on out-of-range parameters. */
    void validate() const;
};

/**
 * Recovery behavior for failed jobs: bounded exponential backoff in
 * *simulated* time plus a per-evaluation retry budget. The budget is
 * shared with the acceptance policy's reject-retries (both consume the
 * same per-evaluation retry counter), so an evaluation never costs more
 * than `maxRetries + 1` jobs no matter how rejections and faults
 * interleave.
 */
struct RetryPolicy
{
    /** Retries per evaluation before graceful degradation kicks in. */
    int maxRetries = 5;
    /** Backoff before the first fault retry (simulated seconds). */
    double baseBackoffSeconds = 2.0;
    /** Backoff growth factor per retry. */
    double backoffMultiplier = 2.0;
    /** Backoff ceiling (simulated seconds). */
    double maxBackoffSeconds = 60.0;

    /**
     * Backoff charged before retry number `attempt` (0-based):
     * min(maxBackoffSeconds, baseBackoffSeconds * multiplier^attempt).
     */
    double backoffSecondsFor(int attempt) const;

    /** @throws std::invalid_argument on out-of-range parameters. */
    void validate() const;
};

} // namespace qismet

#endif // QISMET_FAULT_FAULT_POLICY_HPP
