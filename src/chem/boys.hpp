/**
 * @file
 * Boys function F0 — the special function underlying Coulomb integrals
 * over s-type Gaussian orbitals.
 */

#ifndef QISMET_CHEM_BOYS_HPP
#define QISMET_CHEM_BOYS_HPP

namespace qismet {

/**
 * Boys function of order zero:
 *   F0(t) = ∫_0^1 exp(-t x²) dx = (1/2) sqrt(π/t) erf(sqrt(t)).
 * A Taylor expansion is used near t = 0 where the closed form loses
 * precision.
 */
double boysF0(double t);

} // namespace qismet

#endif // QISMET_CHEM_BOYS_HPP
