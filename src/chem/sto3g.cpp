#include "chem/sto3g.hpp"

#include <cmath>

#include "chem/boys.hpp"

namespace qismet {

namespace {

/** Primitive normalization for an s Gaussian with exponent alpha. */
double
primitiveNorm(double alpha)
{
    return std::pow(2.0 * alpha / M_PI, 0.75);
}

/** Unnormalized primitive overlap. */
double
primOverlap(double a, double ax, double b, double bx)
{
    const double p = a + b;
    const double mu = a * b / p;
    const double r2 = (ax - bx) * (ax - bx);
    return std::pow(M_PI / p, 1.5) * std::exp(-mu * r2);
}

double
primKinetic(double a, double ax, double b, double bx)
{
    const double p = a + b;
    const double mu = a * b / p;
    const double r2 = (ax - bx) * (ax - bx);
    return mu * (3.0 - 2.0 * mu * r2) * std::pow(M_PI / p, 1.5) *
           std::exp(-mu * r2);
}

double
primNuclear(double a, double ax, double b, double bx, double cx, double z)
{
    const double p = a + b;
    const double mu = a * b / p;
    const double r2 = (ax - bx) * (ax - bx);
    const double px = (a * ax + b * bx) / p;
    const double pc2 = (px - cx) * (px - cx);
    return -z * 2.0 * M_PI / p * std::exp(-mu * r2) * boysF0(p * pc2);
}

double
primEri(double a, double ax, double b, double bx, double c, double cx,
        double d, double dx)
{
    const double p = a + b;
    const double q = c + d;
    const double mu_ab = a * b / p;
    const double mu_cd = c * d / q;
    const double rab2 = (ax - bx) * (ax - bx);
    const double rcd2 = (cx - dx) * (cx - dx);
    const double px = (a * ax + b * bx) / p;
    const double qx = (c * cx + d * dx) / q;
    const double pq2 = (px - qx) * (px - qx);
    return 2.0 * std::pow(M_PI, 2.5) /
               (p * q * std::sqrt(p + q)) *
           std::exp(-mu_ab * rab2 - mu_cd * rcd2) *
           boysF0(p * q / (p + q) * pq2);
}

} // namespace

ContractedGaussian
sto3gHydrogen(double center_bohr)
{
    // STO-3G fit to a 1s Slater orbital with zeta = 1.24 (hydrogen).
    ContractedGaussian g;
    g.center = center_bohr;
    g.exponents = {3.42525091, 0.62391373, 0.16885540};
    const std::array<double, 3> raw = {0.15432897, 0.53532814, 0.44463454};
    for (int i = 0; i < 3; ++i)
        g.coefficients[static_cast<std::size_t>(i)] =
            raw[static_cast<std::size_t>(i)] *
            primitiveNorm(g.exponents[static_cast<std::size_t>(i)]);

    // Enforce <g|g> = 1 exactly.
    double s = 0.0;
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j)
            s += g.coefficients[i] * g.coefficients[j] *
                 primOverlap(g.exponents[i], 0.0, g.exponents[j], 0.0);
    const double scale = 1.0 / std::sqrt(s);
    for (auto &c : g.coefficients)
        c *= scale;
    return g;
}

double
overlapIntegral(const ContractedGaussian &a, const ContractedGaussian &b)
{
    double s = 0.0;
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j)
            s += a.coefficients[i] * b.coefficients[j] *
                 primOverlap(a.exponents[i], a.center, b.exponents[j],
                             b.center);
    return s;
}

double
kineticIntegral(const ContractedGaussian &a, const ContractedGaussian &b)
{
    double s = 0.0;
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j)
            s += a.coefficients[i] * b.coefficients[j] *
                 primKinetic(a.exponents[i], a.center, b.exponents[j],
                             b.center);
    return s;
}

double
nuclearIntegral(const ContractedGaussian &a, const ContractedGaussian &b,
                double nucleus_bohr, double z)
{
    double s = 0.0;
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j)
            s += a.coefficients[i] * b.coefficients[j] *
                 primNuclear(a.exponents[i], a.center, b.exponents[j],
                             b.center, nucleus_bohr, z);
    return s;
}

double
eriIntegral(const ContractedGaussian &a, const ContractedGaussian &b,
            const ContractedGaussian &c, const ContractedGaussian &d)
{
    double s = 0.0;
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j)
            for (int k = 0; k < 3; ++k)
                for (int l = 0; l < 3; ++l)
                    s += a.coefficients[i] * b.coefficients[j] *
                         c.coefficients[k] * d.coefficients[l] *
                         primEri(a.exponents[i], a.center, b.exponents[j],
                                 b.center, c.exponents[k], c.center,
                                 d.exponents[l], d.center);
    return s;
}

} // namespace qismet
