/**
 * @file
 * Jordan-Wigner transformation from second-quantized fermionic
 * operators to qubit (Pauli) operators.
 *
 * The mapping is a_p = Z_0 ⊗ ... ⊗ Z_{p-1} ⊗ (X_p + iY_p)/2. Products
 * of ladder operators are expanded in a small complex-coefficient Pauli
 * algebra; Hermitian inputs produce real-coefficient PauliSums (asserted
 * at the boundary).
 */

#ifndef QISMET_CHEM_JORDAN_WIGNER_HPP
#define QISMET_CHEM_JORDAN_WIGNER_HPP

#include <complex>
#include <vector>

#include "pauli/pauli_string.hpp"
#include "pauli/pauli_sum.hpp"

namespace qismet {

/** Complex linear combination of Pauli strings (JW intermediate). */
class PauliPolynomial
{
  public:
    /** Zero polynomial over num_qubits qubits. */
    explicit PauliPolynomial(int num_qubits);

    /** The multiplicative identity. */
    static PauliPolynomial one(int num_qubits);

    int numQubits() const { return numQubits_; }
    const std::vector<std::pair<Complex, PauliString>> &terms() const
    {
        return terms_;
    }

    /** Append coeff * pauli (no merging; call simplify()). */
    void add(Complex coeff, PauliString pauli);

    /** Polynomial product (Pauli multiplication with phases). */
    PauliPolynomial operator*(const PauliPolynomial &other) const;

    /** Sum of polynomials. */
    PauliPolynomial operator+(const PauliPolynomial &other) const;

    /** Scale by a complex constant. */
    PauliPolynomial operator*(Complex scalar) const;

    /** Merge duplicate strings, drop near-zero coefficients. */
    void simplify(double tol = 1e-12);

    /**
     * Convert to a real PauliSum.
     * @throws std::runtime_error when any coefficient has an imaginary
     *         part larger than tol (the operator was not Hermitian).
     */
    PauliSum toRealSum(double tol = 1e-9) const;

  private:
    int numQubits_;
    std::vector<std::pair<Complex, PauliString>> terms_;
};

/**
 * Product of two single-qubit Paulis: a * b = phase * result.
 * @return {phase, result} with phase in {±1, ±i}.
 */
std::pair<Complex, PauliOp> mulPauliOp(PauliOp a, PauliOp b);

/** Product of two Pauli strings with accumulated phase. */
std::pair<Complex, PauliString> mulPauliString(const PauliString &a,
                                               const PauliString &b);

/** JW annihilation operator a_p over num_qubits qubits. */
PauliPolynomial jwAnnihilation(int p, int num_qubits);

/** JW creation operator a†_p over num_qubits qubits. */
PauliPolynomial jwCreation(int p, int num_qubits);

/**
 * Second-quantized molecular Hamiltonian in a spin-orbital basis:
 *
 *   H = E_const + Σ_pq h_pq a†_p a_q
 *       + (1/2) Σ_pqrs <pq|rs> a†_p a†_q a_s a_r
 *
 * with <pq|rs> in *physicist* notation. Indices are spin orbitals.
 */
struct MolecularHamiltonian
{
    /** Constant (nuclear repulsion) energy. */
    double constant = 0.0;
    /** One-body integrals h_pq (spin-orbital basis). */
    std::vector<std::vector<double>> oneBody;
    /** Two-body integrals <pq|rs> (physicist, spin-orbital basis). */
    std::vector<std::vector<std::vector<std::vector<double>>>> twoBody;
};

/** Transform a molecular Hamiltonian to a qubit PauliSum via JW. */
PauliSum jordanWigner(const MolecularHamiltonian &mol);

} // namespace qismet

#endif // QISMET_CHEM_JORDAN_WIGNER_HPP
