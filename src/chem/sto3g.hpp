/**
 * @file
 * STO-3G hydrogen basis and the closed-form integrals over contracted
 * s-type Gaussians: overlap, kinetic, nuclear attraction, and electron
 * repulsion (Szabo & Ostlund appendix A formulas).
 *
 * This is the paper's "Qiskit chemistry" substitute — it supplies the
 * H2 molecular Hamiltonian over bond lengths 0.4-2.0 Å (paper Fig. 18)
 * from first principles instead of tabulated coefficients.
 */

#ifndef QISMET_CHEM_STO3G_HPP
#define QISMET_CHEM_STO3G_HPP

#include <array>

namespace qismet {

/** A contracted s-type Gaussian basis function at a 1-D position. */
struct ContractedGaussian
{
    /** Center on the molecular axis (bohr). */
    double center = 0.0;
    /** Primitive exponents. */
    std::array<double, 3> exponents{};
    /** Primitive contraction coefficients including primitive norms. */
    std::array<double, 3> coefficients{};
};

/**
 * STO-3G 1s function for hydrogen (zeta = 1.24) at `center_bohr`,
 * normalized so the self-overlap is exactly 1.
 */
ContractedGaussian sto3gHydrogen(double center_bohr);

/** Overlap integral <a|b>. */
double overlapIntegral(const ContractedGaussian &a,
                       const ContractedGaussian &b);

/** Kinetic energy integral <a| -∇²/2 |b>. */
double kineticIntegral(const ContractedGaussian &a,
                       const ContractedGaussian &b);

/**
 * Nuclear attraction integral <a| -Z / |r - R_c| |b> for a nucleus of
 * charge z at position `nucleus_bohr` on the axis.
 */
double nuclearIntegral(const ContractedGaussian &a,
                       const ContractedGaussian &b, double nucleus_bohr,
                       double z);

/** Two-electron repulsion integral (ab|cd) in chemist notation. */
double eriIntegral(const ContractedGaussian &a, const ContractedGaussian &b,
                   const ContractedGaussian &c, const ContractedGaussian &d);

/** Angstrom → bohr conversion factor. */
inline constexpr double kBohrPerAngstrom = 1.8897259886;

} // namespace qismet

#endif // QISMET_CHEM_STO3G_HPP
