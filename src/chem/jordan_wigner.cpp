#include "chem/jordan_wigner.hpp"

#include <cmath>
#include <map>
#include <stdexcept>

namespace qismet {

PauliPolynomial::PauliPolynomial(int num_qubits) : numQubits_(num_qubits)
{
    if (num_qubits <= 0)
        throw std::invalid_argument("PauliPolynomial: bad qubit count");
}

PauliPolynomial
PauliPolynomial::one(int num_qubits)
{
    PauliPolynomial p(num_qubits);
    p.add(Complex(1.0, 0.0), PauliString(num_qubits));
    return p;
}

void
PauliPolynomial::add(Complex coeff, PauliString pauli)
{
    if (pauli.numQubits() != numQubits_)
        throw std::invalid_argument("PauliPolynomial::add: width mismatch");
    terms_.emplace_back(coeff, std::move(pauli));
}

std::pair<Complex, PauliOp>
mulPauliOp(PauliOp a, PauliOp b)
{
    const Complex one(1.0, 0.0);
    const Complex i(0.0, 1.0);
    if (a == PauliOp::I)
        return {one, b};
    if (b == PauliOp::I)
        return {one, a};
    if (a == b)
        return {one, PauliOp::I};
    // Cyclic: XY = iZ, YZ = iX, ZX = iY; reversed order gives -i.
    auto cyc = [](PauliOp x, PauliOp y) {
        return (x == PauliOp::X && y == PauliOp::Y) ||
               (y == PauliOp::X && x == PauliOp::Z) ||
               (x == PauliOp::Y && y == PauliOp::Z);
    };
    PauliOp result;
    if ((a == PauliOp::X && b == PauliOp::Y) ||
        (a == PauliOp::Y && b == PauliOp::X)) {
        result = PauliOp::Z;
    } else if ((a == PauliOp::Y && b == PauliOp::Z) ||
               (a == PauliOp::Z && b == PauliOp::Y)) {
        result = PauliOp::X;
    } else {
        result = PauliOp::Y;
    }
    return {cyc(a, b) ? i : -i, result};
}

std::pair<Complex, PauliString>
mulPauliString(const PauliString &a, const PauliString &b)
{
    if (a.numQubits() != b.numQubits())
        throw std::invalid_argument("mulPauliString: width mismatch");
    PauliString out(a.numQubits());
    Complex phase(1.0, 0.0);
    for (int q = 0; q < a.numQubits(); ++q) {
        const auto [ph, op] = mulPauliOp(a.op(q), b.op(q));
        phase *= ph;
        out.setOp(q, op);
    }
    return {phase, out};
}

PauliPolynomial
PauliPolynomial::operator*(const PauliPolynomial &other) const
{
    if (other.numQubits_ != numQubits_)
        throw std::invalid_argument("PauliPolynomial::operator*: width");
    PauliPolynomial out(numQubits_);
    for (const auto &[ca, pa] : terms_) {
        for (const auto &[cb, pb] : other.terms_) {
            auto [phase, prod] = mulPauliString(pa, pb);
            out.add(ca * cb * phase, std::move(prod));
        }
    }
    out.simplify();
    return out;
}

PauliPolynomial
PauliPolynomial::operator+(const PauliPolynomial &other) const
{
    if (other.numQubits_ != numQubits_)
        throw std::invalid_argument("PauliPolynomial::operator+: width");
    PauliPolynomial out = *this;
    for (const auto &t : other.terms_)
        out.terms_.push_back(t);
    out.simplify();
    return out;
}

PauliPolynomial
PauliPolynomial::operator*(Complex scalar) const
{
    PauliPolynomial out = *this;
    for (auto &t : out.terms_)
        t.first *= scalar;
    return out;
}

void
PauliPolynomial::simplify(double tol)
{
    std::map<PauliString, Complex> merged;
    std::vector<PauliString> order;
    for (const auto &[c, p] : terms_) {
        auto it = merged.find(p);
        if (it == merged.end()) {
            merged.emplace(p, c);
            order.push_back(p);
        } else {
            it->second += c;
        }
    }
    terms_.clear();
    for (const auto &p : order) {
        const Complex c = merged.at(p);
        if (std::abs(c) > tol)
            terms_.emplace_back(c, p);
    }
}

PauliSum
PauliPolynomial::toRealSum(double tol) const
{
    PauliSum sum(numQubits_);
    for (const auto &[c, p] : terms_) {
        if (std::abs(c.imag()) > tol)
            throw std::runtime_error(
                "PauliPolynomial::toRealSum: non-Hermitian residue on " +
                p.label());
        sum.add(c.real(), p);
    }
    sum.simplify();
    return sum;
}

namespace {

PauliPolynomial
jwLadder(int p, int num_qubits, bool creation)
{
    if (p < 0 || p >= num_qubits)
        throw std::out_of_range("jwLadder: orbital index out of range");

    // Z string on qubits < p, then (X ∓ iY)/2 on qubit p
    // (creation: X - iY; annihilation: X + iY).
    PauliString xs(num_qubits);
    PauliString ys(num_qubits);
    for (int q = 0; q < p; ++q) {
        xs.setOp(q, PauliOp::Z);
        ys.setOp(q, PauliOp::Z);
    }
    xs.setOp(p, PauliOp::X);
    ys.setOp(p, PauliOp::Y);

    PauliPolynomial poly(num_qubits);
    poly.add(Complex(0.5, 0.0), std::move(xs));
    poly.add(Complex(0.0, creation ? -0.5 : 0.5), std::move(ys));
    return poly;
}

} // namespace

PauliPolynomial
jwAnnihilation(int p, int num_qubits)
{
    return jwLadder(p, num_qubits, false);
}

PauliPolynomial
jwCreation(int p, int num_qubits)
{
    return jwLadder(p, num_qubits, true);
}

PauliSum
jordanWigner(const MolecularHamiltonian &mol)
{
    const int n = static_cast<int>(mol.oneBody.size());
    if (n == 0)
        throw std::invalid_argument("jordanWigner: empty Hamiltonian");

    PauliPolynomial h(n);
    h.add(Complex(mol.constant, 0.0), PauliString(n));

    // Cache ladder operators.
    std::vector<PauliPolynomial> create;
    std::vector<PauliPolynomial> destroy;
    create.reserve(n);
    destroy.reserve(n);
    for (int p = 0; p < n; ++p) {
        create.push_back(jwCreation(p, n));
        destroy.push_back(jwAnnihilation(p, n));
    }

    for (int p = 0; p < n; ++p) {
        for (int q = 0; q < n; ++q) {
            const double hpq = mol.oneBody[p][q];
            if (std::abs(hpq) < 1e-14)
                continue;
            h = h + (create[p] * destroy[q]) * Complex(hpq, 0.0);
        }
    }

    if (!mol.twoBody.empty()) {
        for (int p = 0; p < n; ++p)
            for (int q = 0; q < n; ++q)
                for (int r = 0; r < n; ++r)
                    for (int s = 0; s < n; ++s) {
                        const double g = mol.twoBody[p][q][r][s];
                        if (std::abs(g) < 1e-14)
                            continue;
                        // (1/2) <pq|rs> a†_p a†_q a_s a_r
                        h = h + (create[p] * create[q] * destroy[s] *
                                 destroy[r]) *
                                Complex(0.5 * g, 0.0);
                    }
    }

    return h.toRealSum();
}

} // namespace qismet
