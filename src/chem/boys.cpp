#include "chem/boys.hpp"

#include <cmath>

namespace qismet {

double
boysF0(double t)
{
    if (t < 1e-8) {
        // F0(t) = 1 - t/3 + t²/10 - t³/42 + ...
        return 1.0 - t / 3.0 + t * t / 10.0 - t * t * t / 42.0;
    }
    return 0.5 * std::sqrt(M_PI / t) * std::erf(std::sqrt(t));
}

} // namespace qismet
