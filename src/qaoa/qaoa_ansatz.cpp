#include "qaoa/qaoa_ansatz.hpp"

namespace qismet {

QaoaAnsatz::QaoaAnsatz(MaxCutProblem problem, int layers)
    : Ansatz(problem.numVertices(), layers), problem_(std::move(problem))
{
}

int
QaoaAnsatz::numParams() const
{
    return 2 * reps_;
}

Circuit
QaoaAnsatz::build() const
{
    Circuit c(numQubits_, numParams());

    // |+>^n initial state.
    for (int q = 0; q < numQubits_; ++q)
        c.h(q);

    for (int layer = 0; layer < reps_; ++layer) {
        const int gamma = 2 * layer;
        const int beta = 2 * layer + 1;

        // Cost unitary exp(-i γ Σ (w/2)(Z_i Z_j - I)): each ZZ term
        // becomes CX · RZ(w γ) · CX (the -I part is a global phase).
        for (const Edge &e : problem_.edges()) {
            c.cx(e.a, e.b);
            c.rzParam(e.b, gamma, e.weight);
            c.cx(e.a, e.b);
        }

        // Mixer exp(-i β Σ X_j).
        for (int q = 0; q < numQubits_; ++q)
            c.rxParam(q, beta, 2.0);
    }
    return c;
}

} // namespace qismet
