/**
 * @file
 * QAOA ansatz for MaxCut: p alternating layers of the cost unitary
 * exp(-i γ_k C) and the transverse mixer exp(-i β_k Σ X_j), on the
 * uniform-superposition initial state.
 *
 * The cost layer compiles each w·Z_iZ_j term to CX(i,j) · RZ_j(2wγ) ·
 * CX(i,j), so each layer contributes 2|E| CX gates — the circuit-depth
 * scaling that couples QAOA to the paper's Section-3.2 transient
 * sensitivity arguments.
 */

#ifndef QISMET_QAOA_QAOA_ANSATZ_HPP
#define QISMET_QAOA_QAOA_ANSATZ_HPP

#include "ansatz/ansatz.hpp"
#include "qaoa/maxcut.hpp"

namespace qismet {

/** QAOA ansatz over a MaxCut instance. */
class QaoaAnsatz : public Ansatz
{
  public:
    /**
     * @param problem MaxCut instance (copied).
     * @param layers Number p of (γ, β) layers.
     */
    QaoaAnsatz(MaxCutProblem problem, int layers);

    std::string name() const override { return "QAOA"; }

    /** 2p parameters, ordered γ_1, β_1, γ_2, β_2, ... */
    int numParams() const override;

    Circuit build() const override;

    const MaxCutProblem &problem() const { return problem_; }

  private:
    MaxCutProblem problem_;
};

} // namespace qismet

#endif // QISMET_QAOA_QAOA_ANSATZ_HPP
