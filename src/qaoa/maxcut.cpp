#include "qaoa/maxcut.hpp"

#include <bit>
#include <stdexcept>

namespace qismet {

MaxCutProblem::MaxCutProblem(int num_vertices, std::vector<Edge> edges)
    : numVertices_(num_vertices), edges_(std::move(edges))
{
    if (num_vertices < 2 || num_vertices > 24)
        throw std::invalid_argument("MaxCutProblem: 2..24 vertices");
    for (const Edge &e : edges_) {
        if (e.a < 0 || e.a >= num_vertices || e.b < 0 ||
            e.b >= num_vertices || e.a == e.b)
            throw std::invalid_argument("MaxCutProblem: bad edge");
        if (e.weight < 0.0)
            throw std::invalid_argument("MaxCutProblem: negative weight");
    }
}

MaxCutProblem
MaxCutProblem::random(int num_vertices, double edge_probability, Rng &rng)
{
    if (edge_probability < 0.0 || edge_probability > 1.0)
        throw std::invalid_argument("MaxCutProblem::random: probability");
    std::vector<Edge> edges;
    for (int a = 0; a < num_vertices; ++a)
        for (int b = a + 1; b < num_vertices; ++b)
            if (rng.bernoulli(edge_probability))
                edges.push_back({a, b, 1.0});
    // Guarantee connectivity of the instance in the trivial sense of
    // having at least one edge.
    if (edges.empty())
        edges.push_back({0, 1, 1.0});
    return MaxCutProblem(num_vertices, std::move(edges));
}

MaxCutProblem
MaxCutProblem::ring(int num_vertices)
{
    std::vector<Edge> edges;
    for (int v = 0; v < num_vertices; ++v)
        edges.push_back({v, (v + 1) % num_vertices, 1.0});
    return MaxCutProblem(num_vertices, std::move(edges));
}

double
MaxCutProblem::cutValue(std::uint64_t assignment) const
{
    double cut = 0.0;
    for (const Edge &e : edges_) {
        const bool sa = assignment >> e.a & 1;
        const bool sb = assignment >> e.b & 1;
        if (sa != sb)
            cut += e.weight;
    }
    return cut;
}

double
MaxCutProblem::maxCutValue() const
{
    double best = 0.0;
    const std::uint64_t states = std::uint64_t{1} << numVertices_;
    for (std::uint64_t z = 0; z < states; ++z)
        best = std::max(best, cutValue(z));
    return best;
}

PauliSum
MaxCutProblem::costHamiltonian() const
{
    PauliSum c(numVertices_);
    for (const Edge &e : edges_) {
        PauliString zz(numVertices_);
        zz.setOp(e.a, PauliOp::Z);
        zz.setOp(e.b, PauliOp::Z);
        c.add(0.5 * e.weight, std::move(zz));
        c.add(-0.5 * e.weight, PauliString(numVertices_));
    }
    c.simplify();
    return c;
}

} // namespace qismet
