/**
 * @file
 * MaxCut problem instances and their cost Hamiltonians — the second VQA
 * domain the paper names (QAOA [Farhi et al.]; Section 2: "Our
 * applications in this work target VQE but QISMET is broadly applicable
 * across all VQAs").
 *
 * For a weighted graph G = (V, E), the cut value of a spin assignment
 * z ∈ {±1}^n is Σ_{(i,j)∈E} w_ij (1 - z_i z_j) / 2. Minimizing the cost
 * Hamiltonian
 *   C = Σ_{(i,j)} (w_ij / 2) (Z_i Z_j - I)
 * maximizes the cut: <C> = -cut(z) on computational basis states.
 */

#ifndef QISMET_QAOA_MAXCUT_HPP
#define QISMET_QAOA_MAXCUT_HPP

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "pauli/pauli_sum.hpp"

namespace qismet {

/** One weighted edge. */
struct Edge
{
    int a = 0;
    int b = 0;
    double weight = 1.0;
};

/** A weighted MaxCut instance. */
class MaxCutProblem
{
  public:
    /**
     * @param num_vertices Graph size (= qubit count).
     * @param edges Weighted edges; vertices must be in range and
     *        distinct per edge.
     */
    MaxCutProblem(int num_vertices, std::vector<Edge> edges);

    /** Erdős–Rényi random graph with the given edge probability. */
    static MaxCutProblem random(int num_vertices, double edge_probability,
                                Rng &rng);

    /** Unweighted ring of n vertices (cut = n for even n). */
    static MaxCutProblem ring(int num_vertices);

    int numVertices() const { return numVertices_; }
    const std::vector<Edge> &edges() const { return edges_; }

    /** Cut value of the assignment encoded as a bitmask. */
    double cutValue(std::uint64_t assignment) const;

    /** Maximum cut value by exhaustive search (n <= ~24). */
    double maxCutValue() const;

    /**
     * Cost Hamiltonian C = Σ (w/2)(Z_i Z_j - I); its ground energy is
     * -maxCutValue().
     */
    PauliSum costHamiltonian() const;

  private:
    int numVertices_;
    std::vector<Edge> edges_;
};

} // namespace qismet

#endif // QISMET_QAOA_MAXCUT_HPP
