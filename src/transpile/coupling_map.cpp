#include "transpile/coupling_map.hpp"

#include <algorithm>
#include <cctype>
#include <queue>
#include <set>
#include <stdexcept>

namespace qismet {

CouplingMap::CouplingMap(int num_qubits,
                         std::vector<std::pair<int, int>> edges)
    : numQubits_(num_qubits)
{
    if (num_qubits < 1)
        throw std::invalid_argument("CouplingMap: need >= 1 qubit");
    adjacency_.resize(static_cast<std::size_t>(num_qubits));

    std::set<std::pair<int, int>> seen;
    for (auto [a, b] : edges) {
        if (a < 0 || a >= num_qubits || b < 0 || b >= num_qubits || a == b)
            throw std::invalid_argument("CouplingMap: bad edge");
        const auto key = std::minmax(a, b);
        if (!seen.insert(key).second)
            continue;
        edges_.emplace_back(key.first, key.second);
        adjacency_[a].push_back(b);
        adjacency_[b].push_back(a);
    }
}

CouplingMap
CouplingMap::linear(int num_qubits)
{
    std::vector<std::pair<int, int>> edges;
    for (int q = 0; q + 1 < num_qubits; ++q)
        edges.emplace_back(q, q + 1);
    return CouplingMap(num_qubits, std::move(edges));
}

CouplingMap
CouplingMap::ring(int num_qubits)
{
    std::vector<std::pair<int, int>> edges;
    for (int q = 0; q < num_qubits; ++q)
        edges.emplace_back(q, (q + 1) % num_qubits);
    return CouplingMap(num_qubits, std::move(edges));
}

CouplingMap
CouplingMap::ibm7qH()
{
    return CouplingMap(7, {{0, 1}, {1, 2}, {1, 3}, {3, 5}, {4, 5}, {5, 6}});
}

CouplingMap
CouplingMap::forMachine(const std::string &machine_name, int num_qubits)
{
    std::string key = machine_name;
    std::transform(key.begin(), key.end(), key.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    if (key == "casablanca" || key == "jakarta")
        return ibm7qH();
    return linear(num_qubits);
}

bool
CouplingMap::connected(int a, int b) const
{
    if (a < 0 || a >= numQubits_ || b < 0 || b >= numQubits_)
        throw std::out_of_range("CouplingMap::connected: qubit");
    for (int n : adjacency_[a])
        if (n == b)
            return true;
    return false;
}

std::vector<int>
CouplingMap::shortestPath(int a, int b) const
{
    if (a < 0 || a >= numQubits_ || b < 0 || b >= numQubits_)
        throw std::out_of_range("CouplingMap::shortestPath: qubit");
    if (a == b)
        return {a};

    std::vector<int> parent(static_cast<std::size_t>(numQubits_), -1);
    std::queue<int> frontier;
    frontier.push(a);
    parent[a] = a;
    while (!frontier.empty()) {
        const int cur = frontier.front();
        frontier.pop();
        for (int n : adjacency_[cur]) {
            if (parent[n] != -1)
                continue;
            parent[n] = cur;
            if (n == b) {
                std::vector<int> path = {b};
                int walk = b;
                while (walk != a) {
                    walk = parent[walk];
                    path.push_back(walk);
                }
                std::reverse(path.begin(), path.end());
                return path;
            }
            frontier.push(n);
        }
    }
    return {};
}

int
CouplingMap::distance(int a, int b) const
{
    const auto path = shortestPath(a, b);
    return path.empty() ? -1 : static_cast<int>(path.size()) - 1;
}

bool
CouplingMap::isConnected() const
{
    for (int q = 1; q < numQubits_; ++q)
        if (distance(0, q) < 0)
            return false;
    return true;
}

} // namespace qismet
