/**
 * @file
 * Device coupling maps: which physical qubit pairs support two-qubit
 * gates. The paper's circuits run through Qiskit's transpiler onto
 * IBMQ topologies (linear segments of 27q Falcons, the 7q "H" lattice
 * of Casablanca/Jakarta); this module supplies the same structural
 * substrate for our simulated machines.
 */

#ifndef QISMET_TRANSPILE_COUPLING_MAP_HPP
#define QISMET_TRANSPILE_COUPLING_MAP_HPP

#include <string>
#include <utility>
#include <vector>

namespace qismet {

/** Undirected connectivity graph over physical qubits. */
class CouplingMap
{
  public:
    /**
     * @param num_qubits Physical qubit count.
     * @param edges Undirected couplings (validated, deduplicated).
     */
    CouplingMap(int num_qubits, std::vector<std::pair<int, int>> edges);

    /** Linear chain 0-1-2-...-(n-1). */
    static CouplingMap linear(int num_qubits);

    /** Ring topology. */
    static CouplingMap ring(int num_qubits);

    /**
     * The IBM 7-qubit "H" lattice (Casablanca, Jakarta):
     *   0-1, 1-2, 1-3, 3-5, 4-5, 5-6.
     */
    static CouplingMap ibm7qH();

    /**
     * Topology for a registered machine name: the 7q machines get the
     * H lattice, the larger Falcons are served as linear chains of
     * their size (the heavy-hex subgraph the paper's 6q circuits were
     * mapped onto behaves like a line).
     */
    static CouplingMap forMachine(const std::string &machine_name,
                                  int num_qubits);

    int numQubits() const { return numQubits_; }
    const std::vector<std::pair<int, int>> &edges() const { return edges_; }

    /** True when a two-qubit gate can act directly on (a, b). */
    bool connected(int a, int b) const;

    /** BFS shortest path from a to b inclusive; empty when unreachable. */
    std::vector<int> shortestPath(int a, int b) const;

    /** Hop distance; -1 when unreachable. */
    int distance(int a, int b) const;

    /** True when the whole graph is one connected component. */
    bool isConnected() const;

  private:
    int numQubits_;
    std::vector<std::pair<int, int>> edges_;
    std::vector<std::vector<int>> adjacency_;
};

} // namespace qismet

#endif // QISMET_TRANSPILE_COUPLING_MAP_HPP
