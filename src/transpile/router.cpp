#include "transpile/router.hpp"

#include <numeric>
#include <stdexcept>

namespace qismet {

std::uint64_t
RoutingResult::toLogical(std::uint64_t physical_outcome) const
{
    std::uint64_t logical = 0;
    for (std::size_t q = 0; q < finalLayout.size(); ++q) {
        const int phys = finalLayout[q];
        if (physical_outcome >> phys & 1)
            logical |= std::uint64_t{1} << q;
    }
    return logical;
}

RoutingResult
routeCircuit(const Circuit &circuit, const CouplingMap &map)
{
    if (circuit.numQubits() > map.numQubits())
        throw std::invalid_argument("routeCircuit: circuit wider than map");
    if (!map.isConnected())
        throw std::invalid_argument("routeCircuit: disconnected map");

    RoutingResult result;
    result.circuit = Circuit(map.numQubits(), circuit.numParams());

    // layout[logical] = physical; position[physical] = logical (or -1).
    std::vector<int> layout(static_cast<std::size_t>(circuit.numQubits()));
    std::iota(layout.begin(), layout.end(), 0);
    std::vector<int> position(static_cast<std::size_t>(map.numQubits()),
                              -1);
    for (std::size_t l = 0; l < layout.size(); ++l)
        position[layout[l]] = static_cast<int>(l);

    auto emit_swap = [&](int phys_a, int phys_b) {
        result.circuit.swap(phys_a, phys_b);
        ++result.swapsInserted;
        const int la = position[phys_a];
        const int lb = position[phys_b];
        position[phys_a] = lb;
        position[phys_b] = la;
        if (la >= 0)
            layout[la] = phys_b;
        if (lb >= 0)
            layout[lb] = phys_a;
    };

    for (Gate g : circuit.gates()) {
        if (gateArity(g.type) == 1) {
            g.qubits[0] = layout[g.qubits[0]];
            result.circuit.append(g);
            continue;
        }

        int pa = layout[g.qubits[0]];
        int pb = layout[g.qubits[1]];
        if (!map.connected(pa, pb)) {
            // Walk logical qubit a along the shortest path toward b,
            // stopping one hop short.
            const auto path = map.shortestPath(pa, pb);
            for (std::size_t step = 0; step + 2 < path.size(); ++step)
                emit_swap(path[step], path[step + 1]);
            pa = layout[g.qubits[0]];
            pb = layout[g.qubits[1]];
        }
        g.qubits[0] = pa;
        g.qubits[1] = pb;
        result.circuit.append(g);
    }

    result.finalLayout = layout;
    return result;
}

} // namespace qismet
