/**
 * @file
 * SWAP routing: rewrite a circuit so every two-qubit gate acts on a
 * coupled physical pair, inserting SWAP chains along shortest paths.
 *
 * The router preserves circuit parameters (a routed ansatz is still an
 * ansatz over the same θ vector) and reports the final logical→physical
 * layout so measurement results can be un-permuted. Deeper routed
 * circuits have lower survival factors and more transient exposure —
 * the paper's Section-3.2 depth argument made concrete for the 7-qubit
 * H-lattice machines.
 */

#ifndef QISMET_TRANSPILE_ROUTER_HPP
#define QISMET_TRANSPILE_ROUTER_HPP

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "transpile/coupling_map.hpp"

namespace qismet {

/** Output of the router. */
struct RoutingResult
{
    /** Routed circuit over the physical register. */
    Circuit circuit;
    /**
     * Final layout: layout[logical] = physical wire holding that
     * logical qubit after the circuit.
     */
    std::vector<int> finalLayout;
    /** SWAP gates inserted. */
    int swapsInserted = 0;

    RoutingResult() : circuit(1) {}

    /**
     * Translate a physical measurement outcome (basis-state index over
     * physical wires) back to the logical register.
     */
    std::uint64_t toLogical(std::uint64_t physical_outcome) const;
};

/**
 * Route a circuit onto the coupling map with the trivial initial layout
 * (logical q starts on physical q).
 *
 * @param circuit Input circuit; its width must not exceed the map's.
 * @param map Device connectivity; must be a connected graph.
 * @throws std::invalid_argument on width mismatch or disconnected maps.
 */
RoutingResult routeCircuit(const Circuit &circuit, const CouplingMap &map);

} // namespace qismet

#endif // QISMET_TRANSPILE_ROUTER_HPP
