#include "hamiltonian/exact_solver.hpp"

#include <stdexcept>

#include "common/eigen.hpp"

namespace qismet {

ExactSolution
solveExact(const PauliSum &hamiltonian)
{
    if (hamiltonian.numQubits() > 10)
        throw std::invalid_argument(
            "solveExact: dense diagonalization capped at 10 qubits");

    const Matrix h = hamiltonian.toMatrix();
    const EigenResult eig = eigHermitian(h);

    ExactSolution sol;
    sol.spectrum = eig.values;
    sol.groundState.resize(h.rows());
    for (std::size_t r = 0; r < h.rows(); ++r)
        sol.groundState[r] = eig.vectors(r, 0);
    return sol;
}

} // namespace qismet
