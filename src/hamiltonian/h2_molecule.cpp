#include "hamiltonian/h2_molecule.hpp"

#include <cmath>
#include <stdexcept>

#include "chem/sto3g.hpp"
#include "hamiltonian/exact_solver.hpp"

namespace qismet {

MolecularHamiltonian
h2MolecularHamiltonian(double bond_angstrom)
{
    if (bond_angstrom <= 0.0)
        throw std::invalid_argument("h2MolecularHamiltonian: bond length");

    const double r = bond_angstrom * kBohrPerAngstrom;
    const ContractedGaussian chi1 = sto3gHydrogen(0.0);
    const ContractedGaussian chi2 = sto3gHydrogen(r);

    // AO integrals. By symmetry S11 = S22 = 1 after normalization.
    const double s12 = overlapIntegral(chi1, chi2);
    const double t11 = kineticIntegral(chi1, chi1);
    const double t12 = kineticIntegral(chi1, chi2);
    const double v11 = nuclearIntegral(chi1, chi1, 0.0, 1.0) +
                       nuclearIntegral(chi1, chi1, r, 1.0);
    const double v12 = nuclearIntegral(chi1, chi2, 0.0, 1.0) +
                       nuclearIntegral(chi1, chi2, r, 1.0);
    const double h11 = t11 + v11;
    const double h12 = t12 + v12;

    // Symmetry-adapted molecular orbitals:
    //   g = (χ1 + χ2) / sqrt(2 (1 + S)),  u = (χ1 - χ2) / sqrt(2 (1 - S)).
    const double ng = 1.0 / std::sqrt(2.0 * (1.0 + s12));
    const double nu = 1.0 / std::sqrt(2.0 * (1.0 - s12));
    // c[ao][mo]
    const double c[2][2] = {{ng, nu}, {ng, -nu}};

    // One-electron MO integrals (off-diagonal vanishes by symmetry).
    const double h_mo[2][2] = {
        {(h11 + h12) * 2.0 * ng * ng, 0.0},
        {0.0, (h11 - h12) * 2.0 * nu * nu},
    };

    // Unique AO ERIs (chemist notation); the rest follow by the 8-fold
    // permutational symmetry plus the two centers being identical.
    const double e1111 = eriIntegral(chi1, chi1, chi1, chi1);
    const double e1112 = eriIntegral(chi1, chi1, chi1, chi2);
    const double e1122 = eriIntegral(chi1, chi1, chi2, chi2);
    const double e1212 = eriIntegral(chi1, chi2, chi1, chi2);

    auto ao_eri = [&](int i, int j, int k, int l) -> double {
        // Count how many indices refer to center 2 in each pair, then
        // use center-exchange symmetry (1 <-> 2 relabels identically).
        const int pair1 = (i == 1 ? 1 : 0) + (j == 1 ? 1 : 0);
        const int pair2 = (k == 1 ? 1 : 0) + (l == 1 ? 1 : 0);
        const int lo = std::min(pair1, pair2);
        const int hi = std::max(pair1, pair2);
        if (lo == 0 && hi == 0) return e1111; // (11|11)
        if (lo == 0 && hi == 1) return e1112; // (11|12)
        if (lo == 0 && hi == 2) return e1122; // (11|22)
        if (lo == 1 && hi == 1) return e1212; // (12|12)
        if (lo == 1 && hi == 2) return e1112; // (12|22) = (11|12)
        return e1111;                          // (22|22) = (11|11)
    };

    // Full 4-index transform to MO basis (2 orbitals → 16 entries).
    double mo_eri[2][2][2][2] = {};
    for (int p = 0; p < 2; ++p)
        for (int q = 0; q < 2; ++q)
            for (int rr = 0; rr < 2; ++rr)
                for (int ss = 0; ss < 2; ++ss) {
                    double acc = 0.0;
                    for (int i = 0; i < 2; ++i)
                        for (int jj = 0; jj < 2; ++jj)
                            for (int k = 0; k < 2; ++k)
                                for (int l = 0; l < 2; ++l)
                                    acc += c[i][p] * c[jj][q] * c[k][rr] *
                                           c[l][ss] * ao_eri(i, jj, k, l);
                    mo_eri[p][q][rr][ss] = acc;
                }

    // Assemble the spin-orbital Hamiltonian. Ordering: 2*spatial + spin.
    MolecularHamiltonian mol;
    mol.constant = 1.0 / r; // nuclear repulsion (Z1 Z2 / R, atomic units)
    const int n = 4;
    mol.oneBody.assign(n, std::vector<double>(n, 0.0));
    mol.twoBody.assign(
        n, std::vector<std::vector<std::vector<double>>>(
               n, std::vector<std::vector<double>>(
                      n, std::vector<double>(n, 0.0))));

    auto spatial = [](int so) { return so / 2; };
    auto spin = [](int so) { return so % 2; };

    for (int p = 0; p < n; ++p)
        for (int q = 0; q < n; ++q)
            if (spin(p) == spin(q))
                mol.oneBody[p][q] = h_mo[spatial(p)][spatial(q)];

    // <pq|rs> (physicist) = (pr|qs) (chemist) with spin matching p-r, q-s.
    for (int p = 0; p < n; ++p)
        for (int q = 0; q < n; ++q)
            for (int rr = 0; rr < n; ++rr)
                for (int ss = 0; ss < n; ++ss)
                    if (spin(p) == spin(rr) && spin(q) == spin(ss))
                        mol.twoBody[p][q][rr][ss] =
                            mo_eri[spatial(p)][spatial(rr)]
                                  [spatial(q)][spatial(ss)];

    return mol;
}

H2Problem
h2Problem(double bond_angstrom)
{
    H2Problem prob;
    prob.bondAngstrom = bond_angstrom;
    prob.hamiltonian = jordanWigner(h2MolecularHamiltonian(bond_angstrom));
    // For neutral H2 the 2-electron sector is the global minimum of the
    // full Fock-space Hamiltonian, so dense diagonalization gives FCI.
    prob.fciEnergy = solveExact(prob.hamiltonian).groundEnergy();
    return prob;
}

std::vector<H2Problem>
h2BondScan(double start_angstrom, double stop_angstrom, int count)
{
    if (count < 2)
        throw std::invalid_argument("h2BondScan: need at least 2 points");
    std::vector<H2Problem> scan;
    scan.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
        const double frac = static_cast<double>(i) /
                            static_cast<double>(count - 1);
        scan.push_back(h2Problem(start_angstrom +
                                 frac * (stop_angstrom - start_angstrom)));
    }
    return scan;
}

} // namespace qismet
