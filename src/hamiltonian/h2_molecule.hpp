/**
 * @file
 * H2 molecule qubit Hamiltonians over a range of bond lengths
 * (paper Fig. 18: potential energy of H2 for bond lengths 0.4-2.0 Å).
 *
 * Built from first principles: STO-3G integrals (chem/sto3g) →
 * symmetry-adapted molecular orbitals → second-quantized Hamiltonian →
 * Jordan-Wigner 4-qubit PauliSum. Energies are in Hartree.
 */

#ifndef QISMET_HAMILTONIAN_H2_MOLECULE_HPP
#define QISMET_HAMILTONIAN_H2_MOLECULE_HPP

#include <vector>

#include "chem/jordan_wigner.hpp"
#include "pauli/pauli_sum.hpp"

namespace qismet {

/** One H2 problem instance. */
struct H2Problem
{
    /** Bond length in Angstrom. */
    double bondAngstrom = 0.735;
    /** 4-qubit JW Hamiltonian including the nuclear-repulsion constant. */
    PauliSum hamiltonian{4};
    /** Exact FCI ground energy (dense diagonalization), Hartree. */
    double fciEnergy = 0.0;
};

/**
 * Second-quantized H2 Hamiltonian in the spin-orbital basis
 * {g↑, g↓, u↑, u↓} (g/u = bonding/antibonding symmetry orbitals).
 */
MolecularHamiltonian h2MolecularHamiltonian(double bond_angstrom);

/** Build the 4-qubit problem for one bond length. */
H2Problem h2Problem(double bond_angstrom);

/**
 * Build problems for a bond-length sweep.
 * @param start_angstrom First bond length.
 * @param stop_angstrom Last bond length (inclusive).
 * @param count Number of points (>= 2).
 */
std::vector<H2Problem> h2BondScan(double start_angstrom,
                                  double stop_angstrom, int count);

} // namespace qismet

#endif // QISMET_HAMILTONIAN_H2_MOLECULE_HPP
