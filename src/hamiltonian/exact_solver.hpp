/**
 * @file
 * Exact (dense diagonalization) reference solutions for PauliSum
 * Hamiltonians. Feasible because the paper's applications are <= 6
 * qubits (64-dimensional Hilbert spaces).
 */

#ifndef QISMET_HAMILTONIAN_EXACT_SOLVER_HPP
#define QISMET_HAMILTONIAN_EXACT_SOLVER_HPP

#include <vector>

#include "common/matrix.hpp"
#include "pauli/pauli_sum.hpp"

namespace qismet {

/** Exact spectrum of a Hamiltonian. */
struct ExactSolution
{
    /** All eigenvalues, ascending. */
    std::vector<double> spectrum;
    /** Ground-state vector (column 0 of the eigenbasis). */
    std::vector<Complex> groundState;

    /** Ground-state energy. */
    double groundEnergy() const { return spectrum.front(); }
    /** Spectral gap E1 - E0. */
    double gap() const
    {
        return spectrum.size() > 1 ? spectrum[1] - spectrum[0] : 0.0;
    }
};

/** Diagonalize a Hamiltonian exactly (dense, n <= ~10 qubits). */
ExactSolution solveExact(const PauliSum &hamiltonian);

} // namespace qismet

#endif // QISMET_HAMILTONIAN_EXACT_SOLVER_HPP
