/**
 * @file
 * One-dimensional Transverse Field Ising Model Hamiltonian — the paper's
 * primary VQE target (Table 1).
 *
 *   H = -J Σ_{i=0}^{n-2} Z_i Z_{i+1}  -  h Σ_{i=0}^{n-1} X_i     (open chain)
 *
 * The TFIM is exactly solvable via the Jordan-Wigner free-fermion
 * mapping; `tfimExactGroundEnergy` implements that solution and serves
 * as an independent cross-check of the dense diagonalization.
 */

#ifndef QISMET_HAMILTONIAN_TFIM_HPP
#define QISMET_HAMILTONIAN_TFIM_HPP

#include "pauli/pauli_sum.hpp"

namespace qismet {

/** Parameters of the 1-D TFIM. */
struct TfimParams
{
    int numQubits = 6;
    /** ZZ coupling strength. */
    double j = 1.0;
    /** Transverse field strength. */
    double h = 1.0;
    /** Couple qubit n-1 back to qubit 0. */
    bool periodic = false;
};

/** Build the TFIM Hamiltonian as a PauliSum. */
PauliSum tfimHamiltonian(const TfimParams &params);

/**
 * Exact ground-state energy of the *open-chain* TFIM from the
 * free-fermion solution: E0 = -(1/2) Σ_k Λ_k, where Λ_k² are the
 * eigenvalues of (A-B)(A+B) for the Bogoliubov-de Gennes blocks
 * A (diag 2h, off-diag -J) and B (B_{i,i+1} = -J = -B_{i+1,i}).
 *
 * @throws std::invalid_argument for periodic chains (use the dense
 *         solver for those; the fermionic boundary-parity bookkeeping
 *         is not worth carrying here).
 */
double tfimExactGroundEnergy(const TfimParams &params);

} // namespace qismet

#endif // QISMET_HAMILTONIAN_TFIM_HPP
