#include "hamiltonian/tfim.hpp"

#include <cmath>
#include <stdexcept>

#include "common/eigen.hpp"

namespace qismet {

PauliSum
tfimHamiltonian(const TfimParams &params)
{
    if (params.numQubits < 2)
        throw std::invalid_argument("tfimHamiltonian: need >= 2 qubits");

    PauliSum h(params.numQubits);

    for (int i = 0; i + 1 < params.numQubits; ++i) {
        PauliString zz(params.numQubits);
        zz.setOp(i, PauliOp::Z);
        zz.setOp(i + 1, PauliOp::Z);
        h.add(-params.j, std::move(zz));
    }
    if (params.periodic && params.numQubits > 2) {
        PauliString zz(params.numQubits);
        zz.setOp(params.numQubits - 1, PauliOp::Z);
        zz.setOp(0, PauliOp::Z);
        h.add(-params.j, std::move(zz));
    }

    for (int i = 0; i < params.numQubits; ++i) {
        PauliString x(params.numQubits);
        x.setOp(i, PauliOp::X);
        h.add(-params.h, std::move(x));
    }
    return h;
}

double
tfimExactGroundEnergy(const TfimParams &params)
{
    if (params.periodic)
        throw std::invalid_argument(
            "tfimExactGroundEnergy: open chains only");
    if (params.numQubits < 2)
        throw std::invalid_argument("tfimExactGroundEnergy: need >= 2 qubits");

    const std::size_t n = static_cast<std::size_t>(params.numQubits);
    const double j = params.j;
    const double hf = params.h;

    // Bogoliubov-de Gennes blocks for the open chain in the X-basis form
    // H = -J Σ σx_i σx_{i+1} - h Σ σz_i (same spectrum as the Z-basis
    // Hamiltonian built above, related by global Hadamard rotation).
    std::vector<std::vector<double>> a(n, std::vector<double>(n, 0.0));
    std::vector<std::vector<double>> b(n, std::vector<double>(n, 0.0));
    for (std::size_t i = 0; i < n; ++i)
        a[i][i] = 2.0 * hf;
    for (std::size_t i = 0; i + 1 < n; ++i) {
        a[i][i + 1] = a[i + 1][i] = -j;
        b[i][i + 1] = -j;
        b[i + 1][i] = j;
    }

    // M = (A - B)(A + B) is symmetric PSD; its eigenvalues are the
    // squared quasiparticle energies.
    std::vector<std::vector<double>> m(n, std::vector<double>(n, 0.0));
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c) {
            double s = 0.0;
            for (std::size_t k = 0; k < n; ++k)
                s += (a[r][k] - b[r][k]) * (a[k][c] + b[k][c]);
            m[r][c] = s;
        }

    const EigenResult res = eigRealSymmetric(m);
    double e0 = 0.0;
    for (double lambda2 : res.values)
        e0 -= 0.5 * std::sqrt(std::max(0.0, lambda2));
    return e0;
}

} // namespace qismet
