file(REMOVE_RECURSE
  "CMakeFiles/h2_dissociation.dir/h2_dissociation.cpp.o"
  "CMakeFiles/h2_dissociation.dir/h2_dissociation.cpp.o.d"
  "h2_dissociation"
  "h2_dissociation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2_dissociation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
