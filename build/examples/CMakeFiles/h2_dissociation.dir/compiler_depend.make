# Empty compiler generated dependencies file for h2_dissociation.
# This may be replaced when dependencies are built.
