# Empty compiler generated dependencies file for transient_navigation.
# This may be replaced when dependencies are built.
