file(REMOVE_RECURSE
  "CMakeFiles/transient_navigation.dir/transient_navigation.cpp.o"
  "CMakeFiles/transient_navigation.dir/transient_navigation.cpp.o.d"
  "transient_navigation"
  "transient_navigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transient_navigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
