file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_sydney.dir/bench_fig12_sydney.cpp.o"
  "CMakeFiles/bench_fig12_sydney.dir/bench_fig12_sydney.cpp.o.d"
  "bench_fig12_sydney"
  "bench_fig12_sydney.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_sydney.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
