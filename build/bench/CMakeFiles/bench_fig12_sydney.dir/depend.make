# Empty dependencies file for bench_fig12_sydney.
# This may be replaced when dependencies are built.
