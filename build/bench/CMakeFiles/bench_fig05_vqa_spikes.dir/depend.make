# Empty dependencies file for bench_fig05_vqa_spikes.
# This may be replaced when dependencies are built.
