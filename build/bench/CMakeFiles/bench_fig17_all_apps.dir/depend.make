# Empty dependencies file for bench_fig17_all_apps.
# This may be replaced when dependencies are built.
