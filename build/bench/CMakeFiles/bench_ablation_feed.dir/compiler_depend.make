# Empty compiler generated dependencies file for bench_ablation_feed.
# This may be replaced when dependencies are built.
