file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_feed.dir/bench_ablation_feed.cpp.o"
  "CMakeFiles/bench_ablation_feed.dir/bench_ablation_feed.cpp.o.d"
  "bench_ablation_feed"
  "bench_ablation_feed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_feed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
