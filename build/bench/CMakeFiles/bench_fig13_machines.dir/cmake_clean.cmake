file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_machines.dir/bench_fig13_machines.cpp.o"
  "CMakeFiles/bench_fig13_machines.dir/bench_fig13_machines.cpp.o.d"
  "bench_fig13_machines"
  "bench_fig13_machines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_machines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
