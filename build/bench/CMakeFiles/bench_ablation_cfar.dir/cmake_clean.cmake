file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cfar.dir/bench_ablation_cfar.cpp.o"
  "CMakeFiles/bench_ablation_cfar.dir/bench_ablation_cfar.cpp.o.d"
  "bench_ablation_cfar"
  "bench_ablation_cfar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cfar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
