# Empty dependencies file for bench_ablation_cfar.
# This may be replaced when dependencies are built.
