file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_fidelity.dir/bench_fig04_fidelity.cpp.o"
  "CMakeFiles/bench_fig04_fidelity.dir/bench_fig04_fidelity.cpp.o.d"
  "bench_fig04_fidelity"
  "bench_fig04_fidelity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
