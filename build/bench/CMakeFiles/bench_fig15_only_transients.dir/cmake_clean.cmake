file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_only_transients.dir/bench_fig15_only_transients.cpp.o"
  "CMakeFiles/bench_fig15_only_transients.dir/bench_fig15_only_transients.cpp.o.d"
  "bench_fig15_only_transients"
  "bench_fig15_only_transients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_only_transients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
