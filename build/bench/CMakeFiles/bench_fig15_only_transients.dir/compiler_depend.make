# Empty compiler generated dependencies file for bench_fig15_only_transients.
# This may be replaced when dependencies are built.
