file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_qaoa.dir/bench_ext_qaoa.cpp.o"
  "CMakeFiles/bench_ext_qaoa.dir/bench_ext_qaoa.cpp.o.d"
  "bench_ext_qaoa"
  "bench_ext_qaoa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_qaoa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
