# Empty dependencies file for bench_ext_qaoa.
# This may be replaced when dependencies are built.
