file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_guadalupe.dir/bench_fig11_guadalupe.cpp.o"
  "CMakeFiles/bench_fig11_guadalupe.dir/bench_fig11_guadalupe.cpp.o.d"
  "bench_fig11_guadalupe"
  "bench_fig11_guadalupe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_guadalupe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
