# Empty compiler generated dependencies file for bench_fig18_h2.
# This may be replaced when dependencies are built.
