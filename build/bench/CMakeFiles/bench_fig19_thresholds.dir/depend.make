# Empty dependencies file for bench_fig19_thresholds.
# This may be replaced when dependencies are built.
