
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/support.cpp" "bench/CMakeFiles/bench_support.dir/support.cpp.o" "gcc" "bench/CMakeFiles/bench_support.dir/support.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qismet_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qismet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qismet_vqe.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qismet_noise.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qismet_mitigation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qismet_hamiltonian.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qismet_chem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qismet_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qismet_filter.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qismet_qaoa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qismet_ansatz.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qismet_pauli.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qismet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qismet_transpile.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qismet_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qismet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
