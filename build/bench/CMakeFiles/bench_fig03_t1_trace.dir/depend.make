# Empty dependencies file for bench_fig03_t1_trace.
# This may be replaced when dependencies are built.
