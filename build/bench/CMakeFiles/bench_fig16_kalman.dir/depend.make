# Empty dependencies file for bench_fig16_kalman.
# This may be replaced when dependencies are built.
