file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_kalman.dir/bench_fig16_kalman.cpp.o"
  "CMakeFiles/bench_fig16_kalman.dir/bench_fig16_kalman.cpp.o.d"
  "bench_fig16_kalman"
  "bench_fig16_kalman.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_kalman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
