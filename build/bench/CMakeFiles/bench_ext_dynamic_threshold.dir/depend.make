# Empty dependencies file for bench_ext_dynamic_threshold.
# This may be replaced when dependencies are built.
