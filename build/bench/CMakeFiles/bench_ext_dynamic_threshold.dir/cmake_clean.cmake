file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_dynamic_threshold.dir/bench_ext_dynamic_threshold.cpp.o"
  "CMakeFiles/bench_ext_dynamic_threshold.dir/bench_ext_dynamic_threshold.cpp.o.d"
  "bench_ext_dynamic_threshold"
  "bench_ext_dynamic_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_dynamic_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
