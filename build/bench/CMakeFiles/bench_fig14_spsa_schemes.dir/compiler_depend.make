# Empty compiler generated dependencies file for bench_fig14_spsa_schemes.
# This may be replaced when dependencies are built.
