file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_spsa_schemes.dir/bench_fig14_spsa_schemes.cpp.o"
  "CMakeFiles/bench_fig14_spsa_schemes.dir/bench_fig14_spsa_schemes.cpp.o.d"
  "bench_fig14_spsa_schemes"
  "bench_fig14_spsa_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_spsa_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
