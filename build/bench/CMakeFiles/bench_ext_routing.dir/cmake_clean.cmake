file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_routing.dir/bench_ext_routing.cpp.o"
  "CMakeFiles/bench_ext_routing.dir/bench_ext_routing.cpp.o.d"
  "bench_ext_routing"
  "bench_ext_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
