# Empty dependencies file for bench_ext_routing.
# This may be replaced when dependencies are built.
