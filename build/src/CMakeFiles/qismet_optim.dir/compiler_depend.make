# Empty compiler generated dependencies file for qismet_optim.
# This may be replaced when dependencies are built.
