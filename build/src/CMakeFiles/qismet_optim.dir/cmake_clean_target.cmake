file(REMOVE_RECURSE
  "libqismet_optim.a"
)
