file(REMOVE_RECURSE
  "CMakeFiles/qismet_optim.dir/optim/spsa.cpp.o"
  "CMakeFiles/qismet_optim.dir/optim/spsa.cpp.o.d"
  "CMakeFiles/qismet_optim.dir/optim/spsa_variants.cpp.o"
  "CMakeFiles/qismet_optim.dir/optim/spsa_variants.cpp.o.d"
  "libqismet_optim.a"
  "libqismet_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qismet_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
