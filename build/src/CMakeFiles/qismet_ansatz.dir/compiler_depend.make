# Empty compiler generated dependencies file for qismet_ansatz.
# This may be replaced when dependencies are built.
