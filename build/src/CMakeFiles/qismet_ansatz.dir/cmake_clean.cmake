file(REMOVE_RECURSE
  "CMakeFiles/qismet_ansatz.dir/ansatz/ansatz.cpp.o"
  "CMakeFiles/qismet_ansatz.dir/ansatz/ansatz.cpp.o.d"
  "CMakeFiles/qismet_ansatz.dir/ansatz/efficient_su2.cpp.o"
  "CMakeFiles/qismet_ansatz.dir/ansatz/efficient_su2.cpp.o.d"
  "CMakeFiles/qismet_ansatz.dir/ansatz/real_amplitudes.cpp.o"
  "CMakeFiles/qismet_ansatz.dir/ansatz/real_amplitudes.cpp.o.d"
  "libqismet_ansatz.a"
  "libqismet_ansatz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qismet_ansatz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
