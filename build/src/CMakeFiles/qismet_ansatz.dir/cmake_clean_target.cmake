file(REMOVE_RECURSE
  "libqismet_ansatz.a"
)
