file(REMOVE_RECURSE
  "CMakeFiles/qismet_qaoa.dir/qaoa/maxcut.cpp.o"
  "CMakeFiles/qismet_qaoa.dir/qaoa/maxcut.cpp.o.d"
  "CMakeFiles/qismet_qaoa.dir/qaoa/qaoa_ansatz.cpp.o"
  "CMakeFiles/qismet_qaoa.dir/qaoa/qaoa_ansatz.cpp.o.d"
  "libqismet_qaoa.a"
  "libqismet_qaoa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qismet_qaoa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
