file(REMOVE_RECURSE
  "libqismet_qaoa.a"
)
