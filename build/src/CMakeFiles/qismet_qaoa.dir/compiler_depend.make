# Empty compiler generated dependencies file for qismet_qaoa.
# This may be replaced when dependencies are built.
