# Empty compiler generated dependencies file for qismet_mitigation.
# This may be replaced when dependencies are built.
