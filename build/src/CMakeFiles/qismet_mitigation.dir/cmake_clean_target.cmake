file(REMOVE_RECURSE
  "libqismet_mitigation.a"
)
