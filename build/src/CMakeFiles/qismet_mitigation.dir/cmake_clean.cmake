file(REMOVE_RECURSE
  "CMakeFiles/qismet_mitigation.dir/mitigation/measurement_mitigation.cpp.o"
  "CMakeFiles/qismet_mitigation.dir/mitigation/measurement_mitigation.cpp.o.d"
  "libqismet_mitigation.a"
  "libqismet_mitigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qismet_mitigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
