file(REMOVE_RECURSE
  "libqismet_transpile.a"
)
