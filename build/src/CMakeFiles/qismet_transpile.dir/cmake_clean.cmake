file(REMOVE_RECURSE
  "CMakeFiles/qismet_transpile.dir/transpile/coupling_map.cpp.o"
  "CMakeFiles/qismet_transpile.dir/transpile/coupling_map.cpp.o.d"
  "CMakeFiles/qismet_transpile.dir/transpile/router.cpp.o"
  "CMakeFiles/qismet_transpile.dir/transpile/router.cpp.o.d"
  "libqismet_transpile.a"
  "libqismet_transpile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qismet_transpile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
