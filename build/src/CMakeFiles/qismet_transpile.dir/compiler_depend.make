# Empty compiler generated dependencies file for qismet_transpile.
# This may be replaced when dependencies are built.
