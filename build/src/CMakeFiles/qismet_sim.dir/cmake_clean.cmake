file(REMOVE_RECURSE
  "CMakeFiles/qismet_sim.dir/sim/density_matrix.cpp.o"
  "CMakeFiles/qismet_sim.dir/sim/density_matrix.cpp.o.d"
  "CMakeFiles/qismet_sim.dir/sim/kraus.cpp.o"
  "CMakeFiles/qismet_sim.dir/sim/kraus.cpp.o.d"
  "CMakeFiles/qismet_sim.dir/sim/shot_sampler.cpp.o"
  "CMakeFiles/qismet_sim.dir/sim/shot_sampler.cpp.o.d"
  "CMakeFiles/qismet_sim.dir/sim/statevector.cpp.o"
  "CMakeFiles/qismet_sim.dir/sim/statevector.cpp.o.d"
  "libqismet_sim.a"
  "libqismet_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qismet_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
