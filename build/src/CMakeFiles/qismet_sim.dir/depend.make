# Empty dependencies file for qismet_sim.
# This may be replaced when dependencies are built.
