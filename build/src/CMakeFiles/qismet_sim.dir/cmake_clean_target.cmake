file(REMOVE_RECURSE
  "libqismet_sim.a"
)
