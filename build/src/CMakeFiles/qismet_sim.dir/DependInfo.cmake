
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/density_matrix.cpp" "src/CMakeFiles/qismet_sim.dir/sim/density_matrix.cpp.o" "gcc" "src/CMakeFiles/qismet_sim.dir/sim/density_matrix.cpp.o.d"
  "/root/repo/src/sim/kraus.cpp" "src/CMakeFiles/qismet_sim.dir/sim/kraus.cpp.o" "gcc" "src/CMakeFiles/qismet_sim.dir/sim/kraus.cpp.o.d"
  "/root/repo/src/sim/shot_sampler.cpp" "src/CMakeFiles/qismet_sim.dir/sim/shot_sampler.cpp.o" "gcc" "src/CMakeFiles/qismet_sim.dir/sim/shot_sampler.cpp.o.d"
  "/root/repo/src/sim/statevector.cpp" "src/CMakeFiles/qismet_sim.dir/sim/statevector.cpp.o" "gcc" "src/CMakeFiles/qismet_sim.dir/sim/statevector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qismet_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qismet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
