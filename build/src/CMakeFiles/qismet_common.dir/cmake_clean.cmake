file(REMOVE_RECURSE
  "CMakeFiles/qismet_common.dir/common/csv_writer.cpp.o"
  "CMakeFiles/qismet_common.dir/common/csv_writer.cpp.o.d"
  "CMakeFiles/qismet_common.dir/common/eigen.cpp.o"
  "CMakeFiles/qismet_common.dir/common/eigen.cpp.o.d"
  "CMakeFiles/qismet_common.dir/common/matrix.cpp.o"
  "CMakeFiles/qismet_common.dir/common/matrix.cpp.o.d"
  "CMakeFiles/qismet_common.dir/common/rng.cpp.o"
  "CMakeFiles/qismet_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/qismet_common.dir/common/statistics.cpp.o"
  "CMakeFiles/qismet_common.dir/common/statistics.cpp.o.d"
  "CMakeFiles/qismet_common.dir/common/table_printer.cpp.o"
  "CMakeFiles/qismet_common.dir/common/table_printer.cpp.o.d"
  "libqismet_common.a"
  "libqismet_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qismet_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
