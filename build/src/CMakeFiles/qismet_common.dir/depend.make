# Empty dependencies file for qismet_common.
# This may be replaced when dependencies are built.
