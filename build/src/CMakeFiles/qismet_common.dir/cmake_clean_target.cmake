file(REMOVE_RECURSE
  "libqismet_common.a"
)
