# Empty dependencies file for qismet_pauli.
# This may be replaced when dependencies are built.
