file(REMOVE_RECURSE
  "CMakeFiles/qismet_pauli.dir/pauli/expectation.cpp.o"
  "CMakeFiles/qismet_pauli.dir/pauli/expectation.cpp.o.d"
  "CMakeFiles/qismet_pauli.dir/pauli/grouping.cpp.o"
  "CMakeFiles/qismet_pauli.dir/pauli/grouping.cpp.o.d"
  "CMakeFiles/qismet_pauli.dir/pauli/pauli_string.cpp.o"
  "CMakeFiles/qismet_pauli.dir/pauli/pauli_string.cpp.o.d"
  "CMakeFiles/qismet_pauli.dir/pauli/pauli_sum.cpp.o"
  "CMakeFiles/qismet_pauli.dir/pauli/pauli_sum.cpp.o.d"
  "libqismet_pauli.a"
  "libqismet_pauli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qismet_pauli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
