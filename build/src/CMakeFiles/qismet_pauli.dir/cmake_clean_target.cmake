file(REMOVE_RECURSE
  "libqismet_pauli.a"
)
