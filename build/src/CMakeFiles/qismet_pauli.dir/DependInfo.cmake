
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pauli/expectation.cpp" "src/CMakeFiles/qismet_pauli.dir/pauli/expectation.cpp.o" "gcc" "src/CMakeFiles/qismet_pauli.dir/pauli/expectation.cpp.o.d"
  "/root/repo/src/pauli/grouping.cpp" "src/CMakeFiles/qismet_pauli.dir/pauli/grouping.cpp.o" "gcc" "src/CMakeFiles/qismet_pauli.dir/pauli/grouping.cpp.o.d"
  "/root/repo/src/pauli/pauli_string.cpp" "src/CMakeFiles/qismet_pauli.dir/pauli/pauli_string.cpp.o" "gcc" "src/CMakeFiles/qismet_pauli.dir/pauli/pauli_string.cpp.o.d"
  "/root/repo/src/pauli/pauli_sum.cpp" "src/CMakeFiles/qismet_pauli.dir/pauli/pauli_sum.cpp.o" "gcc" "src/CMakeFiles/qismet_pauli.dir/pauli/pauli_sum.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qismet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qismet_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qismet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
