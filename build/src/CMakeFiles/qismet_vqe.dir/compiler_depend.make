# Empty compiler generated dependencies file for qismet_vqe.
# This may be replaced when dependencies are built.
