file(REMOVE_RECURSE
  "libqismet_vqe.a"
)
