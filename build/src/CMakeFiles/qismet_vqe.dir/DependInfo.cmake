
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vqe/energy_estimator.cpp" "src/CMakeFiles/qismet_vqe.dir/vqe/energy_estimator.cpp.o" "gcc" "src/CMakeFiles/qismet_vqe.dir/vqe/energy_estimator.cpp.o.d"
  "/root/repo/src/vqe/job.cpp" "src/CMakeFiles/qismet_vqe.dir/vqe/job.cpp.o" "gcc" "src/CMakeFiles/qismet_vqe.dir/vqe/job.cpp.o.d"
  "/root/repo/src/vqe/vqe_driver.cpp" "src/CMakeFiles/qismet_vqe.dir/vqe/vqe_driver.cpp.o" "gcc" "src/CMakeFiles/qismet_vqe.dir/vqe/vqe_driver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qismet_ansatz.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qismet_pauli.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qismet_noise.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qismet_mitigation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qismet_hamiltonian.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qismet_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qismet_chem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qismet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qismet_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qismet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
