file(REMOVE_RECURSE
  "CMakeFiles/qismet_vqe.dir/vqe/energy_estimator.cpp.o"
  "CMakeFiles/qismet_vqe.dir/vqe/energy_estimator.cpp.o.d"
  "CMakeFiles/qismet_vqe.dir/vqe/job.cpp.o"
  "CMakeFiles/qismet_vqe.dir/vqe/job.cpp.o.d"
  "CMakeFiles/qismet_vqe.dir/vqe/vqe_driver.cpp.o"
  "CMakeFiles/qismet_vqe.dir/vqe/vqe_driver.cpp.o.d"
  "libqismet_vqe.a"
  "libqismet_vqe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qismet_vqe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
