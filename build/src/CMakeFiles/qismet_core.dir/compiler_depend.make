# Empty compiler generated dependencies file for qismet_core.
# This may be replaced when dependencies are built.
