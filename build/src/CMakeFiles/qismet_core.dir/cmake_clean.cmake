file(REMOVE_RECURSE
  "CMakeFiles/qismet_core.dir/core/controller.cpp.o"
  "CMakeFiles/qismet_core.dir/core/controller.cpp.o.d"
  "CMakeFiles/qismet_core.dir/core/qismet_vqe.cpp.o"
  "CMakeFiles/qismet_core.dir/core/qismet_vqe.cpp.o.d"
  "CMakeFiles/qismet_core.dir/core/threshold_calibrator.cpp.o"
  "CMakeFiles/qismet_core.dir/core/threshold_calibrator.cpp.o.d"
  "CMakeFiles/qismet_core.dir/core/transient_estimator.cpp.o"
  "CMakeFiles/qismet_core.dir/core/transient_estimator.cpp.o.d"
  "libqismet_core.a"
  "libqismet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qismet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
