file(REMOVE_RECURSE
  "libqismet_core.a"
)
