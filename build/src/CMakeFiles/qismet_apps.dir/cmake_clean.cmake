file(REMOVE_RECURSE
  "CMakeFiles/qismet_apps.dir/apps/applications.cpp.o"
  "CMakeFiles/qismet_apps.dir/apps/applications.cpp.o.d"
  "CMakeFiles/qismet_apps.dir/apps/experiment_runner.cpp.o"
  "CMakeFiles/qismet_apps.dir/apps/experiment_runner.cpp.o.d"
  "libqismet_apps.a"
  "libqismet_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qismet_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
