file(REMOVE_RECURSE
  "libqismet_apps.a"
)
