# Empty dependencies file for qismet_apps.
# This may be replaced when dependencies are built.
