file(REMOVE_RECURSE
  "CMakeFiles/qismet_circuit.dir/circuit/circuit.cpp.o"
  "CMakeFiles/qismet_circuit.dir/circuit/circuit.cpp.o.d"
  "CMakeFiles/qismet_circuit.dir/circuit/gate.cpp.o"
  "CMakeFiles/qismet_circuit.dir/circuit/gate.cpp.o.d"
  "CMakeFiles/qismet_circuit.dir/circuit/metrics.cpp.o"
  "CMakeFiles/qismet_circuit.dir/circuit/metrics.cpp.o.d"
  "libqismet_circuit.a"
  "libqismet_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qismet_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
