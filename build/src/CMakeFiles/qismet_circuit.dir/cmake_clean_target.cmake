file(REMOVE_RECURSE
  "libqismet_circuit.a"
)
