# Empty compiler generated dependencies file for qismet_circuit.
# This may be replaced when dependencies are built.
