
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/circuit.cpp" "src/CMakeFiles/qismet_circuit.dir/circuit/circuit.cpp.o" "gcc" "src/CMakeFiles/qismet_circuit.dir/circuit/circuit.cpp.o.d"
  "/root/repo/src/circuit/gate.cpp" "src/CMakeFiles/qismet_circuit.dir/circuit/gate.cpp.o" "gcc" "src/CMakeFiles/qismet_circuit.dir/circuit/gate.cpp.o.d"
  "/root/repo/src/circuit/metrics.cpp" "src/CMakeFiles/qismet_circuit.dir/circuit/metrics.cpp.o" "gcc" "src/CMakeFiles/qismet_circuit.dir/circuit/metrics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qismet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
