file(REMOVE_RECURSE
  "CMakeFiles/qismet_hamiltonian.dir/hamiltonian/exact_solver.cpp.o"
  "CMakeFiles/qismet_hamiltonian.dir/hamiltonian/exact_solver.cpp.o.d"
  "CMakeFiles/qismet_hamiltonian.dir/hamiltonian/h2_molecule.cpp.o"
  "CMakeFiles/qismet_hamiltonian.dir/hamiltonian/h2_molecule.cpp.o.d"
  "CMakeFiles/qismet_hamiltonian.dir/hamiltonian/tfim.cpp.o"
  "CMakeFiles/qismet_hamiltonian.dir/hamiltonian/tfim.cpp.o.d"
  "libqismet_hamiltonian.a"
  "libqismet_hamiltonian.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qismet_hamiltonian.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
