
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hamiltonian/exact_solver.cpp" "src/CMakeFiles/qismet_hamiltonian.dir/hamiltonian/exact_solver.cpp.o" "gcc" "src/CMakeFiles/qismet_hamiltonian.dir/hamiltonian/exact_solver.cpp.o.d"
  "/root/repo/src/hamiltonian/h2_molecule.cpp" "src/CMakeFiles/qismet_hamiltonian.dir/hamiltonian/h2_molecule.cpp.o" "gcc" "src/CMakeFiles/qismet_hamiltonian.dir/hamiltonian/h2_molecule.cpp.o.d"
  "/root/repo/src/hamiltonian/tfim.cpp" "src/CMakeFiles/qismet_hamiltonian.dir/hamiltonian/tfim.cpp.o" "gcc" "src/CMakeFiles/qismet_hamiltonian.dir/hamiltonian/tfim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qismet_pauli.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qismet_chem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qismet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qismet_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qismet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
