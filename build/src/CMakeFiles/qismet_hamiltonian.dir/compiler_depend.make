# Empty compiler generated dependencies file for qismet_hamiltonian.
# This may be replaced when dependencies are built.
