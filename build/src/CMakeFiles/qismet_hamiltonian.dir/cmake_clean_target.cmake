file(REMOVE_RECURSE
  "libqismet_hamiltonian.a"
)
