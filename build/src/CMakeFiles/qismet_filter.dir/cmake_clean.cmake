file(REMOVE_RECURSE
  "CMakeFiles/qismet_filter.dir/filter/cfar.cpp.o"
  "CMakeFiles/qismet_filter.dir/filter/cfar.cpp.o.d"
  "CMakeFiles/qismet_filter.dir/filter/kalman.cpp.o"
  "CMakeFiles/qismet_filter.dir/filter/kalman.cpp.o.d"
  "CMakeFiles/qismet_filter.dir/filter/only_transients.cpp.o"
  "CMakeFiles/qismet_filter.dir/filter/only_transients.cpp.o.d"
  "libqismet_filter.a"
  "libqismet_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qismet_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
