file(REMOVE_RECURSE
  "libqismet_filter.a"
)
