# Empty compiler generated dependencies file for qismet_filter.
# This may be replaced when dependencies are built.
