file(REMOVE_RECURSE
  "libqismet_noise.a"
)
