file(REMOVE_RECURSE
  "CMakeFiles/qismet_noise.dir/noise/machine_model.cpp.o"
  "CMakeFiles/qismet_noise.dir/noise/machine_model.cpp.o.d"
  "CMakeFiles/qismet_noise.dir/noise/noise_model.cpp.o"
  "CMakeFiles/qismet_noise.dir/noise/noise_model.cpp.o.d"
  "CMakeFiles/qismet_noise.dir/noise/ou_process.cpp.o"
  "CMakeFiles/qismet_noise.dir/noise/ou_process.cpp.o.d"
  "CMakeFiles/qismet_noise.dir/noise/tls_burst.cpp.o"
  "CMakeFiles/qismet_noise.dir/noise/tls_burst.cpp.o.d"
  "CMakeFiles/qismet_noise.dir/noise/transient_trace.cpp.o"
  "CMakeFiles/qismet_noise.dir/noise/transient_trace.cpp.o.d"
  "libqismet_noise.a"
  "libqismet_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qismet_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
