
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/noise/machine_model.cpp" "src/CMakeFiles/qismet_noise.dir/noise/machine_model.cpp.o" "gcc" "src/CMakeFiles/qismet_noise.dir/noise/machine_model.cpp.o.d"
  "/root/repo/src/noise/noise_model.cpp" "src/CMakeFiles/qismet_noise.dir/noise/noise_model.cpp.o" "gcc" "src/CMakeFiles/qismet_noise.dir/noise/noise_model.cpp.o.d"
  "/root/repo/src/noise/ou_process.cpp" "src/CMakeFiles/qismet_noise.dir/noise/ou_process.cpp.o" "gcc" "src/CMakeFiles/qismet_noise.dir/noise/ou_process.cpp.o.d"
  "/root/repo/src/noise/tls_burst.cpp" "src/CMakeFiles/qismet_noise.dir/noise/tls_burst.cpp.o" "gcc" "src/CMakeFiles/qismet_noise.dir/noise/tls_burst.cpp.o.d"
  "/root/repo/src/noise/transient_trace.cpp" "src/CMakeFiles/qismet_noise.dir/noise/transient_trace.cpp.o" "gcc" "src/CMakeFiles/qismet_noise.dir/noise/transient_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qismet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qismet_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qismet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
