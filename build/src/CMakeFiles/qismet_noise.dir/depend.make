# Empty dependencies file for qismet_noise.
# This may be replaced when dependencies are built.
