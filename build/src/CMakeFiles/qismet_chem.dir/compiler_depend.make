# Empty compiler generated dependencies file for qismet_chem.
# This may be replaced when dependencies are built.
