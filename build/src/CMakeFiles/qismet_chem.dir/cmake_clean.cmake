file(REMOVE_RECURSE
  "CMakeFiles/qismet_chem.dir/chem/boys.cpp.o"
  "CMakeFiles/qismet_chem.dir/chem/boys.cpp.o.d"
  "CMakeFiles/qismet_chem.dir/chem/jordan_wigner.cpp.o"
  "CMakeFiles/qismet_chem.dir/chem/jordan_wigner.cpp.o.d"
  "CMakeFiles/qismet_chem.dir/chem/sto3g.cpp.o"
  "CMakeFiles/qismet_chem.dir/chem/sto3g.cpp.o.d"
  "libqismet_chem.a"
  "libqismet_chem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qismet_chem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
