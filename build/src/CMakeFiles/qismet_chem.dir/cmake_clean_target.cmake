file(REMOVE_RECURSE
  "libqismet_chem.a"
)
