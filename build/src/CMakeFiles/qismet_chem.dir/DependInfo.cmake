
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chem/boys.cpp" "src/CMakeFiles/qismet_chem.dir/chem/boys.cpp.o" "gcc" "src/CMakeFiles/qismet_chem.dir/chem/boys.cpp.o.d"
  "/root/repo/src/chem/jordan_wigner.cpp" "src/CMakeFiles/qismet_chem.dir/chem/jordan_wigner.cpp.o" "gcc" "src/CMakeFiles/qismet_chem.dir/chem/jordan_wigner.cpp.o.d"
  "/root/repo/src/chem/sto3g.cpp" "src/CMakeFiles/qismet_chem.dir/chem/sto3g.cpp.o" "gcc" "src/CMakeFiles/qismet_chem.dir/chem/sto3g.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qismet_pauli.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qismet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qismet_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qismet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
