# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_circuit[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_pauli[1]_include.cmake")
include("/root/repo/build/tests/test_hamiltonian[1]_include.cmake")
include("/root/repo/build/tests/test_chem[1]_include.cmake")
include("/root/repo/build/tests/test_ansatz[1]_include.cmake")
include("/root/repo/build/tests/test_noise[1]_include.cmake")
include("/root/repo/build/tests/test_mitigation[1]_include.cmake")
include("/root/repo/build/tests/test_vqe[1]_include.cmake")
include("/root/repo/build/tests/test_optim[1]_include.cmake")
include("/root/repo/build/tests/test_filter[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_transpile[1]_include.cmake")
include("/root/repo/build/tests/test_qaoa[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
