file(REMOVE_RECURSE
  "CMakeFiles/test_qaoa.dir/qaoa/test_maxcut.cpp.o"
  "CMakeFiles/test_qaoa.dir/qaoa/test_maxcut.cpp.o.d"
  "CMakeFiles/test_qaoa.dir/qaoa/test_qaoa_ansatz.cpp.o"
  "CMakeFiles/test_qaoa.dir/qaoa/test_qaoa_ansatz.cpp.o.d"
  "test_qaoa"
  "test_qaoa.pdb"
  "test_qaoa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qaoa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
