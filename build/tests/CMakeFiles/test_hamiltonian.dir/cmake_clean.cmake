file(REMOVE_RECURSE
  "CMakeFiles/test_hamiltonian.dir/hamiltonian/test_exact_solver.cpp.o"
  "CMakeFiles/test_hamiltonian.dir/hamiltonian/test_exact_solver.cpp.o.d"
  "CMakeFiles/test_hamiltonian.dir/hamiltonian/test_h2.cpp.o"
  "CMakeFiles/test_hamiltonian.dir/hamiltonian/test_h2.cpp.o.d"
  "CMakeFiles/test_hamiltonian.dir/hamiltonian/test_tfim.cpp.o"
  "CMakeFiles/test_hamiltonian.dir/hamiltonian/test_tfim.cpp.o.d"
  "test_hamiltonian"
  "test_hamiltonian.pdb"
  "test_hamiltonian[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hamiltonian.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
