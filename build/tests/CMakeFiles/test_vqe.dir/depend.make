# Empty dependencies file for test_vqe.
# This may be replaced when dependencies are built.
