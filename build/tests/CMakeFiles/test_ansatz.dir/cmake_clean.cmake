file(REMOVE_RECURSE
  "CMakeFiles/test_ansatz.dir/ansatz/test_ansatz.cpp.o"
  "CMakeFiles/test_ansatz.dir/ansatz/test_ansatz.cpp.o.d"
  "test_ansatz"
  "test_ansatz.pdb"
  "test_ansatz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ansatz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
