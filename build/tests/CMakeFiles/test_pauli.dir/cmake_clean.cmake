file(REMOVE_RECURSE
  "CMakeFiles/test_pauli.dir/pauli/test_expectation.cpp.o"
  "CMakeFiles/test_pauli.dir/pauli/test_expectation.cpp.o.d"
  "CMakeFiles/test_pauli.dir/pauli/test_grouping.cpp.o"
  "CMakeFiles/test_pauli.dir/pauli/test_grouping.cpp.o.d"
  "CMakeFiles/test_pauli.dir/pauli/test_pauli_string.cpp.o"
  "CMakeFiles/test_pauli.dir/pauli/test_pauli_string.cpp.o.d"
  "CMakeFiles/test_pauli.dir/pauli/test_pauli_sum.cpp.o"
  "CMakeFiles/test_pauli.dir/pauli/test_pauli_sum.cpp.o.d"
  "test_pauli"
  "test_pauli.pdb"
  "test_pauli[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pauli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
