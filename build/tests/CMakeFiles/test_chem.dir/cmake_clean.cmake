file(REMOVE_RECURSE
  "CMakeFiles/test_chem.dir/chem/test_boys.cpp.o"
  "CMakeFiles/test_chem.dir/chem/test_boys.cpp.o.d"
  "CMakeFiles/test_chem.dir/chem/test_jordan_wigner.cpp.o"
  "CMakeFiles/test_chem.dir/chem/test_jordan_wigner.cpp.o.d"
  "CMakeFiles/test_chem.dir/chem/test_sto3g.cpp.o"
  "CMakeFiles/test_chem.dir/chem/test_sto3g.cpp.o.d"
  "test_chem"
  "test_chem.pdb"
  "test_chem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
