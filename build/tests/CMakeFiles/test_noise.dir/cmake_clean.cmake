file(REMOVE_RECURSE
  "CMakeFiles/test_noise.dir/noise/test_machine_model.cpp.o"
  "CMakeFiles/test_noise.dir/noise/test_machine_model.cpp.o.d"
  "CMakeFiles/test_noise.dir/noise/test_noise_model.cpp.o"
  "CMakeFiles/test_noise.dir/noise/test_noise_model.cpp.o.d"
  "CMakeFiles/test_noise.dir/noise/test_ou_process.cpp.o"
  "CMakeFiles/test_noise.dir/noise/test_ou_process.cpp.o.d"
  "CMakeFiles/test_noise.dir/noise/test_tls_burst.cpp.o"
  "CMakeFiles/test_noise.dir/noise/test_tls_burst.cpp.o.d"
  "CMakeFiles/test_noise.dir/noise/test_transient_trace.cpp.o"
  "CMakeFiles/test_noise.dir/noise/test_transient_trace.cpp.o.d"
  "test_noise"
  "test_noise.pdb"
  "test_noise[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
