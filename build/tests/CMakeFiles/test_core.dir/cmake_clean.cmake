file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_controller.cpp.o"
  "CMakeFiles/test_core.dir/core/test_controller.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_dynamic_threshold.cpp.o"
  "CMakeFiles/test_core.dir/core/test_dynamic_threshold.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_qismet_vqe.cpp.o"
  "CMakeFiles/test_core.dir/core/test_qismet_vqe.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_threshold_calibrator.cpp.o"
  "CMakeFiles/test_core.dir/core/test_threshold_calibrator.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_transient_estimator.cpp.o"
  "CMakeFiles/test_core.dir/core/test_transient_estimator.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
