#!/usr/bin/env bash
# Compare a fresh benchmark JSON report (qbench / google-benchmark
# format) against the tracked baseline and fail on wall-clock
# regressions.
#
# Usage: tools/bench-compare.sh [--threshold R] [--update] BASELINE CURRENT
#
#   BASELINE      committed reference report (BENCH_kernels.json)
#   CURRENT       report from the run under test
#   --threshold R fail when current/baseline > R for any shared
#                 benchmark (default 1.15)
#   --update      instead of comparing, overwrite BASELINE with CURRENT
#                 (how the baseline is deliberately refreshed after an
#                 intentional performance change)
#
# Benchmarks present in only one report are listed but never fail the
# gate: new benchmarks have no baseline yet and retired ones no current
# number, and neither is a regression.
#
# A BASELINE whose context.library_build_type is "debug" fails hard:
# committed baselines must be recorded with a Release-built harness
# (the vendored bench/qbench). A debug CURRENT report only warns.

set -euo pipefail

threshold=1.15
update=0
positional=()
while [[ $# -gt 0 ]]; do
    case "$1" in
      --threshold) threshold=$2; shift 2 ;;
      --update) update=1; shift ;;
      -h|--help) grep '^#' "$0" | cut -c3-; exit 0 ;;
      *) positional+=("$1"); shift ;;
    esac
done
if [[ ${#positional[@]} -ne 2 ]]; then
    echo "usage: tools/bench-compare.sh [--threshold R] [--update] BASELINE CURRENT" >&2
    exit 2
fi
baseline=${positional[0]}
current=${positional[1]}

if [[ $update -eq 1 ]]; then
    cp "$current" "$baseline"
    echo "bench-compare: baseline $baseline refreshed from $current"
    exit 0
fi

python3 - "$baseline" "$current" "$threshold" <<'PY'
import json
import sys

baseline_path, current_path, threshold = sys.argv[1], sys.argv[2], float(sys.argv[3])


UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load(path, *, is_baseline):
    with open(path) as f:
        report = json.load(f)
    # The harness stamps the *benchmark library's* build type into the
    # context. A debug-instrumented measurement loop skews absolute
    # numbers, so a COMMITTED baseline recorded that way is a hard
    # error: every future comparison against it would be advisory at
    # best. Re-record it with the Release-built vendored harness
    # (bench/qbench) and refresh via --update. A debug CURRENT report
    # only warns — the local run is the transient side of the compare.
    build_type = report.get("context", {}).get("library_build_type", "")
    if build_type == "debug":
        if is_baseline:
            print(
                f"bench-compare: FATAL: baseline {path} was recorded "
                "with a debug benchmark library "
                "(context.library_build_type=debug); committed baselines "
                "must come from a Release harness — rebuild and refresh "
                "with tools/bench-compare.sh --update",
                file=sys.stderr,
            )
            sys.exit(1)
        print(
            f"bench-compare: WARNING: {path} was recorded with a debug "
            "benchmark library (context.library_build_type=debug); "
            "timings include instrumentation overhead",
            file=sys.stderr,
        )
    out = {}
    for b in report.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev) if repetitions were used.
        if b.get("run_type", "iteration") != "iteration":
            continue
        # With --benchmark_repetitions each repetition reports under the
        # same name; keep the fastest. The minimum is the noise-robust
        # statistic — scheduling and thermal interference only ever add
        # time, so min-of-N approximates the machine's true capability.
        entry = (b["real_time"], b.get("time_unit", "ns"))
        prior = out.get(b["name"])
        if prior is None or entry[0] * UNIT_NS.get(entry[1], 1.0) < prior[
            0
        ] * UNIT_NS.get(prior[1], 1.0):
            out[b["name"]] = entry
    return out


base = load(baseline_path, is_baseline=True)
cur = load(current_path, is_baseline=False)


def to_ns(value, unit):
    return value * UNIT_NS.get(unit, 1.0)


shared = sorted(set(base) & set(cur))
only_base = sorted(set(base) - set(cur))
only_cur = sorted(set(cur) - set(base))

if not shared:
    print("bench-compare: no overlapping benchmarks between reports", file=sys.stderr)
    sys.exit(1)

failures = []
print(f"{'benchmark':46s} {'baseline':>12s} {'current':>12s} {'ratio':>7s}")
for name in shared:
    b_ns = to_ns(*base[name])
    c_ns = to_ns(*cur[name])
    ratio = c_ns / b_ns if b_ns > 0 else float("inf")
    flag = ""
    if ratio > threshold:
        failures.append((name, ratio))
        flag = "  << REGRESSION"
    print(f"{name:46s} {b_ns:10.0f}ns {c_ns:10.0f}ns {ratio:6.2f}x{flag}")

for name in only_cur:
    print(f"{name:46s} {'(new)':>12s} {to_ns(*cur[name]):10.0f}ns      -")
for name in only_base:
    print(f"{name:46s} {to_ns(*base[name]):10.0f}ns {'(gone)':>12s}      -")

if failures:
    print(
        f"\nbench-compare: {len(failures)} benchmark(s) regressed beyond "
        f"{threshold:.2f}x:",
        file=sys.stderr,
    )
    for name, ratio in failures:
        print(f"  {name}: {ratio:.2f}x", file=sys.stderr)
    sys.exit(1)

print(f"\nbench-compare: OK ({len(shared)} compared, threshold {threshold:.2f}x)")
PY
