#!/usr/bin/env bash
# Summarize line coverage for a QISMET_COVERAGE=ON build tree.
#
# Usage: coverage-report.sh <source-dir> <binary-dir>
#
# Picks the best available backend — gcovr (rich HTML/XML report),
# llvm-cov's gcov mode, or plain gcov — and degrades to a clear skip
# message when none is installed, so the coverage preset works on any
# machine without extra dependencies.

set -euo pipefail

src_dir=${1:?usage: coverage-report.sh <source-dir> <binary-dir>}
bin_dir=${2:?usage: coverage-report.sh <source-dir> <binary-dir>}

cd "$bin_dir"

if ! find . -name '*.gcda' -print -quit | grep -q .; then
    echo "coverage: no .gcda files under $bin_dir — run the tests first" \
         "(ctest --preset tier1-coverage)" >&2
    exit 1
fi

if command -v gcovr >/dev/null 2>&1; then
    echo "coverage: using gcovr"
    gcovr --root "$src_dir" --filter "$src_dir/src" \
          --object-directory "$bin_dir" \
          --xml coverage.xml --html-details coverage.html \
          --print-summary
    echo "coverage: wrote $bin_dir/coverage.xml and coverage.html"
    exit 0
fi

# Prefer the toolchain's own gcov: llvm-cov's gcov mode cannot read
# gcno files emitted by newer gcc ("Invalid .gcno File!").
gcov_tool=""
if command -v gcov >/dev/null 2>&1; then
    gcov_tool="gcov"
elif command -v llvm-cov >/dev/null 2>&1; then
    gcov_tool="llvm-cov gcov"
else
    echo "coverage: neither gcovr, llvm-cov nor gcov found — skipping" \
         "report generation (raw .gcda files remain in $bin_dir)"
    exit 0
fi

# Plain-gcov fallback: per-file "Lines executed" summaries for src/,
# aggregated into one totals line at the end.
echo "coverage: using $gcov_tool (install gcovr for an HTML report)"
mkdir -p coverage
summary=$(find . -name '*.gcda' -path '*src*' -print0 |
    xargs -0 $gcov_tool --relative-only --source-prefix "$src_dir" \
        2>/dev/null | tr -d "'" |
    awk '/^File/ { file = $2; expect = 1 }
         /^Lines executed:/ {
             # Only the per-file line right after "File ..."; each gcov
             # invocation also prints an overall trailer we must skip.
             if (!expect) next
             expect = 0
             split($0, m, /[:% ]+/)
             covered += m[3] / 100.0 * m[5]; total += m[5]
             printf "  %6.2f%% of %5d  %s\n", m[3], m[5], file
         }
         END {
             if (total > 0)
                 printf "TOTAL  %.2f%% of %d lines\n",
                        100.0 * covered / total, total
         }')
echo "$summary" | sort -u | grep -v '^TOTAL' || true
echo "$summary" | grep '^TOTAL' || true
mv -f ./*.gcov coverage/ 2>/dev/null || true
echo "coverage: per-file .gcov dumps in $bin_dir/coverage/"
