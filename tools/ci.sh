#!/usr/bin/env bash
# Single-command CI driver: configure -> build -> tier1 tests -> golden
# traces -> crash-resume recovery (in-process suite plus a scripted
# kill-mid-run + resume + trajectory-diff smoke) -> serve-layer soak
# (multi-tenant multiplex + scheduler kill/resume) -> fleet chaos tier
# (replay equivalence + kill/resume under injected fleet faults +
# CLI digest identity across worker counts) -> kernel-bench
# baseline gate -> lint (baseline diff + SARIF artifact) -> TSan sweep
# of the concurrency-heavy suites. This is the gate every change must
# pass; it
# mirrors what the presets do individually, in the order that fails
# fastest.
#
# Usage: tools/ci.sh [--with-coverage]
#
#   --with-coverage   additionally build the instrumented tree, rerun
#                     tier1 on it and print a line-coverage summary
#                     (uses gcovr/llvm-cov/gcov, whichever exists).
#
# Exits non-zero on the first failing stage.

set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
cd "$repo_root"

with_coverage=0
for arg in "$@"; do
    case "$arg" in
      --with-coverage) with_coverage=1 ;;
      *) echo "usage: tools/ci.sh [--with-coverage]" >&2; exit 2 ;;
    esac
done

jobs=$(nproc 2>/dev/null || echo 4)

stage() { echo; echo "=== ci: $1 ==="; }

stage "configure (preset: default)"
cmake --preset default

stage "build (-j$jobs)"
cmake --build --preset default -j "$jobs"

stage "tier1 test gate"
ctest --preset tier1

stage "kernel determinism cross-checks (scalar kernels; 4 worker threads)"
# The SIMD/parallel kernel battery and the batched-expectation
# equivalence suites re-run with the AVX2 path disabled and again with
# 4 intra-state workers — both must be bit-identical to the default
# run (the simd-off / tier1-threads presets run the whole tier; CI
# keeps this bounded by re-running just the kernel/expectation suites
# and the golden replays).
QISMET_SIMD=off ctest --test-dir build \
    -R 'Kernel|Threshold|BatchedExpectation|ExpectationPlan' \
    --output-on-failure -j 8
QISMET_THREADS=4 ctest --test-dir build \
    -R 'Kernel|Threshold|BatchedExpectation|ExpectationPlan' \
    --output-on-failure -j 8
# And once more with the batched engine's escape hatch thrown: every
# equivalence assertion must hold when the legacy term-by-term path is
# the one answering, proving the hatch is a real fallback and not a
# stale code path.
QISMET_NO_BATCHED_EXPECT=1 ctest --test-dir build \
    -R 'BatchedExpectation|ExpectationPlan' \
    --output-on-failure -j 8

stage "golden-trace regression suite"
ctest --preset golden

stage "crash-resume recovery suite"
ctest --preset recovery

stage "kill-mid-run + resume smoke (real process death)"
ckpt_dir=$(mktemp -d)
trap 'rm -rf "$ckpt_dir"' EXIT
smoke=./build/examples/checkpoint_resume
smoke_args=(--app 1 --jobs 120 --faults --seed 23)
want=$("$smoke" "${smoke_args[@]}" --threads 4 | head -1)
# The kill leg must die with the crash exit code, not finish.
set +e
"$smoke" "${smoke_args[@]}" --threads 4 \
    --checkpoint-dir "$ckpt_dir" --crash-after-iters 6
kill_status=$?
set -e
if [[ $kill_status -ne 43 ]]; then
    echo "ci: kill leg exited $kill_status, expected 43" >&2
    exit 1
fi
# Resume on a different thread count; the trajectory digest must match
# the uninterrupted run bit for bit.
got=$("$smoke" "${smoke_args[@]}" --threads 2 \
    --checkpoint-dir "$ckpt_dir" --resume | head -1)
if [[ "$got" != "$want" ]]; then
    echo "ci: resumed digest '$got' != straight-run digest '$want'" >&2
    exit 1
fi
echo "resume digest matches straight run: $got"

stage "serve-layer soak (multiplexed runs + scheduler kill/resume)"
# The `soak` label holds the 1000-run multi-tenant soak (every digest
# equal to its solo execution at 1/2/4/8 workers) and the whole-process
# kill(exit 43)+resume script over the serve_soak CLI. The bounded
# tier1 stand-in (ServeSoak.SoakSmoke) already ran in the tier1 gate;
# this stage runs the full thing — about a minute.
ctest --preset soak

stage "fleet chaos tier (replay equivalence + kill/resume under faults)"
# The `chaos` label holds the fast fleet-resilience suite, the replay
# equivalence battery (same per-job outcome table at every worker
# count; golden workloads bit-identical through a hostile fleet) and
# the whole-process kill(exit 43)+resume script over the serve_chaos
# CLI, which dies inside a backend-outage window and must reproduce
# the uninterrupted table on resume.
ctest --preset chaos

stage "serve_chaos digest identity across worker counts"
# Belt and braces on top of the gtest replay suite: the CLI itself,
# driven exactly as an operator would, must print byte-identical
# per-job tables at 1, 2 and 4 workers under the same chaos schedule.
chaos_dir=$(mktemp -d)
trap 'rm -rf "$ckpt_dir" "$chaos_dir"' EXIT
chaos_cli=./build/tools/serve_chaos
chaos_args=(--runs 24 --jobs 8 --seed 2026 --chaos-seed 99 --queue-bound 12)
"$chaos_cli" "${chaos_args[@]}" --workers 1 --digest-out "$chaos_dir/w1.csv"
"$chaos_cli" "${chaos_args[@]}" --workers 2 --digest-out "$chaos_dir/w2.csv"
"$chaos_cli" "${chaos_args[@]}" --workers 4 --digest-out "$chaos_dir/w4.csv"
cmp "$chaos_dir/w1.csv" "$chaos_dir/w2.csv"
cmp "$chaos_dir/w1.csv" "$chaos_dir/w4.csv"
echo "serve_chaos outcome tables identical at 1/2/4 workers"

stage "kernel benchmarks vs tracked baseline (BENCH_kernels.json)"
# Short min_time keeps this a smoke-level gate: it catches order-of-
# magnitude regressions (a dropped fusion path, an allocation in the
# Kraus loop), not single-percent drift. Three repetitions feed the
# min-of-N comparison in bench-compare.sh, which rides out scheduling
# and thermal noise on shared CI machines. The committed baseline holds
# the pre-compiled-engine numbers; refresh deliberately with
# tools/bench-compare.sh --update after an intentional perf change.
./build/bench/bench_perf_kernels \
    --benchmark_min_time=0.1 \
    --benchmark_repetitions=3 \
    --benchmark_out_format=json \
    --benchmark_out=build/BENCH_kernels.json
tools/bench-compare.sh BENCH_kernels.json build/BENCH_kernels.json

stage "SIMD kernel speedup gate (>=2x amps/sec at 10+ qubits)"
# The dense-kernel benches carry amps_per_sec counters and run each
# width with simd:0 and simd:1. On AVX2 hosts the vector path must
# deliver at least 2x the scalar Release throughput at 10+ qubits for
# the complex-matrix kernels. The real-matrix kernel only gets a
# no-slower floor: its scalar loop is a plain real butterfly that the
# compiler auto-vectorizes, so the explicit-AVX2 margin is thin and
# memory-bound at large sizes (~1.1-1.6x). On hosts without AVX2 the
# simd:1 rows report the scalar backend and the gate skips itself.
python3 - build/BENCH_kernels.json <<'PY'
import json
import sys

report = json.load(open(sys.argv[1]))
rates = {}
labels = {}
for b in report.get("benchmarks", []):
    if b.get("run_type", "iteration") != "iteration":
        continue
    rate = b.get("amps_per_sec")
    if rate is None:
        continue
    name = b["run_name"]
    # min-of-N on time means max-of-N on throughput.
    rates[name] = max(rate, rates.get(name, 0.0))
    labels[name] = b.get("label", "")

if any(l == "scalar" for n, l in labels.items() if n.endswith("simd:1")):
    print("simd-speedup: host has no AVX2 (simd:1 rows ran scalar); skipping")
    sys.exit(0)

failures = []
gates = {
    "BM_KernelDense1": 2.0,
    "BM_KernelDense2": 2.0,
    "BM_KernelDense1Real": 0.9,  # no-slower floor, see stage comment
}
for kernel, floor in gates.items():
    for q in (10, 12, 14):
        on = rates.get(f"{kernel}/qubits:{q}/simd:1")
        off = rates.get(f"{kernel}/qubits:{q}/simd:0")
        if not on or not off:
            failures.append(f"{kernel}/qubits:{q}: rows missing")
            continue
        ratio = on / off
        mark = "" if ratio >= floor else f"  << BELOW {floor}x"
        print(f"{kernel}/qubits:{q}: {ratio:.2f}x scalar (floor {floor}x){mark}")
        if ratio < floor:
            failures.append(f"{kernel}/qubits:{q}: {ratio:.2f}x < {floor}x")
if failures:
    print("simd-speedup: FAILED:", *failures, sep="\n  ", file=sys.stderr)
    sys.exit(1)
print("simd-speedup: OK")
PY

stage "expectation benchmarks vs tracked baseline (BENCH_expectation.json)"
# Same smoke-level contract as the kernel stage: min-of-3 against the
# committed baseline catches order-of-magnitude regressions in the
# batched single-sweep engine (DESIGN.md §16).
./build/bench/bench_perf_expectation \
    --benchmark_min_time=0.1 \
    --benchmark_repetitions=3 \
    --benchmark_out_format=json \
    --benchmark_out=build/BENCH_expectation.json
tools/bench-compare.sh BENCH_expectation.json build/BENCH_expectation.json

stage "batched-expectation speedup gate (>=2x amp-terms/sec at 10+ qubits)"
# BM_SumExpectation runs the public expectation() entry point with the
# batched engine on and off at each width; on AVX2 hosts the batched
# sweep (grouped xmasks + vector kernel, including its per-call plan
# compile) must deliver at least 2x the legacy term-by-term throughput
# at 10+ qubits and 24 terms. On hosts without AVX2 the simd:1 rows
# report the scalar backend and the gate skips itself (grouping alone
# sustains ~1.6x at the larger widths; the 2x contract is for the
# grouped sweep plus the vector kernel).
python3 - build/BENCH_expectation.json <<'PY'
import json
import sys

report = json.load(open(sys.argv[1]))
rates = {}
labels = {}
for b in report.get("benchmarks", []):
    if b.get("run_type", "iteration") != "iteration":
        continue
    rate = b.get("amp_terms_per_sec")
    if rate is None:
        continue
    name = b["run_name"]
    # min-of-N on time means max-of-N on throughput.
    rates[name] = max(rate, rates.get(name, 0.0))
    labels[name] = b.get("label", "")

if any(l == "scalar" for n, l in labels.items() if n.endswith("simd:1")):
    print("batched-speedup: host has no AVX2 (simd:1 rows ran scalar); "
          "skipping")
    sys.exit(0)

failures = []
for q in (10, 12, 14):
    on = rates.get(f"BM_SumExpectation/qubits:{q}/batched:1/simd:1")
    off = rates.get(f"BM_SumExpectation/qubits:{q}/batched:0/simd:1")
    if not on or not off:
        failures.append(f"qubits:{q}: rows missing")
        continue
    ratio = on / off
    mark = "" if ratio >= 2.0 else "  << BELOW 2.0x"
    print(f"BM_SumExpectation/qubits:{q}: {ratio:.2f}x legacy (floor 2.0x){mark}")
    if ratio < 2.0:
        failures.append(f"qubits:{q}: {ratio:.2f}x < 2.0x")
if failures:
    print("batched-speedup: FAILED:", *failures, sep="\n  ", file=sys.stderr)
    sys.exit(1)
print("batched-speedup: OK")
PY

stage "lint (baseline diff + SARIF artifact + clang-tidy + format)"
# qismet-lint runs in baseline-diff mode: only findings beyond the
# committed lint-baseline.json ratchet fail the stage. The sweep also
# writes build/qismet-lint.sarif for CI upload. The ctest pass adds the
# rule-engine/semantic-index suites and the baseline gate (a seeded
# fixture tree that must fail against the clean baseline).
cmake --preset lint >/dev/null
cmake --build --preset lint
ctest --preset lint
echo "ci: SARIF artifact at build/qismet-lint.sarif"

stage "tsan subsystem sweep (serve + persist + fault + simkern + expect + chaos)"
# The concurrency-heavy suites rerun under ThreadSanitizer; any data
# race is a hard failure. Only the subsystem binaries are built in the
# tsan tree to keep the stage bounded (~3 min). The chaos suites ride
# along (fault injection exercises the scheduler's migration paths);
# the kill/resume shell harness is excluded by name — process-death
# determinism is the chaos tier's job, not the race hunter's.
cmake --preset tsan >/dev/null
cmake --build build-tsan --target test_serve test_persist test_fault \
    test_sim_kernels test_pauli_expect test_serve_chaos \
    test_serve_chaos_replay -j "$jobs"
ctest --preset tsan-subsys

stage "kernel + expectation suites under ASan+UBSan and standalone UBSan"
# The SIMD kernels and the batched-expectation sweep walk amplitude
# arrays with hand-rolled bit arithmetic and intrinsic loads;
# ASan/UBSan rerun both batteries against exactly that surface.
cmake --preset asan >/dev/null
cmake --build build-asan --target test_sim_kernels test_pauli_expect \
    -j "$jobs"
ctest --preset simkern-asan
ctest --preset expect-asan
cmake --preset ubsan >/dev/null
cmake --build build-ubsan --target test_sim_kernels test_pauli_expect \
    -j "$jobs"
ctest --preset simkern-ubsan
ctest --preset expect-ubsan

if [[ $with_coverage -eq 1 ]]; then
    stage "coverage build"
    cmake --preset coverage
    cmake --build --preset coverage -j "$jobs"
    stage "coverage tier1 run"
    ctest --preset tier1-coverage
    stage "coverage report"
    cmake --build --preset coverage-report
fi

stage "OK — all gates passed"
