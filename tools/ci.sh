#!/usr/bin/env bash
# Single-command CI driver: configure -> build -> tier1 tests -> golden
# traces -> lint. This is the gate every change must pass; it mirrors
# what the presets do individually, in the order that fails fastest.
#
# Usage: tools/ci.sh [--with-coverage]
#
#   --with-coverage   additionally build the instrumented tree, rerun
#                     tier1 on it and print a line-coverage summary
#                     (uses gcovr/llvm-cov/gcov, whichever exists).
#
# Exits non-zero on the first failing stage.

set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
cd "$repo_root"

with_coverage=0
for arg in "$@"; do
    case "$arg" in
      --with-coverage) with_coverage=1 ;;
      *) echo "usage: tools/ci.sh [--with-coverage]" >&2; exit 2 ;;
    esac
done

jobs=$(nproc 2>/dev/null || echo 4)

stage() { echo; echo "=== ci: $1 ==="; }

stage "configure (preset: default)"
cmake --preset default

stage "build (-j$jobs)"
cmake --build --preset default -j "$jobs"

stage "tier1 test gate"
ctest --preset tier1

stage "golden-trace regression suite"
ctest --preset golden

stage "lint (qismet-lint + clang-tidy profile + format check)"
cmake --preset lint >/dev/null
cmake --build --preset lint

if [[ $with_coverage -eq 1 ]]; then
    stage "coverage build"
    cmake --preset coverage
    cmake --build --preset coverage -j "$jobs"
    stage "coverage tier1 run"
    ctest --preset tier1-coverage
    stage "coverage report"
    cmake --build --preset coverage-report
fi

stage "OK — all gates passed"
