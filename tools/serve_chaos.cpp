/**
 * @file
 * Deterministic chaos harness for the serve layer: generates a fleet
 * fault schedule (backend outage windows, slowdown multipliers,
 * calibration-drift storms, tenant burst floods) from dedicated RNG
 * stream domains, pushes a deterministic multi-tenant workload through
 * a ServeScheduler running under that schedule, and prints a per-job
 * result table plus fleet resilience telemetry.
 *
 *   # same schedule at 1 and 4 workers: digest files diff clean
 *   ./build/tools/serve_chaos --runs 60 --workers 1 --digest-out A
 *   ./build/tools/serve_chaos --runs 60 --workers 4 --digest-out B
 *
 *   # kill the process (exit 43) mid-schedule and resume: the rebuilt
 *   # fleet (health, breaker state, clock) finishes bit-identically
 *   ./build/tools/serve_chaos --state-dir /tmp/chaos --kill-after 10
 *   ./build/tools/serve_chaos --state-dir /tmp/chaos --resume \
 *       --digest-out C
 *
 * Everything is a pure function of (--seed, --chaos-seed, fleet
 * shape): the workload derives through StreamDomain::kChaosWorkload,
 * the schedule through the kChaos* domains, and admission-control
 * sheds are made worker-count-invariant by submitting the whole
 * workload with dispatch paused. The per-job table (id, state,
 * digest) is therefore identical at any --workers value and across
 * kill/resume — which is exactly what the CI chaos stage diffs.
 */

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <map>
#include <string>
#include <vector>

#include "common/atomic_file.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "fault/chaos.hpp"
#include "fault/crash_point.hpp"
#include "serve/scheduler.hpp"
#include "vqe/run_digest.hpp"

using namespace qismet;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: serve_chaos [options]\n"
        "  --runs N         base workload size (default 60)\n"
        "  --workers N      scheduler worker threads (default 2)\n"
        "  --backends N     backend fleet size (default 3)\n"
        "  --tenants N      tenant count (default 4)\n"
        "  --seed S         workload seed (default 2026)\n"
        "  --chaos-seed S   chaos-schedule seed (default 99)\n"
        "  --horizon N      chaos horizon in fleet ticks (default 96)\n"
        "  --jobs N         per-run job budget (default 10)\n"
        "  --queue-bound N  admission bound, 0 = unbounded (default 0)\n"
        "  --deadline-frac F fraction of runs with a deadline budget\n"
        "                   (default 0.25)\n"
        "  --state-dir D    durable scheduler state in D\n"
        "  --resume         recover D's manifest instead of submitting\n"
        "  --kill-after N   std::_Exit(43) at the Nth completed job\n"
        "                   boundary (simulated operator SIGKILL)\n"
        "  --verify-solo    re-run every spec solo and compare digests\n"
        "  --digest-out F   write 'jobId,state,digest' lines to F\n"
        "  --threads N      global ParallelExecutor threads (default 1)\n");
    return 2;
}

/** Deterministic workload: spec i is a pure function of (seed, i). */
ServeJobSpec
makeSpec(std::uint64_t master_seed, std::uint64_t index,
         std::uint64_t tenants, std::size_t jobs_per_run,
         double deadline_frac)
{
    Rng rng(deriveStreamSeed(master_seed, StreamDomain::kChaosWorkload,
                             index));
    ServeJobSpec spec;
    spec.tenantId = rng.uniformInt(tenants);
    spec.priority = static_cast<int>(rng.uniformInt(3));
    const std::uint64_t kindDraw = rng.uniformInt(10);
    if (kindDraw < 7) {
        spec.kind = WorkloadKind::TfimApp;
        spec.appIndex = static_cast<int>(1 + rng.uniformInt(6));
    }
    else if (kindDraw < 9) {
        spec.kind = WorkloadKind::QaoaRing;
    }
    else {
        spec.kind = WorkloadKind::H2Vqe;
    }
    spec.seed = rng.engine()();
    spec.totalJobs = jobs_per_run + rng.uniformInt(jobs_per_run);
    spec.withFaults = rng.bernoulli(0.3);
    // A slice of the fleet runs under a deadline budget tight enough
    // to truncate (~60% of the nominal job-slot time), exercising the
    // deterministic deadline path under chaos.
    if (rng.uniform() < deadline_frac)
        spec.deadlineSimSeconds =
            0.6 * static_cast<double>(spec.totalJobs);
    return spec;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t runs = 60;
    std::size_t workers = 2;
    std::size_t backends = 3;
    std::uint64_t tenants = 4;
    std::uint64_t seed = 2026;
    std::uint64_t chaosSeed = 99;
    std::uint64_t horizon = 96;
    std::size_t jobsPerRun = 10;
    std::size_t queueBound = 0;
    double deadlineFrac = 0.25;
    std::string stateDir;
    bool resume = false;
    int killAfter = 0;
    bool verifySolo = false;
    std::string digestOut;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool hasValue = i + 1 < argc;
        if (arg == "--runs" && hasValue)
            runs = static_cast<std::uint64_t>(std::atoll(argv[++i]));
        else if (arg == "--workers" && hasValue)
            workers = static_cast<std::size_t>(std::atol(argv[++i]));
        else if (arg == "--backends" && hasValue)
            backends = static_cast<std::size_t>(std::atol(argv[++i]));
        else if (arg == "--tenants" && hasValue)
            tenants = static_cast<std::uint64_t>(std::atoll(argv[++i]));
        else if (arg == "--seed" && hasValue)
            seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
        else if (arg == "--chaos-seed" && hasValue)
            chaosSeed =
                static_cast<std::uint64_t>(std::atoll(argv[++i]));
        else if (arg == "--horizon" && hasValue)
            horizon = static_cast<std::uint64_t>(std::atoll(argv[++i]));
        else if (arg == "--jobs" && hasValue)
            jobsPerRun = static_cast<std::size_t>(std::atol(argv[++i]));
        else if (arg == "--queue-bound" && hasValue)
            queueBound = static_cast<std::size_t>(std::atol(argv[++i]));
        else if (arg == "--deadline-frac" && hasValue)
            deadlineFrac = std::atof(argv[++i]);
        else if (arg == "--state-dir" && hasValue)
            stateDir = argv[++i];
        else if (arg == "--resume")
            resume = true;
        else if (arg == "--kill-after" && hasValue)
            killAfter = std::atoi(argv[++i]);
        else if (arg == "--verify-solo")
            verifySolo = true;
        else if (arg == "--digest-out" && hasValue)
            digestOut = argv[++i];
        else if (arg == "--threads" && hasValue)
            ParallelExecutor::setGlobalThreads(
                static_cast<std::size_t>(std::atol(argv[++i])));
        else
            return usage();
    }
    if (runs == 0 || tenants == 0 || backends == 0)
        return usage();
    if (resume && stateDir.empty()) {
        std::fprintf(stderr, "--resume needs --state-dir\n");
        return 2;
    }

    try {
        ChaosConfig chaosCfg;
        chaosCfg.backends = backends;
        chaosCfg.tenants = tenants;
        chaosCfg.horizonTicks = horizon;
        const ChaosSchedule schedule =
            generateChaosSchedule(chaosCfg, chaosSeed);
        std::printf("chaos: %zu events, schedule digest %016llx\n",
                    schedule.size(),
                    static_cast<unsigned long long>(schedule.digest()));

        ServeSchedulerConfig cfg;
        cfg.workers = workers;
        cfg.backends.assign(backends, "guadalupe");
        cfg.stateDir = stateDir;
        cfg.resume = resume;
        cfg.queueBound = queueBound;
        cfg.chaos = &schedule;
        // Fresh runs submit with dispatch paused so the shed set is a
        // pure function of the submission order; a resumed manifest
        // re-applies recorded sheds instead, so it dispatches at once.
        cfg.startPaused = !resume;

        if (killAfter > 0)
            CrashPoints::arm(kCrashServeJobBoundary, killAfter,
                             CrashPoints::Action::Exit);

        ServeScheduler scheduler(cfg);
        if (!resume) {
            for (std::uint64_t i = 0; i < runs; ++i)
                scheduler.submit(makeSpec(seed, i, tenants, jobsPerRun,
                                          deadlineFrac));
            // Tenant burst floods from the schedule: each flood event
            // dumps `count` extra low-priority runs from one tenant
            // into the queue, pressing on admission control.
            std::uint64_t burst = runs;
            for (const ChaosEvent &flood : schedule.floods()) {
                for (std::uint64_t j = 0; j < flood.count; ++j) {
                    ServeJobSpec spec =
                        makeSpec(seed, burst++, tenants, jobsPerRun,
                                 deadlineFrac);
                    spec.tenantId = flood.target;
                    spec.priority = 0;
                    scheduler.submit(spec);
                }
            }
            scheduler.setPaused(false);
        }
        scheduler.drain();
        CrashPoints::disarm();

        // Collect results in job-id order (deterministic layout).
        const std::vector<std::uint64_t> ids = scheduler.jobIds();
        std::string table;
        std::size_t completed = 0;
        std::map<std::uint64_t, ServeJobInfo> byId;
        for (std::uint64_t id : ids) {
            const auto info = scheduler.poll(id);
            if (!info)
                continue;
            byId.emplace(id, *info);
            if (info->state == ServeJobState::Completed)
                ++completed;
            table += std::to_string(id) + ',' +
                     serveJobStateName(info->state) + ',' +
                     info->trajectoryDigest + '\n';
        }
        const std::uint64_t combined = fnv1a64(table);
        const ServeFleetStats stats = scheduler.fleetStats();
        std::printf(
            "fleet: shed %llu failed %llu migrations %llu "
            "faults %llu deadlines %llu trips %llu reopens %llu "
            "probes %llu storms %llu skips %llu ticks %llu\n",
            static_cast<unsigned long long>(stats.shed),
            static_cast<unsigned long long>(stats.failed),
            static_cast<unsigned long long>(stats.migrations),
            static_cast<unsigned long long>(stats.backendFaults),
            static_cast<unsigned long long>(stats.deadlineExpirations),
            static_cast<unsigned long long>(stats.breakerTrips),
            static_cast<unsigned long long>(stats.breakerReopens),
            static_cast<unsigned long long>(stats.halfOpenProbes),
            static_cast<unsigned long long>(stats.stormsApplied),
            static_cast<unsigned long long>(stats.timeSkips),
            static_cast<unsigned long long>(stats.clockTicks));
        std::printf("chaos: %zu/%zu completed, combined digest "
                    "%016llx (replayed %zu)\n",
                    completed, byId.size(),
                    static_cast<unsigned long long>(combined),
                    scheduler.replayedCompletions());
        if (!digestOut.empty())
            atomicWriteFile(digestOut, table);

        if (verifySolo) {
            // Solo re-execution of every completed spec, sequentially
            // on this thread — the reference a chaotic fleet must
            // still match bit for bit.
            std::size_t mismatches = 0;
            for (const auto &[id, info] : byId) {
                if (info.state != ServeJobState::Completed)
                    continue;
                const QismetVqe runner = buildRunner(info.spec);
                const QismetVqeResult solo =
                    runner.run(buildRunConfig(info.spec));
                const std::string want = trajectoryDigest(solo.run);
                if (want != info.trajectoryDigest) {
                    ++mismatches;
                    std::fprintf(stderr,
                                 "MISMATCH job %llu: serve %s solo "
                                 "%s\n",
                                 static_cast<unsigned long long>(id),
                                 info.trajectoryDigest.c_str(),
                                 want.c_str());
                }
            }
            if (mismatches != 0) {
                std::fprintf(stderr,
                             "serve_chaos: %zu digest mismatches\n",
                             mismatches);
                return 1;
            }
            std::printf("verify-solo: all %zu completed runs "
                        "bit-identical to solo execution\n",
                        completed);
        }
    }
    catch (const std::exception &err) {
        std::fprintf(stderr, "serve_chaos: %s\n", err.what());
        return 1;
    }
    return 0;
}
