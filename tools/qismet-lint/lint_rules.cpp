#include "lint_rules.hpp"

#include "source_model.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <initializer_list>
#include <set>
#include <sstream>
#include <stdexcept>

namespace qlint {
namespace {

const std::vector<std::string> &ambientRngAllowedPaths()
{
    static const std::vector<std::string> paths = {
        "src/common/rng.cpp", "src/common/rng.hpp"};
    return paths;
}

const std::vector<std::string> &rawThreadAllowedPaths()
{
    static const std::vector<std::string> paths = {
        "src/common/thread_pool.cpp", "src/common/thread_pool.hpp"};
    return paths;
}

const std::vector<std::string> &rawFileWriteAllowedPaths()
{
    static const std::vector<std::string> paths = {
        "src/common/atomic_file.cpp", "src/common/atomic_file.hpp"};
    return paths;
}

/**
 * True for the simulator hot layers, where a per-iteration
 * `Gate::matrix()` call is an allocation in the per-gate/per-shot loop.
 * Everything else (tests, benches, setup code) may trade the allocation
 * for clarity.
 */
bool underSimHotTree(const std::string &path)
{
    for (const char *tree : {"src/sim/", "src/vqe/"}) {
        if (path.rfind(tree, 0) == 0 ||
            path.find(std::string("/") + tree) != std::string::npos) {
            return true;
        }
    }
    return false;
}

/**
 * True for the serve layer, where tenant and job IDs arrive from
 * callers and stream allocation must therefore be collision-safe
 * (the stream-offset rule). Pre-serve code keeps its historical
 * derivations verbatim for trace stability — its seeds are
 * process-internal, not caller-controlled.
 */
bool underServeTree(const std::string &path)
{
    return path.rfind("src/serve/", 0) == 0 ||
           path.find("/src/serve/") != std::string::npos;
}

class Linter
{
  public:
    Linter(std::string path, const std::string &content)
        : path_(std::move(path)), scrubbed_(scrub(content)),
          tokens_(tokenize(scrubbed_.text))
    {
        std::replace(path_.begin(), path_.end(), '\\', '/');
    }

    std::vector<Finding> run()
    {
        collectUnorderedDecls();
        checkAmbientRng();
        checkUnorderedReduction();
        checkRawThread();
        checkRawFileWrite();
        checkNakedNew();
        checkSplitInTask();
        checkDenseMatrixInLoop();
        checkStreamOffset();
        checkUnboundedRetry();
        std::sort(findings_.begin(), findings_.end(),
                  [](const Finding &a, const Finding &b) {
                      return a.line < b.line ||
                             (a.line == b.line && a.rule < b.rule);
                  });
        return findings_;
    }

  private:
    void report(const std::string &rule, int line, const std::string &message)
    {
        if (!scrubbed_.allowed(rule, line)) {
            findings_.push_back({path_, line, rule, message});
        }
    }

    /** Scrubbed text of the 1-based line `line`. */
    std::string lineText(int line) const
    {
        std::size_t start = 0;
        int cur = 1;
        const std::string &t = scrubbed_.text;
        while (cur < line) {
            start = t.find('\n', start);
            if (start == std::string::npos) {
                return "";
            }
            ++start;
            ++cur;
        }
        std::size_t end = t.find('\n', start);
        return t.substr(start, end == std::string::npos ? std::string::npos
                                                        : end - start);
    }

    // ---- ambient-rng -----------------------------------------------------

    void checkAmbientRng()
    {
        if (pathAllowed(path_, ambientRngAllowedPaths())) {
            return;
        }
        const std::string rule = "ambient-rng";
        for (const Token &t : tokens_) {
            std::string qual;
            bool qualified = hasQualifier(scrubbed_.text, t.pos, qual);
            bool stdOrGlobal = !qualified || qual == "std" || qual.empty();
            if ((t.name == "rand" || t.name == "srand") && stdOrGlobal &&
                !isMemberAccess(scrubbed_.text, t.pos) &&
                !looksLikeDeclaration(t) &&
                isCalled(scrubbed_.text, t.end)) {
                report(rule, t.line,
                       "call to " + t.name +
                           "(): all randomness must flow through qismet::Rng "
                           "(src/common/rng.hpp)");
            } else if (t.name == "random_device" && stdOrGlobal &&
                       !isMemberAccess(scrubbed_.text, t.pos)) {
                report(rule, t.line,
                       "std::random_device is non-deterministic; seed a "
                       "qismet::Rng explicitly instead");
            } else if (isSeedSink(t.name) && seededFromTime(t)) {
                report(rule, t.line,
                       "time-based seeding of '" + t.name +
                           "' breaks reproducibility; use an explicit seed");
            }
        }
    }

    /**
     * `double rand(...)` declares a member/function named like the libc
     * one; only calls are ambient. A call is never directly preceded by
     * an unqualified type-position identifier (keywords like `return`
     * excepted), so treat that shape as a declaration.
     */
    bool looksLikeDeclaration(const Token &t) const
    {
        std::size_t p = prevNonSpace(scrubbed_.text, t.pos);
        if (p == std::string::npos || !isIdentChar(scrubbed_.text[p])) {
            return false;
        }
        std::size_t start = p;
        while (start > 0 && isIdentChar(scrubbed_.text[start - 1])) {
            --start;
        }
        static const std::set<std::string> valueKeywords = {
            "return", "throw", "case", "else", "do", "co_return",
            "co_yield", "co_await"};
        return valueKeywords.count(
                   scrubbed_.text.substr(start, p + 1 - start)) == 0;
    }

    static bool isSeedSink(const std::string &name)
    {
        static const std::set<std::string> sinks = {
            "mt19937",      "mt19937_64", "minstd_rand",
            "minstd_rand0", "default_random_engine",
            "ranlux24",     "ranlux48",   "knuth_b",
            "Xoshiro256",   "Rng",        "seed"};
        return sinks.count(name) != 0;
    }

    /**
     * True when the seed-sink token draws on a clock: its call
     * arguments (or, for non-call mentions, its source line) reference
     * `::now` or a `time(...)` call.
     */
    bool seededFromTime(const Token &t) const
    {
        if (isCalled(scrubbed_.text, t.end)) {
            std::size_t open = nextNonSpace(scrubbed_.text, t.end);
            std::size_t close = matchDelim(scrubbed_.text, open);
            if (close != std::string::npos) {
                return hasTimeSource(
                    scrubbed_.text.substr(open + 1, close - open - 1));
            }
        }
        return hasTimeSource(lineText(t.line));
    }

    static bool hasTimeSource(const std::string &text)
    {
        if (text.find("::now") != std::string::npos) {
            return true;
        }
        // A call to time(...) — token `time` followed by '('.
        std::size_t at = 0;
        while ((at = text.find("time", at)) != std::string::npos) {
            bool startOk = at == 0 || !isIdentChar(text[at - 1]);
            std::size_t after = at + 4;
            bool endOk = after >= text.size() || !isIdentChar(text[after]);
            if (startOk && endOk) {
                std::size_t p = nextNonSpace(text, after);
                if (p != std::string::npos && text[p] == '(') {
                    return true;
                }
            }
            at += 4;
        }
        return false;
    }

    // ---- unordered-reduction ---------------------------------------------

    void collectUnorderedDecls()
    {
        for (const Token &t : tokens_) {
            if (t.name != "unordered_map" && t.name != "unordered_set" &&
                t.name != "unordered_multimap" &&
                t.name != "unordered_multiset") {
                continue;
            }
            std::size_t lt = nextNonSpace(scrubbed_.text, t.end);
            if (lt == std::string::npos || scrubbed_.text[lt] != '<') {
                continue;
            }
            std::size_t gt = matchAngle(scrubbed_.text, lt);
            if (gt == std::string::npos) {
                continue;
            }
            std::size_t p = gt + 1;
            while (true) {
                p = nextNonSpace(scrubbed_.text, p);
                if (p == std::string::npos) {
                    break;
                }
                char c = scrubbed_.text[p];
                if (c == '&' || c == '*') {
                    ++p;
                    continue;
                }
                if (isIdentStart(c)) {
                    std::size_t end = p;
                    while (end < scrubbed_.text.size() &&
                           isIdentChar(scrubbed_.text[end])) {
                        ++end;
                    }
                    std::string name = scrubbed_.text.substr(p, end - p);
                    if (name == "const") {
                        p = end;
                        continue;
                    }
                    unorderedVars_.insert(name);
                }
                break;
            }
        }
    }

    bool mentionsUnordered(const std::string &expr) const
    {
        if (expr.find("unordered_") != std::string::npos) {
            return true;
        }
        std::size_t i = 0;
        while (i < expr.size()) {
            if (isIdentStart(expr[i])) {
                std::size_t start = i;
                while (i < expr.size() && isIdentChar(expr[i])) {
                    ++i;
                }
                if (unorderedVars_.count(expr.substr(start, i - start)) != 0) {
                    return true;
                }
                continue;
            }
            ++i;
        }
        return false;
    }

    static bool hasNumericAccumulation(const std::string &body)
    {
        for (const char *op : {"+=", "-=", "*=", "/="}) {
            if (body.find(op) != std::string::npos) {
                return true;
            }
        }
        return body.find("accumulate") != std::string::npos;
    }

    void checkUnorderedReduction()
    {
        const std::string rule = "unordered-reduction";
        const std::string &text = scrubbed_.text;
        for (const Token &t : tokens_) {
            if (t.name == "for") {
                std::size_t open = nextNonSpace(text, t.end);
                if (open == std::string::npos || text[open] != '(') {
                    continue;
                }
                std::size_t close = matchDelim(text, open);
                if (close == std::string::npos) {
                    continue;
                }
                std::string head = text.substr(open + 1, close - open - 1);
                std::size_t colon = rangeForColon(head);
                if (colon == std::string::npos) {
                    continue;
                }
                std::string rangeExpr = head.substr(colon + 1);
                if (!mentionsUnordered(rangeExpr)) {
                    continue;
                }
                std::string body = statementAfter(close + 1);
                if (hasNumericAccumulation(body)) {
                    report(rule, t.line,
                           "range-for over an unordered container feeds a "
                           "numeric reduction; hash iteration order is "
                           "unspecified, breaking bit-exact determinism — "
                           "copy into a sorted/ordered sequence first");
                }
            } else if (t.name == "accumulate" &&
                       isCalled(text, t.end)) {
                std::size_t open = nextNonSpace(text, t.end);
                std::size_t close = matchDelim(text, open);
                if (close == std::string::npos) {
                    continue;
                }
                std::string args = text.substr(open + 1, close - open - 1);
                if (mentionsUnordered(args)) {
                    report(rule, t.line,
                           "std::accumulate over an unordered container "
                           "depends on hash iteration order, breaking "
                           "bit-exact determinism");
                }
            }
        }
    }

    /** Offset of the range-for ':' inside a for-head, or npos. */
    static std::size_t rangeForColon(const std::string &head)
    {
        int depth = 0;
        for (std::size_t i = 0; i < head.size(); ++i) {
            char c = head[i];
            if (c == '(' || c == '[' || c == '{' || c == '<') {
                ++depth;
            } else if (c == ')' || c == ']' || c == '}' || c == '>') {
                --depth;
            } else if (c == ';') {
                return std::string::npos; // classic for loop
            } else if (c == ':' && depth == 0) {
                bool doubled = (i + 1 < head.size() && head[i + 1] == ':') ||
                               (i > 0 && head[i - 1] == ':');
                if (!doubled) {
                    return i;
                }
            } else if (c == '?') {
                // conditional expression: its ':' is not ours; bail on
                // pathological heads rather than misreport.
                return std::string::npos;
            }
        }
        return std::string::npos;
    }

    /** The statement starting at `pos`: a brace block or text up to ';'. */
    std::string statementAfter(std::size_t pos) const
    {
        const std::string &text = scrubbed_.text;
        std::size_t p = nextNonSpace(text, pos);
        if (p == std::string::npos) {
            return "";
        }
        if (text[p] == '{') {
            std::size_t close = matchDelim(text, p);
            if (close == std::string::npos) {
                return text.substr(p);
            }
            return text.substr(p, close - p + 1);
        }
        std::size_t semi = text.find(';', p);
        return text.substr(p, semi == std::string::npos ? std::string::npos
                                                        : semi - p + 1);
    }

    // ---- raw-thread ------------------------------------------------------

    void checkRawThread()
    {
        if (pathAllowed(path_, rawThreadAllowedPaths())) {
            return;
        }
        const std::string rule = "raw-thread";
        for (const Token &t : tokens_) {
            if (t.name == "pthread_create") {
                report(rule, t.line,
                       "pthread_create outside ThreadPool: route all "
                       "parallelism through qismet::ThreadPool / "
                       "ParallelExecutor");
                continue;
            }
            if (t.name != "thread" && t.name != "jthread" &&
                t.name != "async") {
                continue;
            }
            std::string qual;
            if (hasQualifier(scrubbed_.text, t.pos, qual) && qual == "std") {
                report(rule, t.line,
                       "std::" + t.name +
                           " outside ThreadPool: route all parallelism "
                           "through qismet::ThreadPool / ParallelExecutor "
                           "(src/common/thread_pool.hpp)");
            }
        }
    }

    // ---- raw-file-write --------------------------------------------------

    /**
     * Persistence writes in src/ must go through the atomic-file layer
     * (temp -> fsync -> rename) so a crash can never leave a torn file.
     * Flags writable stream types (`std::ofstream` / `std::fstream`) and
     * C stdio open calls; `std::ifstream` is read-only and stays legal.
     */
    void checkRawFileWrite()
    {
        if (!underSrcTree(path_) ||
            pathAllowed(path_, rawFileWriteAllowedPaths())) {
            return;
        }
        const std::string rule = "raw-file-write";
        const std::string fix =
            ": route persistence through qismet::atomicWriteFile / "
            "DurableFile (src/common/atomic_file.hpp) so a crash cannot "
            "leave a torn or half-written file";
        for (const Token &t : tokens_) {
            if (t.name == "fopen" || t.name == "freopen") {
                std::string qual;
                bool qualified = hasQualifier(scrubbed_.text, t.pos, qual);
                bool stdOrGlobal = !qualified || qual == "std" ||
                                   qual.empty();
                if (stdOrGlobal && !isMemberAccess(scrubbed_.text, t.pos) &&
                    isCalled(scrubbed_.text, t.end)) {
                    report(rule, t.line, "call to " + t.name + "()" + fix);
                }
                continue;
            }
            if (t.name != "ofstream" && t.name != "fstream") {
                continue;
            }
            std::string qual;
            if (hasQualifier(scrubbed_.text, t.pos, qual) && qual == "std") {
                report(rule, t.line, "std::" + t.name + " in src/" + fix);
            }
        }
    }

    // ---- naked-new -------------------------------------------------------

    void checkNakedNew()
    {
        const std::string rule = "naked-new";
        const std::string &text = scrubbed_.text;
        for (std::size_t i = 0; i < tokens_.size(); ++i) {
            const Token &t = tokens_[i];
            bool afterOperator =
                i > 0 && tokens_[i - 1].name == "operator" &&
                nextNonSpace(text, tokens_[i - 1].end) == t.pos;
            if (t.name == "new") {
                if (afterOperator) {
                    continue;
                }
                report(rule, t.line,
                       "naked new expression: own memory with "
                       "std::vector / std::unique_ptr / std::make_unique");
            } else if (t.name == "delete") {
                if (afterOperator) {
                    continue;
                }
                std::size_t p = prevNonSpace(text, t.pos);
                if (p != std::string::npos && text[p] == '=') {
                    continue; // deleted special member function
                }
                report(rule, t.line,
                       "naked delete expression: own memory with "
                       "std::vector / std::unique_ptr / std::make_unique");
            }
        }
    }

    // ---- split-in-task ---------------------------------------------------

    void checkSplitInTask()
    {
        const std::string rule = "split-in-task";
        const std::string &text = scrubbed_.text;
        for (const Token &t : tokens_) {
            bool member = isMemberAccess(text, t.pos);
            bool dispatch = (t.name == "submit" || t.name == "parallelFor") ||
                            (t.name == "map" && member);
            if (!dispatch) {
                continue;
            }
            // Accept both `submit(...)` and `map<T>(...)` call shapes.
            std::size_t open = nextNonSpace(text, t.end);
            if (open != std::string::npos && text[open] == '<') {
                std::size_t gt = matchAngle(text, open);
                if (gt == std::string::npos) {
                    continue;
                }
                open = nextNonSpace(text, gt + 1);
            }
            if (open == std::string::npos || text[open] != '(') {
                continue;
            }
            std::size_t close = matchDelim(text, open);
            if (close == std::string::npos) {
                continue;
            }
            scanLambdasForSplit(rule, open + 1, close);
        }
    }

    /** Find lambda bodies inside [begin, end) and flag split calls. */
    void scanLambdasForSplit(const std::string &rule, std::size_t begin,
                             std::size_t end)
    {
        const std::string &text = scrubbed_.text;
        for (std::size_t i = begin; i < end; ++i) {
            if (text[i] != '[') {
                continue;
            }
            std::size_t prev = prevNonSpace(text, i);
            if (prev != std::string::npos &&
                (isIdentChar(text[prev]) || text[prev] == ')' ||
                 text[prev] == ']')) {
                continue; // subscript, not a capture list
            }
            std::size_t captureClose = matchDelim(text, i);
            if (captureClose == std::string::npos || captureClose >= end) {
                continue;
            }
            std::size_t p = nextNonSpace(text, captureClose + 1);
            if (p != std::string::npos && text[p] == '(') {
                std::size_t paramsClose = matchDelim(text, p);
                if (paramsClose == std::string::npos) {
                    continue;
                }
                p = nextNonSpace(text, paramsClose + 1);
            }
            // Tolerate `mutable`, `noexcept`, `-> T` between params and body.
            while (p != std::string::npos && p < end && text[p] != '{' &&
                   text[p] != ';' && text[p] != ',') {
                ++p;
                p = nextNonSpace(text, p);
            }
            if (p == std::string::npos || p >= end || text[p] != '{') {
                continue;
            }
            std::size_t bodyClose = matchDelim(text, p);
            if (bodyClose == std::string::npos) {
                continue;
            }
            flagSplitCalls(rule, p, bodyClose);
            i = bodyClose;
        }
    }

    void flagSplitCalls(const std::string &rule, std::size_t begin,
                        std::size_t end)
    {
        const std::string &text = scrubbed_.text;
        for (const Token &t : tokens_) {
            if (t.pos < begin || t.pos >= end) {
                continue;
            }
            if ((t.name == "splitAt" || t.name == "split") &&
                isMemberAccess(text, t.pos) && isCalled(text, t.end)) {
                report(rule, t.line,
                       "Rng::" + t.name +
                           " inside a parallel task body: derive every "
                           "task's sub-stream before dispatch "
                           "(splitAt(index) at the fan-out site) so the "
                           "stream is a pure function of (seed, index)");
            }
        }
    }

    // ---- dense-matrix-in-loop --------------------------------------------

    /**
     * `Gate::matrix()` heap-allocates a fresh dense matrix on every
     * call. Inside a loop in the simulator hot layers that is a hidden
     * per-iteration allocation — exactly the pattern the compiled
     * engine exists to remove. Loop bodies are found lexically
     * (`for`/`while` + parens + brace block or single statement), which
     * matches how the hot loops in src/sim and src/vqe are written.
     */
    void checkDenseMatrixInLoop()
    {
        if (!underSimHotTree(path_)) {
            return;
        }
        const std::string rule = "dense-matrix-in-loop";
        const std::string &text = scrubbed_.text;

        std::vector<std::pair<std::size_t, std::size_t>> bodies;
        for (const Token &t : tokens_) {
            if ((t.name != "for" && t.name != "while") ||
                isMemberAccess(text, t.pos)) {
                continue;
            }
            std::size_t open = nextNonSpace(text, t.end);
            if (open == std::string::npos || text[open] != '(') {
                continue;
            }
            std::size_t close = matchDelim(text, open);
            if (close == std::string::npos) {
                continue;
            }
            std::size_t bodyStart = nextNonSpace(text, close + 1);
            if (bodyStart == std::string::npos) {
                continue;
            }
            std::size_t bodyEnd;
            if (text[bodyStart] == '{') {
                bodyEnd = matchDelim(text, bodyStart);
            } else {
                bodyEnd = text.find(';', bodyStart);
            }
            if (bodyEnd == std::string::npos) {
                continue;
            }
            bodies.emplace_back(bodyStart, bodyEnd + 1);
        }

        std::set<std::size_t> flagged;
        for (const Token &t : tokens_) {
            if (t.name != "matrix" || !isMemberAccess(text, t.pos) ||
                !isCalled(text, t.end)) {
                continue;
            }
            for (const auto &body : bodies) {
                if (t.pos < body.first || t.pos >= body.second) {
                    continue;
                }
                if (flagged.insert(t.pos).second) {
                    report(rule, t.line,
                           ".matrix() inside a loop allocates a fresh "
                           "dense matrix every iteration: resolve "
                           "matrices once via CompiledCircuit, or fill "
                           "preallocated scratch with Gate::matrixInto "
                           "(DESIGN.md section 11)");
                }
                break;
            }
        }
    }

    // ---- stream-offset ---------------------------------------------------

    /**
     * In src/serve, tenant/job IDs are caller-controlled, so stream
     * seeds must come from deriveStreamSeed / Rng::splitStream —
     * avalanched at every level — never from sequential Rng::split /
     * Rng::splitAt or hand-rolled affine packings (`seed + id`,
     * `id * K + run`), which collide under adversarial ID patterns
     * (StreamDomain note, src/common/rng.hpp). Flags split calls and
     * arithmetic in the arguments of Rng constructions, splitStream and
     * deriveStreamSeed.
     */
    void checkStreamOffset()
    {
        if (!underServeTree(path_)) {
            return;
        }
        const std::string rule = "stream-offset";
        const std::string &text = scrubbed_.text;
        for (const Token &t : tokens_) {
            if ((t.name == "split" || t.name == "splitAt") &&
                isMemberAccess(text, t.pos) && isCalled(text, t.end)) {
                report(rule, t.line,
                       "Rng::" + t.name +
                           " in src/serve: allocate sub-streams with "
                           "Rng::splitStream(domain, index) / "
                           "deriveStreamSeed — sequential and offset "
                           "splits collide under caller-controlled IDs "
                           "(StreamDomain note, src/common/rng.hpp)");
                continue;
            }
            std::size_t open = std::string::npos;
            if ((t.name == "splitStream" || t.name == "deriveStreamSeed") &&
                isCalled(text, t.end)) {
                open = nextNonSpace(text, t.end);
            } else if (t.name == "Rng") {
                open = constructionArgs(t);
            }
            if (open == std::string::npos) {
                continue;
            }
            std::size_t close = matchDelim(text, open);
            if (close == std::string::npos) {
                continue;
            }
            if (hasSeedArithmetic(
                    text.substr(open + 1, close - open - 1))) {
                report(rule, t.line,
                       "hand-rolled seed arithmetic feeding '" + t.name +
                           "': affine offsets (`seed + id`, "
                           "`id * K + run`) collide under "
                           "caller-controlled IDs — pass raw IDs as the "
                           "deriveStreamSeed / splitStream index instead "
                           "(src/common/rng.hpp)");
            }
        }
    }

    /**
     * Opening delimiter of an `Rng` construction's arguments — the
     * temporary `Rng(...)` / `Rng{...}` shape or a declaration
     * `Rng name(...)` / `Rng name{...}` — or npos when the token is a
     * reference, pointer, parameter type or anything else that carries
     * no constructor arguments.
     */
    std::size_t constructionArgs(const Token &t) const
    {
        const std::string &text = scrubbed_.text;
        std::size_t p = nextNonSpace(text, t.end);
        if (p == std::string::npos) {
            return std::string::npos;
        }
        if (text[p] == '(' || text[p] == '{') {
            return p;
        }
        if (!isIdentStart(text[p])) {
            return std::string::npos;
        }
        std::size_t end = p;
        while (end < text.size() && isIdentChar(text[end])) {
            ++end;
        }
        std::size_t q = nextNonSpace(text, end);
        if (q != std::string::npos && (text[q] == '(' || text[q] == '{')) {
            return q;
        }
        return std::string::npos;
    }

    /**
     * True when an argument list contains offset arithmetic: `+ - * ^ %
     * |` or a `<<` shift-packing. Tolerates `++`/`--`, `->`, `||` and
     * unary minus — only a binary minus (operand on its left) counts.
     */
    static bool hasSeedArithmetic(const std::string &args)
    {
        for (std::size_t i = 0; i < args.size(); ++i) {
            const char c = args[i];
            const char prev = i > 0 ? args[i - 1] : '\0';
            const char next = i + 1 < args.size() ? args[i + 1] : '\0';
            switch (c) {
            case '*':
            case '^':
            case '%':
                return true;
            case '+':
                if (prev != '+' && next != '+') {
                    return true;
                }
                break;
            case '|':
                if (prev != '|' && next != '|') {
                    return true;
                }
                break;
            case '<':
                if (next == '<') {
                    return true;
                }
                break;
            case '-': {
                if (prev == '-' || next == '-' || next == '>') {
                    break;
                }
                const std::size_t p = prevNonSpace(args, i);
                if (p != std::string::npos &&
                    (isIdentChar(args[p]) || args[p] == ')' ||
                     args[p] == ']')) {
                    return true;
                }
                break;
            }
            default:
                break;
            }
        }
        return false;
    }

    // ---- unbounded-retry -------------------------------------------------

    /**
     * Retry loops in src/ must carry a visible bound. A `while`/`for`
     * loop whose condition or body mentions retry state (retry,
     * attempt, backoff) is a retry loop; it passes only when its
     * condition contains a real comparison (`<`/`>` — a counted
     * budget or deadline test) or the loop names a budget/breaker
     * check anywhere (budget, limit, max*, deadline, breaker,
     * cooldown, remaining). `while (true)` and retry-until-success
     * shapes with neither spin forever against a backend that faults
     * persistently; the serve layer bounds every retry path with a
     * budget or routes it through the circuit breaker (DESIGN.md
     * section 15).
     */
    void checkUnboundedRetry()
    {
        if (!underSrcTree(path_)) {
            return;
        }
        const std::string rule = "unbounded-retry";
        const std::string &text = scrubbed_.text;
        for (const Token &t : tokens_) {
            if ((t.name != "while" && t.name != "for") ||
                isMemberAccess(text, t.pos)) {
                continue;
            }
            std::size_t open = nextNonSpace(text, t.end);
            if (open == std::string::npos || text[open] != '(') {
                continue;
            }
            std::size_t close = matchDelim(text, open);
            if (close == std::string::npos) {
                continue;
            }
            // Range-for is bounded by its container: a `:` that is not
            // part of `::` in the head means nothing to flag here.
            if (t.name == "for" && isRangeFor(text, open + 1, close)) {
                continue;
            }
            std::size_t bodyStart = nextNonSpace(text, close + 1);
            if (bodyStart == std::string::npos) {
                continue;
            }
            std::size_t bodyEnd;
            if (text[bodyStart] == '{') {
                bodyEnd = matchDelim(text, bodyStart);
            } else {
                bodyEnd = text.find(';', bodyStart);
            }
            if (bodyEnd == std::string::npos) {
                continue;
            }
            if (!mentionsAny(text, open, bodyEnd,
                             {"retry", "attempt", "backoff"})) {
                continue;
            }
            if (hasComparisonBound(text, open + 1, close) ||
                mentionsAny(text, open, bodyEnd,
                            {"budget", "limit", "max", "deadline",
                             "breaker", "cooldown", "remaining"})) {
                continue;
            }
            report(rule, t.line,
                   "retry loop without a visible budget or breaker "
                   "check: bound it (retry budget, deadline, or a "
                   "comparison in the loop condition) or route it "
                   "through the circuit breaker — an unbounded retry "
                   "spins forever against a persistently faulted "
                   "backend (DESIGN.md section 15)");
        }
    }

    /** True when text[from, to) holds a `:` that is not part of `::`. */
    static bool isRangeFor(const std::string &text, std::size_t from,
                           std::size_t to)
    {
        for (std::size_t i = from; i < to && i < text.size(); ++i) {
            if (text[i] != ':') {
                continue;
            }
            const bool doubled = (i + 1 < to && text[i + 1] == ':') ||
                                 (i > from && text[i - 1] == ':');
            if (!doubled) {
                return true;
            }
        }
        return false;
    }

    /** Case-insensitive substring search over text[from, to). */
    static bool mentionsAny(const std::string &text, std::size_t from,
                            std::size_t to,
                            std::initializer_list<const char *> needles)
    {
        std::string region = text.substr(from, to - from);
        std::transform(region.begin(), region.end(), region.begin(),
                       [](unsigned char c) {
                           return static_cast<char>(std::tolower(c));
                       });
        for (const char *needle : needles) {
            if (region.find(needle) != std::string::npos) {
                return true;
            }
        }
        return false;
    }

    /**
     * True when text[from, to) contains a `<` or `>` comparison —
     * `<<`, `>>` and `->` are not comparisons. A comparison in a loop
     * condition is read as a counted bound.
     */
    static bool hasComparisonBound(const std::string &text,
                                   std::size_t from, std::size_t to)
    {
        for (std::size_t i = from; i < to && i < text.size(); ++i) {
            const char c = text[i];
            if (c != '<' && c != '>') {
                continue;
            }
            const char prev = i > from ? text[i - 1] : '\0';
            const char next = i + 1 < to ? text[i + 1] : '\0';
            if (c == '<' && (next == '<' || prev == '<')) {
                continue;
            }
            if (c == '>' && (next == '>' || prev == '>' || prev == '-')) {
                continue;
            }
            return true;
        }
        return false;
    }

    std::string path_;
    Scrubbed scrubbed_;
    std::vector<Token> tokens_;
    std::set<std::string> unorderedVars_;
    std::vector<Finding> findings_;
};

} // namespace

const std::vector<std::string> &allRules()
{
    static const std::vector<std::string> rules = {
        "ambient-rng",    "unordered-reduction", "raw-thread",
        "raw-file-write", "naked-new",           "split-in-task",
        "dense-matrix-in-loop", "stream-offset", "unbounded-retry",
        // Cross-TU passes (passes.cpp) over the semantic index.
        "stream-lineage", "lock-order", "durability-ordering"};
    return rules;
}

std::vector<Finding> lintSource(const std::string &path,
                                const std::string &content)
{
    return Linter(path, content).run();
}

std::vector<Finding> lintFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw std::runtime_error("qismet-lint: cannot read " + path);
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return lintSource(path, buffer.str());
}

bool isLintablePath(const std::string &path)
{
    for (const char *ext : {".cpp", ".cc", ".hpp", ".h"}) {
        std::size_t len = std::char_traits<char>::length(ext);
        if (path.size() > len &&
            path.compare(path.size() - len, len, ext) == 0) {
            return true;
        }
    }
    return false;
}

} // namespace qlint
