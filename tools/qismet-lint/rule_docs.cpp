#include "rule_docs.hpp"

namespace qlint {

const std::vector<RuleDoc> &allRuleDocs()
{
    static const std::vector<RuleDoc> docs = {
        {"ambient-rng",
         "All randomness must flow through qismet::Rng.",
         "std::rand/srand, std::random_device and time-based seeding "
         "make runs unreproducible: the accept/reject replay loop "
         "(DESIGN.md section 2) requires that re-running a config "
         "reproduces every draw bit-for-bit. qismet::Rng is a "
         "counter-based generator seeded explicitly from the config, "
         "so the whole program's randomness is a pure function of the "
         "seed. Only src/common/rng.cpp may touch the ambient "
         "primitives (to implement entropy capture for `--seed auto`).",
         "everywhere except src/common/rng.cpp",
         "per-file",
         "double jitter = std::rand() / double(RAND_MAX);",
         "double jitter = rng.uniform();"},
        {"unordered-reduction",
         "Never fold numbers out of unordered container iteration.",
         "std::unordered_map/set iteration order is unspecified and "
         "varies across libstdc++ versions, hash seeds and load "
         "factors. Accumulating floats in that order makes the bits of "
         "the result depend on it (floating-point addition is not "
         "associative). Iterate a sorted view, or accumulate into an "
         "order-independent integral domain first.",
         "src/",
         "per-file",
         "for (auto &[k, v] : unorderedWeights) { sum += v; }",
         "for (auto &k : sortedKeys(unorderedWeights)) { sum += "
         "unorderedWeights.at(k); }"},
        {"raw-thread",
         "No std::thread/std::async outside the ThreadPool.",
         "Ad-hoc threads bypass the deterministic fan-out contract: "
         "ThreadPool/ParallelExecutor own chunking, result ordering "
         "and the `--threads=N` == `--threads=1` bit-identity "
         "guarantee (DESIGN.md section 6). A raw std::thread has no "
         "such discipline and its interleaving leaks into results. "
         "pthread_create and std::jthread are equally banned.",
         "everywhere except src/common/thread_pool.{cpp,hpp}",
         "per-file",
         "std::thread t([&] { work(); }); t.join();",
         "executor.parallelFor(0, n, [&](std::size_t i) { work(i); });"},
        {"raw-file-write",
         "All durable writes go through atomicWriteFile/DurableFile.",
         "A bare std::ofstream write can be torn by a crash: partial "
         "content at the final path, no fsync, no rename discipline. "
         "atomicWriteFile writes a temp file, fsyncs it, renames into "
         "place and fsyncs the directory; DurableFile gives "
         "append/sync/truncate with explicit durability points "
         "(DESIGN.md section 8). Reads are unrestricted; code outside "
         "src/ (tests, tools, bench) is unrestricted.",
         "src/ writes, except src/common/atomic_file.{hpp,cpp}",
         "per-file",
         "std::ofstream out(path); out << payload;",
         "qismet::atomicWriteFile(path, payload);"},
        {"naked-new",
         "No naked new/delete; use containers or smart pointers.",
         "Manual lifetime management invites leaks and double-frees, "
         "and every owning raw pointer is a code path the "
         "crash-recovery tests cannot reason about. std::vector, "
         "std::unique_ptr and std::make_unique cover every use in "
         "this codebase.",
         "src/",
         "per-file",
         "auto *state = new SimState(n);",
         "auto state = std::make_unique<SimState>(n);"},
        {"split-in-task",
         "Derive substreams before fan-out, never inside a task.",
         "Rng::split() advances the parent stream, so calling it "
         "inside a lambda handed to ThreadPool::submit or "
         "ParallelExecutor::parallelFor/map makes the derived seed "
         "depend on which task ran first — scheduling order becomes "
         "data. Split per-task streams in the submission loop and "
         "move them into the capture.",
         "src/",
         "per-file",
         "pool.submit([&] { auto r = rng.split(); ... });",
         "auto r = rng.split(); pool.submit([r]() mutable { ... });"},
        {"dense-matrix-in-loop",
         "No Gate::matrix() inside simulator hot loops.",
         "Gate::matrix() builds a fresh dense matrix on every call. "
         "Inside the per-gate/per-shot loops of src/sim and src/vqe "
         "that is an allocation per iteration, which dominated the "
         "profile before CompiledCircuit existed (DESIGN.md section "
         "11). Resolve matrices once via CompiledCircuit, or fill "
         "preallocated scratch with Gate::matrixInto.",
         "src/sim/, src/vqe/",
         "per-file",
         "for (auto &g : gates) { apply(g.matrix(), psi); }",
         "CompiledCircuit cc(circuit); cc.run(psi);"},
        {"stream-offset",
         "In src/serve, use splitStream/deriveStreamSeed, not affine "
         "packing.",
         "Serve-layer tenant and job IDs are caller-controlled. An "
         "affine packing (`seed + id`, `id * K + run`) maps distinct "
         "ID pairs to the same seed under adversarial patterns, "
         "which collapses two tenants onto one stream. "
         "deriveStreamSeed applies a SplitMix64 avalanche at every "
         "level, so structured inputs cannot collide by construction "
         "(src/common/rng.hpp, StreamDomain note).",
         "src/serve/",
         "per-file",
         "Rng jobRng(config.seed + jobId);",
         "Rng jobRng(deriveStreamSeed(config.seed, kServeRun, jobId));"},
        {"unbounded-retry",
         "Every retry loop carries a visible budget or breaker check.",
         "A retry loop with no bound spins forever against a backend "
         "that faults persistently — exactly the failure the fleet "
         "health model exists to contain (DESIGN.md section 15). The "
         "rule flags `while`/`for` loops that mention retry state "
         "(retry, attempt, backoff) but have neither a comparison in "
         "the loop condition (a counted budget or deadline test) nor "
         "a named budget/breaker check (budget, limit, max*, "
         "deadline, breaker, cooldown, remaining) anywhere in the "
         "loop. Bound the loop with a retry budget or deadline, or "
         "route the operation through the circuit breaker.",
         "src/",
         "per-file",
         "while (true) { if (tryOnce()) break; ++retries; }",
         "while (retries < policy.maxRetries) { if (tryOnce()) break; "
         "++retries; }"},
        {"stream-lineage",
         "An Rng stream must have exactly one consumer.",
         "Three cross-TU shapes break stream lineage. (a) Reuse: one "
         "Rng handed to two consuming callees couples them — adding a "
         "draw in the first silently shifts every value the second "
         "produces, which breaks replay stability across code "
         "changes. (b) Dispatch capture: an outer Rng drawn from "
         "inside a ThreadPool/ParallelExecutor task makes the draw "
         "order a function of scheduling. (c) Affine crossing: an "
         "affine index packing (`base + id`) computed in one function "
         "and fed to a stream derivation in another reintroduces the "
         "collision the per-file stream-offset rule bans, one call "
         "away from where that rule can see it. Fix all three by "
         "deriving a dedicated substream (Rng::splitAt / splitStream) "
         "at the ownership boundary and passing raw IDs to "
         "deriveStreamSeed.",
         "reuse: src/serve, src/persist, src/fault; dispatch capture: "
         "src/; affine crossing: caller or callee in src/serve",
         "cross-TU",
         "helperA(rng); helperB(rng); // both draw from rng",
         "helperA(rng.splitAt(0)); helperB(rng.splitAt(1));"},
        {"lock-order",
         "No lock cycles; never hold a lock across pool dispatch.",
         "The pass builds the mutex acquisition graph for the whole "
         "tree: a lock held at a call site adds edges to every mutex "
         "the transitive callees acquire, with receivers resolved "
         "through member declarations so same-named methods on "
         "different classes do not alias. Cycles (A held while taking "
         "B, elsewhere B held while taking A) deadlock under "
         "contention. Holding any lock across ThreadPool::submit / "
         "ParallelExecutor::parallelFor nests the pool's queue mutex "
         "under an application lock, serializes the fan-out, and "
         "deadlocks outright if a task ever needs the held lock. "
         "Collect work under the lock, release it, then submit.",
         "src/ (the pool's own internals in "
         "src/common/thread_pool.* are exempt from the dispatch "
         "check)",
         "cross-TU",
         "std::lock_guard<std::mutex> g(mutex_); pool_->submit(task);",
         "auto batch = collectLocked(); /* unlock */ for (auto &t : "
         "batch) pool_->submit(t);"},
        {"durability-ordering",
         "fsync before rename; sync after truncate; checksum before "
         "decode.",
         "Crash-safety is an ordering discipline, checked per "
         "function over the indexed durability events. (1) rename "
         "with no preceding fsync can publish an empty file: the "
         "metadata operation may be durable before the data blocks. "
         "(2) An append after truncateTo with no sync between lets a "
         "crash resurrect stale bytes past the new tail, which the "
         "journal scan would then misparse. (3) Decoding persisted "
         "bytes without a checksum verification turns a torn tail "
         "into garbage state instead of a rejected record — every "
         "framed read must verify fnv1a64 first (DESIGN.md section "
         "8).",
         "src/persist/, src/serve/",
         "cross-TU",
         "fs::rename(tmp, final); // no fsync of tmp",
         "file.sync(); fs::rename(tmp, final); syncDir(dir);"},
    };
    return docs;
}

const RuleDoc *findRuleDoc(const std::string &id)
{
    for (const RuleDoc &doc : allRuleDocs()) {
        if (doc.id == id) {
            return &doc;
        }
    }
    return nullptr;
}

std::string explainRule(const RuleDoc &doc)
{
    std::string out;
    out += doc.id + " — " + doc.shortText + "\n\n";
    out += doc.fullText + "\n\n";
    out += "scope:    " + doc.scope + "\n";
    out += "analysis: " + doc.crossTu + "\n\n";
    out += "  bad:  " + doc.badExample + "\n";
    out += "  good: " + doc.goodExample + "\n\n";
    out += "suppress: // qismet-lint: allow(" + doc.id +
           ")   (file-wide: allow-file)\n";
    return out;
}

std::string renderRulesMarkdown()
{
    std::string out;
    out += "# qismet-lint rules\n\n";
    out += "<!-- Generated by `qismet-lint --rules-md`. Edit "
           "tools/qismet-lint/rule_docs.cpp, not this file. -->\n\n";
    out += "The determinism and crash-safety invariants the tree must "
           "hold, as enforced\nby `qismet-lint`. Per-file rules see one "
           "translation unit at a time; cross-TU\nrules run dataflow "
           "passes over a semantic index of the whole source tree\n"
           "(`tools/qismet-lint/semantic_index.hpp`).\n\n";
    out += "Suppress a finding with `// qismet-lint: allow(<rule>)` on "
           "the offending line\nor the line above, or "
           "`// qismet-lint: allow-file(<rule>)` for a whole file.\n"
           "Every escape is greppable and reviewable.\n\n";
    out += "| rule | analysis | summary |\n|---|---|---|\n";
    for (const RuleDoc &doc : allRuleDocs()) {
        out += "| [`" + doc.id + "`](#" + doc.id + ") | " + doc.crossTu +
               " | " + doc.shortText + " |\n";
    }
    out += "\n";
    for (const RuleDoc &doc : allRuleDocs()) {
        out += "## " + doc.id + "\n\n";
        out += "**" + doc.shortText + "**\n\n";
        out += doc.fullText + "\n\n";
        out += "*Scope:* " + doc.scope + "\n\n";
        out += "```cpp\n// bad\n" + doc.badExample + "\n\n// good\n" +
               doc.goodExample + "\n```\n\n";
    }
    return out;
}

} // namespace qlint
