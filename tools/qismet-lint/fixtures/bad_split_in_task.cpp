// Fixture: every fan-out here must trigger the split-in-task rule.
// This file is never compiled; it only feeds the linter's test suite.
#include "common/rng.hpp"
#include "common/thread_pool.hpp"

#include <vector>

void splitInsideParallelFor(const qismet::ParallelExecutor &exec,
                            qismet::Rng &rng, std::vector<double> &out)
{
    exec.parallelFor(out.size(), [&](std::size_t i) {
        qismet::Rng task = rng.splitAt(i); // derive BEFORE dispatch instead
        out[i] = task.uniform();
    });
}

void splitInsideSubmit(qismet::ThreadPool &pool, qismet::Rng &rng,
                       std::vector<double> &out)
{
    pool.submit([&] {
        qismet::Rng task = rng.split(); // scheduling-order dependent
        out.push_back(task.uniform());
    });
}

std::vector<double> splitInsideMap(const qismet::ParallelExecutor &exec,
                                   qismet::Rng &rng)
{
    return exec.map<double>(8, [&](std::size_t i) {
        return rng.splitAt(i).uniform(); // derive BEFORE dispatch instead
    });
}
