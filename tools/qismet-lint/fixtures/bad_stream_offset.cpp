// Fixture: every derivation here must trigger the stream-offset rule
// when linted under a synthetic src/serve path (the rule is path-scoped,
// so under this file's real path it stays silent).
// This file is never compiled; it only feeds the linter's test suite.
#include "common/rng.hpp"

#include <cstdint>

namespace qismet {

Rng linearPackedIndex(const Rng &root, std::uint64_t tenant,
                      std::uint64_t run)
{
    // tenant 1 / run 1000 aliases tenant 2 / run 0.
    return root.splitAt(tenant * 1000 + run);
}

Rng affineOffsetSeed(std::uint64_t seed, std::uint64_t tenant)
{
    Rng stream(seed + tenant); // adjacent tenants share shifted streams
    return stream;
}

std::uint64_t shiftPackedSeed(std::uint64_t seed, std::uint64_t job)
{
    Rng rng(seed ^ (job << 8)); // low run bits collide with the seed
    return rng.engine()();
}

Rng sequentialSplit(Rng &root)
{
    return root.split(); // order-dependent: stream != f(root, id)
}

std::uint64_t packedDeriveIndex(std::uint64_t root, std::uint64_t tenant,
                                std::uint64_t run)
{
    // The avalanche cannot help when the index itself is a packing.
    return deriveStreamSeed(root, 1, tenant * 4096 + run);
}

// The blessed shape: one avalanched level per (domain, index) pair.
Rng cleanDerivation(const Rng &root, std::uint64_t tenant)
{
    return root.splitStream(StreamDomain::kServeRun, tenant);
}

Rng cleanSeedForward(std::uint64_t root, std::uint64_t jobId)
{
    return Rng(deriveStreamSeed(root, StreamDomain::kServeRun, jobId));
}

} // namespace qismet
