// Fixture: every statement here must trigger the naked-new rule.
// This file is never compiled; it only feeds the linter's test suite.

struct Buffer
{
    double *data;
};

Buffer makeBuffer(unsigned n)
{
    Buffer b;
    b.data = new double[n]; // line 12: naked array new
    return b;
}

void freeBuffer(Buffer &b)
{
    delete[] b.data; // line 18: naked array delete
}

int *leakyInt()
{
    return new int(7); // line 23: naked scalar new
}

void dropInt(int *p)
{
    delete p; // line 28: naked scalar delete
}
