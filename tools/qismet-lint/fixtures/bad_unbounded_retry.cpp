// Fixture: every retry loop here must trigger the unbounded-retry rule
// when linted under a synthetic src/ path (the rule is path-scoped, so
// under this file's real path it stays silent). The bounded shapes at
// the bottom must never fire.
// This file is never compiled; it only feeds the linter's test suite.

struct Response
{
    bool ok;
};
Response send(int req);
bool attemptOnce();
bool sendWithBackoff(int job);
bool retryOnce();

void spinUntilSuccess(int req)
{
    int retryCount = 0;
    while (true) { // no budget, no breaker: spins on a dead backend
        Response r = send(req);
        if (r.ok) {
            break;
        }
        ++retryCount;
    }
}

void retryUntilOk()
{
    bool ok = false;
    while (!ok) { // condition has no bound and body names no budget
        ok = attemptOnce();
    }
}

void backoffForever(int job)
{
    for (;;) { // the backoff shapes the delay, not the attempt count
        if (sendWithBackoff(job)) {
            return;
        }
    }
}

// ---- bounded shapes the rule must accept ---------------------------------

struct RetryPolicy
{
    int maxRetries;
};

void countedBudget(const RetryPolicy &policy, int req)
{
    int retries = 0;
    while (retries < policy.maxRetries) {
        if (send(req).ok) {
            break;
        }
        ++retries;
    }
}

int budgetRemaining(int b);

void namedBudgetCheck(int b)
{
    bool done = false;
    while (!done) {
        if (budgetRemaining(b) == 0) {
            break;
        }
        done = retryOnce();
    }
}

void countedForLoop(int req)
{
    for (int attempt = 0; attempt < 5; ++attempt) {
        if (send(req).ok) {
            return;
        }
    }
}

struct Record
{
    int retryIndex;
};

int sumRetries(const Record (&history)[4])
{
    int sum = 0;
    for (const Record &rec : history) { // range-for: container-bounded
        sum += rec.retryIndex;
    }
    return sum;
}

void notARetryLoop(int n)
{
    int sum = 0;
    while (sum != n) { // never mentions retry state at all
        ++sum;
    }
}
