// Fixture: block-partitioned reductions that stash per-block partials
// in unordered containers and fold them in hash order — every fold
// below must trigger the unordered-reduction rule. This file is never
// compiled; it only feeds the linter's test suite.
//
// The correct shape is common/block_partition.hpp's orderedBlockReduce:
// partials land in a fixed-size array indexed by block number and are
// folded serially in block order, so the grouping is a pure function of
// the problem size, not of hashing or scheduling.
#include <cstddef>
#include <numeric>
#include <unordered_map>

namespace blocks {

struct BlockRange
{
    std::size_t begin = 0;
    std::size_t end = 0;
};

BlockRange intraStateBlock(std::size_t units, std::size_t index);

extern std::unordered_map<std::size_t, double> g_blockPartials;

double
foldPartialsInHashOrder()
{
    // The partials were computed per block, but the map forgot the
    // block order; this fold follows hash order.
    double total = 0.0;
    for (const auto &entry : g_blockPartials) {
        total += entry.second;
    }
    return total;
}

double
accumulatePartials(
    const std::unordered_map<std::size_t, double> &partials)
{
    return std::accumulate(partials.begin(), partials.end(), 0.0,
                           [](double acc, const auto &kv) {
                               return acc + kv.second;
                           });
}

double
blockedNorm(const double *amps, std::size_t units)
{
    std::unordered_map<std::size_t, double> partial;
    for (std::size_t b = 0; b < 16; ++b) {
        const BlockRange r = intraStateBlock(units, b);
        double s = 0.0;
        for (std::size_t i = r.begin; i < r.end; ++i) {
            s += amps[i] * amps[i];
        }
        partial[b] = s;
    }
    double total = 0.0;
    for (const auto &kv : partial) {
        total += kv.second; // hash-order fold of ordered block work
    }
    return total;
}

} // namespace blocks
