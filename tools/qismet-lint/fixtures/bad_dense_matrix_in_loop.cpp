// Fixture: every loop-body .matrix() call here must trigger the
// dense-matrix-in-loop rule when linted under a synthetic src/sim path.
// This file is never compiled; it only feeds the linter's test suite.
#include "circuit/circuit.hpp"
#include "sim/statevector.hpp"

#include <vector>

void matrixInRangeFor(qismet::Statevector &state,
                      const qismet::Circuit &circuit)
{
    for (const qismet::Gate &g : circuit.gates()) {
        auto m = g.matrix(); // allocate once via CompiledCircuit instead
        (void)m;
        (void)state;
    }
}

void matrixInWhileLoop(const qismet::Gate &gate, std::size_t shots)
{
    std::size_t s = 0;
    while (s < shots) {
        auto m = gate.matrix(); // hoist out of the per-shot loop
        (void)m;
        ++s;
    }
}

void matrixInSingleStatementBody(const std::vector<qismet::Gate> &gates,
                                 std::vector<double> &traces)
{
    for (const qismet::Gate &g : gates)
        traces.push_back(g.matrix()(0, 0).real()); // per-iteration alloc
}

// A call before any loop is fine: resolved once, reused after.
void matrixOutsideLoop(const qismet::Gate &gate, std::size_t shots)
{
    const auto m = gate.matrix();
    for (std::size_t s = 0; s < shots; ++s) {
        (void)m;
    }
}
