// Fixture: every violation here carries a documented escape, so the
// file must lint clean. Exercises same-line escapes, line-above
// escapes, multi-rule escapes, and the file-wide form. This file is
// never compiled; it only feeds the linter's test suite.
//
// qismet-lint: allow-file(naked-new)
#include <cstdlib>
#include <thread>
#include <unordered_map>

// Covered by the allow-file(naked-new) escape above.
int *fileWideEscape() { return new int(3); }

int sameLineEscape()
{
    return std::rand(); // qismet-lint: allow(ambient-rng)
}

void lineAboveEscape()
{
    // qismet-lint: allow(raw-thread)
    std::thread worker([] {});
    worker.join();
}

double reductionEscape(const std::unordered_map<int, double> &weights)
{
    double total = 0.0;
    // qismet-lint: allow(unordered-reduction)
    for (const auto &kv : weights) {
        total += kv.second;
    }
    return total;
}

void multiRuleEscape()
{
    std::thread t([] { srand(7); }); // qismet-lint: allow(raw-thread, ambient-rng)
    t.join();
}
