// Fixture: every loop here must trigger the unordered-reduction rule.
// This file is never compiled; it only feeds the linter's test suite.
#include <numeric>
#include <string>
#include <unordered_map>
#include <unordered_set>

double reduceOverUnorderedMap(
    const std::unordered_map<std::string, double> &weights)
{
    double total = 0.0;
    for (const auto &entry : weights) {
        total += entry.second; // fold order follows hash order
    }
    return total;
}

double reduceOverUnorderedSet(const std::unordered_set<int> &ids)
{
    double total = 0.0;
    for (int id : ids) {
        total *= static_cast<double>(id);
    }
    return total;
}

double accumulateOverUnordered(
    const std::unordered_map<int, double> &weights)
{
    return std::accumulate(weights.begin(), weights.end(), 0.0,
                           [](double acc, const auto &kv) {
                               return acc + kv.second;
                           });
}
