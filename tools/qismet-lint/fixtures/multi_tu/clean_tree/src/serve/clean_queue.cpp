// Clean fixture: the lock guards only the state mutation; the batch is
// dispatched after the guard's scope closes.
#include "serve/clean_queue.hpp"

std::vector<int> CleanQueue::collectLocked()
{
    std::vector<int> batch;
    batch.swap(pending_);
    return batch;
}

void CleanQueue::push(int job)
{
    std::vector<int> batch;
    {
        std::lock_guard<std::mutex> guard(mutex_);
        pending_.push_back(job);
        batch = collectLocked();
    }
    for (int queued : batch) {
        pool_->submit([queued] { (void)queued; });
    }
}
