// Clean fixture: the compliant counterpart of lo_submit — collect
// under the lock, release it, then dispatch.
#ifndef FIXTURE_CLEAN_TREE_QUEUE_HPP
#define FIXTURE_CLEAN_TREE_QUEUE_HPP

#include <memory>
#include <mutex>
#include <vector>

#include "common/thread_pool.hpp"

class CleanQueue
{
  public:
    void push(int job);

  private:
    std::vector<int> collectLocked();

    std::mutex mutex_;
    std::vector<int> pending_;
    std::unique_ptr<ThreadPool> pool_;
};

#endif
