// Clean fixture: the compliant counterpart of sl_reuse. Each helper
// gets its own substream derived before the calls, so no stream has
// two consumers and no pass should fire anywhere in this tree.
#include "common/rng.hpp"

double drawNoise(Rng &rng)
{
    return rng.uniform();
}

double scheduleNoise(const Rng &rng)
{
    Rng first = rng.splitStream(StreamDomain::kServeRun, 0);
    Rng second = rng.splitStream(StreamDomain::kServeRun, 1);
    const double a = drawNoise(first);
    const double b = drawNoise(second);
    return a - b;
}
