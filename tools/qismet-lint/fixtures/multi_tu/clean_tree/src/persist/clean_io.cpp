// Clean fixture: the compliant counterpart of du_unsynced — sync
// before rename, sync between truncate and append, checksum before
// decode.
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "common/atomic_file.hpp"
#include "common/codec.hpp"

void publishSnapshot(DurableFile &file, const std::string &tmp_path,
                     const std::string &final_path)
{
    file.sync();
    std::filesystem::rename(tmp_path, final_path);
}

void compactJournal(DurableFile &file, std::uint64_t offset,
                    const std::vector<std::uint8_t> &frame)
{
    file.truncateTo(offset);
    file.sync();
    file.append(frame);
    file.sync();
}

std::uint64_t loadCounter(const std::string &path)
{
    const std::string bytes = readFile(path);
    if (fnv1a64(bytes.data(), bytes.size()) == 0)
        return 0;
    Decoder dec(bytes);
    return dec.readU64();
}
