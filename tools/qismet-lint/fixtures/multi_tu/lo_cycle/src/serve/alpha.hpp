// Deliberately-bad fixture: one half of a lock-order cycle split
// across two headers. Alpha's own methods are individually fine; the
// cycle only exists once cross.cpp nests the two mutexes both ways.
#ifndef FIXTURE_LO_CYCLE_ALPHA_HPP
#define FIXTURE_LO_CYCLE_ALPHA_HPP

#include <mutex>

class Beta;

class Alpha
{
  public:
    void doA()
    {
        std::lock_guard<std::mutex> guard(mutexA_);
        ++countA_;
    }

    void aThenB(Beta &beta);

  private:
    std::mutex mutexA_;
    long countA_ = 0;
};

#endif
