// Deliberately-bad fixture: the other half of the cross-header cycle.
#ifndef FIXTURE_LO_CYCLE_BETA_HPP
#define FIXTURE_LO_CYCLE_BETA_HPP

#include <mutex>

class Alpha;

class Beta
{
  public:
    void doB()
    {
        std::lock_guard<std::mutex> guard(mutexB_);
        ++countB_;
    }

    void bThenA(Alpha &alpha);

  private:
    std::mutex mutexB_;
    long countB_ = 0;
};

#endif
