// Deliberately-bad fixture: closes the cycle. aThenB holds mutexA_
// while Beta::doB takes mutexB_; bThenA holds mutexB_ while Alpha::doA
// takes mutexA_. Run both concurrently and each thread can hold one
// mutex while waiting for the other.
#include "serve/alpha.hpp"
#include "serve/beta.hpp"

void Alpha::aThenB(Beta &beta)
{
    std::lock_guard<std::mutex> guard(mutexA_);
    beta.doB();
    ++countA_;
}

void Beta::bThenA(Alpha &alpha)
{
    std::lock_guard<std::mutex> guard(mutexB_);
    alpha.doA();
    ++countB_;
}
