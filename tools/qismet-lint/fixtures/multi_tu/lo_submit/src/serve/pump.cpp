// Deliberately-bad fixture: push() reaches ThreadPool::submit through
// pumpLocked while mutex_ is held (transitive), and pushDirect()
// submits under the lock outright. Both nest the pool's queue mutex
// under mutex_ and stall the fan-out behind the critical section.
#include "serve/queue.hpp"

void WorkQueue::pumpLocked()
{
    while (pending_ > 0) {
        --pending_;
        pool_->submit([] {});
    }
}

void WorkQueue::push(int job)
{
    std::lock_guard<std::mutex> guard(mutex_);
    pending_ += job;
    pumpLocked();
}

void WorkQueue::pushDirect(int job)
{
    std::lock_guard<std::mutex> guard(mutex_);
    pending_ += job;
    pool_->submit([] {});
}
