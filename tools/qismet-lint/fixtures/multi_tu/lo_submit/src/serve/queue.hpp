// Deliberately-bad fixture: the dispatch-under-lock antipattern the
// serve scheduler used to have. The header is clean; pump.cpp holds
// mutex_ across ThreadPool::submit, once directly and once through
// pumpLocked.
#ifndef FIXTURE_LO_SUBMIT_QUEUE_HPP
#define FIXTURE_LO_SUBMIT_QUEUE_HPP

#include <memory>
#include <mutex>

#include "common/thread_pool.hpp"

class WorkQueue
{
  public:
    void push(int job);
    void pushDirect(int job);

  private:
    void pumpLocked();

    std::mutex mutex_;
    int pending_ = 0;
    std::unique_ptr<ThreadPool> pool_;
};

#endif
