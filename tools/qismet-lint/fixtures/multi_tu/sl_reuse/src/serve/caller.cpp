// Deliberately-bad fixture: one Rng handed to two consuming callees.
// forwardDraw() advances the stream through a chain spanning two other
// translation units (forward.hpp -> draw.hpp), then drawOne() advances
// the *same* stream again — the two results are coupled, so adding a
// draw inside one helper silently shifts the other's replay.
#include "serve/forward.hpp"

double scheduleNoise(Rng &rng)
{
    const double a = forwardDraw(rng);
    const double b = drawOne(rng);
    return a - b;
}
