// Deliberately-bad fixture: terminal consumer of an Rng stream.
// The reuse bug lives two translation units away, in caller.cpp.
#ifndef FIXTURE_SL_REUSE_DRAW_HPP
#define FIXTURE_SL_REUSE_DRAW_HPP

#include "common/rng.hpp"

inline double drawOne(Rng &rng)
{
    return rng.uniform();
}

#endif
