// Deliberately-bad fixture: middle hop — forwards the stream by
// reference to the terminal consumer in draw.hpp. No bug here either;
// lineage only breaks at the caller.
#ifndef FIXTURE_SL_REUSE_FORWARD_HPP
#define FIXTURE_SL_REUSE_FORWARD_HPP

#include "serve/draw.hpp"

inline double forwardDraw(Rng &rng)
{
    return drawOne(rng);
}

#endif
