// Deliberately-bad fixture: three crash-safety ordering bugs.
//  1. publishSnapshot renames with no fsync of the temp file first —
//     a crash can expose an empty file at the final path.
//  2. compactJournal appends right after truncateTo with no sync
//     between — a crash can resurrect stale bytes past the new tail.
//  3. loadCounter decodes persisted bytes without verifying a
//     checksum — a torn tail parses as garbage instead of being
//     rejected.
#include "persist/publish.hpp"

#include <filesystem>

void publishSnapshot(const std::string &tmp_path,
                     const std::string &final_path)
{
    std::filesystem::rename(tmp_path, final_path);
}

void compactJournal(DurableFile &file, std::uint64_t offset,
                    const std::vector<std::uint8_t> &frame)
{
    file.truncateTo(offset);
    file.append(frame);
}

std::uint64_t loadCounter(const std::string &path)
{
    const std::string bytes = readFile(path);
    Decoder dec(bytes);
    return dec.readU64();
}
