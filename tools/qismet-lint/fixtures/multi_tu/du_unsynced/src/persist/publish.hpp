// Deliberately-bad fixture: declarations for the three
// durability-ordering violations in publish.cpp.
#ifndef FIXTURE_DU_UNSYNCED_PUBLISH_HPP
#define FIXTURE_DU_UNSYNCED_PUBLISH_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/atomic_file.hpp"
#include "common/codec.hpp"

void publishSnapshot(const std::string &tmp_path,
                     const std::string &final_path);
void compactJournal(DurableFile &file, std::uint64_t offset,
                    const std::vector<std::uint8_t> &frame);
std::uint64_t loadCounter(const std::string &path);

#endif
