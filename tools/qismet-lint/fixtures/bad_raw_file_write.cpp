// Fixture: every write-capable file API the raw-file-write rule must
// flag when it appears under src/. The test harness lints this file
// under a synthetic src/ path (the fixtures/ directory itself is
// outside the rule's scope by design).
#include <cstdio>
#include <fstream>
#include <string>

void dumpDirectly(const std::string &path)
{
    std::ofstream out(path); // finding 1: writable stream
    out << "torn on crash\n";
}

void updateInPlace(const std::string &path)
{
    std::fstream rw(path); // finding 2: read/write stream
    rw << "also torn\n";
}

void cStdio(const char *path)
{
    FILE *f = fopen(path, "w"); // finding 3: C stdio open
    std::fclose(f);
    std::freopen(path, "a", stdout); // finding 4: C stdio reopen
}

void readingIsFine(const std::string &path)
{
    std::ifstream in(path); // no finding: reads cannot tear files
    std::string line;
    std::getline(in, line);
}

void escapedWrite(const std::string &path)
{
    // qismet-lint: allow(raw-file-write) — fixture exercising the escape
    std::ofstream out(path);
    out << "deliberately suppressed\n";
}
