// Fixture: nothing in this file may trigger any qismet-lint rule.
// It deliberately walks close to every rule's boundary: deterministic
// RNG flowing through qismet::Rng, splits derived before dispatch,
// ordered reductions, timing (not seeding) from the steady clock, and
// smart-pointer ownership. This file is never compiled; it only feeds
// the linter's test suite.
#include "common/rng.hpp"
#include "common/thread_pool.hpp"

#include <chrono>
#include <map>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

// "new" and "delete" inside comments and strings must not fire: the
// old code used `new double[n]` and `delete[]`, which we removed.
const char *kBanner = "brand new deterministic engine (std::rand-free)";

class Estimator
{
  public:
    Estimator() = default;
    Estimator(const Estimator &) = delete; // deleted, not naked delete
    Estimator &operator=(const Estimator &) = delete;

    // A member named like the libc function is not ambient randomness.
    double rand() { return rng_.uniform(); }

  private:
    qismet::Rng rng_{42};
};

double splitBeforeDispatch(const qismet::ParallelExecutor &exec,
                           const qismet::Rng &seedRng, std::size_t n)
{
    // The determinism idiom: derive every task's sub-stream up front...
    std::vector<qismet::Rng> streams;
    streams.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        streams.push_back(seedRng.splitAt(i));
    }
    // ...then hand each task its own stream; no split inside the body.
    std::vector<double> slots(n, 0.0);
    exec.parallelFor(n, [&](std::size_t i) {
        slots[i] = streams[i].uniform();
    });
    // Index-ordered serial fold over a vector: deterministic.
    return std::accumulate(slots.begin(), slots.end(), 0.0);
}

double orderedReduction(const std::map<std::string, double> &weights)
{
    double total = 0.0;
    for (const auto &entry : weights) {
        total += entry.second; // std::map iterates in key order: fine
    }
    return total;
}

int lookupWithoutReduction(
    const std::unordered_map<std::string, int> &index, int fallback)
{
    // Unordered containers are fine for lookups and order-independent
    // scans; only numeric reductions over their iteration order race.
    auto it = index.find("target");
    for (const auto &entry : index) {
        if (entry.second < 0) {
            return fallback;
        }
    }
    return it == index.end() ? fallback : it->second;
}

double timedButNotSeeded(Estimator &est)
{
    // Clock use for *timing* is allowed; only clock-derived seeds fire.
    auto t0 = std::chrono::steady_clock::now();
    double value = est.rand();
    auto t1 = std::chrono::steady_clock::now();
    std::this_thread::sleep_for(t1 - t0); // this_thread is not std::thread
    return value;
}

std::unique_ptr<std::vector<double>> ownedBuffer(std::size_t n)
{
    auto buffer = std::make_unique<std::vector<double>>(n, 0.0);
    (*buffer)[0] = 1.0; // subscript bracket, not a lambda capture
    return buffer;
}
