// Fixture: every statement here must trigger the ambient-rng rule.
// This file is never compiled; it only feeds the linter's test suite.
#include <chrono>
#include <cstdlib>
#include <random>

int ambientLibcRand()
{
    return std::rand(); // line 10: std::rand
}

void ambientSrand()
{
    srand(1234); // line 15: unqualified srand call
}

unsigned ambientRandomDevice()
{
    std::random_device rd; // line 20: hardware entropy source
    return rd();
}

std::mt19937 ambientTimeSeededEngine()
{
    return std::mt19937(
        std::chrono::steady_clock::now().time_since_epoch().count());
}

void ambientTimeSeedCall(std::mt19937 &engine)
{
    engine.seed(time(nullptr)); // line 31: time-based reseed
}
