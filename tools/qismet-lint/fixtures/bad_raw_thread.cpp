// Fixture: every statement here must trigger the raw-thread rule.
// This file is never compiled; it only feeds the linter's test suite.
#include <future>
#include <thread>

void spawnRawThread()
{
    std::thread worker([] {}); // line 9: raw std::thread
    worker.join();
}

void spawnJthread()
{
    std::jthread worker([] {}); // line 15: raw std::jthread
}

int spawnAsync()
{
    auto result = std::async(std::launch::async, [] { return 1; });
    return result.get();
}
