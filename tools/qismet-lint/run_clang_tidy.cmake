# Runs the repository .clang-tidy profile over every translation unit in
# compile_commands.json scope. Invoked by the `lint` target and the
# lint.clang_tidy ctest:
#   cmake -DCLANG_TIDY=... -DSOURCE_DIR=... -DBUILD_DIR=... \
#         -P run_clang_tidy.cmake
# Fails (FATAL_ERROR) on the first file with findings; the per-directory
# .clang-tidy files under tests/ and bench/ tune the profile.

if(NOT CLANG_TIDY OR NOT SOURCE_DIR OR NOT BUILD_DIR)
    message(FATAL_ERROR
        "usage: cmake -DCLANG_TIDY=<exe> -DSOURCE_DIR=<dir> "
        "-DBUILD_DIR=<dir> -P run_clang_tidy.cmake")
endif()

if(NOT EXISTS ${BUILD_DIR}/compile_commands.json)
    message(FATAL_ERROR
        "lint: ${BUILD_DIR}/compile_commands.json missing — configure with "
        "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON (the default preset does)")
endif()

file(GLOB_RECURSE tidy_sources
    ${SOURCE_DIR}/src/*.cpp
    ${SOURCE_DIR}/bench/*.cpp
    ${SOURCE_DIR}/tests/*.cpp
    ${SOURCE_DIR}/examples/*.cpp
    ${SOURCE_DIR}/tools/*.cpp)
list(FILTER tidy_sources EXCLUDE REGEX "/fixtures/")

list(LENGTH tidy_sources count)
message(STATUS "lint: clang-tidy over ${count} files")

set(failed 0)
foreach(source IN LISTS tidy_sources)
    execute_process(
        COMMAND ${CLANG_TIDY} --quiet -p ${BUILD_DIR} ${source}
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
        message(STATUS "clang-tidy findings in ${source}:\n${out}${err}")
        set(failed 1)
    endif()
endforeach()

if(failed)
    message(FATAL_ERROR "lint: clang-tidy reported findings")
endif()
message(STATUS "lint: clang-tidy clean")
