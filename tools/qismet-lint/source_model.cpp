#include "source_model.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace qlint {

bool isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

namespace {

/** Parse `qismet-lint: allow(a, b)` / `allow-file(c)` escapes out of one
 *  comment. A line escape covers the comment's own line and the line
 *  below it, so it can sit at the end of the offending line or alone on
 *  the line above. */
void parseEscapes(const std::string &comment, int line, Scrubbed &out)
{
    const std::string marker = "qismet-lint:";
    std::size_t at = comment.find(marker);
    while (at != std::string::npos) {
        std::size_t cursor = at + marker.size();
        while (cursor < comment.size() &&
               std::isspace(static_cast<unsigned char>(comment[cursor])) !=
                   0) {
            ++cursor;
        }
        bool fileWide = comment.compare(cursor, 11, "allow-file(") == 0;
        bool lineWide = !fileWide && comment.compare(cursor, 6, "allow(") == 0;
        if (fileWide || lineWide) {
            std::size_t open = comment.find('(', cursor);
            std::size_t close = comment.find(')', open);
            if (open != std::string::npos && close != std::string::npos) {
                std::string args = comment.substr(open + 1, close - open - 1);
                std::replace(args.begin(), args.end(), ',', ' ');
                std::istringstream stream(args);
                std::string rule;
                while (stream >> rule) {
                    if (fileWide) {
                        out.fileAllows.insert(rule);
                    } else {
                        out.lineAllows[line].insert(rule);
                        out.lineAllows[line + 1].insert(rule);
                    }
                }
            }
        }
        at = comment.find(marker, at + marker.size());
    }
}

} // namespace

Scrubbed scrub(const std::string &src)
{
    Scrubbed out;
    out.text = src;
    int line = 1;
    std::size_t i = 0;
    const std::size_t n = src.size();

    auto blank = [&](std::size_t pos) {
        if (src[pos] != '\n') {
            out.text[pos] = ' ';
        }
    };

    while (i < n) {
        char c = src[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        // Line comment.
        if (c == '/' && i + 1 < n && src[i + 1] == '/') {
            std::size_t start = i;
            while (i < n && src[i] != '\n') {
                blank(i);
                ++i;
            }
            parseEscapes(src.substr(start, i - start), line, out);
            continue;
        }
        // Block comment.
        if (c == '/' && i + 1 < n && src[i + 1] == '*') {
            std::size_t start = i;
            int startLine = line;
            blank(i);
            blank(i + 1);
            i += 2;
            while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
                if (src[i] == '\n') {
                    ++line;
                }
                blank(i);
                ++i;
            }
            if (i + 1 < n) {
                blank(i);
                blank(i + 1);
                i += 2;
            } else {
                i = n;
            }
            parseEscapes(src.substr(start, i - start), startLine, out);
            continue;
        }
        // Raw string literal R"delim( ... )delim".
        if (c == 'R' && i + 1 < n && src[i + 1] == '"' &&
            (i == 0 || !isIdentChar(src[i - 1]))) {
            std::size_t open = src.find('(', i + 2);
            if (open != std::string::npos) {
                std::string delim = src.substr(i + 2, open - i - 2);
                std::string closer = ")" + delim + "\"";
                std::size_t end = src.find(closer, open + 1);
                std::size_t stop =
                    end == std::string::npos ? n : end + closer.size();
                for (std::size_t k = i; k < stop; ++k) {
                    if (src[k] == '\n') {
                        ++line;
                    }
                    blank(k);
                }
                i = stop;
                continue;
            }
        }
        // String / char literal.
        if (c == '"' || c == '\'') {
            char quote = c;
            blank(i);
            ++i;
            while (i < n && src[i] != quote) {
                if (src[i] == '\\' && i + 1 < n) {
                    blank(i);
                    ++i;
                }
                if (src[i] == '\n') {
                    ++line;
                }
                blank(i);
                ++i;
            }
            if (i < n) {
                blank(i);
                ++i;
            }
            continue;
        }
        ++i;
    }
    return out;
}

std::vector<Token> tokenize(const std::string &text)
{
    std::vector<Token> tokens;
    int line = 1;
    std::size_t i = 0;
    while (i < text.size()) {
        if (text[i] == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (isIdentStart(text[i])) {
            std::size_t start = i;
            while (i < text.size() && isIdentChar(text[i])) {
                ++i;
            }
            tokens.push_back({text.substr(start, i - start), start, i, line});
            continue;
        }
        ++i;
    }
    return tokens;
}

std::size_t prevNonSpace(const std::string &text, std::size_t pos)
{
    while (pos > 0) {
        --pos;
        char c = text[pos];
        if (std::isspace(static_cast<unsigned char>(c)) == 0) {
            return pos;
        }
    }
    return std::string::npos;
}

std::size_t nextNonSpace(const std::string &text, std::size_t pos)
{
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
        ++pos;
    }
    return pos < text.size() ? pos : std::string::npos;
}

std::size_t matchDelim(const std::string &text, std::size_t open)
{
    char oc = text[open];
    char cc = oc == '(' ? ')' : (oc == '{' ? '}' : ']');
    int depth = 0;
    for (std::size_t i = open; i < text.size(); ++i) {
        if (text[i] == oc) {
            ++depth;
        } else if (text[i] == cc) {
            if (--depth == 0) {
                return i;
            }
        }
    }
    return std::string::npos;
}

std::size_t matchAngle(const std::string &text, std::size_t open)
{
    int depth = 0;
    int paren = 0;
    for (std::size_t i = open; i < text.size(); ++i) {
        char c = text[i];
        if (c == '(') {
            ++paren;
        } else if (c == ')') {
            --paren;
        } else if (paren == 0 && c == '<') {
            ++depth;
        } else if (paren == 0 && c == '>') {
            if (i > 0 && text[i - 1] == '-') {
                continue; // -> operator
            }
            if (--depth == 0) {
                return i;
            }
        } else if (c == ';') {
            return std::string::npos; // statement ended: not a template
        }
    }
    return std::string::npos;
}

bool hasQualifier(const std::string &text, std::size_t pos,
                  std::string &qualifier)
{
    std::size_t p = prevNonSpace(text, pos);
    if (p == std::string::npos || text[p] != ':' || p == 0 ||
        text[p - 1] != ':') {
        return false;
    }
    std::size_t q = prevNonSpace(text, p - 1);
    if (q == std::string::npos || !isIdentChar(text[q])) {
        qualifier.clear();
        return true;
    }
    std::size_t end = q + 1;
    while (q > 0 && isIdentChar(text[q - 1])) {
        --q;
    }
    qualifier = text.substr(q, end - q);
    return true;
}

bool isMemberAccess(const std::string &text, std::size_t pos)
{
    std::size_t p = prevNonSpace(text, pos);
    if (p == std::string::npos) {
        return false;
    }
    if (text[p] == '.') {
        return true;
    }
    return text[p] == '>' && p > 0 && text[p - 1] == '-';
}

bool isCalled(const std::string &text, std::size_t end)
{
    std::size_t p = nextNonSpace(text, end);
    return p != std::string::npos && text[p] == '(';
}

bool pathEndsWith(const std::string &path, const std::string &suffix)
{
    if (path.size() < suffix.size()) {
        return false;
    }
    if (path.compare(path.size() - suffix.size(), suffix.size(), suffix) !=
        0) {
        return false;
    }
    return path.size() == suffix.size() ||
           path[path.size() - suffix.size() - 1] == '/';
}

bool pathAllowed(const std::string &path,
                 const std::vector<std::string> &suffixes)
{
    return std::any_of(suffixes.begin(), suffixes.end(),
                       [&](const std::string &s) {
                           return pathEndsWith(path, s);
                       });
}

bool underSrcTree(const std::string &path)
{
    return path.rfind("src/", 0) == 0 ||
           path.find("/src/") != std::string::npos;
}

bool underTrees(const std::string &path,
                const std::vector<std::string> &trees)
{
    for (const std::string &tree : trees) {
        if (path.rfind(tree, 0) == 0 ||
            path.find("/" + tree) != std::string::npos) {
            return true;
        }
    }
    return false;
}

} // namespace qlint
