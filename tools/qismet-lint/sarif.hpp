/**
 * @file
 * SARIF 2.1.0 emission for qismet-lint findings, so CI systems and
 * editors that speak the Static Analysis Results Interchange Format can
 * ingest the linter's output directly. The emitter produces the minimal
 * valid document: one run, tool.driver with per-rule metadata from the
 * rule-doc registry, and one result per finding with a physical
 * location. No external JSON library: the subset of JSON needed here is
 * strings, objects and arrays, hand-escaped.
 */

#ifndef QISMET_TOOLS_LINT_SARIF_HPP
#define QISMET_TOOLS_LINT_SARIF_HPP

#include "lint_rules.hpp"

#include <string>
#include <vector>

namespace qlint {

/** Escape a string for embedding in a JSON document (adds no quotes). */
std::string jsonEscape(const std::string &s);

/**
 * Render findings as a SARIF 2.1.0 document.
 *
 * The document carries `version`, `$schema`, and a single run whose
 * `tool.driver` lists every registered rule (id, shortDescription,
 * fullDescription, helpUri-free) and whose `results` reference rules by
 * id with `level: "error"` and a physicalLocation (artifact URI +
 * region.startLine).
 */
std::string renderSarif(const std::vector<Finding> &findings);

} // namespace qlint

#endif // QISMET_TOOLS_LINT_SARIF_HPP
