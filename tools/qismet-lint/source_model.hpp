/**
 * @file
 * Lexical source model shared by the per-file rule engine
 * (lint_rules.cpp) and the cross-TU semantic index
 * (semantic_index.cpp).
 *
 * qismet-lint deliberately does not parse C++ — it lexes it. The model
 * is a scrubbed text buffer (comments and literals blanked, line
 * structure preserved), an identifier token stream over that buffer,
 * and a handful of cursor helpers (delimiter matching, qualifier and
 * member-access detection). That is enough to express every invariant
 * the linter polices, and it keeps the tool dependency-free and fast
 * enough to run on every file of the tree in the tier1 gate.
 */

#ifndef QISMET_TOOLS_LINT_SOURCE_MODEL_HPP
#define QISMET_TOOLS_LINT_SOURCE_MODEL_HPP

#include <map>
#include <set>
#include <string>
#include <vector>

namespace qlint {

bool isIdentChar(char c);
bool isIdentStart(char c);

/**
 * Source text with comments, string literals and char literals blanked
 * out (replaced by spaces, newlines preserved), plus the suppression
 * escapes harvested from the comments while blanking them.
 */
struct Scrubbed
{
    std::string text; ///< Same length/line structure as the input.
    /** Rules allowed on a given 1-based line via inline escapes. */
    std::map<int, std::set<std::string>> lineAllows;
    /** Rules disabled for the whole file via allow-file escapes. */
    std::set<std::string> fileAllows;

    bool allowed(const std::string &rule, int line) const
    {
        if (fileAllows.count(rule) != 0) {
            return true;
        }
        auto it = lineAllows.find(line);
        return it != lineAllows.end() && it->second.count(rule) != 0;
    }
};

/** Blank comments/literals and harvest `qismet-lint:` escapes. */
Scrubbed scrub(const std::string &src);

/** Identifier token with its position in the scrubbed text. */
struct Token
{
    std::string name;
    std::size_t pos; ///< First character offset.
    std::size_t end; ///< One past the last character.
    int line;        ///< 1-based.
};

/** All identifier tokens of a scrubbed buffer, in order. */
std::vector<Token> tokenize(const std::string &text);

/** Offset of the previous non-space character before `pos`, or npos. */
std::size_t prevNonSpace(const std::string &text, std::size_t pos);

/** Offset of the first non-space character at or after `pos`, or npos. */
std::size_t nextNonSpace(const std::string &text, std::size_t pos);

/** Matching close index for the paren/brace/bracket at `open`, or npos. */
std::size_t matchDelim(const std::string &text, std::size_t open);

/** Matching '>' for the '<' at `open`, tolerating nested parens. */
std::size_t matchAngle(const std::string &text, std::size_t open);

/**
 * Namespace qualifier of the token at `pos`, when written `qual::name`.
 * Returns true and fills `qualifier` ("" for a leading `::`).
 */
bool hasQualifier(const std::string &text, std::size_t pos,
                  std::string &qualifier);

/** True when the token at `pos` is accessed as a member (`.x` / `->x`). */
bool isMemberAccess(const std::string &text, std::size_t pos);

/** True when the token ending at `end` is immediately called. */
bool isCalled(const std::string &text, std::size_t end);

/** True when `path` ends with `suffix` on a path-component boundary. */
bool pathEndsWith(const std::string &path, const std::string &suffix);

/** True when `path` matches any of the suffixes. */
bool pathAllowed(const std::string &path,
                 const std::vector<std::string> &suffixes);

/** True for files in the shipped source tree (`src/...`). */
bool underSrcTree(const std::string &path);

/** True for files under any of the given trees (e.g. "src/serve/"). */
bool underTrees(const std::string &path,
                const std::vector<std::string> &trees);

} // namespace qlint

#endif // QISMET_TOOLS_LINT_SOURCE_MODEL_HPP
