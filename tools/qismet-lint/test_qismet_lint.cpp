/**
 * @file
 * Test suite for the qismet-lint rule engine.
 *
 * Two layers: focused unit tests running each rule against small inline
 * snippets (both firing and deliberately-close non-firing shapes), and
 * fixture tests running the full engine over the known-bad / known-good
 * files in fixtures/ (path injected as QISMET_LINT_FIXTURE_DIR).
 */

#include "lint_rules.hpp"
#include "test_support.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace {

using qlint::Finding;
using qlint::lintFile;
using qlint::lintSource;
using qlint_test::countRule;
using qlint_test::fixture;
using qlint_test::fixtureSource;
using qlint_test::lintFixture;
using qlint_test::ruleFindings;

// ---- rule registry -------------------------------------------------------

TEST(LintRegistry, AllTwelveRulesRegistered)
{
    const auto &rules = qlint::allRules();
    ASSERT_EQ(rules.size(), 12u);
    for (const char *rule :
         {"ambient-rng", "unordered-reduction", "raw-thread",
          "raw-file-write", "naked-new", "split-in-task",
          "dense-matrix-in-loop", "stream-offset", "unbounded-retry",
          "stream-lineage", "lock-order", "durability-ordering"}) {
        EXPECT_NE(std::find(rules.begin(), rules.end(), rule), rules.end())
            << rule;
    }
}

TEST(LintRegistry, LintablePaths)
{
    EXPECT_TRUE(qlint::isLintablePath("src/a.cpp"));
    EXPECT_TRUE(qlint::isLintablePath("src/a.hpp"));
    EXPECT_TRUE(qlint::isLintablePath("src/a.h"));
    EXPECT_TRUE(qlint::isLintablePath("src/a.cc"));
    EXPECT_FALSE(qlint::isLintablePath("CMakeLists.txt"));
    EXPECT_FALSE(qlint::isLintablePath("README.md"));
}

// ---- ambient-rng ---------------------------------------------------------

TEST(AmbientRng, FiresOnStdRandAndSrand)
{
    EXPECT_EQ(countRule("src/x.cpp", "int f() { return std::rand(); }",
                        "ambient-rng"),
              1);
    EXPECT_EQ(countRule("src/x.cpp", "void f() { srand(7); }", "ambient-rng"),
              1);
}

TEST(AmbientRng, FiresOnRandomDevice)
{
    EXPECT_EQ(countRule("src/x.cpp", "std::random_device rd;", "ambient-rng"),
              1);
}

TEST(AmbientRng, FiresOnTimeSeeding)
{
    EXPECT_EQ(countRule("src/x.cpp",
                        "std::mt19937 gen(std::chrono::steady_clock::now()"
                        ".time_since_epoch().count());",
                        "ambient-rng"),
              1);
    EXPECT_EQ(countRule("src/x.cpp", "engine.seed(time(nullptr));",
                        "ambient-rng"),
              1);
}

TEST(AmbientRng, AllowedInsideRngImplementation)
{
    // The one blessed home for entropy plumbing.
    EXPECT_EQ(countRule("src/common/rng.cpp",
                        "std::random_device rd; (void)rd;", "ambient-rng"),
              0);
}

TEST(AmbientRng, IgnoresMembersAndDeclarationsNamedRand)
{
    EXPECT_EQ(countRule("src/x.cpp", "double v = dist.rand();",
                        "ambient-rng"),
              0);
    EXPECT_EQ(countRule("src/x.cpp", "double rand() { return 0.0; }",
                        "ambient-rng"),
              0);
    // `return rand()` is a real call even though `return` precedes it.
    EXPECT_EQ(countRule("src/x.cpp", "int f() { return rand(); }",
                        "ambient-rng"),
              1);
}

TEST(AmbientRng, IgnoresTimingWithoutSeeding)
{
    EXPECT_EQ(countRule("src/x.cpp",
                        "auto t0 = std::chrono::steady_clock::now();",
                        "ambient-rng"),
              0);
}

// ---- unordered-reduction -------------------------------------------------

TEST(UnorderedReduction, FiresOnRangeForAccumulation)
{
    const char *src = R"(
        double f(const std::unordered_map<std::string, double> &m) {
            double total = 0.0;
            for (const auto &kv : m) total += kv.second;
            return total;
        })";
    EXPECT_EQ(countRule("src/x.cpp", src, "unordered-reduction"), 1);
}

TEST(UnorderedReduction, FiresOnStdAccumulate)
{
    const char *src = R"(
        std::unordered_set<int> ids;
        double f() {
            return std::accumulate(ids.begin(), ids.end(), 0.0);
        })";
    EXPECT_EQ(countRule("src/x.cpp", src, "unordered-reduction"), 1);
}

TEST(UnorderedReduction, IgnoresOrderedContainers)
{
    const char *src = R"(
        double f(const std::map<std::string, double> &m,
                 const std::vector<double> &v) {
            double total = std::accumulate(v.begin(), v.end(), 0.0);
            for (const auto &kv : m) total += kv.second;
            return total;
        })";
    EXPECT_EQ(countRule("src/x.cpp", src, "unordered-reduction"), 0);
}

TEST(UnorderedReduction, IgnoresNonReducingIteration)
{
    const char *src = R"(
        bool f(const std::unordered_map<int, int> &m) {
            for (const auto &kv : m)
                if (kv.second < 0) return true;
            return false;
        })";
    EXPECT_EQ(countRule("src/x.cpp", src, "unordered-reduction"), 0);
}

// ---- raw-thread ----------------------------------------------------------

TEST(RawThread, FiresOnThreadJthreadAsync)
{
    EXPECT_EQ(countRule("src/x.cpp", "std::thread t([]{}); t.join();",
                        "raw-thread"),
              1);
    EXPECT_EQ(countRule("src/x.cpp", "std::jthread t([]{});", "raw-thread"),
              1);
    EXPECT_EQ(countRule("src/x.cpp",
                        "auto f = std::async(std::launch::async, []{});",
                        "raw-thread"),
              1);
}

TEST(RawThread, AllowedInsideThreadPool)
{
    EXPECT_EQ(countRule("src/common/thread_pool.cpp",
                        "workers_.emplace_back(std::thread([]{}));",
                        "raw-thread"),
              0);
    EXPECT_EQ(countRule("src/common/thread_pool.hpp",
                        "std::vector<std::thread> workers_;", "raw-thread"),
              0);
}

TEST(RawThread, IgnoresThisThreadAndHeaders)
{
    EXPECT_EQ(countRule("src/x.cpp",
                        "std::this_thread::sleep_for(delay); "
                        "#include <thread>",
                        "raw-thread"),
              0);
}

// ---- raw-file-write ------------------------------------------------------

TEST(RawFileWrite, FiresOnWritableStreamsUnderSrc)
{
    EXPECT_EQ(countRule("src/x.cpp", "std::ofstream out(\"a.csv\");",
                        "raw-file-write"),
              1);
    EXPECT_EQ(countRule("src/x.cpp", "std::fstream rw(\"a.bin\");",
                        "raw-file-write"),
              1);
    EXPECT_EQ(countRule("/root/repo/src/x.cpp",
                        "std::ofstream out(\"a.csv\");", "raw-file-write"),
              1);
}

TEST(RawFileWrite, FiresOnCStdioOpens)
{
    EXPECT_EQ(countRule("src/x.cpp", "FILE *f = fopen(\"a\", \"w\");",
                        "raw-file-write"),
              1);
    EXPECT_EQ(countRule("src/x.cpp",
                        "std::freopen(\"a\", \"a\", stdout);",
                        "raw-file-write"),
              1);
}

TEST(RawFileWrite, IgnoresReadsIncludesAndMembers)
{
    // std::ifstream cannot tear a file.
    EXPECT_EQ(countRule("src/x.cpp", "std::ifstream in(\"a.csv\");",
                        "raw-file-write"),
              0);
    // The include itself is unqualified; only std:: usages fire.
    EXPECT_EQ(countRule("src/x.cpp", "#include <fstream>\nint x;",
                        "raw-file-write"),
              0);
    // Member functions that happen to share a name are not C stdio.
    EXPECT_EQ(countRule("src/x.cpp", "archive.fopen(path);",
                        "raw-file-write"),
              0);
}

TEST(RawFileWrite, ScopedToSrcTreeOnly)
{
    // Tests, benches and tools write scratch files directly — some
    // (journal fuzzers) write torn files on purpose.
    for (const char *path : {"tests/persist/test_journal.cpp",
                             "bench/bench_sweep.cpp",
                             "tools/qismet-lint/lint_rules.cpp"}) {
        EXPECT_EQ(countRule(path, "std::ofstream out(\"a\"); fopen(\"b\", "
                                  "\"w\");",
                            "raw-file-write"),
                  0)
            << path;
    }
}

TEST(RawFileWrite, AllowedInsideAtomicFileLayer)
{
    EXPECT_EQ(countRule("src/common/atomic_file.cpp",
                        "std::ofstream out(tmp);", "raw-file-write"),
              0);
    EXPECT_EQ(countRule("src/common/atomic_file.hpp",
                        "FILE *f = fopen(tmp, \"w\");", "raw-file-write"),
              0);
}

TEST(RawFileWrite, EscapeSuppressesFinding)
{
    EXPECT_EQ(countRule("src/x.cpp",
                        "std::ofstream out(p); // qismet-lint: "
                        "allow(raw-file-write)",
                        "raw-file-write"),
              0);
}

TEST(RawFileWrite, FixtureFiresUnderSyntheticSrcPath)
{
    const auto findings = lintSource("src/persist/bad_raw_file_write.cpp",
                                     fixtureSource("bad_raw_file_write.cpp"));
    const auto hits = ruleFindings(findings, "raw-file-write");
    EXPECT_EQ(hits.size(), 4u);
    for (const Finding &f : hits) {
        EXPECT_GT(f.line, 0);
        EXPECT_FALSE(f.message.empty());
    }
    // Outside src/ (the fixture's real path) the rule stays silent.
    EXPECT_TRUE(lintFile(fixture("bad_raw_file_write.cpp")).empty());
}

// ---- naked-new -----------------------------------------------------------

TEST(NakedNew, FiresOnNewAndDelete)
{
    EXPECT_EQ(countRule("src/x.cpp", "int *p = new int(3);", "naked-new"),
              1);
    EXPECT_EQ(countRule("src/x.cpp", "delete p;", "naked-new"), 1);
    EXPECT_EQ(countRule("src/x.cpp", "delete[] arr;", "naked-new"), 1);
}

TEST(NakedNew, IgnoresDeletedFunctionsAndComments)
{
    EXPECT_EQ(countRule("src/x.cpp", "Foo(const Foo &) = delete;",
                        "naked-new"),
              0);
    EXPECT_EQ(countRule("src/x.cpp",
                        "// the new engine replaced delete-heavy code\n"
                        "const char *s = \"new delete\";",
                        "naked-new"),
              0);
}

// ---- split-in-task -------------------------------------------------------

TEST(SplitInTask, FiresInsideDispatchLambdas)
{
    const char *inParallelFor = R"(
        exec.parallelFor(n, [&](std::size_t i) {
            Rng task = rng.splitAt(i);
            out[i] = task.uniform();
        });)";
    EXPECT_EQ(countRule("src/x.cpp", inParallelFor, "split-in-task"), 1);

    const char *inSubmit = R"(
        pool.submit([&] { use(rng.split()); });)";
    EXPECT_EQ(countRule("src/x.cpp", inSubmit, "split-in-task"), 1);

    const char *inMap = R"(
        auto v = exec.map<double>(8, [&](std::size_t i) {
            return rng.splitAt(i).uniform();
        });)";
    EXPECT_EQ(countRule("src/x.cpp", inMap, "split-in-task"), 1);
}

TEST(SplitInTask, IgnoresSplitBeforeDispatch)
{
    const char *src = R"(
        std::vector<Rng> streams;
        for (std::size_t i = 0; i < n; ++i)
            streams.push_back(rng.splitAt(i));
        exec.parallelFor(n, [&](std::size_t i) {
            out[i] = streams[i].uniform();
        });)";
    EXPECT_EQ(countRule("src/x.cpp", src, "split-in-task"), 0);
}

TEST(SplitInTask, IgnoresSplitInDispatchArgumentPosition)
{
    // Evaluated on the dispatching thread before the task runs: fine.
    const char *src = "pool.submit(makeTask(rng.splitAt(3)));";
    EXPECT_EQ(countRule("src/x.cpp", src, "split-in-task"), 0);
}

// ---- suppression escapes -------------------------------------------------

TEST(Suppression, SameLineEscape)
{
    EXPECT_EQ(countRule("src/x.cpp",
                        "int v = std::rand(); // qismet-lint: "
                        "allow(ambient-rng)",
                        "ambient-rng"),
              0);
}

TEST(Suppression, LineAboveEscape)
{
    EXPECT_EQ(countRule("src/x.cpp",
                        "// qismet-lint: allow(naked-new)\n"
                        "int *p = new int(1);",
                        "naked-new"),
              0);
}

TEST(Suppression, FileWideEscape)
{
    EXPECT_EQ(countRule("src/x.cpp",
                        "// qismet-lint: allow-file(raw-thread)\n"
                        "std::thread a([]{});\n"
                        "std::thread b([]{});",
                        "raw-thread"),
              0);
}

TEST(Suppression, EscapeIsRuleSpecific)
{
    // An escape for one rule must not silence another on the same line.
    EXPECT_EQ(countRule("src/x.cpp",
                        "int *p = new int(std::rand()); // qismet-lint: "
                        "allow(naked-new)",
                        "ambient-rng"),
              1);
}

// ---- dense-matrix-in-loop ------------------------------------------------

TEST(DenseMatrixInLoop, FiresInsideForAndWhileBodies)
{
    const std::string src = R"(
        void f(const std::vector<Gate> &gates) {
            for (const Gate &g : gates) {
                auto m = g.matrix();
            }
            std::size_t s = 0;
            while (s < 8) {
                apply(gate.matrix());
                ++s;
            }
        }
    )";
    EXPECT_EQ(countRule("src/sim/statevector.cpp", src,
                        "dense-matrix-in-loop"),
              2);
}

TEST(DenseMatrixInLoop, FiresInSingleStatementBody)
{
    const std::string src = R"(
        void f(const std::vector<Gate> &gates) {
            for (const Gate &g : gates)
                apply(g.matrix());
        }
    )";
    EXPECT_EQ(countRule("src/vqe/energy_estimator.cpp", src,
                        "dense-matrix-in-loop"),
              1);
}

TEST(DenseMatrixInLoop, SilentOutsideLoopBodies)
{
    const std::string src = R"(
        void f(const Gate &gate) {
            const auto m = gate.matrix();
            for (std::size_t s = 0; s < 8; ++s) {
                apply(m);
            }
        }
    )";
    EXPECT_EQ(countRule("src/sim/statevector.cpp", src,
                        "dense-matrix-in-loop"),
              0);
}

TEST(DenseMatrixInLoop, SilentOutsideHotTrees)
{
    // Only src/sim and src/vqe are per-amplitude hot layers; setup code,
    // tests and benches may call matrix() freely.
    const std::string src = R"(
        void f(const std::vector<Gate> &gates) {
            for (const Gate &g : gates) {
                auto m = g.matrix();
            }
        }
    )";
    for (const char *path :
         {"src/circuit/gate.cpp", "tests/sim/test_statevector.cpp",
          "bench/bench_perf_kernels.cpp"}) {
        EXPECT_EQ(countRule(path, src, "dense-matrix-in-loop"), 0) << path;
    }
}

TEST(DenseMatrixInLoop, NonMemberAndUncalledMatrixTokensIgnored)
{
    const std::string src = R"(
        void f() {
            for (int i = 0; i < 4; ++i) {
                Matrix matrix = identity();
                auto fn = &Gate::matrix;
                use(matrix, fn);
            }
        }
    )";
    EXPECT_EQ(countRule("src/sim/kraus.cpp", src, "dense-matrix-in-loop"),
              0);
}

TEST(DenseMatrixInLoop, SuppressibleOnTheOffendingLine)
{
    const std::string src = R"(
        void f(const std::vector<Gate> &gates) {
            for (const Gate &g : gates) {
                auto m = g.matrix(); // qismet-lint: allow(dense-matrix-in-loop)
            }
        }
    )";
    EXPECT_EQ(countRule("src/sim/statevector.cpp", src,
                        "dense-matrix-in-loop"),
              0);
}

TEST(DenseMatrixInLoop, FixtureFiresUnderSyntheticSimPath)
{
    const auto findings =
        lintSource("src/sim/bad_dense_matrix_in_loop.cpp",
                   fixtureSource("bad_dense_matrix_in_loop.cpp"));
    EXPECT_EQ(findings.size(), 3u);
    for (const Finding &f : findings) {
        EXPECT_EQ(f.rule, "dense-matrix-in-loop")
            << f.file << ":" << f.line;
    }
    // Under the fixture's real path (outside src/sim) the rule is silent.
    EXPECT_TRUE(lintFile(fixture("bad_dense_matrix_in_loop.cpp")).empty());
}

// ---- stream-offset -------------------------------------------------------

TEST(StreamOffset, FiresOnSplitCallsUnderServe)
{
    EXPECT_EQ(countRule("src/serve/scheduler.cpp",
                        "Rng leg = rng.splitAt(jobId);", "stream-offset"),
              1);
    EXPECT_EQ(countRule("src/serve/backend_pool.cpp",
                        "Rng next = rng.split();", "stream-offset"),
              1);
}

TEST(StreamOffset, FiresOnAffineSeedArithmetic)
{
    EXPECT_EQ(countRule("src/serve/scheduler.cpp",
                        "Rng rng(spec.seed + tenantId);", "stream-offset"),
              1);
    EXPECT_EQ(countRule("src/serve/scheduler.cpp",
                        "Rng rng(seed - tenantId);", "stream-offset"),
              1);
    EXPECT_EQ(countRule("src/serve/scheduler.cpp",
                        "Rng rng{tenant * 1000 + run};", "stream-offset"),
              1);
    EXPECT_EQ(countRule("src/serve/scheduler.cpp",
                        "const std::uint64_t s = deriveStreamSeed(root, "
                        "StreamDomain::kServeRun, tenant * 64 + run);",
                        "stream-offset"),
              1);
    EXPECT_EQ(countRule("src/serve/scheduler.cpp",
                        "Rng leg = rng.splitStream(StreamDomain::kServeRun, "
                        "(tenant << 20) | run);",
                        "stream-offset"),
              1);
}

TEST(StreamOffset, IgnoresAvalanchedDerivations)
{
    EXPECT_EQ(countRule("src/serve/backend_pool.cpp",
                        "b.streamSeed = deriveStreamSeed(seed, "
                        "StreamDomain::kBackend, id);",
                        "stream-offset"),
              0);
    EXPECT_EQ(countRule("src/serve/scheduler.cpp",
                        "Rng rng(deriveStreamSeed(root, "
                        "StreamDomain::kServeRun, jobId));",
                        "stream-offset"),
              0);
    EXPECT_EQ(countRule("src/serve/scheduler.cpp",
                        "Rng leg = rng.splitStream(StreamDomain::kServeRun, "
                        "jobId);",
                        "stream-offset"),
              0);
    // References, parameters and plain mentions carry no ctor args.
    EXPECT_EQ(countRule("src/serve/scheduler.cpp",
                        "void f(Rng &rng, const Rng *other);",
                        "stream-offset"),
              0);
}

TEST(StreamOffset, ScopedToServeTreeOnly)
{
    // Pre-serve derivations keep their historical form for trace
    // stability; tests and tools are free to construct ad-hoc streams.
    const char *src = "Rng rng(seed + tenant); Rng leg = rng.splitAt(i);";
    for (const char *path :
         {"src/core/qismet_runner.cpp", "src/common/rng.cpp",
          "tests/serve/test_serve_core.cpp", "tools/serve_soak.cpp"}) {
        EXPECT_EQ(countRule(path, src, "stream-offset"), 0) << path;
    }
}

TEST(StreamOffset, SuppressibleAndIncrementTolerant)
{
    EXPECT_EQ(countRule("src/serve/scheduler.cpp",
                        "Rng rng(seed + tenant); // qismet-lint: "
                        "allow(stream-offset)",
                        "stream-offset"),
              0);
    // ++/--, -> and unary minus are not offset arithmetic.
    EXPECT_EQ(countRule("src/serve/scheduler.cpp",
                        "Rng rng(nextSeed(it->second, idx++));",
                        "stream-offset"),
              0);
    EXPECT_EQ(countRule("src/serve/scheduler.cpp",
                        "Rng rng(pick(seed, -1));", "stream-offset"),
              0);
}

TEST(StreamOffset, FixtureFiresUnderSyntheticServePath)
{
    const auto findings =
        lintSource("src/serve/bad_stream_offset.cpp",
                   fixtureSource("bad_stream_offset.cpp"));
    const auto hits = ruleFindings(findings, "stream-offset");
    EXPECT_EQ(hits.size(), 5u);
    for (const Finding &f : hits) {
        EXPECT_GT(f.line, 0);
        EXPECT_FALSE(f.message.empty());
    }
    // Under the fixture's real path (outside src/serve) the rule — and
    // every other rule — stays silent.
    EXPECT_TRUE(lintFile(fixture("bad_stream_offset.cpp")).empty());
}

// ---- unbounded-retry -----------------------------------------------------

TEST(UnboundedRetry, FiresOnRetryLoopsWithoutAVisibleBound)
{
    EXPECT_EQ(countRule("src/serve/backend_pool.cpp",
                        "while (true) { if (send(req).ok) break; "
                        "++retryCount; }",
                        "unbounded-retry"),
              1);
    EXPECT_EQ(countRule("src/vqe/vqe_driver.cpp",
                        "while (!ok) { ok = attemptOnce(); }",
                        "unbounded-retry"),
              1);
    // The backoff shapes the delay between attempts, not their count.
    EXPECT_EQ(countRule("src/serve/scheduler.cpp",
                        "for (;;) { if (sendWithBackoff(job)) return; }",
                        "unbounded-retry"),
              1);
}

TEST(UnboundedRetry, AcceptsComparisonBoundsInTheCondition)
{
    EXPECT_EQ(countRule("src/serve/backend_pool.cpp",
                        "while (retries < policy.maxRetries) { "
                        "if (send(req).ok) break; ++retries; }",
                        "unbounded-retry"),
              0);
    EXPECT_EQ(countRule("src/serve/scheduler.cpp",
                        "for (int attempt = 0; attempt < 5; ++attempt) { "
                        "if (send(req).ok) return; }",
                        "unbounded-retry"),
              0);
    // `<<`, `>>` and `->` are not comparisons: this one still fires.
    EXPECT_EQ(countRule("src/serve/scheduler.cpp",
                        "while (it->active) { log << retryState(it); }",
                        "unbounded-retry"),
              1);
}

TEST(UnboundedRetry, AcceptsNamedBudgetAndBreakerChecks)
{
    EXPECT_EQ(countRule("src/serve/backend_pool.cpp",
                        "while (!done) { if (budgetRemaining(b) == 0) "
                        "break; done = retryOnce(); }",
                        "unbounded-retry"),
              0);
    EXPECT_EQ(countRule("src/serve/backend_pool.cpp",
                        "while (!done) { if (breaker.open()) break; "
                        "done = retryOnce(); }",
                        "unbounded-retry"),
              0);
    EXPECT_EQ(countRule("src/serve/scheduler.cpp",
                        "while (true) { if (attempt == deadline) break; "
                        "++attempt; }",
                        "unbounded-retry"),
              0);
}

TEST(UnboundedRetry, IgnoresRangeForLoops)
{
    // Range-for is bounded by its container even when it walks retry
    // state (the digest layer serializes rec.retryIndex this way).
    EXPECT_EQ(countRule("src/vqe/run_digest.cpp",
                        "for (const VqeJobRecord &rec : run.history) { "
                        "csv += std::to_string(rec.retryIndex); }",
                        "unbounded-retry"),
              0);
    // `::` alone does not make a three-clause for a range-for.
    EXPECT_EQ(countRule("src/serve/scheduler.cpp",
                        "for (std::size_t i = 0; notDone(std::ref(s)); "
                        "++i) { s = attemptOnce(); }",
                        "unbounded-retry"),
              1);
}

TEST(UnboundedRetry, IgnoresLoopsWithoutRetryState)
{
    EXPECT_EQ(countRule("src/serve/scheduler.cpp",
                        "while (!queue.empty()) { dispatch(queue.pop()); }",
                        "unbounded-retry"),
              0);
    EXPECT_EQ(countRule("src/serve/scheduler.cpp",
                        "for (;;) { if (drained()) break; step(); }",
                        "unbounded-retry"),
              0);
}

TEST(UnboundedRetry, ScopedToSrcTreeAndSuppressible)
{
    const char *src = "while (true) { ok = attemptOnce(); if (ok) break; }";
    for (const char *path :
         {"tests/serve/test_serve_core.cpp", "tools/serve_chaos.cpp",
          "bench/bench_retry.cpp"}) {
        EXPECT_EQ(countRule(path, src, "unbounded-retry"), 0) << path;
    }
    EXPECT_EQ(countRule("src/serve/backend_pool.cpp",
                        "while (true) { ok = attemptOnce(); if (ok) break; } "
                        "// qismet-lint: allow(unbounded-retry)",
                        "unbounded-retry"),
              0);
}

TEST(UnboundedRetry, FixtureFiresUnderSyntheticSrcPath)
{
    const auto findings =
        lintSource("src/serve/bad_unbounded_retry.cpp",
                   fixtureSource("bad_unbounded_retry.cpp"));
    EXPECT_EQ(findings.size(), 3u);
    for (const Finding &f : findings) {
        EXPECT_EQ(f.rule, "unbounded-retry") << f.file << ":" << f.line;
        EXPECT_GT(f.line, 0);
        EXPECT_FALSE(f.message.empty());
    }
    // Under the fixture's real path (outside src/) every rule is silent.
    EXPECT_TRUE(lintFile(fixture("bad_unbounded_retry.cpp")).empty());
}

// ---- fixture files -------------------------------------------------------
//
// One harness for every fixture, single-file or directory (multi-TU):
// a bad fixture yields exactly the expected count, all on the target
// rule; a good fixture yields nothing. lintFixture() runs the cross-TU
// passes in addition to the per-file rules for directory cases.

struct BadFixtureCase
{
    const char *file; ///< File name, or a multi_tu/<case> directory.
    const char *rule;
    int expectedFindings;
};

class BadFixtures : public ::testing::TestWithParam<BadFixtureCase>
{
};

TEST_P(BadFixtures, EveryFindingMatchesTheTargetRule)
{
    const BadFixtureCase &param = GetParam();
    const auto findings = lintFixture(param.file);
    EXPECT_EQ(static_cast<int>(findings.size()), param.expectedFindings)
        << param.file;
    for (const Finding &f : findings) {
        EXPECT_EQ(f.rule, param.rule) << f.file << ":" << f.line;
        EXPECT_GT(f.line, 0);
        EXPECT_FALSE(f.message.empty());
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllRules, BadFixtures,
    ::testing::Values(
        BadFixtureCase{"bad_ambient_rng.cpp", "ambient-rng", 5},
        BadFixtureCase{"bad_unordered_reduction.cpp", "unordered-reduction",
                       3},
        BadFixtureCase{"bad_unordered_reduction_blocks.cpp",
                       "unordered-reduction", 3},
        BadFixtureCase{"bad_raw_thread.cpp", "raw-thread", 3},
        BadFixtureCase{"bad_naked_new.cpp", "naked-new", 4},
        BadFixtureCase{"bad_split_in_task.cpp", "split-in-task", 3},
        // Directory fixtures: miniature source trees exercising the
        // cross-TU passes end to end.
        BadFixtureCase{"multi_tu/sl_reuse", "stream-lineage", 1},
        BadFixtureCase{"multi_tu/lo_cycle", "lock-order", 1},
        BadFixtureCase{"multi_tu/lo_submit", "lock-order", 2},
        BadFixtureCase{"multi_tu/du_unsynced", "durability-ordering", 3}),
    [](const ::testing::TestParamInfo<BadFixtureCase> &param) {
        std::string name = param.param.file;
        name = name.substr(name.find('/') + 1);
        const std::size_t dot = name.find('.');
        if (dot != std::string::npos) {
            name = name.substr(0, dot);
        }
        std::replace(name.begin(), name.end(), '-', '_');
        return name;
    });

class GoodFixtures : public ::testing::TestWithParam<const char *>
{
};

TEST_P(GoodFixtures, NoFindings)
{
    const auto findings = lintFixture(GetParam());
    EXPECT_TRUE(findings.empty())
        << findings.size() << " unexpected findings; first: "
        << (findings.empty() ? ""
                             : findings[0].file + ":" +
                                   std::to_string(findings[0].line) + " [" +
                                   findings[0].rule + "]");
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, GoodFixtures,
    ::testing::Values("good_clean.cpp", "good_suppressed.cpp",
                      "multi_tu/clean_tree"),
    [](const ::testing::TestParamInfo<const char *> &param) {
        std::string name = param.param;
        name = name.substr(name.find('/') + 1);
        const std::size_t dot = name.find('.');
        if (dot != std::string::npos) {
            name = name.substr(0, dot);
        }
        return name;
    });

} // namespace
