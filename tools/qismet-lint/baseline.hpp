/**
 * @file
 * Finding baseline for ratchet-style gating. CI runs the linter in
 * baseline-diff mode: findings already recorded in the committed
 * lint-baseline.json are tolerated, anything new fails the build. The
 * baseline is keyed by (file, rule) with a count, not by line number,
 * so unrelated edits that shift lines do not churn it — but adding one
 * more violation of an already-baselined rule to a file still trips
 * the gate.
 *
 * The format is deliberately minimal JSON:
 *
 *   { "version": 1,
 *     "findings": [ { "file": "src/x.cpp", "rule": "lock-order",
 *                     "count": 2 } ] }
 *
 * written sorted by (file, rule) so regeneration is deterministic and
 * diffs are reviewable. The parser accepts exactly what the writer
 * produces plus arbitrary whitespace.
 */

#ifndef QISMET_TOOLS_LINT_BASELINE_HPP
#define QISMET_TOOLS_LINT_BASELINE_HPP

#include "lint_rules.hpp"

#include <map>
#include <string>
#include <utility>
#include <vector>

namespace qlint {

/** (file, rule) -> tolerated finding count. */
using Baseline = std::map<std::pair<std::string, std::string>, int>;

/** Build a baseline from a finding set. */
Baseline baselineFromFindings(const std::vector<Finding> &findings);

/** Serialize a baseline to its canonical JSON form. */
std::string renderBaseline(const Baseline &baseline);

/**
 * Parse a baseline document.
 *
 * @throws std::runtime_error on malformed input.
 */
Baseline parseBaseline(const std::string &json);

/**
 * Findings not covered by the baseline: for each (file, rule) bucket,
 * the findings beyond the tolerated count (highest line numbers are
 * the ones reported, so long-standing entries stay suppressed).
 */
std::vector<Finding> diffAgainstBaseline(
    const std::vector<Finding> &findings, const Baseline &baseline);

} // namespace qlint

#endif // QISMET_TOOLS_LINT_BASELINE_HPP
